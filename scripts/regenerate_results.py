#!/usr/bin/env python
"""Regenerate results/ — the measured data quoted in EXPERIMENTS.md.

Usage:
    python scripts/regenerate_results.py            # default scale
    python scripts/regenerate_results.py --samples 10000 --workers 8

At --samples 10000 this matches the paper's group sizes (be patient).
Outputs:
    results/experiments_data.txt   all series as fixed-width tables
    results/<figure>.csv           one CSV per figure
    results/<figure>.svg           one SVG image per figure

Release-pattern search flags (the offset/sporadic ablations — the §6
"simulation is only an upper bound" refinement):

    --sim-search {uniform,adaptive}
        How each taskset's pattern budget is spent.  "uniform" (default)
        draws release patterns independently; "adaptive" runs the
        repro.search cross-entropy importance sampler: per-task proposal
        distributions over offsets (resp. inter-arrival gap factors),
        refit each round on the patterns that came closest to a deadline
        miss (the simulators' min-slack channel), with a uniform-mixture
        exploration floor.  Every adaptive sample is still a legal
        pattern and the searched verdict stays intersected with the
        synchronous/periodic baseline, so the curve remains a sound
        upper bound — adaptive just finds more counterexamples per
        simulated pattern.
    --search-rounds N
        Adaptive rounds the budget is split across (round 1 is pure
        uniform exploration; default 4).
    --elite-frac F
        Fraction of lowest-slack patterns refitting the proposals each
        round (default 0.25).
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.experiments.ablations import (
    alpha_ablation,
    nf_vs_fkf_ablation,
    offset_ablation,
    placement_ablation,
    sporadic_ablation,
)
from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.report import as_csv, as_text
from repro.experiments.svgplot import save_svg


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=2000,
                        help="tasksets per bucket for the figures")
    parser.add_argument("--sim-samples", type=int, default=None,
                        help="simulated tasksets per bucket (default: the "
                             "full bucket on the vector backend, 150 on "
                             "the scalar one)")
    parser.add_argument("--sim-backend", choices=("vector", "scalar"),
                        default="vector", dest="sim_backend")
    parser.add_argument("--array-backend",
                        choices=("numpy", "cupy", "torch", "torch:cuda"),
                        default=None, dest="array_backend",
                        help="array namespace for the vectorized kernels "
                             "(default: REPRO_ARRAY_BACKEND env var, then "
                             "numpy); cupy/torch are optional installs")
    parser.add_argument("--ci-target", type=float, default=None,
                        dest="ci_target",
                        help="adaptive bucket sizing: per-bucket draws stop "
                             "once every series' 95%% CI half-width falls "
                             "below this (capped at --samples)")
    parser.add_argument("--sim-search", choices=("uniform", "adaptive"),
                        default="uniform", dest="sim_search",
                        help="release-pattern search for the offset/"
                             "sporadic ablations (see module docstring)")
    parser.add_argument("--search-rounds", type=int, default=4,
                        dest="search_rounds", metavar="N",
                        help="adaptive-search rounds per pattern budget")
    parser.add_argument("--elite-frac", type=float, default=0.25,
                        dest="elite_frac", metavar="FRAC",
                        help="fraction of lowest-slack patterns refitting "
                             "the adaptive proposals each round")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--sim-workers", type=int, default=None,
                        dest="sim_workers", metavar="W",
                        help="shard each vector-sim batch over W processes "
                             "(bit-identical verdicts; unset consults "
                             "REPRO_SIM_WORKERS, then 1)")
    parser.add_argument("--seed", type=int, default=2007)
    parser.add_argument("--out", type=Path, default=Path("results"))
    args = parser.parse_args()

    if args.array_backend is not None:
        # Process-wide so the analytical curves follow the selection too.
        from repro.vector import xp as array_xp

        array_xp.set_backend(args.array_backend)

    args.out.mkdir(parents=True, exist_ok=True)
    blocks = []

    sim_samples = args.sim_samples
    if sim_samples is None and args.sim_backend == "scalar":
        sim_samples = 150
    for fid in sorted(FIGURES):
        print(f"running {fid} ...", flush=True)
        curves = run_figure(
            fid,
            samples=args.samples,
            sim_samples=sim_samples,
            sim_backend=args.sim_backend,
            sim_array_backend=args.array_backend,
            seed=args.seed,
            workers=args.workers,
            sim_workers=args.sim_workers,
            ci_target=args.ci_target,
        )
        blocks.append(as_text(curves))
        (args.out / f"{fid}.csv").write_text(as_csv(curves))
        save_svg(curves, args.out / f"{fid}.svg")

    print("running ablations ...", flush=True)
    blocks.append(as_text(alpha_ablation(samples=2 * args.samples, seed=31,
                                         ci_target=args.ci_target)))
    blocks.append(as_text(nf_vs_fkf_ablation(samples=80, seed=37,
                                             workers=args.workers,
                                             ci_target=args.ci_target)))
    # Placement curves run on the vectorized array free-list, so full
    # paper-scale buckets are affordable (the scalar path capped this
    # at ~50 sets per bucket).
    blocks.append(as_text(placement_ablation(samples=max(50, args.samples // 4),
                                             seed=41,
                                             sim_backend=args.sim_backend,
                                             array_backend=args.array_backend)))
    # The release-pattern searches fan their pattern axis into the batch
    # dimension, so full buckets are affordable here too (the scalar
    # path capped these at ~50 sets per bucket).
    blocks.append(as_text(offset_ablation(samples=max(50, args.samples // 10),
                                          seed=43,
                                          sim_backend=args.sim_backend,
                                          array_backend=args.array_backend,
                                          search=args.sim_search,
                                          search_rounds=args.search_rounds,
                                          elite_frac=args.elite_frac)))
    blocks.append(as_text(sporadic_ablation(samples=max(50, args.samples // 10),
                                            seed=47,
                                            sim_backend=args.sim_backend,
                                            array_backend=args.array_backend,
                                            search=args.sim_search,
                                            search_rounds=args.search_rounds,
                                            elite_frac=args.elite_frac)))

    data = "\n\n".join(blocks)
    (args.out / "experiments_data.txt").write_text(data)
    print(f"wrote {args.out}/experiments_data.txt and per-figure CSV/SVG")


if __name__ == "__main__":
    main()
