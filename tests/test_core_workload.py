"""Tests for the interference workload bounds (Lemma 4 and Lemma 7)."""

from fractions import Fraction as F

from hypothesis import given
from hypothesis import strategies as st

from repro.core.workload import (
    bcl_workload_bound,
    gn1_beta,
    gn2_beta,
    gn2_lambda_candidates,
    max_complete_jobs,
)
from repro.model.task import Task, TaskSet


def _t(c, d, t, a=1, name=None):
    return Task(wcet=c, deadline=d, period=t, area=a, name=name or f"{c}-{d}-{t}")


class TestMaxCompleteJobs:
    def test_aligned_windows(self):
        # window D_k = 7, task (D=5, T=5): one complete job fits
        assert max_complete_jobs(7, _t(1, 5, 5)) == 1

    def test_window_shorter_than_deadline(self):
        # D_k = 8 < D_i = 9 -> zero complete jobs (Table 2 case)
        assert max_complete_jobs(8, _t(8, 9, 9)) == 0

    def test_clamped_to_zero_for_tiny_windows(self):
        assert max_complete_jobs(1, _t(1, 20, 5)) == 0

    def test_many_jobs(self):
        assert max_complete_jobs(20, _t(1, 5, 5)) == 4

    @given(st.integers(1, 40), st.integers(1, 20), st.integers(1, 20))
    def test_nonnegative(self, dk, di, ti):
        assert max_complete_jobs(dk, _t(1, di, ti)) >= 0


class TestBclWorkloadBound:
    def test_table3_value(self):
        # W_1 in window 7: N=1 complete job (C=2.1) + carry-in min(2.1, 7-5)=2
        w = bcl_workload_bound(_t(F("2.1"), 5, 5), 7)
        assert w == F("4.1")

    def test_carry_in_capped_by_wcet(self):
        # window 12, task (C=1, D=5, T=5): N=2, slack 12-10=2 > C -> carry = C
        assert bcl_workload_bound(_t(1, 5, 5), 12) == 3

    def test_zero_complete_jobs_pure_carry_in(self):
        assert bcl_workload_bound(_t(8, 9, 9), 8) == 8

    def test_workload_never_exceeds_window(self):
        # sanity: time work within a window of length L cannot exceed L
        for dk in range(1, 30):
            w = bcl_workload_bound(_t(2, 5, 5), dk)
            assert w <= dk

    @given(
        st.integers(1, 10), st.integers(1, 20), st.integers(1, 20), st.integers(1, 40)
    )
    def test_monotone_in_window(self, c, d, t, dk):
        task = _t(min(c, d), d, t)
        assert bcl_workload_bound(task, dk) <= bcl_workload_bound(task, dk + 1)


class TestGn1Beta:
    def test_paper_denominator_is_di(self):
        beta = gn1_beta(_t(F("2.1"), 5, 5), _t(2, 7, 7))
        assert beta == F("4.1") / 5

    def test_window_denominator_is_dk(self):
        beta = gn1_beta(_t(F("2.1"), 5, 5), _t(2, 7, 7), window_denominator=True)
        assert beta == F("4.1") / 7


class TestGn2Beta:
    def test_case1_light_task(self):
        # u_i <= λ: deadline-aligned carry-in geometry
        ti = _t(2, 10, 10)  # u = 0.2
        tk = _t(1, 5, 5)
        beta = gn2_beta(ti, tk, F("0.5"))
        # max(0.2, 0.2*(1-2) + 2/5) = max(0.2, 0.2) = 0.2
        assert beta == F("0.2")

    def test_case1_max_picks_carry_term(self):
        ti = _t(2, 4, 10)  # u = 0.2, D < T
        tk = _t(1, 20, 20)
        beta = gn2_beta(ti, tk, F("0.5"))
        # alt = 0.2*(1 - 4/20) + 2/20 = 0.16 + 0.1 = 0.26 > 0.2
        assert beta == F("0.26")

    def test_case3_heavy_task(self):
        ti = _t(8, 9, 9)  # u = 8/9, δ = 8/9
        tk = _t(F("4.5"), 8, 8)
        lam = F("0.5625")
        beta = gn2_beta(ti, tk, lam)
        # u > λ, λ < δ: u + (C - λD)/D_k = 8/9 + (8 - 5.0625)/8
        assert beta == F(8, 9) + (8 - lam * 9) / 8

    def test_case2_requires_post_period_deadline(self):
        # u_i > λ and λ >= δ_i possible only when D_i > T_i
        ti = _t(4, 10, 5)  # u = 0.8, δ = 0.4
        tk = _t(1, 5, 5)
        beta = gn2_beta(ti, tk, F("0.5"))
        assert beta == F("0.8")  # corrected C_i/T_i

    def test_case2_literal_reproduces_printed_typo(self):
        ti = _t(4, 10, 5)
        tk = _t(1, 5, 5)
        beta = gn2_beta(ti, tk, F("0.5"), literal_case2=True)
        assert beta == F(1, 5)  # C_k/T_k as printed

    def test_continuity_at_case_boundary(self):
        # case 3 at λ -> δ_i tends to u_i, which is case 2's value
        ti = _t(4, 10, 5)
        tk = _t(1, 5, 5)
        delta = F(4, 10)
        just_below = gn2_beta(ti, tk, delta - F(1, 10**9))
        at_boundary = gn2_beta(ti, tk, delta)
        assert abs(just_below - at_boundary) < F(1, 10**6)

    @given(st.fractions(min_value=F(1, 10), max_value=1))
    def test_beta_nonincreasing_in_lambda(self, lam):
        # larger λ (busier interval) can only lower the load-rate bound
        ti = _t(4, 10, 5)
        tk = _t(1, 5, 5)
        assert gn2_beta(ti, tk, lam) >= gn2_beta(ti, tk, lam + F(1, 10))


class TestLambdaCandidates:
    def test_filters_below_minimum(self):
        ts = TaskSet([_t(1, 10, 10, name="lo"), _t(8, 10, 10, name="hi")])
        cands = gn2_lambda_candidates(ts, ts.by_name("hi"))
        assert all(lam >= F(8, 10) for lam in cands)
        assert F(8, 10) in cands

    def test_includes_density_for_post_period_deadlines(self):
        ts = TaskSet([_t(2, 10, 10, name="a"), _t(4, 10, 5, name="b")])
        cands = gn2_lambda_candidates(ts, ts.by_name("a"))
        assert F(4, 10) in cands  # density of b (D > T)
        assert F(8, 10) in cands  # utilization of b

    def test_sorted_unique(self):
        ts = TaskSet([_t(1, 5, 5, name="a"), _t(2, 10, 10, name="b")])
        cands = gn2_lambda_candidates(ts, ts.by_name("a"))
        assert cands == sorted(set(cands))
