"""Tests for scheduler selection rules (paper Definitions 1-2, EDF-US)."""

from fractions import Fraction as F

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.job import Job
from repro.model.task import Task, TaskSet
from repro.sched.edf_fkf import EdfFkf
from repro.sched.edf_nf import EdfNf
from repro.sched.edf_queue import edf_order
from repro.sched.edf_us import EdfUs, edf_us_threshold


def _job(name, deadline, area, release=0, period=None):
    task = Task(
        wcet=1, period=period or deadline, deadline=deadline, area=area, name=name
    )
    return Job(task=task, release=release)


class TestEdfOrder:
    def test_orders_by_deadline(self):
        jobs = [_job("late", 9, 1), _job("early", 3, 1), _job("mid", 5, 1)]
        assert [j.task.name for j in edf_order(jobs)] == ["early", "mid", "late"]

    def test_release_breaks_ties(self):
        a = _job("a", 6, 1, release=0)
        b = _job("b", 4, 1, release=2)  # same absolute deadline 6
        assert [j.task.name for j in edf_order([b, a])] == ["a", "b"]


class TestFkFSelection:
    def test_prefix_blocking(self):
        """Definition 1: a wide job at the head blocks everything behind it."""
        jobs = [_job("wide", 3, 8), _job("n1", 5, 2), _job("n2", 7, 2)]
        running = EdfFkf().select(jobs, capacity=9)
        assert [j.task.name for j in running] == ["wide"]  # n1 would overflow

    def test_takes_largest_fitting_prefix(self):
        jobs = [_job("a", 3, 3), _job("b", 5, 3), _job("c", 7, 3), _job("d", 9, 3)]
        running = EdfFkf().select(jobs, capacity=9)
        assert [j.task.name for j in running] == ["a", "b", "c"]

    def test_exact_fill(self):
        jobs = [_job("a", 3, 5), _job("b", 5, 5)]
        assert len(EdfFkf().select(jobs, capacity=10)) == 2

    def test_empty_queue(self):
        assert EdfFkf().select([], capacity=10) == []


class TestNfSelection:
    def test_skips_blocked_wide_job(self):
        """Definition 2: NF skips a wide job that cannot fit and runs the
        narrower jobs behind it."""
        jobs = [_job("wide", 3, 8), _job("n1", 5, 2), _job("n2", 7, 2)]
        running = EdfNf().select(jobs, capacity=7)
        assert [j.task.name for j in running] == ["n1", "n2"]

    def test_skip_occurs_midqueue(self):
        jobs = [_job("a", 1, 4), _job("big", 2, 7), _job("c", 3, 4), _job("d", 4, 1)]
        running = EdfNf().select(jobs, capacity=9)
        # a (4) fits; big (7) skipped; c (4) fits (8); d (1) fits (9)
        assert [j.task.name for j in running] == ["a", "c", "d"]

    def test_nf_superset_of_fkf_occupancy(self):
        """NF's selected area always >= FkF's on the same queue."""
        jobs = [_job("a", 1, 6), _job("b", 2, 5), _job("c", 3, 4), _job("d", 4, 3)]
        nf = sum(j.area for j in EdfNf().select(jobs, capacity=10))
        fkf = sum(j.area for j in EdfFkf().select(jobs, capacity=10))
        assert nf >= fkf


@st.composite
def job_queues(draw):
    n = draw(st.integers(1, 8))
    return [
        _job(
            f"j{i}",
            deadline=draw(st.integers(1, 20)),
            area=draw(st.integers(1, 10)),
            release=0,
        )
        for i in range(n)
    ]


class TestSelectionProperties:
    @given(jobs=job_queues(), cap=st.integers(5, 15))
    @settings(max_examples=150, deadline=None)
    def test_capacity_never_exceeded(self, jobs, cap):
        for sched in (EdfFkf(), EdfNf()):
            running = sched.select(jobs, cap)
            assert sum(j.area for j in running) <= cap

    @given(jobs=job_queues(), cap=st.integers(5, 15))
    @settings(max_examples=150, deadline=None)
    def test_nf_dominates_fkf_areawise(self, jobs, cap):
        nf = sum(j.area for j in EdfNf().select(jobs, cap))
        fkf = sum(j.area for j in EdfFkf().select(jobs, cap))
        assert nf >= fkf

    @given(jobs=job_queues(), cap=st.integers(5, 15))
    @settings(max_examples=150, deadline=None)
    def test_fkf_is_prefix_of_queue(self, jobs, cap):
        running = EdfFkf().select(jobs, cap)
        queue = edf_order(jobs)
        assert running == queue[: len(running)]

    @given(jobs=job_queues(), cap=st.integers(5, 15))
    @settings(max_examples=150, deadline=None)
    def test_nf_maximal(self, jobs, cap):
        """Lemma 2's essence: no waiting job fits in NF's leftover area."""
        running = EdfNf().select(jobs, cap)
        used = sum(j.area for j in running)
        waiting = [j for j in jobs if j not in running]
        for j in waiting:
            assert used + j.area > cap


class TestEdfUs:
    def test_threshold_value(self):
        assert edf_us_threshold(2) == F(2, 3)
        assert edf_us_threshold(1) == 1

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            edf_us_threshold(0)

    def test_heavy_tasks_jump_the_queue(self):
        heavy = Job(task=Task(wcet=9, period=10, area=1, name="heavy"), release=0)
        light = Job(task=Task(wcet=1, period=4, deadline=4, area=1, name="light"), release=0)
        sched = EdfUs(threshold=F(1, 2))
        assert [j.task.name for j in sched.order([light, heavy])] == ["heavy", "light"]
        # plain EDF would run light first (deadline 4 < 10)
        assert edf_order([light, heavy])[0].task.name == "light"

    def test_system_heaviness_accounts_for_area(self):
        # narrow but busy vs wide but idle: system heaviness flips them
        wide = Job(task=Task(wcet=2, period=10, area=90, name="wide"), release=0)
        narrow = Job(task=Task(wcet=9, period=10, area=1, name="narrow"), release=0)
        time_based = EdfUs(threshold=F(1, 2), heaviness="time")
        sys_based = EdfUs(threshold=F(1, 10), heaviness="system", device_area=100)
        assert time_based.is_heavy(narrow) and not time_based.is_heavy(wide)
        assert sys_based.is_heavy(wide) and not sys_based.is_heavy(narrow)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EdfUs(threshold=0)
        with pytest.raises(ValueError):
            EdfUs(threshold=F(1, 2), heaviness="system")  # missing device_area
        with pytest.raises(ValueError):
            EdfUs(threshold=F(1, 2), heaviness="weight")  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            EdfUs(threshold=F(1, 2), fit="zigzag")  # type: ignore[arg-type]

    def test_fit_discipline(self):
        assert EdfUs(threshold=F(1, 2), fit="nf").skip_blocked
        assert not EdfUs(threshold=F(1, 2), fit="fkf").skip_blocked
