"""Integration properties tying analysis to simulation.

The schedulability tests are *sufficient* conditions, so any taskset they
accept must survive simulation under the scheduler they certify (the
synchronous pattern is one legal sporadic instantiation).  A violation
here would mean a bug in a bound implementation, the simulator, or a
misreading of the paper — this is the strongest end-to-end check we have.

Also covered: Danne et al.'s dominance claim (FkF-schedulable => NF-
schedulable, §1) and the pessimism ordering (tests accept => simulation
accepts, never the reverse being guaranteed).
"""

import pytest

from repro.core.composite import paper_portfolio
from repro.core.dp import dp_test
from repro.core.gn1 import gn1_test
from repro.core.gn2 import gn2_test
from repro.core.interfaces import SchedulerKind
from repro.fpga.device import Fpga
from repro.gen.profiles import (
    paper_unconstrained,
    spatially_heavy_temporally_light,
    spatially_light_temporally_heavy,
)
from repro.gen.sweep import generate_at_system_utilization
from repro.sched.edf_fkf import EdfFkf
from repro.sched.edf_nf import EdfNf
from repro.sim.simulator import default_horizon, simulate
from repro.util.rngutil import rng_from_seed

FPGA = Fpga(width=100)


def _random_tasksets(seed, count, profiles=None):
    """Sample tasksets across the utilization range from mixed profiles."""
    rng = rng_from_seed(seed)
    profiles = profiles or [
        paper_unconstrained(4),
        paper_unconstrained(10),
        spatially_heavy_temporally_light(),
        spatially_light_temporally_heavy(),
    ]
    out = []
    while len(out) < count:
        profile = profiles[int(rng.integers(0, len(profiles)))]
        target = float(rng.uniform(5, 95))
        try:
            out.append(generate_at_system_utilization(profile, target, rng, max_tries=40))
        except RuntimeError:
            continue
    return out


class TestSoundnessAgainstSimulation:
    """accepted(test) => no deadline miss in simulation (per scheduler)."""

    @pytest.mark.parametrize("seed", [11, 22, 33])
    def test_dp_sound_for_fkf_and_nf(self, seed):
        for ts in _random_tasksets(seed, 25):
            if dp_test(ts, FPGA).accepted:
                horizon = default_horizon(ts, factor=20)
                assert simulate(ts, FPGA, EdfFkf(), horizon).schedulable, ts
                assert simulate(ts, FPGA, EdfNf(), horizon).schedulable, ts

    @pytest.mark.parametrize("seed", [44, 55, 66])
    def test_gn1_sound_for_nf(self, seed):
        for ts in _random_tasksets(seed, 25):
            if gn1_test(ts, FPGA).accepted:
                horizon = default_horizon(ts, factor=20)
                assert simulate(ts, FPGA, EdfNf(), horizon).schedulable, ts

    @pytest.mark.parametrize("seed", [77, 88, 99])
    def test_gn2_sound_for_fkf_and_nf(self, seed):
        for ts in _random_tasksets(seed, 25):
            if gn2_test(ts, FPGA).accepted:
                horizon = default_horizon(ts, factor=20)
                assert simulate(ts, FPGA, EdfFkf(), horizon).schedulable, ts
                assert simulate(ts, FPGA, EdfNf(), horizon).schedulable, ts

    @pytest.mark.parametrize("seed", [123])
    def test_portfolio_sound_for_nf(self, seed):
        portfolio = paper_portfolio(SchedulerKind.EDF_NF)
        for ts in _random_tasksets(seed, 30):
            if portfolio(ts, FPGA).accepted:
                horizon = default_horizon(ts, factor=20)
                assert simulate(ts, FPGA, EdfNf(), horizon).schedulable, ts


class TestNfDominatesFkf:
    """Danne et al.: FkF-schedulable => NF-schedulable (same releases)."""

    @pytest.mark.parametrize("seed", [7, 17, 27, 37])
    def test_dominance_on_random_sets(self, seed):
        for ts in _random_tasksets(seed, 25):
            horizon = default_horizon(ts, factor=10)
            if simulate(ts, FPGA, EdfFkf(), horizon).schedulable:
                assert simulate(ts, FPGA, EdfNf(), horizon).schedulable, ts

    def test_dominance_strict_somewhere(self):
        """NF schedules sets FkF cannot — the inclusion is strict.

        Head-of-queue blocking: two wide tight jobs + a narrow one; FkF
        wastes the idle columns and the narrow job misses.
        """
        from repro.model.task import Task, TaskSet

        # Queue at t=0: w1 (d=4), w2 (d=8), narrow (d=8.5).  FkF stops its
        # prefix at w2 (6+6 > 10), so narrow idles during [0,4) although 4
        # columns are free; it then cannot finish 5 units by 8.5.  NF runs
        # narrow beside w1 immediately and everything meets its deadline.
        ts = TaskSet(
            [
                Task(wcet=4, period=20, deadline=4, area=6, name="w1"),
                Task(wcet=4, period=20, deadline=8, area=6, name="w2"),
                Task(wcet=5, period=20, deadline=8.5, area=4, name="narrow"),
            ]
        )
        fpga = Fpga(width=10)
        nf = simulate(ts, fpga, EdfNf(), horizon=20)
        fkf = simulate(ts, fpga, EdfFkf(), horizon=20)
        assert nf.schedulable
        assert not fkf.schedulable


class TestPessimismOrdering:
    """Analytical acceptance is always at most simulation acceptance."""

    def test_acceptance_counts_ordered(self):
        tasksets = _random_tasksets(314, 60)
        horizon_factor = 10
        accepted = {"DP": 0, "GN1": 0, "GN2": 0, "sim-NF": 0}
        for ts in tasksets:
            horizon = default_horizon(ts, factor=horizon_factor)
            sim_ok = simulate(ts, FPGA, EdfNf(), horizon).schedulable
            accepted["sim-NF"] += sim_ok
            for name, test in [("DP", dp_test), ("GN1", gn1_test), ("GN2", gn2_test)]:
                ok = test(ts, FPGA).accepted
                accepted[name] += ok
                if ok:
                    assert sim_ok, f"{name} accepted but simulation missed: {ts}"
        # the paper's Figs 3-4 headline: all tests pessimistic vs simulation
        for name in ("DP", "GN1", "GN2"):
            assert accepted[name] <= accepted["sim-NF"]
