"""Tests for sporadic-release simulation and bound soundness under jitter."""

import pytest

from repro.core.dp import dp_test
from repro.core.gn1 import gn1_test
from repro.core.gn2 import gn2_test
from repro.fpga.device import Fpga
from repro.gen.profiles import paper_unconstrained
from repro.gen.sweep import generate_at_system_utilization
from repro.model.task import Task, TaskSet
from repro.sched.edf_fkf import EdfFkf
from repro.sched.edf_nf import EdfNf
from repro.sim.simulator import default_horizon, simulate
from repro.sim.sporadic import (
    sample_release_schedule,
    simulate_release_schedule,
    simulate_sporadic,
)
from repro.util.rngutil import rng_from_seed


def small_ts():
    return TaskSet(
        [
            Task(wcet=1, period=5, area=4, name="a"),
            Task(wcet=2, period=8, area=5, name="b"),
        ]
    )


class TestSampleSchedule:
    def test_gaps_respect_minimum_interarrival(self):
        ts = small_ts()
        sched = sample_release_schedule(ts, 100, rng_from_seed(1))
        for t in ts:
            rel = sched[t.name]
            assert rel[0] == 0.0
            for a, b in zip(rel, rel[1:]):
                assert b - a >= float(t.period) - 1e-12
            assert all(r < 100 for r in rel)

    def test_zero_jitter_is_periodic(self):
        ts = small_ts()
        sched = sample_release_schedule(ts, 50, rng_from_seed(2), max_jitter_factor=0)
        assert sched["a"] == [0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 45.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_release_schedule(small_ts(), 10, rng_from_seed(1), -0.1)


class TestSimulateSchedule:
    def test_periodic_schedule_matches_plain_simulation(self):
        ts = small_ts()
        fpga = Fpga(width=10)
        horizon = 40
        sched = sample_release_schedule(ts, horizon, rng_from_seed(3), 0)
        via_schedule = simulate_release_schedule(
            ts, fpga, EdfNf(), horizon, sched, eps=0
        )
        plain = simulate(ts, fpga, EdfNf(), horizon, eps=0)
        assert via_schedule.schedulable == plain.schedulable
        assert via_schedule.metrics.jobs_released == plain.metrics.jobs_released
        assert via_schedule.metrics.busy_area_time == plain.metrics.busy_area_time

    def test_sparser_releases_reduce_load(self):
        ts = small_ts()
        fpga = Fpga(width=10)
        jittered = sample_release_schedule(ts, 40, rng_from_seed(4), 1.0)
        res = simulate_release_schedule(ts, fpga, EdfNf(), 40, jittered)
        plain = simulate(ts, fpga, EdfNf(), 40)
        assert res.metrics.jobs_released <= plain.metrics.jobs_released

    def test_rejects_bad_schedules(self):
        ts = small_ts()
        fpga = Fpga(width=10)
        with pytest.raises(ValueError):
            simulate_release_schedule(ts, fpga, EdfNf(), 10, {"zzz": [0.0]})
        with pytest.raises(ValueError):
            simulate_release_schedule(ts, fpga, EdfNf(), 10, {"a": [50.0]})
        with pytest.raises(ValueError):
            simulate_release_schedule(ts, fpga, EdfNf(), 10, {"a": []})


class TestSimulateSporadic:
    def test_finds_failure_if_periodic_fails(self):
        doomed = TaskSet([Task(wcet=6, period=10, deadline=5, area=4, name="x")])
        res = simulate_sporadic(
            doomed, Fpga(width=10), EdfNf(), 30, rng_from_seed(5), samples=3
        )
        assert not res.schedulable

    def test_passes_on_robust_taskset(self):
        res = simulate_sporadic(
            small_ts(), Fpga(width=10), EdfNf(), 60, rng_from_seed(6), samples=8
        )
        assert res.schedulable

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_sporadic(
                small_ts(), Fpga(width=10), EdfNf(), 10, rng_from_seed(1), samples=-1
            )
        with pytest.raises(ValueError):
            simulate_sporadic(
                small_ts(), Fpga(width=10), EdfNf(), 10, rng_from_seed(1),
                samples=0, include_periodic=False,
            )


class TestSoundnessUnderSporadicReleases:
    """The bounds certify SPORADIC tasksets: acceptance must survive
    arbitrary legal release jitter, not just the periodic pattern."""

    @pytest.mark.parametrize("seed", [201, 202])
    def test_accepted_sets_survive_jittered_releases(self, seed):
        rng = rng_from_seed(seed)
        fpga = Fpga(width=100)
        checked = 0
        for _ in range(40):
            target = float(rng.uniform(5, 60))
            try:
                ts = generate_at_system_utilization(
                    paper_unconstrained(int(rng.integers(2, 8))), target, rng,
                    max_tries=40,
                )
            except RuntimeError:
                continue
            accepted_by = [
                test for test in (dp_test, gn1_test, gn2_test)
                if test(ts, fpga).accepted
            ]
            if not accepted_by:
                continue
            checked += 1
            horizon = default_horizon(ts, factor=10)
            for test in accepted_by:
                from repro.core.interfaces import SchedulerKind

                schedulers = [EdfNf()]
                if SchedulerKind.EDF_FKF in test.schedulers:
                    schedulers.append(EdfFkf())
                for sched in schedulers:
                    res = simulate_sporadic(
                        ts, fpga, sched, horizon, rng, samples=3,
                        max_jitter_factor=0.7,
                    )
                    assert res.schedulable, (test.name, sched.name, ts)
        assert checked > 0  # the property was exercised
