"""Tests for the figure-claim checkers and the 2D workload generator."""

import pytest

from repro.experiments.acceptance import AcceptanceCurves, AcceptanceSeries
from repro.experiments.claims import check_figure
from repro.fpga2d.gen2d import (
    GenerationProfile2D,
    generate_taskset_2d,
    generate_tasksets_2d,
)
from repro.util.rngutil import rng_from_seed


def _curves(**ratios_by_label):
    buckets = tuple(float(x) for x in range(10, 10 + 10 * len(next(iter(ratios_by_label.values()))), 10))
    series = tuple(
        AcceptanceSeries(label, buckets, tuple(vals))
        for label, vals in ratios_by_label.items()
    )
    return AcceptanceCurves(
        name="synthetic", capacity=100, samples_per_point=100,
        sim_samples_per_point=100, series=series,
    )


class TestClaimCheckers:
    def test_fig3a_passes_on_conforming_shape(self):
        curves = _curves(
            DP=[0.8, 0.4, 0.1, 0.0, 0.0, 0.0],
            GN1=[0.7, 0.4, 0.1, 0.05, 0.02, 0.0],
            GN2=[0.8, 0.4, 0.1, 0.0, 0.0, 0.0],
            **{"sim:EDF-NF": [1.0, 1.0, 1.0, 0.9, 0.5, 0.1]},
        )
        assert check_figure("fig3a", curves) == []

    def test_fig3a_flags_nonpessimistic_test(self):
        curves = _curves(
            DP=[1.0, 1.0, 1.0, 1.0, 1.0, 1.0],  # accepting everything
            GN1=[0.7, 0.4, 0.1, 0.05, 0.02, 0.0],
            GN2=[0.8, 0.4, 0.1, 0.0, 0.0, 0.0],
            **{"sim:EDF-NF": [1.0, 1.0, 1.0, 0.9, 0.5, 0.1]},
        )
        violations = check_figure("fig3a", curves)
        assert any("DP not pessimistic" in v for v in violations)

    def test_fig3b_flags_wrong_ordering(self):
        curves = _curves(
            DP=[0.1, 0.05, 0.0, 0.0],
            GN1=[0.6, 0.3, 0.1, 0.0],  # GN1 better than DP: violates claim
            GN2=[0.1, 0.05, 0.0, 0.0],
            **{"sim:EDF-NF": [1.0, 1.0, 1.0, 0.9]},
        )
        violations = check_figure("fig3b", curves)
        assert any("DP not better than GN1" in v for v in violations)

    def test_fig4a_flags_good_tests(self):
        curves = _curves(
            DP=[0.5, 0.4, 0.3, 0.2],  # way too good for spatially heavy
            GN1=[0.0, 0.0, 0.0, 0.0],
            GN2=[0.0, 0.0, 0.0, 0.0],
            **{"sim:EDF-NF": [1.0, 1.0, 0.9, 0.6]},
        )
        violations = check_figure("fig4a", curves)
        assert any("DP not poor" in v for v in violations)

    def test_fig4b_flags_dp_acceptance(self):
        curves = _curves(
            DP=[0.3, 0.2, 0.1, 0.0],  # DP must be ~0 here
            GN1=[1.0, 0.9, 0.5, 0.1],
            GN2=[0.9, 0.5, 0.1, 0.0],
            **{"sim:EDF-NF": [1.0, 1.0, 0.8, 0.3]},
        )
        violations = check_figure("fig4b", curves)
        assert any("unexpectedly accepts" in v for v in violations)

    def test_fig4b_passes_on_conforming_shape(self):
        curves = _curves(
            DP=[0.0, 0.0, 0.0, 0.0],
            GN1=[1.0, 0.9, 0.5, 0.1],
            GN2=[0.9, 0.5, 0.1, 0.0],
            **{"sim:EDF-NF": [1.0, 1.0, 0.8, 0.3]},
        )
        assert check_figure("fig4b", curves) == []

    def test_unknown_figure(self):
        with pytest.raises(KeyError):
            check_figure("fig9", _curves(DP=[0.0]))

    def test_real_small_runs_satisfy_claims(self):
        """End-to-end: modest-size regenerations pass their own checkers."""
        from repro.experiments.figures import run_figure

        for fid in ("fig3a", "fig3b"):
            curves = run_figure(fid, samples=300, sim_samples=40, seed=2007)
            assert check_figure(fid, curves) == [], fid


class TestGenerationProfile2D:
    def test_defaults_valid(self):
        GenerationProfile2D()

    @pytest.mark.parametrize("kwargs", [
        dict(n_tasks_min=0),
        dict(n_tasks_min=5, n_tasks_max=4),
        dict(side_min=0),
        dict(side_min=9, side_max=8),
        dict(period_min=0),
        dict(deadline_factor_min=0),
        dict(deadline_factor_max=1.5),
        dict(wcet_min=0),
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GenerationProfile2D(**kwargs)


class TestGenerate2D:
    def test_respects_bounds(self):
        profile = GenerationProfile2D()
        rng = rng_from_seed(3)
        for _ in range(40):
            ts = generate_taskset_2d(profile, rng)
            assert profile.n_tasks_min <= len(ts) <= profile.n_tasks_max
            for t in ts:
                assert profile.side_min <= t.width <= profile.side_max
                assert profile.side_min <= t.height <= profile.side_max
                assert t.wcet <= t.deadline <= t.period
                assert t.feasible_alone

    def test_reproducible(self):
        p = GenerationProfile2D()
        a = generate_taskset_2d(p, rng_from_seed(9))
        b = generate_taskset_2d(p, rng_from_seed(9))
        assert a == b

    def test_batch(self):
        sets = generate_tasksets_2d(GenerationProfile2D(), 7, rng_from_seed(1))
        assert len(sets) == 7
        with pytest.raises(ValueError):
            generate_tasksets_2d(GenerationProfile2D(), -1, rng_from_seed(1))
