"""Tests for the repro-experiments command line."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig9z"])

    def test_defaults(self):
        args = build_parser().parse_args(["run", "fig3a"])
        assert args.samples is None
        assert args.seed == 2007
        assert args.format == "text"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3a" in out and "ablation-alpha" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "| table1 | accept | reject | reject | yes |" in out

    def test_run_small_alpha_ablation(self, capsys):
        assert main(["run", "ablation-alpha", "--samples", "50", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "DP" in out and "DP-real" in out

    def test_run_csv_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "sub" / "alpha.csv"
        code = main([
            "run", "ablation-alpha", "--samples", "40",
            "--format", "csv", "--out", str(out_file),
        ])
        assert code == 0
        assert out_file.exists()
        assert out_file.read_text().startswith("us,")

    def test_run_with_plot(self, capsys):
        assert main(["run", "ablation-alpha", "--samples", "30", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "|" in out  # sparkline frame
