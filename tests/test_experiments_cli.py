"""Tests for the repro-experiments command line."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig9z"])

    def test_defaults(self):
        args = build_parser().parse_args(["run", "fig3a"])
        assert args.samples is None
        assert args.seed == 2007
        assert args.format == "text"
        assert args.sim_mode == "free"
        assert args.sim_policy == "first-fit"
        assert args.sim_release == "periodic"
        assert args.sim_jitter == 0.5

    def test_array_backend_flag(self):
        args = build_parser().parse_args(["run", "fig3a"])
        assert args.array_backend is None  # env / numpy precedence applies
        args = build_parser().parse_args(
            ["run", "fig3a", "--array-backend", "numpy"]
        )
        assert args.array_backend == "numpy"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "fig3a", "--array-backend", "quantum"]
            )

    def test_sim_sweep_flags(self):
        args = build_parser().parse_args([
            "run", "fig3b", "--sim-mode", "relocatable",
            "--sim-policy", "best-fit",
            "--sim-release", "sporadic", "--sim-jitter", "0.8",
        ])
        assert args.sim_mode == "relocatable"
        assert args.sim_policy == "best-fit"
        assert args.sim_release == "sporadic"
        assert args.sim_jitter == 0.8
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig3a", "--sim-mode", "warp"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig3a", "--sim-release", "x"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3a" in out and "ablation-alpha" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "| table1 | accept | reject | reject | yes |" in out

    def test_run_small_alpha_ablation(self, capsys):
        assert main(["run", "ablation-alpha", "--samples", "50", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "DP" in out and "DP-real" in out

    def test_run_with_array_backend_flag(self, capsys):
        from repro.vector import xp as xp_mod

        previous = xp_mod.set_backend(None)
        try:
            assert main([
                "run", "ablation-alpha", "--samples", "40", "--seed", "3",
                "--array-backend", "numpy",
            ]) == 0
            # The flag installs the process-wide selection for the run.
            assert xp_mod.get_backend().name == "numpy"
        finally:
            xp_mod.set_backend(previous)
        out = capsys.readouterr().out
        assert "DP" in out

    def test_run_csv_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "sub" / "alpha.csv"
        code = main([
            "run", "ablation-alpha", "--samples", "40",
            "--format", "csv", "--out", str(out_file),
        ])
        assert code == 0
        assert out_file.exists()
        assert out_file.read_text().startswith("us,")

    def test_run_with_plot(self, capsys):
        assert main(["run", "ablation-alpha", "--samples", "30", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "|" in out  # sparkline frame

    def test_run_sporadic_ablation(self, capsys):
        assert main(["run", "ablation-sporadic", "--samples", "4",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "sim:periodic" in out and "sim:sporadic-search" in out

    def test_run_figure_with_sim_sweep_flags(self, capsys):
        """--sim-mode/--sim-release reach the figure-style runners
        (the ROADMAP registry-exposure item)."""
        assert main([
            "run", "fig3a", "--samples", "15", "--seed", "3",
            "--sim-mode", "relocatable", "--sim-policy", "best-fit",
            "--sim-release", "sporadic",
        ]) == 0
        out = capsys.readouterr().out
        assert "sim:EDF-NF" in out
