"""Tests for the work-conserving α factors (paper §3, Lemmas 1-2)."""

from fractions import Fraction as F

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.alpha import (
    global_alpha_fkf,
    global_alpha_fkf_real_areas,
    guaranteed_busy_area_fkf,
    guaranteed_busy_area_nf,
    interval_alpha_nf,
)


class TestLemma1:
    def test_example_values(self):
        # A(H)=10, Amax=9 -> α = 1 - 8/10 = 0.2, busy >= 2 columns
        assert global_alpha_fkf(9, 10) == F(1, 5)
        assert guaranteed_busy_area_fkf(9, 10) == 2

    def test_unit_area_recovers_full_work_conservation(self):
        # all tasks width 1 == multiprocessor: α = 1, all m processors busy
        assert global_alpha_fkf(1, 16) == 1
        assert guaranteed_busy_area_fkf(1, 16) == 16

    def test_integer_correction_vs_real(self):
        # integer-area α is strictly larger (tighter) than Danne's
        assert global_alpha_fkf(7, 10) > global_alpha_fkf_real_areas(7, 10)
        assert global_alpha_fkf(7, 10) - global_alpha_fkf_real_areas(7, 10) == F(1, 10)

    def test_full_width_task(self):
        # Amax = A(H): only 1 column guaranteed busy
        assert guaranteed_busy_area_fkf(10, 10) == 1
        assert global_alpha_fkf(10, 10) == F(1, 10)


class TestLemma2:
    def test_example_values(self):
        assert interval_alpha_nf(7, 10) == F(4, 10)
        assert guaranteed_busy_area_nf(7, 10) == 4

    def test_nf_alpha_at_least_fkf_alpha(self):
        # A_k <= Amax, so the NF interval bound dominates the FkF bound.
        for ak in range(1, 8):
            assert interval_alpha_nf(ak, 10) >= global_alpha_fkf(7, 10)

    @given(st.integers(1, 50), st.integers(50, 200))
    def test_alpha_in_unit_interval(self, ak, area):
        a = interval_alpha_nf(ak, area)
        assert 0 < a <= 1


class TestValidation:
    def test_rejects_task_wider_than_device(self):
        with pytest.raises(ValueError):
            global_alpha_fkf(11, 10)

    def test_rejects_zero_area_device(self):
        with pytest.raises(ValueError):
            global_alpha_fkf(1, 0)

    def test_rejects_area_below_one(self):
        with pytest.raises(ValueError):
            interval_alpha_nf(0, 10)
