"""Tests for SVG rendering and the explain/simulate CLI commands."""

import xml.etree.ElementTree as ET

import pytest

from repro.experiments.acceptance import AcceptanceCurves, AcceptanceSeries
from repro.experiments.cli import main
from repro.experiments.svgplot import render_svg, save_svg
from repro.model.io import save_taskset
from repro.model.task import Task, TaskSet


def demo_curves():
    return AcceptanceCurves(
        name="demo <figure>",
        capacity=100,
        samples_per_point=10,
        sim_samples_per_point=5,
        series=(
            AcceptanceSeries("DP", (10.0, 50.0, 90.0), (0.9, 0.4, 0.0)),
            AcceptanceSeries("GN1", (10.0, 50.0, 90.0), (0.8, 0.5, 0.1)),
            AcceptanceSeries("sim:EDF-NF", (10.0, 50.0, 90.0), (1.0, 1.0, 0.5)),
        ),
    )


class TestSvgPlot:
    def test_produces_wellformed_xml(self):
        svg = render_svg(demo_curves())
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_one_polyline_per_series(self):
        svg = render_svg(demo_curves())
        assert svg.count("<polyline") == 3

    def test_escapes_title(self):
        svg = render_svg(demo_curves())
        assert "demo &lt;figure&gt;" in svg
        assert "<figure>" not in svg

    def test_nan_points_skipped(self):
        curves = AcceptanceCurves(
            name="nan-demo", capacity=100, samples_per_point=1,
            sim_samples_per_point=0,
            series=(
                AcceptanceSeries("A", (1.0, 2.0, 3.0), (float("nan"), 0.5, 0.4)),
            ),
        )
        svg = render_svg(curves)
        assert svg.count("<circle") == 2  # only the non-NaN points

    def test_normalized_axis_label(self):
        svg = render_svg(demo_curves(), normalize_x=True)
        assert "US(Γ) / A(H)" in svg

    def test_size_validation(self):
        with pytest.raises(ValueError):
            render_svg(demo_curves(), width=100, height=100)

    def test_save_creates_parents(self, tmp_path):
        out = tmp_path / "a" / "b" / "fig.svg"
        save_svg(demo_curves(), out)
        assert out.exists()
        ET.parse(out)  # parses cleanly


@pytest.fixture
def taskset_file(tmp_path):
    ts = TaskSet(
        [
            Task(wcet=2, period=10, area=4, name="alpha"),
            Task(wcet=3, period=12, area=5, name="beta"),
        ]
    )
    path = tmp_path / "ts.json"
    save_taskset(ts, path)
    return path


@pytest.fixture
def doomed_taskset_file(tmp_path):
    ts = TaskSet([Task(wcet=8, period=10, deadline=5, area=4, name="late")])
    path = tmp_path / "bad.json"
    save_taskset(ts, path)
    return path


class TestExplainCommand:
    def test_explains_all_three_tests(self, taskset_file, capsys):
        assert main(["explain", str(taskset_file), "--width", "10"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 1" in out and "Theorem 2" in out and "Theorem 3" in out
        assert out.count("verdict:") == 3


class TestSimulateCommand:
    def test_schedulable_run(self, taskset_file, capsys):
        code = main(["simulate", str(taskset_file), "--width", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "no deadline misses" in out
        assert "worst response alpha" in out

    def test_miss_returns_nonzero(self, doomed_taskset_file, capsys):
        code = main(["simulate", str(doomed_taskset_file), "--width", "10"])
        assert code == 1
        assert "MISS: late#0" in capsys.readouterr().out

    def test_gantt_output(self, taskset_file, capsys):
        code = main([
            "simulate", str(taskset_file), "--width", "10",
            "--horizon", "12", "--gantt",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "legend:" in out

    def test_fkf_scheduler_flag(self, taskset_file, capsys):
        assert main([
            "simulate", str(taskset_file), "--width", "10", "--scheduler", "fkf",
        ]) == 0
        assert "EDF-FkF" in capsys.readouterr().out


class TestRunSvgFlag:
    def test_run_writes_svg(self, tmp_path, capsys):
        out = tmp_path / "alpha.svg"
        code = main([
            "run", "ablation-alpha", "--samples", "30", "--svg", str(out),
        ])
        assert code == 0
        assert out.exists()
        ET.parse(out)
