"""End-to-end smoke tests: every registered experiment runner executes.

Tiny sample counts — these verify plumbing (runner signature, series
labels, bucket counts), not statistics; the benchmarks assert the shapes.
"""

import math

import pytest

from repro.experiments.ablations import (
    nf_vs_fkf_ablation,
    offset_ablation,
    placement_ablation,
    sporadic_ablation,
)
from repro.experiments.registry import EXPERIMENTS


class TestRegistryRunnersExecute:
    @pytest.mark.parametrize("eid", ["fig3a", "fig3b", "fig4a"])
    def test_figure_runners(self, eid):
        curves = EXPERIMENTS[eid].runner(30, 7, 1)
        assert set(curves.labels) >= {"DP", "GN1", "GN2"}
        assert all(len(s.ratios) == len(s.utilizations) for s in curves.series)

    def test_fig4b_runner_binned(self):
        curves = EXPERIMENTS["fig4b"].runner(30, 7, 1)
        gn1 = curves["GN1"].ratios
        assert any(not math.isnan(r) for r in gn1)

    def test_alpha_runner(self):
        curves = EXPERIMENTS["ablation-alpha"].runner(40, 7, 1)
        assert set(curves.labels) == {"DP", "DP-real"}


class TestAblationRunnersDirect:
    def test_nf_vs_fkf_small(self):
        curves = nf_vs_fkf_ablation(us_grid=(40.0, 80.0), samples=6, seed=3)
        nf, fkf = curves["sim:EDF-NF"], curves["sim:EDF-FkF"]
        for a, b in zip(nf.ratios, fkf.ratios):
            assert 0 <= b <= a <= 1

    def test_placement_small(self):
        from repro.fpga.placement import PlacementPolicy

        curves = placement_ablation(
            us_grid=(40.0, 70.0), samples=5, seed=3,
            policies=(PlacementPolicy.BEST_FIT,),
        )
        assert "sim:FREE" in curves.labels
        assert "sim:RELOC/best-fit" in curves.labels
        assert "sim:PINNED" in curves.labels

    def test_offsets_small(self):
        curves = offset_ablation(
            us_grid=(50.0, 80.0), samples=5, offset_samples=3, seed=3
        )
        sync = curves["sim:synchronous"]
        searched = curves["sim:offset-search"]
        for a, b in zip(sync.ratios, searched.ratios):
            assert b <= a

    def test_sporadic_small(self):
        curves = sporadic_ablation(
            us_grid=(50.0, 80.0), samples=5, sporadic_samples=3, seed=3
        )
        periodic = curves["sim:periodic"]
        searched = curves["sim:sporadic-search"]
        for a, b in zip(periodic.ratios, searched.ratios):
            assert b <= a

    def test_release_pattern_runners_registered(self):
        """Both release-pattern searches run off the registry (and accept
        the CLI's sim_* sweep kwargs without choking)."""
        from repro.fpga.placement import PlacementPolicy
        from repro.sim.simulator import MigrationMode

        for eid in ("ablation-offsets", "ablation-sporadic"):
            curves = EXPERIMENTS[eid].runner(
                4, 3, 1,
                sim_backend="vector", ci_target=None,
                sim_mode=MigrationMode.FREE,
                sim_policy=PlacementPolicy.FIRST_FIT,
                sim_release="periodic", sim_jitter=0.5,
            )
            assert len(curves.series) == 2

    def test_sporadic_runner_honours_sim_jitter(self):
        """--sim-jitter reaches sporadic_ablation: zero jitter makes every
        sampled pattern periodic, so the searched curve collapses onto
        the baseline."""
        curves = EXPERIMENTS["ablation-sporadic"].runner(
            6, 3, 1, sim_jitter=0.0
        )
        assert curves["sim:periodic"].ratios == (
            curves["sim:sporadic-search"].ratios
        )


class TestCensusCli:
    def test_census_command(self, capsys):
        from repro.experiments.cli import main

        assert main(["census", "--samples", "300", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "pattern" in out and "fraction" in out
