"""Tests for partitioned FPGA scheduling (Danne & Platzner RAW'06 style)."""

from fractions import Fraction as F

from repro.fpga.device import Fpga
from repro.model.task import Task, TaskSet
from repro.sched.partitioned import partition_first_fit, partitioned_test
from repro.uni.utilization import edf_utilization_test


def _t(c, t, a, name):
    return Task(wcet=c, period=t, area=a, name=name)


class TestPartitionFirstFit:
    def test_single_task(self):
        ts = TaskSet([_t(1, 10, 4, "a")])
        res = partition_first_fit(ts, Fpga(width=10))
        assert res.accepted
        assert len(res.partitions) == 1
        assert res.partitions[0].width == 4

    def test_shares_partition_when_time_allows(self):
        # two half-utilization tasks of same width share one partition
        ts = TaskSet([_t(4, 10, 5, "a"), _t(4, 10, 5, "b")])
        res = partition_first_fit(ts, Fpga(width=6))
        assert res.accepted
        assert len(res.partitions) == 1
        assert len(res.partitions[0].tasks) == 2

    def test_opens_second_partition_when_serialization_fails(self):
        # two 80%-utilization tasks cannot share (UT would be 1.6)
        ts = TaskSet([_t(8, 10, 5, "a"), _t(8, 10, 5, "b")])
        res = partition_first_fit(ts, Fpga(width=10))
        assert res.accepted
        assert len(res.partitions) == 2

    def test_rejects_when_width_budget_exhausted(self):
        ts = TaskSet([_t(8, 10, 6, "a"), _t(8, 10, 6, "b")])
        res = partition_first_fit(ts, Fpga(width=10))
        assert not res.accepted
        assert len(res.unplaced) == 1

    def test_narrow_task_reuses_wide_partition(self):
        # decreasing-area first-fit: wide first, narrow slots into it
        ts = TaskSet([_t(2, 10, 8, "wide"), _t(2, 10, 2, "narrow")])
        res = partition_first_fit(ts, Fpga(width=9))
        assert res.accepted
        assert len(res.partitions) == 1
        assert res.partitions[0].width == 8

    def test_partitioned_weaker_than_global_here(self):
        """Static partitions waste width that global scheduling can
        time-multiplex: three staggered-deadline tasks (areas 6/5/5) fit
        globally (t1 alone, then t2+t3 side by side), but FFD partitioning
        runs out of width budget and must reject."""
        ts = TaskSet(
            [
                Task(wcet=9, period=40, deadline=9, area=6, name="a"),
                Task(wcet=9, period=40, deadline=18, area=5, name="b"),
                Task(wcet=9, period=40, deadline=20, area=5, name="c"),
            ]
        )
        fpga = Fpga(width=10)
        assert not partitioned_test(ts, fpga).accepted

        from repro.sim.simulator import simulate
        from repro.sched.edf_nf import EdfNf

        sim = simulate(ts, fpga, EdfNf(), horizon=200)
        assert sim.schedulable

    def test_pluggable_uni_test(self):
        ts = TaskSet([_t(5, 10, 5, "a"), _t(5, 10, 5, "b")])
        res = partition_first_fit(ts, Fpga(width=10), uni_test=edf_utilization_test)
        assert res.accepted

    def test_result_reports_partitions(self):
        ts = TaskSet([_t(4, 10, 5, "a"), _t(4, 10, 5, "b")])
        res = partitioned_test(ts, Fpga(width=6))
        assert any("partition0" in v.task for v in res.per_task)

    def test_exact_fraction_parameters(self):
        ts = TaskSet([_t(F(1, 3), 1, 2, "a"), _t(F(1, 3), 1, 2, "b")])
        res = partition_first_fit(ts, Fpga(width=4))
        assert res.accepted
