"""Decision parity: the micro-batched service == serial replay, bit-for-bit.

The service's central contract (ISSUE: PR 9): for float64-parameter
tasks (everything that can arrive through the JSON protocol), the
decisions of :meth:`BatchEngine.process_batch` over *any* partition of
a request stream into batches are identical to
:meth:`BatchEngine.process_serial` — one request at a time, straight
through ``AdmissionState.admit`` with rollback — and the final resident
sets agree.  Randomized interleaved admit/remove/trial streams exercise
the certifier fast path, the speculative grouped kernel reruns, and the
rejected-speculation requeue; dedicated tests pin rollback-on-reject,
trial non-mutation, error semantics and the certifier-vs-exact
agreement.
"""

import asyncio
import random

import pytest

from repro.fpga.device import Fpga
from repro.model.task import Task
from repro.service import (
    AdmissionService,
    BatchConfig,
    BatchEngine,
    MicroBatcher,
    ProtocolError,
    Request,
    parse_request,
    parse_task,
    rendezvous_shard,
)
from repro.service.protocol import VIA_CERTIFIER, VIA_KERNEL, VIA_STATE

DEVICES = ("fpga0", "fpga1", "fpga2")


def draw_task(rng: random.Random, i: int) -> Task:
    """Irregular float parameters, off exact knife edges (churn-bench
    pattern): the float64 domain the protocol boundary admits."""
    wcet = rng.uniform(0.3, 4.0)
    period = wcet * rng.uniform(1.3, 9.0)
    deadline = period * rng.uniform(0.65, 1.0)
    return Task(
        wcet=wcet,
        period=period,
        deadline=deadline,
        area=rng.randint(1, 14),
        name=f"t{i}",
    )


def gen_stream(rng: random.Random, n: int, devices=DEVICES):
    """Interleaved add/remove/trial requests with plausible targets."""
    resident = {d: [] for d in devices}
    requests = []
    for i in range(n):
        device = rng.choice(devices)
        roll = rng.random()
        if roll < 0.22 and resident[device]:
            name = rng.choice(resident[device])
            requests.append(Request(op="remove", device=device, name=name))
            resident[device].remove(name)
        elif roll < 0.27 and resident[device]:
            # duplicate-name add: must error identically in both paths
            name = rng.choice(resident[device])
            dup = draw_task(rng, i)
            requests.append(
                Request(op="add", device=device, task=Task(
                    wcet=dup.wcet, period=dup.period, deadline=dup.deadline,
                    area=dup.area, name=name,
                ))
            )
        elif roll < 0.32:
            # remove of an absent task: must error identically
            requests.append(Request(op="remove", device=device, name=f"ghost{i}"))
        elif roll < 0.52:
            requests.append(Request(op="trial", device=device, task=draw_task(rng, i)))
        else:
            task = draw_task(rng, i)
            requests.append(Request(op="add", device=device, task=task))
            resident[device].append(task.name)  # optimistic bookkeeping
    return requests


def make_engine(width=64, use_certifier=True, devices=DEVICES) -> BatchEngine:
    engine = BatchEngine(use_certifier=use_certifier)
    for name in devices:
        engine.add_device(name, Fpga(width=width))
    return engine


def decision_key(decision):
    """The parity-relevant projection: everything except ``via``/``member``
    (the batched pipeline may decide via certifier or kernel where the
    serial reference says ``state`` — the *verdict* must not differ)."""
    return (decision.op, decision.device, decision.name, decision.ok, decision.error)


def random_partition(rng: random.Random, stream, max_chunk=96):
    chunks = []
    k = 0
    while k < len(stream):
        size = rng.randint(1, max_chunk)
        chunks.append(stream[k : k + size])
        k += size
    return chunks


def assert_states_agree(a: BatchEngine, b: BatchEngine, devices=DEVICES):
    for name in devices:
        left = sorted(t.name for t in a.device(name).state.tasks)
        right = sorted(t.name for t in b.device(name).state.tasks)
        assert left == right, (name, left, right)


# -- randomized stream parity --------------------------------------------------


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("use_certifier", [True, False])
def test_batched_decisions_match_serial_replay(seed, use_certifier):
    rng = random.Random(seed)
    stream = gen_stream(rng, 300)
    serial = make_engine()
    reference = serial.process_serial(stream)

    batched = make_engine(use_certifier=use_certifier)
    got = []
    for chunk in random_partition(rng, stream):
        got.extend(batched.process_batch(chunk))

    assert len(got) == len(reference)
    for ref, dec in zip(reference, got):
        assert decision_key(dec) == decision_key(ref)
    assert_states_agree(serial, batched)


@pytest.mark.parametrize("seed", [11, 12])
def test_every_partition_yields_identical_decisions(seed):
    """Batch-split invariance: singletons, mixed chunks and one giant
    batch all produce the same decision sequence."""
    rng = random.Random(seed)
    stream = gen_stream(rng, 160)
    outcomes = []
    for chunks in (
        [stream[i : i + 1] for i in range(len(stream))],
        random_partition(random.Random(seed + 1), stream, max_chunk=17),
        [stream],
    ):
        engine = make_engine()
        got = []
        for chunk in chunks:
            got.extend(engine.process_batch(chunk))
        outcomes.append([decision_key(d) for d in got])
    assert outcomes[0] == outcomes[1] == outcomes[2]


def test_high_contention_single_device_parity():
    """Everything lands on one device: maximal speculation chains and
    rejected-speculation requeues."""
    rng = random.Random(99)
    stream = gen_stream(rng, 250, devices=("solo",))
    serial = make_engine(width=32, devices=("solo",))
    reference = serial.process_serial(stream)
    batched = make_engine(width=32, devices=("solo",))
    got = batched.process_batch(stream)  # one giant batch
    assert [decision_key(d) for d in got] == [decision_key(d) for d in reference]
    assert_states_agree(serial, batched, devices=("solo",))


# -- pinned semantics ----------------------------------------------------------


def test_rejected_add_rolls_back():
    engine = make_engine(width=8, devices=("d",))
    ok = engine.process_batch(
        [Request(op="add", device="d", task=Task(wcet=1.0, period=4.0, area=4, name="big"))]
    )[0]
    assert ok.ok
    before = engine.device("d").state.version
    crowd = [
        Request(op="add", device="d", task=Task(wcet=3.0, period=3.5, area=7, name=f"x{i}"))
        for i in range(4)
    ]
    decisions = engine.process_batch(crowd)
    assert all(not d.ok and d.error is None for d in decisions)
    state = engine.device("d").state
    assert sorted(t.name for t in state.tasks) == ["big"]
    assert state.version == before  # rejected adds never touched the state


def test_trial_never_mutates():
    engine = make_engine(devices=("d",))
    task = Task(wcet=1.0, period=10.0, area=2, name="probe")
    for _ in range(3):
        decision = engine.process_batch([Request(op="trial", device="d", task=task)])[0]
        assert decision.ok
    assert len(engine.device("d").state) == 0
    # an accepted trial does not reserve the name
    admitted = engine.process_batch([Request(op="add", device="d", task=task)])[0]
    assert admitted.ok


def test_error_semantics():
    engine = make_engine(devices=("d",))
    task = Task(wcet=1.0, period=10.0, area=2, name="a")
    engine.process_batch([Request(op="add", device="d", task=task)])
    dup, ghost, lost = engine.process_batch(
        [
            Request(op="add", device="d", task=task),
            Request(op="remove", device="d", name="ghost"),
            Request(op="add", device="missing", task=task),
        ]
    )
    assert (dup.ok, dup.error) == (False, "task name already resident")
    assert (ghost.ok, ghost.error) == (False, "task not resident")
    assert (lost.ok, lost.error) == (False, "unknown device")


def test_certifier_and_exact_paths_agree():
    """Certified decisions must match what the exact kernels (and the
    serial reference) would have said."""
    rng = random.Random(5)
    stream = []
    for i in range(220):
        stream.append(
            Request(
                op=rng.choice(("add", "trial")),
                device="d",
                task=Task(
                    wcet=rng.uniform(0.05, 0.4),
                    period=rng.uniform(40.0, 90.0),
                    area=1,
                    name=f"t{i}",
                ),
            )
        )
    with_cert = make_engine(width=128, devices=("d",))
    without = make_engine(width=128, use_certifier=False, devices=("d",))
    serial = make_engine(width=128, devices=("d",))
    reference = serial.process_serial(stream)
    got_cert, got_exact = [], []
    for k in range(0, len(stream), 16):
        got_cert.extend(with_cert.process_batch(stream[k : k + 16]))
        got_exact.extend(without.process_batch(stream[k : k + 16]))
    assert [decision_key(d) for d in got_cert] == [decision_key(d) for d in reference]
    assert [decision_key(d) for d in got_exact] == [decision_key(d) for d in reference]
    # the fast path actually engaged, and only ever on the accept side
    vias = {d.via for d in got_cert}
    assert VIA_CERTIFIER in vias
    assert all(d.ok for d in got_cert if d.via == VIA_CERTIFIER)
    snap = with_cert.metrics.snapshot()
    assert snap["certifier"]["certified"] > 0
    assert 0.0 < snap["certifier"]["hit_rate"] <= 1.0


def test_via_taxonomy():
    engine = make_engine(devices=("d",))
    add = engine.process_batch(
        [Request(op="add", device="d", task=Task(wcet=1.0, period=10.0, area=2, name="a"))]
    )[0]
    assert add.via == VIA_KERNEL and add.member in ("DP", "GN1", "GN2")
    rem = engine.process_batch([Request(op="remove", device="d", name="a")])[0]
    assert rem.via == VIA_STATE


# -- protocol boundary ---------------------------------------------------------


def test_parse_task_coerces_to_float_and_validates():
    task = parse_task({"name": "a", "wcet": 1, "period": 10})
    assert isinstance(task.wcet, float) and isinstance(task.period, float)
    assert task.deadline == 10.0 and task.area == 1.0
    with pytest.raises(ProtocolError):
        parse_task({"name": "a", "wcet": 1})  # missing period
    with pytest.raises(ProtocolError):
        parse_task({"name": "", "wcet": 1, "period": 10})
    with pytest.raises(ProtocolError):
        parse_task({"name": "a", "wcet": True, "period": 10})
    with pytest.raises(ProtocolError):
        parse_task({"name": "a", "wcet": 1, "period": 10, "color": "red"})
    with pytest.raises(ProtocolError):
        parse_task({"name": "a", "wcet": -1, "period": 10})  # ModelError wrapped


def test_parse_request_shapes():
    req = parse_request("remove", {"device": "d", "name": "a"})
    assert req.target == "a"
    req = parse_request("trial", {"device": "d", "task": {"name": "a", "wcet": 1, "period": 9}})
    assert req.task is not None and req.target == "a"
    with pytest.raises(ProtocolError):
        parse_request("add", {"task": {"name": "a", "wcet": 1, "period": 9}})
    with pytest.raises(ProtocolError):
        parse_request("remove", {"device": "d"})
    with pytest.raises(ProtocolError):
        Request(op="resize", device="d")


# -- asyncio micro-batcher -----------------------------------------------------


def test_microbatcher_coalesces_and_preserves_order():
    engine = make_engine(devices=("d",))
    batcher = MicroBatcher(
        engine.process_batch, BatchConfig(max_batch=64, max_wait=0.005), engine.metrics
    )
    rng = random.Random(21)
    stream = gen_stream(rng, 120, devices=("d",))

    async def run():
        await batcher.start()
        try:
            return await asyncio.gather(*[batcher.submit(r) for r in stream])
        finally:
            await batcher.close()

    got = asyncio.run(run())
    serial = make_engine(devices=("d",))
    reference = serial.process_serial(stream)
    assert [decision_key(d) for d in got] == [decision_key(d) for d in reference]
    snap = engine.metrics.snapshot()
    assert snap["batches_total"] < len(stream)  # actually coalesced
    assert max(int(s) for s in snap["batch_size_histogram"]) <= 64
    assert snap["latency_seconds"]["p50"] >= 0.0
    assert snap["requests_in_flight"] == 0


def test_microbatcher_respects_max_batch():
    engine = make_engine(devices=("d",))
    batcher = MicroBatcher(
        engine.process_batch, BatchConfig(max_batch=8, max_wait=60.0), engine.metrics
    )
    stream = gen_stream(random.Random(4), 32, devices=("d",))

    async def run():
        await batcher.start()
        try:
            # max_wait is a minute: only the size bound can flush these.
            return await asyncio.wait_for(
                asyncio.gather(*[batcher.submit(r) for r in stream]), timeout=10
            )
        finally:
            await batcher.close()

    got = asyncio.run(run())
    assert len(got) == len(stream)
    sizes = engine.metrics.batch_sizes
    assert all(size <= 8 for size in sizes)
    assert sizes[8] >= 4  # the gathered burst flushes as full batches


def test_microbatcher_rejects_use_when_not_running():
    engine = make_engine(devices=("d",))
    batcher = MicroBatcher(engine.process_batch)

    async def run():
        with pytest.raises(RuntimeError):
            await batcher.submit(Request(op="remove", device="d", name="x"))

    asyncio.run(run())


def test_batch_config_validation():
    with pytest.raises(ValueError):
        BatchConfig(max_batch=0)
    with pytest.raises(ValueError):
        BatchConfig(max_wait=-1.0)


# -- service front door --------------------------------------------------------


def test_service_sharded_parity_with_serial_mode():
    rng = random.Random(31)
    stream = gen_stream(rng, 200)

    def drive(service):
        async def run():
            await service.start()
            try:
                for name in DEVICES:
                    service.create_device(name, 64)
                return await asyncio.gather(*[service.submit(r) for r in stream])
            finally:
                await service.close()

        return asyncio.run(run())

    batched = AdmissionService(config=BatchConfig(max_batch=64, max_wait=0.002), shards=3)
    serial = AdmissionService(batching=False, shards=1)
    got = drive(batched)
    reference = drive(serial)
    # Per-device subsequences must agree decision-for-decision (cross-device
    # interleaving carries no ordering promise, but gather preserves it here).
    for device in DEVICES:
        left = [decision_key(d) for d in got if d.device == device]
        right = [decision_key(d) for d in reference if d.device == device]
        assert left == right, device
    snap = batched.snapshot()
    assert snap["shards"] == 3 and snap["devices"] == 3 and snap["batching"]
    assert snap["decisions_total"] == len(stream)


def test_rendezvous_sharding_is_consistent_and_minimal():
    names = [f"dev{i}" for i in range(200)]
    assert [rendezvous_shard(n, 4) for n in names] == [
        rendezvous_shard(n, 4) for n in names
    ]
    assert {rendezvous_shard(n, 4) for n in names} == {0, 1, 2, 3}
    # growing 4 -> 5 shards remaps roughly 1/5 of the devices
    moved = sum(
        1 for n in names if rendezvous_shard(n, 4) != rendezvous_shard(n, 5)
    )
    assert 0 < moved < len(names) // 2
    with pytest.raises(ValueError):
        rendezvous_shard("d", 0)
