"""Unit + property tests for the contiguous free-interval manager."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga.device import Fpga, StaticRegion
from repro.fpga.freelist import FreeList, FreeListError
from repro.fpga.placement import PlacementPolicy


class TestBasicAllocation:
    def test_allocate_and_release(self):
        fl = FreeList(Fpga(width=10))
        a = fl.allocate("j1", 4)
        assert a is not None and a.start == 0 and a.width == 4
        assert fl.total_free == 6
        fl.release("j1")
        assert fl.total_free == 10
        assert fl.free_intervals == [(0, 10)]

    def test_allocation_fails_when_no_hole(self):
        fl = FreeList(Fpga(width=10))
        assert fl.allocate("a", 6) is not None
        assert fl.allocate("b", 5) is None  # only 4 left
        assert fl.allocate("b", 4) is not None

    def test_double_allocate_same_key_raises(self):
        fl = FreeList(Fpga(width=10))
        fl.allocate("a", 2)
        with pytest.raises(FreeListError):
            fl.allocate("a", 2)

    def test_release_unknown_key_raises(self):
        fl = FreeList(Fpga(width=10))
        with pytest.raises(FreeListError):
            fl.release("ghost")

    def test_zero_width_rejected(self):
        fl = FreeList(Fpga(width=10))
        with pytest.raises(FreeListError):
            fl.allocate("a", 0)

    def test_release_all(self):
        fl = FreeList(Fpga(width=10))
        fl.allocate("a", 3)
        fl.allocate("b", 3)
        fl.release_all()
        assert fl.total_free == 10
        assert fl.allocation_of("a") is None


class TestCoalescing:
    def test_middle_release_merges_both_sides(self):
        fl = FreeList(Fpga(width=9))
        fl.allocate("a", 3)  # [0,3)
        fl.allocate("b", 3)  # [3,6)
        fl.allocate("c", 3)  # [6,9)
        fl.release("a")
        fl.release("c")
        assert fl.free_intervals == [(0, 3), (6, 9)]
        fl.release("b")
        assert fl.free_intervals == [(0, 9)]

    def test_fragmentation_blocks_wide_job(self):
        fl = FreeList(Fpga(width=10))
        fl.allocate("a", 3)  # [0,3)
        fl.allocate("b", 4)  # [3,7)
        fl.allocate("c", 3)  # [7,10)
        fl.release("a")
        fl.release("c")
        # 6 columns free but max hole is 3: a 4-wide job is blocked
        assert fl.total_free == 6
        assert fl.largest_hole == 3
        assert not fl.can_place(4)
        assert fl.allocate("d", 4) is None


class TestExplicitPlacement:
    def test_allocate_at(self):
        fl = FreeList(Fpga(width=10))
        fl.allocate_at("a", 4, 3)
        assert fl.free_intervals == [(0, 4), (7, 10)]

    def test_allocate_at_occupied_raises(self):
        fl = FreeList(Fpga(width=10))
        fl.allocate_at("a", 4, 3)
        with pytest.raises(FreeListError):
            fl.allocate_at("b", 5, 2)

    def test_allocate_at_exact_hole(self):
        fl = FreeList(Fpga(width=10))
        fl.allocate_at("a", 0, 10)
        assert fl.total_free == 0


class TestStaticRegionInteraction:
    def test_freelist_seeded_by_device_spans(self):
        fpga = Fpga(width=10, static_regions=(StaticRegion(4, 2),))
        fl = FreeList(fpga)
        assert fl.free_intervals == [(0, 4), (6, 10)]
        assert fl.total_free == 8

    def test_static_region_never_allocated(self):
        fpga = Fpga(width=10, static_regions=(StaticRegion(4, 2),))
        fl = FreeList(fpga)
        # widest possible hole is 4; a 5-wide job never fits
        assert fl.allocate("wide", 5) is None
        a = fl.allocate("ok", 4)
        assert a.start in (0, 6)


@st.composite
def alloc_scripts(draw):
    """Random interleavings of allocate/release operations."""
    ops = []
    live = []
    next_id = 0
    for _ in range(draw(st.integers(1, 30))):
        if live and draw(st.booleans()):
            victim = draw(st.sampled_from(live))
            live.remove(victim)
            ops.append(("release", victim))
        else:
            ops.append(("alloc", next_id, draw(st.integers(1, 8))))
            live.append(next_id)
            next_id += 1
    return ops


class TestInvariantsUnderRandomScripts:
    @given(script=alloc_scripts(), policy=st.sampled_from(list(PlacementPolicy)))
    @settings(max_examples=120, deadline=None)
    def test_invariants_hold(self, script, policy):
        fl = FreeList(Fpga(width=20))
        placed = set()
        for op in script:
            if op[0] == "alloc":
                _, key, width = op
                if fl.allocate(key, width, policy) is not None:
                    placed.add(key)
            else:
                _, key = op
                if key in placed:
                    fl.release(key)
                    placed.remove(key)
            fl.check_invariants()

    @given(script=alloc_scripts())
    @settings(max_examples=60, deadline=None)
    def test_full_release_restores_device(self, script):
        fl = FreeList(Fpga(width=20))
        placed = set()
        for op in script:
            if op[0] == "alloc":
                _, key, width = op
                if fl.allocate(key, width) is not None:
                    placed.add(key)
            elif op[1] in placed:
                fl.release(op[1])
                placed.remove(op[1])
        for key in placed:
            fl.release(key)
        assert fl.free_intervals == [(0, 20)]
