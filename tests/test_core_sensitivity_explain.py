"""Tests for sensitivity analysis and the §6-style explanation module."""

from fractions import Fraction as F

import pytest

from repro.core.dp import dp_test
from repro.core.explain import explain, explain_dp, explain_gn1, explain_gn2
from repro.core.gn1 import gn1_test
from repro.core.gn2 import gn2_test
from repro.core.sensitivity import acceptance_margin, critical_scaling, minimum_width
from repro.fpga.device import Fpga
from repro.model.task import Task, TaskSet


def light_taskset():
    return TaskSet(
        [
            Task(wcet=F(1, 2), period=10, area=2, name="a"),
            Task(wcet=F(1, 2), period=10, area=3, name="b"),
        ]
    )


class TestCriticalScaling:
    def test_light_taskset_has_headroom(self):
        s = critical_scaling(light_taskset(), Fpga(width=10), dp_test)
        assert s is not None and s > 1

    def test_scaled_to_factor_still_accepted(self):
        ts = light_taskset()
        fpga = Fpga(width=10)
        s = critical_scaling(ts, fpga, dp_test, precision=F(1, 10000))
        assert dp_test(ts.scaled(time_factor=s), fpga).accepted

    def test_slightly_beyond_factor_rejected(self):
        ts = light_taskset()
        fpga = Fpga(width=10)
        s = critical_scaling(ts, fpga, dp_test, precision=F(1, 10000))
        assert s < 16  # not capped at the search limit
        beyond = ts.scaled(time_factor=s + F(1, 100))
        assert not dp_test(beyond, fpga).accepted

    def test_rejected_taskset_reports_deficit(self):
        ts = TaskSet(
            [
                Task(wcet=9, period=10, area=9, name="a"),
                Task(wcet=9, period=10, area=9, name="b"),
            ]
        )
        s = critical_scaling(ts, Fpga(width=10), dp_test)
        assert s is not None and s < 1

    def test_structurally_impossible_returns_none(self):
        ts = TaskSet([Task(wcet=1, period=10, area=20, name="wide")])
        assert critical_scaling(ts, Fpga(width=10), dp_test) is None

    def test_margin_sign(self):
        assert acceptance_margin(light_taskset(), Fpga(width=10), dp_test) > 0

    def test_exact_arithmetic_result(self):
        s = critical_scaling(light_taskset(), Fpga(width=10), dp_test)
        assert isinstance(s, F)

    def test_validation(self):
        with pytest.raises(ValueError):
            critical_scaling(light_taskset(), Fpga(width=10), dp_test, precision=0)
        with pytest.raises(ValueError):
            critical_scaling(light_taskset(), Fpga(width=10), dp_test, upper_limit=0)

    @pytest.mark.parametrize("test", [dp_test, gn1_test, gn2_test],
                             ids=lambda t: t.name)
    def test_consistent_across_tests(self, test):
        """Every bound accepts its own critical scaling of a light set."""
        ts = light_taskset()
        fpga = Fpga(width=10)
        s = critical_scaling(ts, fpga, test)
        assert s is not None
        assert test(ts.scaled(time_factor=s), fpga).accepted


class TestMinimumWidth:
    def test_binary_search_matches_linear_scan(self):
        ts = light_taskset()
        w = minimum_width(ts, 50, dp_test)
        linear = next(
            width for width in range(1, 51) if dp_test(ts, Fpga(width=width))
        )
        assert w == linear

    def test_none_when_unreachable(self):
        ts = TaskSet([Task(wcet=10, period=10, area=5, name="x"),
                      Task(wcet=10, period=10, area=5, name="y")])
        # zero-laxity pair: GN1's strict inequality can never hold
        assert minimum_width(ts, 300, gn1_test) is None

    def test_at_least_max_area(self):
        ts = light_taskset()
        assert minimum_width(ts, 50, dp_test) >= ts.max_area

    def test_validation(self):
        with pytest.raises(ValueError):
            minimum_width(light_taskset(), 0, dp_test)


class TestExplain:
    def test_dp_explanation_contains_paper_numbers(self, table3, fpga10):
        text = explain_dp(table3, fpga10)
        assert "US(Γ) = 247/50" in text  # 4.94 exact
        assert "FAIL" in text and "reject" in text

    def test_gn1_explanation_shows_betas(self, table3, fpga10):
        text = explain_gn1(table3, fpga10)
        assert "β[tau1]=41/50" in text  # 0.82 exact
        assert "reject" in text

    def test_gn2_explanation_shows_lambda_and_conditions(self, table3, fpga10):
        text = explain_gn2(table3, fpga10)
        assert "λ=21/50" in text  # 0.42
        assert "certified by condition 2" in text
        assert "ACCEPT" in text

    def test_combined_explanation(self, table3, fpga10):
        text = explain(table3, fpga10)
        assert text.count("verdict:") == 3
        assert "Theorem 1" in text and "Theorem 2" in text and "Theorem 3" in text

    def test_gn2_failure_explanation(self, table2, fpga10):
        text = explain_gn2(table2, fpga10)
        assert "no λ candidate works: FAIL" in text

    def test_accepting_dp_explanation(self, table1, fpga10):
        text = explain_dp(table1, fpga10)
        assert "ACCEPT" in text and "FAIL" not in text
