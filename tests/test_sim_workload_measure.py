"""Tests for the Lemma 4 workload measurement (soundness + mechanics)."""

from fractions import Fraction as F

import pytest

from repro.fpga.device import Fpga
from repro.gen.profiles import GenerationProfile
from repro.gen.random_tasksets import generate_taskset
from repro.model.task import Task, TaskSet
from repro.sched.edf_fkf import EdfFkf
from repro.sched.edf_nf import EdfNf
from repro.sim.simulator import simulate
from repro.sim.trace import Trace, TraceSegment
from repro.sim.workload_measure import (
    executed_in_interval,
    measure_workload_bounds,
    tightness_summary,
)
from repro.util.rngutil import rng_from_seed


class TestExecutedInInterval:
    def _trace(self):
        t = Trace(capacity=10)
        t.append(TraceSegment(0, 2, (("a#0", 4),), ()))
        t.append(TraceSegment(2, 5, (("a#0", 4), ("b#0", 5)), ()))
        t.append(TraceSegment(5, 8, (("b#0", 5),), ()))
        return t

    def test_full_span(self):
        t = self._trace()
        assert executed_in_interval(t, "a", 0, 8) == 5
        assert executed_in_interval(t, "b", 0, 8) == 6

    def test_clipped_window(self):
        t = self._trace()
        assert executed_in_interval(t, "a", 1, 3) == 2
        assert executed_in_interval(t, "b", 4, 6) == 2

    def test_outside_window(self):
        assert executed_in_interval(self._trace(), "a", 6, 8) == 0

    def test_job_index_not_confused_with_name_prefix(self):
        # "a" must not match "ab#0"
        t = Trace(capacity=10)
        t.append(TraceSegment(0, 3, (("ab#0", 4),), ()))
        assert executed_in_interval(t, "a", 0, 3) == 0
        assert executed_in_interval(t, "ab", 0, 3) == 3


class TestMeasurementSoundness:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("scheduler", [EdfNf(), EdfFkf()], ids=lambda s: s.name)
    def test_lemma4_never_violated_before_first_miss(self, seed, scheduler):
        """No observed window workload exceeds the Lemma 4 bound along the
        miss-free prefix.  (Past the first miss the bound legitimately
        fails: tardy jobs execute outside their deadline windows — an
        earlier version of this test measured through misses and tripped
        exactly there.)"""
        profile = GenerationProfile(
            n_tasks=6, area_min=1, area_max=50, period_min=5, period_max=15,
            util_min=0.1, util_max=0.8, name="lemma4",
        )
        ts = generate_taskset(profile, rng_from_seed(5000 + seed))
        res = simulate(
            ts, Fpga(width=100), scheduler, 60.0,
            record_trace=True, stop_at_first_miss=True,
        )
        measured_span = res.metrics.simulated_time
        ms = measure_workload_bounds(ts, res.trace, measured_span)
        violations = [m for m in ms if not m.sound]
        assert violations == [], violations[:3]

    def test_summary_statistics(self):
        ts = TaskSet(
            [
                Task(wcet=2, period=8, area=5, name="a"),
                Task(wcet=3, period=10, area=5, name="b"),
            ]
        )
        horizon = 40
        res = simulate(
            ts, Fpga(width=10), EdfNf(), horizon, record_trace=True, eps=0
        )
        ms = measure_workload_bounds(ts, res.trace, horizon)
        stats = tightness_summary(ms)
        assert stats["violations"] == 0
        assert 0 < stats["mean_ratio"] <= 1
        assert stats["max_ratio"] <= 1
        assert stats["count"] == len(ms) > 0

    def test_empty_summary(self):
        stats = tightness_summary([])
        assert stats["count"] == 0 and stats["mean_ratio"] == 0.0

    def test_bound_is_attainable(self):
        """Deadline-aligned interference can reach the bound exactly:
        two identical full-width tasks serialize, and within a window
        [0, D_k) the other task executes exactly its carry capacity."""
        ts = TaskSet(
            [
                Task(wcet=2, period=10, deadline=4, area=10, name="a"),
                Task(wcet=2, period=10, deadline=4, area=10, name="b"),
            ]
        )
        horizon = 10
        res = simulate(
            ts, Fpga(width=10), EdfNf(), horizon, record_trace=True, eps=0
        )
        ms = measure_workload_bounds(ts, res.trace, horizon)
        assert any(m.ratio == 1.0 for m in ms)
