"""The pluggable array namespace: resolution rules and shim parity.

Resolution tests pin the documented precedence (explicit arg > process
override > ``REPRO_ARRAY_BACKEND`` > numpy) and the failure modes
(unknown names are :class:`ValueError`, known-but-missing backends are
:class:`~repro.vector.xp.BackendUnavailable`, never an import-time
crash).

Shim-parity tests run every numpy-API divergence shim the kernels rely
on against its numpy reference, once per *installed* backend (via the
``array_backend`` conftest fixture) — so a CI leg that installs torch
proves the torch adapters bit-compatible without any kernel in the
loop.
"""

import numpy as np
import pytest

from repro.vector import xp as xp_mod
from repro.vector.xp import BackendUnavailable


class TestResolution:
    def test_numpy_is_default(self, monkeypatch):
        monkeypatch.delenv(xp_mod.BACKEND_ENV, raising=False)
        assert xp_mod.get_backend().name == "numpy"
        assert xp_mod.get_backend(None).name == "numpy"

    def test_numpy_always_available(self):
        assert "numpy" in xp_mod.available_backends()
        assert xp_mod.backend_available("numpy")

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(xp_mod.BACKEND_ENV, "numpy")
        assert xp_mod.get_backend().name == "numpy"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(xp_mod.BACKEND_ENV, "definitely-not-a-backend")
        # The env var is never consulted when a name is given.
        assert xp_mod.get_backend("numpy").name == "numpy"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(xp_mod.BACKEND_ENV, "definitely-not-a-backend")
        previous = xp_mod.set_backend("numpy")
        try:
            assert xp_mod.get_backend().name == "numpy"
        finally:
            xp_mod.set_backend(previous)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="known"):
            xp_mod.get_backend("tensorflow")
        with pytest.raises(ValueError):
            xp_mod.set_backend("tensorflow")

    def test_unavailable_backend_raises_backend_unavailable(self):
        missing = [
            n for n in ("torch", "cupy") if not xp_mod.backend_available(n)
        ]
        if not missing:
            pytest.skip("all optional backends installed here")
        with pytest.raises(BackendUnavailable, match=missing[0]):
            xp_mod.get_backend(missing[0])

    def test_backend_unavailable_is_import_error(self):
        # Callers may catch plain ImportError around optional features.
        assert issubclass(BackendUnavailable, ImportError)

    def test_backend_skip_reason(self):
        assert xp_mod.backend_skip_reason("numpy") is None
        for name in ("torch", "cupy", "torch:cuda"):
            reason = xp_mod.backend_skip_reason(name)
            assert reason is None or name.split(":")[0] in reason
        with pytest.raises(ValueError):
            xp_mod.backend_skip_reason("tensorflow")

    def test_context_manager_restores(self):
        before = xp_mod.get_backend().name
        with xp_mod.backend("numpy") as ns:
            assert ns.name == "numpy"
        assert xp_mod.get_backend().name == before

    def test_instances_are_cached(self):
        assert xp_mod.get_backend("numpy") is xp_mod.get_backend("numpy")

    def test_module_getattr_passthrough(self):
        # `from repro.vector import xp; xp.<name>` resolves on the
        # *active* backend — pinned to numpy here.
        with xp_mod.backend("numpy"):
            assert xp_mod.float64 is np.float64
            arr = xp_mod.zeros((2, 3))
            assert isinstance(arr, np.ndarray)

    def test_namespace_of(self):
        assert xp_mod.namespace_of(np.ones(3)).name == "numpy"
        assert xp_mod.namespace_of([1, 2]).name == "numpy"  # host fallback

    def test_asnumpy_identity_on_host(self):
        a = np.arange(4)
        assert xp_mod.asnumpy(a) is a or (xp_mod.asnumpy(a) == a).all()

    def test_numpy_backend_not_device(self):
        assert xp_mod.get_backend("numpy").is_device is False


class TestShimParity:
    """Every divergence shim vs its numpy reference, per installed
    backend.  ``array_backend`` supplies numpy always and torch/cupy
    when installed (skip-with-reason otherwise)."""

    @pytest.fixture
    def ns(self, array_backend):
        return xp_mod.get_backend(array_backend)

    def _rt(self, ns, a):
        """Host -> backend -> host round trip."""
        return ns.asnumpy(ns.asarray(a))

    def test_asarray_roundtrip_preserves_dtype_and_values(self, ns):
        rng = np.random.default_rng(0)
        for dtype in (np.float64, np.float32, np.int64, np.uint8):
            a = (rng.uniform(0, 100, size=(4, 5)) + 0.5).astype(dtype)
            back = self._rt(ns, a)
            assert back.dtype == a.dtype
            assert (back == a).all()

    def test_astype_pins_float64_exactly(self, ns):
        a = np.array([0.1, 1e7, 3.5], dtype=np.float32)
        out = ns.asnumpy(ns.astype(ns.asarray(a), ns.float64))
        assert out.dtype == np.float64
        assert (out == a.astype(np.float64)).all()

    def test_where_with_python_scalars(self, ns):
        cond = np.array([True, False, True])
        x = np.array([1.5, 2.5, 3.5])
        got = ns.asnumpy(ns.where(ns.asarray(cond), ns.asarray(x), np.inf))
        assert (got == np.where(cond, x, np.inf)).all()
        assert got.dtype == np.float64
        ints = np.array([4, 5, 6], dtype=np.int64)
        got = ns.asnumpy(ns.where(ns.asarray(cond), ns.asarray(ints), -1))
        assert (got == np.where(cond, ints, -1)).all()
        assert got.dtype == np.int64

    def test_minimum_maximum_with_scalars(self, ns):
        a = np.array([-3, 0, 7], dtype=np.int64)
        assert (
            ns.asnumpy(ns.maximum(ns.asarray(a), 0)) == np.maximum(a, 0)
        ).all()
        assert (
            ns.asnumpy(ns.minimum(ns.asarray(a), 5)) == np.minimum(a, 5)
        ).all()
        f = np.array([1.0, np.inf, -2.0])
        assert (
            ns.asnumpy(ns.minimum(ns.asarray(f), ns.asarray(f[::-1].copy())))
            == np.minimum(f, f[::-1])
        ).all()

    def test_reductions_match_numpy(self, ns):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(3, 6))
        for op in ("sum", "max", "min"):
            got = ns.asnumpy(getattr(ns, op)(ns.asarray(a), axis=1))
            want = getattr(np, op)(a, axis=1)
            assert np.array_equal(got, want), op
        m = a > 0
        assert (
            ns.asnumpy(ns.any(ns.asarray(m), axis=1)) == np.any(m, axis=1)
        ).all()
        assert (
            ns.asnumpy(ns.all(ns.asarray(m), axis=1)) == np.all(m, axis=1)
        ).all()
        assert bool(ns.any(ns.asarray(m))) == bool(m.any())

    def test_bool_sum_promotes_to_int(self, ns):
        m = np.array([[True, False, True], [False, False, True]])
        got = ns.asnumpy(ns.sum(ns.asarray(m), axis=1))
        assert (got == np.array([2, 1])).all()

    def test_argmax_argmin_incl_bool(self, ns):
        fits = np.array([[False, True, True], [False, False, False]])
        got = ns.asnumpy(ns.argmax(ns.asarray(fits), axis=1))
        assert (got == np.argmax(fits, axis=1)).all()
        key = np.array([[5, 2, 9], [1, 1, 0]], dtype=np.int32)
        got = ns.asnumpy(ns.argmin(ns.asarray(key), axis=1))
        assert (got == np.argmin(key, axis=1)).all()

    def test_cumsum_matches_numpy(self, ns):
        rng = np.random.default_rng(2)
        a = rng.uniform(0, 10, size=(4, 9))
        got = ns.asnumpy(ns.cumsum(ns.asarray(a), axis=1))
        assert (got == np.cumsum(a, axis=1)).all()

    def test_argsort_is_stable(self, ns):
        a = np.array([[2.0, 1.0, 2.0, 1.0, 1.0]])
        got = ns.asnumpy(ns.argsort(ns.asarray(a), axis=-1, kind="stable"))
        assert (got == np.argsort(a, axis=-1, kind="stable")).all()

    def test_lexsort_matches_numpy(self, ns):
        rng = np.random.default_rng(3)
        # small value alphabet -> dense ties on both keys
        primary = rng.integers(0, 4, size=(5, 12)).astype(np.float64)
        secondary = rng.integers(0, 3, size=(5, 12)).astype(np.float64)
        got = ns.asnumpy(
            ns.lexsort((ns.asarray(secondary), ns.asarray(primary)), axis=-1)
        )
        want = np.lexsort((secondary, primary), axis=-1)
        assert (got == want).all()

    def test_take_along_axis_matches_numpy(self, ns):
        rng = np.random.default_rng(4)
        a = rng.normal(size=(3, 4, 6))
        idx = rng.integers(0, 6, size=(3, 4, 1))
        got = ns.asnumpy(
            ns.take_along_axis(ns.asarray(a), ns.asarray(idx), axis=2)
        )
        assert (got == np.take_along_axis(a, idx, axis=2)).all()

    def test_nonzero_returns_index_tuple(self, ns):
        m = np.array([True, False, True, True])
        got = ns.nonzero(ns.asarray(m))
        assert (ns.asnumpy(got[0]) == np.nonzero(m)[0]).all()

    def test_maximum_accumulate(self, ns):
        rng = np.random.default_rng(5)
        for dtype in (np.uint8, np.int16, np.float64):
            a = rng.integers(0, 100, size=(4, 20)).astype(dtype)
            got = ns.asnumpy(ns.maximum_accumulate(ns.asarray(a), axis=1))
            assert (got == np.maximum.accumulate(a, axis=1)).all()
            assert got.dtype == dtype

    def test_broadcast_tile_concatenate(self, ns):
        a = np.arange(6.0).reshape(2, 3)
        assert ns.asnumpy(ns.broadcast_to(ns.asarray(a[0]), (2, 3))).shape == (2, 3)
        assert (
            ns.asnumpy(ns.tile(ns.asarray(a[0]), (2, 1)))
            == np.tile(a[0], (2, 1))
        ).all()
        got = ns.asnumpy(ns.concatenate([ns.asarray(a), ns.asarray(a)], axis=1))
        assert (got == np.concatenate([a, a], axis=1)).all()

    def test_isfinite_isnan_floor(self, ns):
        a = np.array([1.5, np.inf, np.nan, -2.7])
        t = ns.asarray(a)
        assert (ns.asnumpy(ns.isfinite(t)) == np.isfinite(a)).all()
        assert (ns.asnumpy(ns.isnan(t)) == np.isnan(a)).all()
        finite = np.array([1.5, -2.7, 3.0])
        assert (
            ns.asnumpy(ns.floor(ns.asarray(finite))) == np.floor(finite)
        ).all()

    # -- bitmap shims -------------------------------------------------------

    def test_low_bits_table(self, ns):
        table = ns.asnumpy(ns.low_bits())
        want = np.array([(1 << j) - 1 for j in range(65)], dtype=np.uint64)
        # Compare through the uint64 view: torch stores the table as
        # reinterpreted int64.
        assert (table.view(np.uint64) == want).all()

    def test_bitmap_roundtrip_and_bitwise_ops(self, ns):
        rng = np.random.default_rng(6)
        words = rng.integers(0, 2**64, size=(3, 2), dtype=np.uint64)
        dev = ns.bitmap_from_host(words)
        back = ns.asnumpy(dev).view(np.uint64)
        assert (back == words).all()
        mask = ns.bitmap_from_host(
            np.full((3, 2), 0x0F0F0F0F0F0F0F0F, dtype=np.uint64)
        )
        anded = ns.asnumpy(dev & mask).view(np.uint64)
        assert (anded == (words & 0x0F0F0F0F0F0F0F0F)).all()
        ored = ns.asnumpy(dev | mask).view(np.uint64)
        assert (ored == (words | 0x0F0F0F0F0F0F0F0F)).all()
        notted = ns.asnumpy(~dev).view(np.uint64)
        assert (notted == ~words).all()

    def test_unpack_bitmap(self, ns):
        rng = np.random.default_rng(7)
        words = rng.integers(0, 2**64, size=(4, 2), dtype=np.uint64)
        for width in (1, 63, 64, 65, 100, 128):
            got = ns.asnumpy(
                ns.unpack_bitmap(ns.bitmap_from_host(words), width)
            )
            want = np.unpackbits(
                words.view(np.uint8), axis=1, bitorder="little"
            )[:, :width]
            assert got.shape == (4, width)
            assert (got == want).all(), width

    def test_col_index_dtype_and_values(self, ns):
        narrow = ns.asnumpy(ns.col_index(100))
        assert narrow.dtype == np.uint8
        assert (narrow == np.arange(1, 101)).all()
        wide = ns.asnumpy(ns.col_index(300))
        assert wide.dtype == np.int16
        with pytest.raises(ValueError):
            ns.col_index(10**6)

    def test_range_masks_and_span_free(self, ns):
        """The placement bit-kernels, straight through the shim layer."""
        from repro.vector.placement_vec import range_masks, span_free

        starts = np.array([0, 5, 60, 64, 0], dtype=np.int64)
        ends = np.array([3, 70, 64, 128, 128], dtype=np.int64)
        got = ns.asnumpy(
            range_masks(
                ns.asarray(starts), ns.asarray(ends), 2, ns=ns
            )
        ).view(np.uint64)
        want = range_masks(starts, ends, 2, ns=xp_mod.get_backend("numpy"))
        assert (got == want).all()
        # all-free 100-column device: spans inside [0, 100) are free
        words = np.zeros((5, 2), dtype=np.uint64)
        words[:, 0] = ~np.uint64(0)
        words[:, 1] = np.uint64((1 << 36) - 1)
        dev = ns.bitmap_from_host(words)
        s = np.array([0, 90, 95, -1, 20], dtype=np.int64)
        w = np.array([100, 10, 10, 5, 0], dtype=np.int64)
        got = ns.asnumpy(
            span_free(dev, ns.asarray(s), ns.asarray(w), 100, 2, ns=ns)
        )
        assert (got == np.array([True, True, False, False, False])).all()

    def test_sequential_sum_stays_in_input_namespace(self, ns):
        from repro.vector.batch import sequential_sum

        rng = np.random.default_rng(8)
        a = rng.normal(size=(3, 11))
        want = sequential_sum(a, axis=1)
        got = ns.asnumpy(sequential_sum(ns.asarray(a), axis=1))
        assert (got == want).all()
