"""Tests for RNG plumbing and the parallel map helper."""

import pytest

from repro.util.parallel import default_chunksize, default_workers, parallel_map
from repro.util.rngutil import rng_from_seed, spawn_rngs


def _square(x):
    return x * x


class TestRng:
    def test_seeded_generators_reproduce(self):
        a = rng_from_seed(42).random(5)
        b = rng_from_seed(42).random(5)
        assert (a == b).all()

    def test_spawned_streams_differ(self):
        r1, r2 = spawn_rngs(7, 2)
        assert r1.random() != r2.random()

    def test_spawn_deterministic(self):
        a = [g.random() for g in spawn_rngs(3, 4)]
        b = [g.random() for g in spawn_rngs(3, 4)]
        assert a == b

    def test_spawn_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_spawn_zero_is_empty(self):
        assert spawn_rngs(1, 0) == []


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_preserves_order(self):
        assert parallel_map(_square, range(10), workers=1) == [x * x for x in range(10)]

    def test_process_pool_path(self):
        assert parallel_map(_square, list(range(8)), workers=2) == [
            x * x for x in range(8)
        ]

    def test_single_item_never_spawns(self):
        assert parallel_map(_square, [5], workers=8) == [25]

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_default_chunksize_amortizes_pickling(self):
        """Regression: chunksize used to default to 1, paying one pickle
        round-trip per item for thousands of tiny sim jobs."""
        assert default_chunksize(8000, 4) == 500
        assert default_chunksize(100, 4) == 6
        # degenerate inputs stay safe
        assert default_chunksize(3, 8) == 1
        assert default_chunksize(0, 4) == 1
        assert default_chunksize(100, 0) == 1

    def test_derived_chunksize_preserves_order(self):
        items = list(range(64))
        assert parallel_map(_square, items, workers=2) == [x * x for x in items]

    def test_explicit_chunksize_preserves_order(self):
        items = list(range(17))
        got = parallel_map(_square, items, workers=2, chunksize=5)
        assert got == [x * x for x in items]

    def test_item_cost_sizes_chunks_by_work(self):
        """Regression: sub-batch items (each worth hundreds of rows) were
        bundled by the count-based rule, starving all but one worker."""
        # expensive items ship alone, even when the count rule says bundle
        assert default_chunksize(8, 4, item_cost=250) == 1
        assert default_chunksize(8000, 4, item_cost=64) == 1
        # cheap items still bundle until a chunk carries enough work
        assert default_chunksize(8000, 4, item_cost=1) == 64
        assert default_chunksize(64, 4, item_cost=8) == 8
        # ...but never so much that a worker idles
        assert default_chunksize(6, 2, item_cost=8) == 3
        with pytest.raises(ValueError):
            default_chunksize(8, 4, item_cost=0)

    def test_item_cost_parallel_map_preserves_order(self):
        items = list(range(16))
        got = parallel_map(_square, items, workers=2, item_cost=100)
        assert got == [x * x for x in items]
