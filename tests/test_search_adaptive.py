"""Tests for the adaptive release-pattern search (`repro.search`).

Four pillars:

* **Soundness** (hypothesis): every adaptively-sampled offset stays in
  ``[0, T_i)`` and every sporadic gap stays ``>= T_i`` whatever the
  proposals were refit to — so any miss a sampled pattern exhibits is a
  legal counterexample.
* **Invariants**: the adaptive searched curve is pointwise <= the
  synchronous/periodic curve (the same intersection invariant the
  uniform search asserts).
* **Parity**: the scalar twins replay the batched drivers bit-for-bit
  on shared per-row streams, and the uniform scalar/vector searches
  report identical best-effort ``min_slack`` on a shared-seed fixture
  (runs per installed array backend — the torch-CPU CI leg covers the
  slack channel off numpy).
* **Budget efficiency** (the PR's acceptance fixture): at equal pattern
  budget on a seeded sweep, the adaptive search certifies at least as
  many unschedulable tasksets as the uniform search in every bucket and
  strictly more in at least one.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.ablations import offset_ablation, sporadic_ablation
from repro.experiments.acceptance import feasible_batch_at
from repro.fpga.device import Fpga
from repro.gen.profiles import paper_unconstrained
from repro.model.task import TaskSet
from repro.sched.edf_nf import EdfNf
from repro.search import (
    SearchConfig,
    UNIT_MAX,
    UnitProposal,
    adaptive_pattern_search,
    offsets_from_unit,
    release_times_from_unit,
    round_sizes,
)
from repro.search.drivers import (
    adaptive_offset_search_batch,
    adaptive_sporadic_search_batch,
    uniform_offset_search_batch,
    uniform_sporadic_search_batch,
)
from repro.sim.offsets import adaptive_offset_search, simulate_with_offsets
from repro.sim.simulator import default_horizon, simulate
from repro.sim.sporadic import adaptive_sporadic_search, simulate_sporadic
from repro.util.rngutil import rng_from_seed, spawn_rngs
from repro.vector.batch import TaskSetBatch
from repro.vector.sim_vec import default_horizon_batch, simulate_batch

FPGA = Fpga(width=100)


def _empty_taskset() -> TaskSet:
    """The model forbids constructing empty tasksets, but duck-typed and
    legacy callers can still hand one to the searches — build one through
    the backdoor to pin the guard."""
    ts = TaskSet.__new__(TaskSet)
    ts._tasks = ()
    return ts


class TestSearchConfig:
    def test_defaults_valid(self):
        SearchConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rounds": 0},
            {"elite_frac": 0.0},
            {"elite_frac": 1.5},
            {"uniform_floor": -0.1},
            {"uniform_floor": 1.1},
            {"init_sigma": 0.0},
            {"sigma_floor": 0.0},
            {"sigma_floor": 0.5, "init_sigma": 0.3},
        ],
    )
    def test_rejects(self, kwargs):
        with pytest.raises(ValueError):
            SearchConfig(**kwargs)


class TestRoundSizes:
    @pytest.mark.parametrize("budget,rounds", [(0, 4), (3, 4), (10, 3), (10, 1)])
    def test_sums_to_budget(self, budget, rounds):
        sizes = round_sizes(budget, rounds)
        assert sum(sizes) == budget
        assert all(s >= 1 for s in sizes)
        assert sizes == sorted(sizes, reverse=True)  # remainder goes early

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            round_sizes(-1, 2)
        with pytest.raises(ValueError):
            round_sizes(4, 0)


class TestSampleLegality:
    """Soundness pillar: samples stay legal whatever the refits did."""

    @given(
        seed=st.integers(0, 2**32 - 1),
        n_tasks=st.integers(1, 6),
        patterns=st.integers(1, 8),
        slack_scale=st.floats(0.01, 100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_proposal_stays_in_unit_interval(
        self, seed, n_tasks, patterns, slack_scale
    ):
        """Refit on adversarial elites, sample again: still in [0, 1)."""
        rng = rng_from_seed(seed)
        proposal = UnitProposal(1, n_tasks, SearchConfig())
        u = proposal.sample_row(0, rng, patterns, explore=True)
        assert np.all(u >= 0) and np.all(u < 1)
        # Slacks that drag elites toward the boundary.
        slack = (rng.standard_normal(patterns) - 1.0) * slack_scale
        proposal.refit_row(0, u, slack)
        u2 = proposal.sample_row(0, rng, patterns, explore=False)
        assert np.all(u2 >= 0) and np.all(u2 < 1)

    @given(
        seed=st.integers(0, 2**32 - 1),
        periods=st.lists(st.floats(0.5, 50.0), min_size=1, max_size=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_offsets_stay_below_period(self, seed, periods):
        period = np.array(periods)
        rng = rng_from_seed(seed)
        u = np.clip(rng.uniform(0.0, 1.0, (5, period.size)), 0.0, UNIT_MAX)
        offs = offsets_from_unit(period, u)
        assert np.all(offs >= 0)
        assert np.all(offs < period)
        # The extreme coordinate still maps strictly below the period.
        top = offsets_from_unit(period, np.full((1, period.size), UNIT_MAX))
        assert np.all(top < period)

    @given(
        seed=st.integers(0, 2**32 - 1),
        periods=st.lists(st.floats(0.5, 20.0), min_size=1, max_size=5),
        jitter=st.floats(0.0, 2.0),
        horizon=st.floats(10.0, 200.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_sporadic_gaps_respect_min_interarrival(
        self, seed, periods, jitter, horizon
    ):
        period = np.array([periods])
        rng = rng_from_seed(seed)
        u = np.clip(
            rng.uniform(0.0, 1.0, period.shape), 0.0, UNIT_MAX
        )
        times = release_times_from_unit(
            period, u, np.array([horizon]), jitter
        )
        assert times[0, :, 0].min() == 0.0  # first release is t=0
        finite = np.isfinite(times)
        assert np.all(times[finite] < horizon)
        # Every gap >= T (the sporadic model's one obligation), asserted
        # in add-form — r_k + T computed like the release accumulation
        # itself — so the property is exact in float64 (a difference
        # r_{k+1} - r_k could round one ulp below T and falsely fail).
        lower = times[:, :, :-1] + np.broadcast_to(
            period[:, :, None], times[:, :, :-1].shape
        )
        ok = np.isfinite(times[:, :, 1:]) & np.isfinite(lower)
        assert np.all(times[:, :, 1:][ok] >= lower[ok])

    def test_release_times_validate_inputs(self):
        with pytest.raises(ValueError):
            release_times_from_unit(
                np.ones((1, 2)), np.full((1, 2), 1.0), np.array([10.0]), 0.5
            )
        with pytest.raises(ValueError):
            release_times_from_unit(
                np.ones((1, 2)), np.zeros((1, 2)), np.array([0.0]), 0.5
            )
        with pytest.raises(ValueError):
            release_times_from_unit(
                np.ones((1, 2)), np.zeros((1, 2)), np.array([10.0]), -0.5
            )


class TestAdaptiveLoop:
    def test_early_stop_saves_budget(self):
        """A row that certifies a miss in round 1 spends no more patterns."""
        calls = []

        def score(live, u):
            calls.append((live.copy(), u.shape))
            slack = np.ones((live.size, u.shape[1]))
            ok = np.ones_like(slack, dtype=bool)
            if 0 in live:  # row 0 fails immediately
                k = int(np.nonzero(live == 0)[0][0])
                slack[k, 0] = -1.0
                ok[k, 0] = False
            return slack, ok

        out = adaptive_pattern_search(
            2, 3, score, spawn_rngs(1, 2), budget=12,
            config=SearchConfig(rounds=3),
        )
        assert out.found.tolist() == [True, False]
        assert out.min_slack[0] == -1.0
        assert out.patterns_used[0] == 4  # one round of 12/3
        assert out.patterns_used[1] == 12
        assert out.rounds_run == 3
        # Rounds 2 and 3 only saw the surviving row.
        assert [live.tolist() for live, _ in calls] == [[0, 1], [1], [1]]

    def test_all_found_stops_loop(self):
        def score(live, u):
            shape = (live.size, u.shape[1])
            return np.full(shape, -1.0), np.zeros(shape, dtype=bool)

        out = adaptive_pattern_search(
            3, 2, score, spawn_rngs(2, 3), budget=20,
            config=SearchConfig(rounds=4),
        )
        assert out.found.all()
        assert out.rounds_run == 1
        assert (out.patterns_used == 5).all()

    def test_validates_shapes_and_rngs(self):
        with pytest.raises(ValueError, match="one rng per row"):
            adaptive_pattern_search(
                2, 2, lambda l, u: (None, None), [rng_from_seed(0)], 4
            )
        with pytest.raises(ValueError, match="score_fn returned"):
            adaptive_pattern_search(
                1, 2,
                lambda l, u: (np.zeros((1, 1)), np.zeros((1, 1), bool)),
                [rng_from_seed(0)], 4,
                config=SearchConfig(rounds=1),  # one round of 4 patterns
            )

    def test_trivial_inputs(self):
        out = adaptive_pattern_search(0, 3, None, [], 10)
        assert out.count == 0 and out.rounds_run == 0
        out = adaptive_pattern_search(
            2, 3, None, spawn_rngs(0, 2), 0
        )
        assert not out.found.any()
        assert np.isinf(out.min_slack).all()


@pytest.mark.usefixtures("array_backend")
class TestSlackChannelBackends:
    """The min-slack channel agrees with the scalar reference on every
    installed array backend (torch-CPU covered by the CI leg)."""

    def test_min_slack_matches_scalar(self):
        batch = feasible_batch_at(
            paper_unconstrained(5), 80.0, 20, rng_from_seed(21)
        )
        offs = rng_from_seed(22).uniform(0.0, batch.period)
        res = simulate_batch(
            batch, FPGA, "EDF-NF", offsets=offs, horizon_factor=5
        )
        assert np.array_equal(res.min_slack < 0, ~res.schedulable)
        for i in range(batch.count):
            ts = batch.taskset(i)
            od = {t.name: float(offs[i, j]) for j, t in enumerate(ts)}
            ref = simulate(
                ts, FPGA, EdfNf(),
                default_horizon(ts, factor=5, offsets=od), offsets=od,
            )
            assert bool(res.schedulable[i]) == ref.schedulable
            assert float(res.min_slack[i]) == float(ref.min_slack)

    def test_uniform_search_slack_parity(self):
        """Satellite cross-check: scalar and vector *searches* report the
        identical best-effort min-slack on a shared-seed fixture."""
        batch = feasible_batch_at(
            paper_unconstrained(4), 50.0, 6, rng_from_seed(23)
        )
        out = uniform_offset_search_batch(
            batch, FPGA, "EDF-NF", patterns=5,
            rng=rng_from_seed(24), horizon_factor=5,
        )
        scalar_rng = rng_from_seed(24)
        for i in range(batch.count):
            ts = batch.taskset(i)
            ref = simulate_with_offsets(
                ts, FPGA, EdfNf(), default_horizon(ts, factor=5),
                scalar_rng, samples=5, include_synchronous=False,
            )
            # At US=50 every pattern survives: no early exit on either
            # side, so the searches saw the same five patterns.
            assert ref.schedulable and not out.found[i]
            assert float(ref.min_slack) == float(out.min_slack[i])

    def test_uniform_sporadic_search_slack_parity(self):
        batch = feasible_batch_at(
            paper_unconstrained(4), 50.0, 6, rng_from_seed(25)
        )
        out = uniform_sporadic_search_batch(
            batch, FPGA, "EDF-NF", patterns=4,
            rng=rng_from_seed(26), horizon_factor=5,
        )
        scalar_rng = rng_from_seed(26)
        for i in range(batch.count):
            ts = batch.taskset(i)
            ref = simulate_sporadic(
                ts, FPGA, EdfNf(), default_horizon(ts, factor=5),
                scalar_rng, samples=4, include_periodic=False,
            )
            assert ref.schedulable and not out.found[i]
            assert float(ref.min_slack) == float(out.min_slack[i])


@pytest.mark.usefixtures("array_backend")
class TestScalarVectorAdaptiveParity:
    """The scalar twins replay the batched drivers bit-for-bit."""

    def test_offset_twin(self):
        batch = feasible_batch_at(
            paper_unconstrained(6), 80.0, 8, rng_from_seed(31)
        )
        cfg = SearchConfig(rounds=3)
        out = adaptive_offset_search_batch(
            batch, FPGA, "EDF-NF", budget=9,
            rngs=spawn_rngs(32, batch.count), config=cfg, horizon_factor=6,
        )
        rngs = spawn_rngs(32, batch.count)
        for i in range(batch.count):
            ts = batch.taskset(i)
            res = adaptive_offset_search(
                ts, FPGA, EdfNf(), float(default_horizon(ts, factor=6)),
                rngs[i], budget=9, config=cfg, include_synchronous=False,
            )
            assert res.schedulable == (not out.found[i])
            assert float(res.min_slack) == float(out.min_slack[i])

    def test_sporadic_twin(self):
        batch = feasible_batch_at(
            paper_unconstrained(6), 80.0, 8, rng_from_seed(33)
        )
        cfg = SearchConfig(rounds=3)
        out = adaptive_sporadic_search_batch(
            batch, FPGA, "EDF-NF", budget=9,
            rngs=spawn_rngs(34, batch.count), max_jitter_factor=0.5,
            config=cfg, horizon_factor=6,
        )
        rngs = spawn_rngs(34, batch.count)
        for i in range(batch.count):
            ts = batch.taskset(i)
            res = adaptive_sporadic_search(
                ts, FPGA, EdfNf(), float(default_horizon(ts, factor=6)),
                rngs[i], budget=9, max_jitter_factor=0.5, config=cfg,
                include_periodic=False,
            )
            assert res.schedulable == (not out.found[i])
            assert float(res.min_slack) == float(out.min_slack[i])


class TestSearchInvariants:
    """The PR's acceptance fixture: seeded sweeps where the adaptive
    search dominates the uniform one at equal budget, while both stay
    below the synchronous/periodic baseline."""

    def test_offset_adaptive_dominates_uniform(self):
        grid = (70.0, 80.0, 85.0)
        kwargs = dict(us_grid=grid, samples=30, offset_samples=20, seed=43)
        uniform = offset_ablation(**kwargs)
        adaptive = offset_ablation(
            **kwargs, search="adaptive", search_rounds=4, elite_frac=0.25
        )
        sync = adaptive["sim:synchronous"].ratios
        u = uniform["sim:offset-search"].ratios
        a = adaptive["sim:offset-search"].ratios
        # Intersection invariant: searched <= synchronous, pointwise.
        assert all(s >= x for s, x in zip(sync, a))
        assert all(s >= x for s, x in zip(sync, u))
        # Equal budget: adaptive certifies at least as many misses in
        # every bucket, strictly more in at least one.
        assert all(ua >= aa for ua, aa in zip(u, a))
        assert any(ua > aa for ua, aa in zip(u, a))

    def test_sporadic_adaptive_dominates_uniform(self):
        grid = (80.0, 85.0, 90.0)
        kwargs = dict(
            us_grid=grid, samples=40, sporadic_samples=30, seed=47
        )
        uniform = sporadic_ablation(**kwargs)
        adaptive = sporadic_ablation(
            **kwargs, search="adaptive", search_rounds=4, elite_frac=0.25
        )
        periodic = adaptive["sim:periodic"].ratios
        u = uniform["sim:sporadic-search"].ratios
        a = adaptive["sim:sporadic-search"].ratios
        assert all(p >= x for p, x in zip(periodic, a))
        assert all(p >= x for p, x in zip(periodic, u))
        assert all(ua >= aa for ua, aa in zip(u, a))
        assert any(ua > aa for ua, aa in zip(u, a))

    def test_unknown_search_rejected(self):
        with pytest.raises(ValueError, match="unknown search"):
            offset_ablation(us_grid=(50.0,), samples=2, search="magic")
        with pytest.raises(ValueError, match="unknown search"):
            sporadic_ablation(us_grid=(50.0,), samples=2, search="magic")


class TestEmptyTasksetGuards:
    """Regression: the searches used to crash on ``max()`` over an empty
    offset assignment; they now return the trivially-schedulable run."""

    def test_simulate_with_offsets_empty(self):
        res = simulate_with_offsets(
            _empty_taskset(), FPGA, EdfNf(), 10.0, rng_from_seed(1), samples=3
        )
        assert res.schedulable
        assert np.isinf(res.min_slack)

    def test_simulate_sporadic_empty(self):
        res = simulate_sporadic(
            _empty_taskset(), FPGA, EdfNf(), 10.0, rng_from_seed(1), samples=3
        )
        assert res.schedulable

    def test_adaptive_twins_empty(self):
        assert adaptive_offset_search(
            _empty_taskset(), FPGA, EdfNf(), 10.0, rng_from_seed(1), budget=3
        ).schedulable
        assert adaptive_sporadic_search(
            _empty_taskset(), FPGA, EdfNf(), 10.0, rng_from_seed(1), budget=3
        ).schedulable

    def test_default_horizon_batch_empty_mirror(self):
        """The batched horizon-extension path mirrors the guard: no task
        axis to reduce over, no crash, trivial windows."""
        empty = TaskSetBatch(*(np.zeros((3, 0)) for _ in range(4)))
        assert np.array_equal(
            default_horizon_batch(empty), np.zeros(3)
        )
        assert np.array_equal(
            default_horizon_batch(empty, offsets=np.zeros((3, 0))),
            np.zeros(3),
        )


class TestSearchMinSlackRecording:
    """Satellite: early exit no longer discards the near-miss record."""

    def test_scalar_search_records_min_over_patterns(self):
        batch = feasible_batch_at(
            paper_unconstrained(4), 60.0, 4, rng_from_seed(41)
        )
        ts = batch.taskset(0)
        horizon = default_horizon(ts, factor=5)
        rng = rng_from_seed(42)
        res = simulate_with_offsets(
            ts, FPGA, EdfNf(), horizon, rng, samples=6
        )
        # Replay the same patterns one by one: the recorded slack is the
        # minimum over all of them, not the last run's.
        rng = rng_from_seed(42)
        res_sync = simulate(ts, FPGA, EdfNf(), horizon)
        slacks = [res_sync.min_slack]
        from repro.sim.offsets import sample_offsets

        for _ in range(6):
            od = sample_offsets(ts, rng)
            r = simulate(
                ts, FPGA, EdfNf(),
                horizon + max(od.values()), offsets=od,
            )
            slacks.append(r.min_slack)
            if not r.schedulable:
                break
        assert float(res.min_slack) == float(min(slacks))

    def test_adaptive_outcome_slack_negative_iff_found(self):
        batch = feasible_batch_at(
            paper_unconstrained(6), 85.0, 12, rng_from_seed(43)
        )
        out = adaptive_offset_search_batch(
            batch, FPGA, "EDF-NF", budget=8,
            rngs=spawn_rngs(44, batch.count), horizon_factor=6,
        )
        assert np.array_equal(out.min_slack < 0, out.found)
        assert (out.patterns_used[~out.found] == 8).all()
        assert (out.patterns_used[out.found] <= 8).all()
