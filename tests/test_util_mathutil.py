"""Unit + property tests for numeric helpers."""

import math
from fractions import Fraction as F

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.mathutil import (
    exact_div,
    float_floor_div,
    fraction_lcm,
    hyperperiod,
    is_close,
    lcm_many,
)


class TestExactDiv:
    def test_int_over_int_is_fraction(self):
        assert exact_div(1, 3) == F(1, 3)
        assert isinstance(exact_div(1, 3), F)

    def test_float_falls_back(self):
        assert exact_div(1.0, 4) == 0.25
        assert isinstance(exact_div(1.0, 4), float)

    def test_fraction_stays_exact(self):
        assert exact_div(F(1, 3), F(1, 6)) == 2


class TestLcm:
    def test_fraction_lcm_integers(self):
        assert fraction_lcm(F(4), F(6)) == 12

    def test_fraction_lcm_rationals(self):
        # lcm(1/2, 1/3) = 1 ; lcm(3/4, 1/2) = 3/2
        assert fraction_lcm(F(1, 2), F(1, 3)) == 1
        assert fraction_lcm(F(3, 4), F(1, 2)) == F(3, 2)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fraction_lcm(F(0), F(1))

    def test_lcm_many(self):
        assert lcm_many([2, 3, 4]) == 12

    def test_lcm_many_rejects_floats(self):
        with pytest.raises(TypeError):
            lcm_many([2.0, 3])

    def test_lcm_many_rejects_empty(self):
        with pytest.raises(ValueError):
            lcm_many([])

    def test_hyperperiod(self):
        assert hyperperiod([5, 7]) == 35

    @given(st.lists(st.fractions(min_value=F(1, 10), max_value=10), min_size=1, max_size=5))
    def test_lcm_is_common_multiple(self, values):
        m = lcm_many(values)
        for v in values:
            q = m / F(v)
            assert q.denominator == 1, f"{m} is not a multiple of {v}"


class TestIsClose:
    def test_exact_types_compare_exactly(self):
        assert is_close(F(1, 3), F(1, 3))
        assert not is_close(F(1, 3), F(1, 3) + F(1, 10**12))

    def test_floats_compare_with_tolerance(self):
        assert is_close(0.1 + 0.2, 0.3)


class TestFloatFloorDiv:
    def test_plain_cases(self):
        assert float_floor_div(7, 2) == 3
        assert float_floor_div(-1, 9) == -1
        assert float_floor_div(F(-1), F(9)) == -1

    def test_float_representation_error_rounds_up(self):
        # 0.3/0.1 = 2.9999999999999996 in floats; intended floor is 3.
        assert float_floor_div(0.3, 0.1) == 3

    def test_exact_fraction_path(self):
        assert float_floor_div(F(3, 10), F(1, 10)) == 3

    @given(st.integers(-50, 50), st.integers(1, 20))
    def test_matches_math_floor_on_ints(self, a, b):
        assert float_floor_div(a, b) == math.floor(F(a) / F(b))
