"""Integration smoke: every example script runs to completion.

Examples are user-facing documentation; a broken one is a broken
deliverable.  Each is executed in-process-like via subprocess with the
repo's interpreter and must exit 0 quickly.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "admission_control.py",
        "fpga_dimensioning.py",
        "placement_fragmentation.py",
        "partitioned_vs_global.py",
        "reconfigurable_2d.py",
    } <= names
