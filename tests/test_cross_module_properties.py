"""Cross-module property tests: invariants spanning analysis, simulation
and the reconfiguration model."""

from fractions import Fraction as F

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.composite import composite_test
from repro.core.dp import dp_test
from repro.core.gn1 import gn1_test
from repro.core.gn2 import gn2_test
from repro.fpga.device import Fpga
from repro.fpga.reconfig import ReconfigurationModel, inflate_taskset
from repro.model.task import Task, TaskSet
from repro.sched.edf_nf import EdfNf
from repro.sim.offsets import simulate_with_offsets
from repro.sim.simulator import simulate
from repro.util.rngutil import rng_from_seed

ALL_TESTS = [dp_test, gn1_test, gn2_test]


@st.composite
def rational_tasksets(draw):
    n = draw(st.integers(1, 5))
    tasks = []
    for i in range(n):
        period = draw(st.integers(4, 16))
        deadline = draw(st.integers(2, period))
        wcet = F(draw(st.integers(1, deadline * 10)), 10)
        area = draw(st.integers(1, 9))
        tasks.append(
            Task(wcet=wcet, period=period, deadline=deadline, area=area, name=f"t{i}")
        )
    return TaskSet(tasks)


class TestCompositeIsDisjunction:
    @given(ts=rational_tasksets())
    @settings(max_examples=80, deadline=None)
    def test_equals_or_of_members(self, ts):
        fpga = Fpga(width=10)
        combined = composite_test(ALL_TESTS)(ts, fpga).accepted
        individual = any(t(ts, fpga).accepted for t in ALL_TESTS)
        assert combined == individual


class TestInflationMonotonicity:
    @pytest.mark.parametrize("test", ALL_TESTS, ids=lambda t: t.name)
    @given(ts=rational_tasksets(), base=st.fractions(min_value=0, max_value=1))
    @settings(max_examples=50, deadline=None)
    def test_accepting_inflated_implies_accepting_original(self, test, ts, base):
        """Charging reconfiguration overhead only ever hurts: if the
        inflated set passes, the original must too (per-task WCET
        monotonicity of all three bounds)."""
        fpga = Fpga(width=10)
        model = ReconfigurationModel(base=base, per_column=base / 10)
        inflated = inflate_taskset(ts, model)
        if test(inflated, fpga).accepted:
            assert test(ts, fpga).accepted


class TestSimulatorAccountingInvariants:
    @given(ts=rational_tasksets())
    @settings(max_examples=60, deadline=None)
    def test_conservation_laws(self, ts):
        fpga = Fpga(width=10)
        res = simulate(ts, fpga, EdfNf(), 40, eps=0, stop_at_first_miss=False)
        m = res.metrics
        assert m.jobs_completed <= m.jobs_released
        assert 0 <= m.busy_area_time <= fpga.capacity * m.simulated_time
        # a completed job ran for its full WCET, so its response >= WCET
        for name, resp in m.worst_response.items():
            assert resp >= ts.by_name(name).wcet

    @given(ts=rational_tasksets())
    @settings(max_examples=40, deadline=None)
    def test_zero_reconfig_model_is_identity(self, ts):
        fpga = Fpga(width=10)
        from repro.fpga.reconfig import ZERO_RECONFIG

        a = simulate(ts, fpga, EdfNf(), 40, eps=0, stop_at_first_miss=False)
        b = simulate(
            ts, fpga, EdfNf(), 40, eps=0, stop_at_first_miss=False,
            reconfig=ZERO_RECONFIG,
        )
        assert a.schedulable == b.schedulable
        assert a.metrics.busy_area_time == b.metrics.busy_area_time
        assert a.metrics.preemptions == b.metrics.preemptions

    @given(
        wcet=st.fractions(min_value=F(1, 10), max_value=3),
        base=st.fractions(min_value=F(1, 10), max_value=2),
        period=st.integers(6, 12),
    )
    @settings(max_examples=40, deadline=None)
    def test_overhead_adds_exactly_to_isolated_response(self, wcet, base, period):
        """For a single task the response under overhead is exactly
        ``C + load_time`` per job.  (For multi-task sets the relation is
        NOT monotone — reconfiguration delays reshuffle the schedule and
        can *reduce* another task's worst response, a classic scheduling
        anomaly that an earlier version of this test tripped over.)"""
        if wcet + base > period:
            return  # would just miss; nothing to compare
        ts = TaskSet([Task(wcet=wcet, period=period, area=4, name="solo")])
        fpga = Fpga(width=10)
        loaded = simulate(
            ts, fpga, EdfNf(), 3 * period, eps=0,
            reconfig=ReconfigurationModel(base=base),
        )
        assert loaded.schedulable
        assert loaded.metrics.worst_response["solo"] == wcet + base


class TestOffsetHarness:
    def test_zero_samples_synchronous_equals_plain_simulate(self):
        ts = TaskSet(
            [
                Task(wcet=1, period=4, area=5, name="a"),
                Task(wcet=2, period=6, area=5, name="b"),
            ]
        )
        fpga = Fpga(width=10)
        direct = simulate(ts, fpga, EdfNf(), 30, eps=0)
        harness = simulate_with_offsets(
            ts, fpga, EdfNf(), 30, rng_from_seed(1), samples=0, eps=0
        )
        assert direct.schedulable == harness.schedulable
        assert direct.metrics.jobs_released == harness.metrics.jobs_released


class TestPartitionedInvariants:
    @given(ts=rational_tasksets())
    @settings(max_examples=40, deadline=None)
    def test_partition_structure(self, ts):
        from repro.sched.partitioned import partition_first_fit

        fpga = Fpga(width=10)
        res = partition_first_fit(ts, fpga)
        # width budget respected
        assert sum(p.width for p in res.partitions) <= fpga.capacity
        # every placed task fits its partition and appears exactly once
        placed = [t.name for p in res.partitions for t in p.tasks]
        assert len(placed) == len(set(placed))
        for p in res.partitions:
            for t in p.tasks:
                assert t.area <= p.width
        # accepted => nothing unplaced and per-partition UT <= 1
        if res.accepted:
            assert not res.unplaced
            for p in res.partitions:
                assert p.time_utilization <= 1

    @given(ts=rational_tasksets())
    @settings(max_examples=25, deadline=None)
    def test_partitioned_accept_implies_partitioned_execution(self, ts):
        """Partitioned acceptance guarantees the *partitioned* execution:
        each partition, run serially under uniprocessor EDF, meets all
        deadlines.  (It does NOT imply global EDF-NF succeeds — global
        deadline tie-breaking can starve a wide task that partitioning
        isolates; hypothesis found such a counterexample, now in
        test_partitioned_does_not_imply_global below.)"""
        from repro.sched.partitioned import partition_first_fit
        from repro.sim.simulator import default_horizon

        fpga = Fpga(width=10)
        res = partition_first_fit(ts, fpga)
        if res.accepted:
            for part in res.partitions:
                serial = TaskSet([t.with_area(1) for t in part.tasks])
                horizon = default_horizon(serial, factor=10)
                sim = simulate(serial, Fpga(width=1), EdfNf(), horizon, eps=0)
                assert sim.schedulable, (part, ts)

    def test_partitioned_does_not_imply_global(self):
        """The counterexample hypothesis found: two tiny unit-width tasks
        share the wide task's deadline and win the release/name tie-break
        under global EDF-NF, leaving the zero-laxity wide task 0.2 short.
        Partitioning isolates it and accepts — correctly."""
        from repro.sched.partitioned import partitioned_test

        ts = TaskSet(
            [
                Task(wcet=F(1, 10), period=4, deadline=2, area=1, name="t0"),
                Task(wcet=F(1, 10), period=4, deadline=2, area=1, name="t1"),
                Task(wcet=2, period=4, deadline=2, area=9, name="t2"),
            ]
        )
        fpga = Fpga(width=10)
        assert partitioned_test(ts, fpga).accepted
        assert not simulate(ts, fpga, EdfNf(), 20, eps=0).schedulable
