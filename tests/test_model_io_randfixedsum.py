"""Tests for JSON serialization and the RandFixedSum generator."""

from fractions import Fraction as F

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga.device import Fpga, StaticRegion
from repro.gen.randfixedsum import randfixedsum
from repro.model.io import (
    fpga_from_dict,
    fpga_to_dict,
    load_taskset,
    save_taskset,
    task_from_dict,
    task_to_dict,
    taskset_from_dict,
    taskset_to_dict,
)
from repro.model.task import Task, TaskSet
from repro.util.rngutil import rng_from_seed


class TestTaskSerialization:
    def test_int_roundtrip(self):
        t = Task(wcet=2, period=10, deadline=8, area=3, name="x")
        assert task_from_dict(task_to_dict(t)) == t

    def test_fraction_roundtrip_exact(self):
        t = Task(wcet=F("1.26"), period=7, area=9, name="knife")
        back = task_from_dict(task_to_dict(t))
        assert back.wcet == F(63, 50)
        assert isinstance(back.wcet, F)

    def test_float_roundtrip_bitexact(self):
        # 0.1 + 0.2 is the classic decimal-repr trap; hex repr survives it
        t = Task(wcet=0.1 + 0.2, period=1.1, area=2, name="f")
        back = task_from_dict(task_to_dict(t))
        assert back.wcet == t.wcet  # bit-identical, not approximately

    def test_taskset_roundtrip(self, table1):
        assert taskset_from_dict(taskset_to_dict(table1)) == table1

    def test_file_roundtrip(self, tmp_path, table3):
        path = tmp_path / "nested" / "ts.json"
        save_taskset(table3, path)
        assert load_taskset(path) == table3

    def test_version_check(self, table1):
        data = taskset_to_dict(table1)
        data["format"] = 99
        with pytest.raises(ValueError):
            taskset_from_dict(data)

    def test_decode_rejects_junk(self):
        from repro.model.io import _decode_number

        with pytest.raises(ValueError):
            _decode_number({"complex": "1+2j"})
        with pytest.raises(ValueError):
            _decode_number(True)

    @given(
        wcet=st.fractions(min_value=F(1, 100), max_value=10),
        period=st.integers(1, 50),
        area=st.integers(1, 100),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, wcet, period, area):
        if wcet > period:
            wcet = F(period)
        t = Task(wcet=wcet, period=period, area=area, name="p")
        assert task_from_dict(task_to_dict(t)) == t


class TestFpgaSerialization:
    def test_roundtrip_plain(self):
        f = Fpga(width=100)
        assert fpga_from_dict(fpga_to_dict(f)) == f

    def test_roundtrip_with_static_regions(self):
        f = Fpga(width=20, static_regions=(StaticRegion(3, 2), StaticRegion(10, 5)))
        assert fpga_from_dict(fpga_to_dict(f)) == f


class TestRandFixedSum:
    @given(
        n=st.integers(1, 12),
        frac=st.floats(0.05, 0.999),
    )
    @settings(max_examples=100, deadline=None)
    def test_sum_and_caps(self, n, frac):
        u_total = frac * n  # always feasible
        utils = randfixedsum(n, u_total, rng_from_seed(3))
        assert abs(sum(utils) - u_total) < 1e-9
        assert all(-1e-12 <= u <= 1 + 1e-12 for u in utils)

    def test_high_target_where_uunifast_discard_struggles(self):
        # sum = 11.8 of 12: discard-based sampling would reject nearly
        # every draw; randfixedsum is O(n^2) deterministic
        utils = randfixedsum(12, 11.8, rng_from_seed(7))
        assert abs(sum(utils) - 11.8) < 1e-9
        assert max(utils) <= 1 + 1e-12

    def test_custom_cap(self):
        utils = randfixedsum(5, 2.0, rng_from_seed(11), u_cap=0.5)
        assert abs(sum(utils) - 2.0) < 1e-9
        assert all(u <= 0.5 + 1e-12 for u in utils)

    def test_single_task(self):
        assert randfixedsum(1, 0.7, rng_from_seed(1)) == [0.7]

    def test_component_symmetry(self):
        # all positions have the same marginal distribution
        rng = rng_from_seed(13)
        draws = np.array([randfixedsum(4, 2.0, rng) for _ in range(4000)])
        means = draws.mean(axis=0)
        assert np.allclose(means, 0.5, atol=0.03)

    def test_validation(self):
        rng = rng_from_seed(0)
        with pytest.raises(ValueError):
            randfixedsum(0, 1.0, rng)
        with pytest.raises(ValueError):
            randfixedsum(3, 0.0, rng)
        with pytest.raises(ValueError):
            randfixedsum(3, 3.5, rng)
        with pytest.raises(ValueError):
            randfixedsum(3, 1.0, rng, u_cap=0)
