"""Shared fixtures: the paper's example tasksets and devices.

Tables 1-3 (paper §6) are given in exact rational arithmetic so the
knife-edge comparisons they exercise are decided mathematically, not by
float luck.

The ``array_backend`` fixture parametrizes a test over every installed
:mod:`repro.vector.xp` backend (numpy always; torch/cupy skipped with a
reason when absent), installing the backend as the process-wide
selection for the test's duration — so kernels resolving the ambient
backend run once per installed array library.
"""

from fractions import Fraction as F

import pytest

from repro.fpga.device import Fpga
from repro.model.task import Task, TaskSet
from repro.vector import xp as xp_backends


def _array_backend_params():
    params = [pytest.param("numpy", id="numpy")]
    for name in ("torch", "cupy"):
        reason = xp_backends.backend_skip_reason(name)
        marks = () if reason is None else pytest.mark.skip(reason=reason)
        params.append(pytest.param(name, id=name, marks=marks))
    return params


@pytest.fixture(params=_array_backend_params())
def array_backend(request):
    """Each installed repro.vector.xp backend, installed process-wide."""
    previous = xp_backends.set_backend(request.param)
    try:
        yield request.param
    finally:
        xp_backends.set_backend(previous)


@pytest.fixture
def fpga10() -> Fpga:
    """The 10-column device of the paper's Tables 1-3."""
    return Fpga(width=10)


@pytest.fixture
def fpga100() -> Fpga:
    """The 100-column device of the paper's Figures 3-4."""
    return Fpga(width=100)


@pytest.fixture
def table1() -> TaskSet:
    """Paper Table 1: accepted by DP, rejected by GN1 and GN2."""
    return TaskSet(
        [
            Task(wcet=F("1.26"), period=7, deadline=7, area=9, name="tau1"),
            Task(wcet=F("0.95"), period=5, deadline=5, area=6, name="tau2"),
        ]
    )


@pytest.fixture
def table2() -> TaskSet:
    """Paper Table 2: accepted by GN1, rejected by DP and GN2."""
    return TaskSet(
        [
            Task(wcet=F("4.50"), period=8, deadline=8, area=3, name="tau1"),
            Task(wcet=F("8.00"), period=9, deadline=9, area=5, name="tau2"),
        ]
    )


@pytest.fixture
def table3() -> TaskSet:
    """Paper Table 3: accepted by GN2, rejected by DP and GN1."""
    return TaskSet(
        [
            Task(wcet=F("2.10"), period=5, deadline=5, area=7, name="tau1"),
            Task(wcet=F("2.00"), period=7, deadline=7, area=7, name="tau2"),
        ]
    )
