"""Shared fixtures: the paper's example tasksets and devices.

Tables 1-3 (paper §6) are given in exact rational arithmetic so the
knife-edge comparisons they exercise are decided mathematically, not by
float luck.
"""

from fractions import Fraction as F

import pytest

from repro.fpga.device import Fpga
from repro.model.task import Task, TaskSet


@pytest.fixture
def fpga10() -> Fpga:
    """The 10-column device of the paper's Tables 1-3."""
    return Fpga(width=10)


@pytest.fixture
def fpga100() -> Fpga:
    """The 100-column device of the paper's Figures 3-4."""
    return Fpga(width=100)


@pytest.fixture
def table1() -> TaskSet:
    """Paper Table 1: accepted by DP, rejected by GN1 and GN2."""
    return TaskSet(
        [
            Task(wcet=F("1.26"), period=7, deadline=7, area=9, name="tau1"),
            Task(wcet=F("0.95"), period=5, deadline=5, area=6, name="tau2"),
        ]
    )


@pytest.fixture
def table2() -> TaskSet:
    """Paper Table 2: accepted by GN1, rejected by DP and GN2."""
    return TaskSet(
        [
            Task(wcet=F("4.50"), period=8, deadline=8, area=3, name="tau1"),
            Task(wcet=F("8.00"), period=9, deadline=9, area=5, name="tau2"),
        ]
    )


@pytest.fixture
def table3() -> TaskSet:
    """Paper Table 3: accepted by GN2, rejected by DP and GN1."""
    return TaskSet(
        [
            Task(wcet=F("2.10"), period=5, deadline=5, area=7, name="tau1"),
            Task(wcet=F("2.00"), period=7, deadline=7, area=7, name="tau2"),
        ]
    )
