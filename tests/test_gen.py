"""Tests for the taskset generators (paper §6 recipe)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gen.profiles import (
    GenerationProfile,
    paper_unconstrained,
    spatially_heavy_temporally_light,
    spatially_light_temporally_heavy,
)
from repro.gen.random_tasksets import generate_taskset, generate_tasksets
from repro.gen.sweep import generate_at_system_utilization, utilization_grid
from repro.gen.uunifast import uunifast, uunifast_discard
from repro.util.rngutil import rng_from_seed


class TestProfiles:
    def test_paper_unconstrained_defaults(self):
        p = paper_unconstrained(10)
        assert p.n_tasks == 10
        assert (p.area_min, p.area_max) == (1, 100)
        assert (p.period_min, p.period_max) == (5.0, 20.0)
        assert (p.util_min, p.util_max) == (0.0, 1.0)

    def test_fig4_profiles(self):
        heavy = spatially_heavy_temporally_light()
        light = spatially_light_temporally_heavy()
        assert heavy.area_min >= 50 and heavy.util_max <= 0.3
        assert light.area_max <= 30 and light.util_min >= 0.5

    @pytest.mark.parametrize("kwargs", [
        dict(n_tasks=0),
        dict(n_tasks=2, area_min=0),
        dict(n_tasks=2, area_min=5, area_max=4),
        dict(n_tasks=2, period_min=0),
        dict(n_tasks=2, period_min=9, period_max=5),
        dict(n_tasks=2, util_min=-0.1),
        dict(n_tasks=2, util_max=1.5),
    ])
    def test_invalid_profiles_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GenerationProfile(**kwargs)

    def test_with_tasks(self):
        assert paper_unconstrained(4).with_tasks(9).n_tasks == 9


class TestGenerateTaskset:
    def test_respects_profile_bounds(self):
        rng = rng_from_seed(1)
        p = paper_unconstrained(10)
        for _ in range(50):
            ts = generate_taskset(p, rng)
            assert len(ts) == 10
            for t in ts:
                assert p.period_min <= t.period <= p.period_max
                assert p.area_min <= t.area <= p.area_max
                assert t.deadline == t.period
                assert 0 < t.wcet <= t.period  # factor in (0, 1]

    def test_reproducible_with_seed(self):
        a = generate_taskset(paper_unconstrained(5), rng_from_seed(7))
        b = generate_taskset(paper_unconstrained(5), rng_from_seed(7))
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_taskset(paper_unconstrained(5), rng_from_seed(1))
        b = generate_taskset(paper_unconstrained(5), rng_from_seed(2))
        assert a != b

    def test_integer_periods(self):
        p = GenerationProfile(n_tasks=6, integer_periods=True)
        ts = generate_taskset(p, rng_from_seed(3))
        for t in ts:
            assert t.period == int(t.period)
            assert 5 <= t.period <= 20

    def test_integer_period_range_empty_raises(self):
        p = GenerationProfile(n_tasks=2, period_min=5.2, period_max=5.8,
                              integer_periods=True)
        with pytest.raises(ValueError):
            generate_taskset(p, rng_from_seed(0))

    def test_generate_many(self):
        sets = generate_tasksets(paper_unconstrained(4), 20, rng_from_seed(5))
        assert len(sets) == 20
        assert len({id(s) for s in sets}) == 20

    def test_generate_negative_count_rejected(self):
        with pytest.raises(ValueError):
            generate_tasksets(paper_unconstrained(4), -1, rng_from_seed(5))

    def test_area_distribution_spans_range(self):
        # statistical sanity: over many draws both extremes appear
        rng = rng_from_seed(11)
        p = GenerationProfile(n_tasks=100, area_min=1, area_max=5)
        areas = {t.area for t in generate_taskset(p, rng)}
        assert areas == {1, 2, 3, 4, 5}


class TestUUniFast:
    @given(n=st.integers(1, 12), u=st.floats(0.1, 4.0))
    @settings(max_examples=80, deadline=None)
    def test_sums_to_target(self, n, u):
        utils = uunifast(n, u, rng_from_seed(13))
        assert np.isclose(sum(utils), u)
        assert all(x >= 0 for x in utils)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            uunifast(0, 1.0, rng_from_seed(0))
        with pytest.raises(ValueError):
            uunifast(3, 0.0, rng_from_seed(0))

    def test_discard_respects_cap(self):
        utils = uunifast_discard(4, 2.5, rng_from_seed(17))
        assert np.isclose(sum(utils), 2.5)
        assert all(u <= 1.0 for u in utils)

    def test_discard_unreachable_target(self):
        with pytest.raises(ValueError):
            uunifast_discard(2, 3.0, rng_from_seed(0))


class TestSweep:
    def test_grid(self):
        grid = utilization_grid(10, 100, 10)
        assert len(grid) == 10
        assert grid[0] == 10 and grid[-1] == 100

    def test_grid_single_step(self):
        assert utilization_grid(5, 9, 1) == [5]

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            utilization_grid(0, 10, 5)
        with pytest.raises(ValueError):
            utilization_grid(1, 10, 0)

    def test_targeted_generation_hits_us(self):
        rng = rng_from_seed(23)
        p = paper_unconstrained(10)
        for target in (10.0, 40.0, 80.0):
            ts = generate_at_system_utilization(p, target, rng)
            assert np.isclose(float(ts.system_utilization), target)
            assert all(t.time_utilization <= 1 for t in ts)

    def test_unreachable_target_raises(self):
        # 2 tasks with area <= 2 and factor <= 1 can reach US <= 4 at most
        p = GenerationProfile(n_tasks=2, area_min=1, area_max=2)
        with pytest.raises(RuntimeError):
            generate_at_system_utilization(p, 50.0, rng_from_seed(29), max_tries=50)

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            generate_at_system_utilization(paper_unconstrained(3), 0, rng_from_seed(1))

    def test_preserves_structure(self):
        rng = rng_from_seed(31)
        p = spatially_heavy_temporally_light()
        ts = generate_at_system_utilization(p, 30.0, rng)
        assert all(50 <= t.area <= 100 for t in ts)
        assert all(t.deadline == t.period for t in ts)
