"""Churn parity: incremental verdicts bit-identical to from-scratch tests.

The central contract of :mod:`repro.incremental`: after ANY sequence of
add/remove/update operations, every analyzer's :class:`TestResult` —
including per-task lhs/rhs values and detail strings, under float *and*
exact arithmetic — equals what the scalar test returns on the equivalent
:class:`TaskSet`.  Hypothesis drives random operation streams; dedicated
tests pin the knife edges (empty set, single task, remove-last,
duplicate names) and the Tables 1-3 exact-rational sets.
"""

import random
import subprocess
import sys
from fractions import Fraction as F
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.composite import paper_portfolio
from repro.core.dp import dp_test
from repro.core.gn1 import gn1_test
from repro.core.gn2 import gn2_test
from repro.core.interfaces import SchedulerKind
from repro.core.sensitivity import DeltaCertifier
from repro.fpga.device import Fpga
from repro.incremental import AdmissionState, Delta, reverdict
from repro.model.task import Task, TaskSet

MEMBERS = {"DP": dp_test, "GN1": gn1_test, "GN2": gn2_test}


def _assert_parity(state: AdmissionState, fpga: Fpga) -> None:
    """Full-dataclass equality between incremental and scalar verdicts."""
    if len(state) == 0:
        for name in MEMBERS:
            res = state.result(name)
            assert res.accepted and "vacuously" in res.reason
        assert state.portfolio_result().accepted
        return
    ts = TaskSet(state.tasks)
    for name, test in MEMBERS.items():
        assert state.result(name) == test(ts, fpga), name
    for scheduler in SchedulerKind:
        assert state.portfolio_result(scheduler) == paper_portfolio(scheduler)(
            ts, fpga
        ), scheduler


@st.composite
def churn_streams(draw, exact: bool):
    """A random sequence of (op, payload) churn operations."""
    n_ops = draw(st.integers(1, 25))
    ops = []
    for i in range(n_ops):
        kind = draw(st.sampled_from(["add", "add", "remove", "update"]))
        period = draw(st.integers(4, 16))
        deadline = draw(st.integers(2, period + 4))
        wcet_tenths = draw(st.integers(1, min(deadline, period) * 10))
        wcet = F(wcet_tenths, 10) if exact else wcet_tenths / 10
        area = draw(st.integers(1, 9))
        victim = draw(st.integers(0, 30))  # resolved modulo residents
        task = Task(wcet=wcet, period=period, deadline=deadline, area=area, name=f"t{i}")
        ops.append((kind, task, victim))
    return ops


def _run_stream(ops, fpga):
    state = AdmissionState(fpga)
    for kind, task, victim in ops:
        names = [t.name for t in state]
        if kind == "add" or not names:
            state.add(task)
        elif kind == "remove":
            state.remove(names[victim % len(names)])
        else:
            name = names[victim % len(names)]
            state.update(
                name, Task(task.wcet, task.period, task.deadline, task.area, name=name)
            )
        _assert_parity(state, fpga)
    return state


class TestChurnParity:
    @given(ops=churn_streams(exact=False))
    @settings(max_examples=60, deadline=None)
    def test_float_streams(self, ops):
        _run_stream(ops, Fpga(width=10))

    @given(ops=churn_streams(exact=True))
    @settings(max_examples=60, deadline=None)
    def test_exact_streams(self, ops):
        _run_stream(ops, Fpga(width=10))

    def test_long_mixed_stream(self):
        """A deeper seeded stream than hypothesis affords per example."""
        rng = random.Random(42)
        fpga = Fpga(width=60)
        state = AdmissionState(fpga)
        for i in range(150):
            names = [t.name for t in state]
            roll = rng.random()
            period = rng.randint(5, 30)
            wcet = rng.randint(1, max(1, period // 2))
            task = Task(
                wcet=wcet,
                period=period,
                deadline=rng.randint(wcet, period + 5),
                area=rng.randint(1, 20),
                name=f"t{i}",
            )
            if not names or roll < 0.5:
                state.add(task)
            elif roll < 0.8:
                state.remove(rng.choice(names))
            else:
                name = rng.choice(names)
                state.update(
                    name,
                    Task(task.wcet, task.period, task.deadline, task.area, name=name),
                )
            if i % 5 == 0 or i > 140:
                _assert_parity(state, fpga)
        _assert_parity(state, fpga)


class TestKnifeEdges:
    def test_empty_state_vacuous_accept(self, fpga10):
        state = AdmissionState(fpga10)
        for name in MEMBERS:
            res = state.result(name)
            assert res.accepted
            assert res.reason == "empty taskset: vacuously schedulable"
            assert res.test_name == MEMBERS[name].name
        assert state.portfolio_result().accepted
        assert state.taskset is None

    def test_single_task_then_remove_last(self, fpga10):
        state = AdmissionState(fpga10)
        t = Task(wcet=1, period=4, deadline=4, area=2, name="solo")
        state.add(t)
        _assert_parity(state, fpga10)
        assert state.remove("solo") is t
        assert len(state) == 0
        _assert_parity(state, fpga10)
        # Refill after draining: caches must restart cleanly.
        state.add(t)
        _assert_parity(state, fpga10)

    def test_duplicate_name_rejected(self, fpga10):
        state = AdmissionState(fpga10)
        state.add(Task(wcet=1, period=4, area=2, name="dup"))
        with pytest.raises(KeyError):
            state.add(Task(wcet=1, period=5, area=3, name="dup"))
        state.add(Task(wcet=1, period=5, area=3, name="other"))
        with pytest.raises(KeyError):
            state.update("other", Task(wcet=1, period=5, area=3, name="dup"))
        _assert_parity(state, fpga10)

    def test_remove_unknown_name(self, fpga10):
        state = AdmissionState(fpga10)
        with pytest.raises(KeyError):
            state.remove("ghost")

    def test_update_rename(self, fpga10):
        state = AdmissionState(fpga10)
        state.add(Task(wcet=1, period=4, area=2, name="old"))
        state.add(Task(wcet=1, period=6, area=3, name="keep"))
        state.update("old", Task(wcet=2, period=8, area=4, name="new"))
        assert "new" in state and "old" not in state
        _assert_parity(state, fpga10)

    def test_admit_rolls_back_rejects(self, fpga10):
        state = AdmissionState(fpga10)
        assert state.admit(Task(wcet=1, period=4, area=2, name="ok"))
        # A task wider than the device fails the necessary conditions.
        assert not state.admit(Task(wcet=1, period=4, area=11, name="wide"))
        assert "wide" not in state and len(state) == 1
        _assert_parity(state, fpga10)


class TestPaperTablesChurn:
    """Churn across the paper's exact knife-edge tasksets (Tables 1-3)."""

    def test_tables_rotation(self, fpga10, table1, table2, table3):
        state = AdmissionState(fpga10)
        # Walk through each table's tasks by add/remove, asserting parity
        # at every intermediate (mixed-table) resident set.
        tables = {"T1": table1, "T2": table2, "T3": table3}
        for label, table in tables.items():
            for t in table:
                state.add(
                    Task(t.wcet, t.period, t.deadline, t.area, name=f"{label}.{t.name}")
                )
                _assert_parity(state, fpga10)
        for label, table in tables.items():
            for t in table:
                state.remove(f"{label}.{t.name}")
                _assert_parity(state, fpga10)

    def test_table_verdicts_via_state(self, fpga10, table1, table2, table3):
        """The paper's accept/reject matrix, reproduced incrementally."""
        expect = {
            "T1": {"DP": True, "GN1": False, "GN2": False},
            "T2": {"DP": False, "GN1": True, "GN2": False},
            "T3": {"DP": False, "GN1": False, "GN2": True},
        }
        for label, table in (("T1", table1), ("T2", table2), ("T3", table3)):
            state = AdmissionState(fpga10, table)
            for name, want in expect[label].items():
                assert state.accepts(name) is want, (label, name)
            assert state.portfolio_accepts()


class TestReverdict:
    def test_matches_states_and_vacuous_empty(self, fpga10):
        rng = random.Random(5)
        states = []
        for b in range(6):
            state = AdmissionState(fpga10)
            for j in range(3):
                period = float(rng.randint(4, 12))
                # Irregular float WCETs keep the strict-inequality checks
                # away from exact ties (where the float64 vector kernels
                # legitimately differ from exact-rational scalar verdicts).
                wcet = rng.randint(1, int(period) // 2) + 0.1 + 0.01 * rng.random()
                state.add(
                    Task(wcet=wcet, period=period, area=rng.randint(1, 6), name=f"s{b}t{j}")
                )
            states.append(state)
        states.append(AdmissionState(fpga10))  # empty
        deltas = [None] * len(states)
        deltas[0] = Delta.remove("s0t0")
        deltas[1] = Delta.add(Task(wcet=1, period=9, area=2, name="s1new"))
        results = reverdict(states, deltas, tests=("DP", "GN1", "GN2", "ANY"))
        assert len(states[0]) == 2 and "s1new" in states[1]
        for state, verdicts in zip(states, results):
            if len(state) == 0:
                assert verdicts == {"DP": True, "GN1": True, "GN2": True, "ANY": True}
                continue
            # Float-parameter tasks: the vector kernels agree exactly.
            for name in ("DP", "GN1", "GN2"):
                assert verdicts[name] == state.accepts(name), (name, state.tasks)
            assert verdicts["ANY"] == (
                verdicts["DP"] or verdicts["GN1"] or verdicts["GN2"]
            )

    def test_groups_mixed_sizes(self, fpga10):
        states = [AdmissionState(fpga10) for _ in range(4)]
        for i, state in enumerate(states):
            for j in range(1 + i % 2):  # sizes 1, 2, 1, 2
                state.add(Task(wcet=1, period=6, area=2, name=f"m{i}t{j}"))
        results = reverdict(states, tests=("DP",))
        assert all(r["DP"] for r in results)

    def test_rejects_bad_input(self, fpga10):
        state = AdmissionState(fpga10)
        with pytest.raises(ValueError):
            reverdict([state], tests=("DP", "BOGUS"))
        with pytest.raises(ValueError):
            reverdict([state], [None, None])


class TestDeltaCertifier:
    """Certificates must be *sound*: a True/False answer always matches
    the exact portfolio verdict after the delta; None means rerun."""

    @pytest.mark.parametrize("exact", [False, True], ids=["float", "fraction"])
    def test_random_stream_soundness(self, exact):
        rng = random.Random(9)
        fpga = Fpga(width=80)
        state = AdmissionState(fpga)
        cert = DeltaCertifier()
        cert.refresh(state)
        certified = 0
        for i in range(120):
            names = [t.name for t in state]
            roll = rng.random()
            period = rng.randint(8, 40)
            wcet = rng.randint(1, max(1, period // 3))
            if exact:
                task = Task(
                    wcet=F(wcet),
                    period=F(period),
                    deadline=F(rng.randint(wcet, period + 4)),
                    area=rng.randint(1, 12),
                    name=f"c{i}",
                )
            else:
                task = Task(
                    wcet=wcet,
                    period=period,
                    deadline=rng.randint(wcet, period + 4),
                    area=rng.randint(1, 12),
                    name=f"c{i}",
                )
            if not names or roll < 0.55:
                answer = cert.certify_add(task)
                state.add(task)
            elif roll < 0.85:
                victim = rng.choice(names)
                answer = cert.certify_remove(victim)
                state.remove(victim)
            else:
                victim = rng.choice(names)
                replacement = Task(
                    task.wcet, task.period, task.deadline, task.area, name=victim
                )
                answer = cert.certify_update(victim, replacement)
                state.update(victim, replacement)
            truth = state.portfolio_accepts()
            if answer is None:
                cert.refresh(state)
            else:
                certified += 1
                assert answer == truth, (i, answer, truth)
        assert certified > 0  # the fast path actually fires
        assert 0.0 < cert.hit_rate < 1.0

    def test_remove_certified_under_dp_accept(self, fpga100):
        state = AdmissionState(
            fpga100, [Task(wcet=1, period=10, area=5, name=f"r{i}") for i in range(4)]
        )
        cert = DeltaCertifier()
        cert.refresh(state)
        assert cert.certify_remove("r2") is True
        state.remove("r2")
        assert state.portfolio_accepts()

    def test_unknown_cases_return_none(self, fpga10):
        state = AdmissionState(fpga10)
        cert = DeltaCertifier()
        cert.refresh(state)
        # Empty state: no Amax to reason about.
        assert cert.certify_add(Task(wcet=1, period=4, area=2, name="x")) is None
        assert cert.certify_remove("ghost") is None


class TestExampleCrossCheck:
    def test_admission_example_from_scratch_mode(self):
        """The ported example's --from-scratch replay asserts identical
        decisions between incremental and from-scratch paths."""
        root = Path(__file__).resolve().parent.parent
        proc = subprocess.run(
            [sys.executable, str(root / "examples" / "admission_control.py"),
             "--from-scratch", "--arrivals", "60"],
            capture_output=True,
            text=True,
            timeout=240,
            cwd=root,
            env={"PYTHONPATH": str(root / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "identical to from-scratch" in proc.stdout


class TestChurnExperimentCrossCheck:
    def test_experiment_parity_audit(self):
        from repro.experiments.churn import churn_experiment

        curves = churn_experiment(
            events=40, seed=7, util_buckets=(0.2, 0.5), cross_check=True
        )
        assert curves.labels == ("DP", "GN1", "GN2", "ANY")
        for label in ("DP", "GN1", "GN2"):
            for u, any_ratio in zip(curves["ANY"].utilizations, curves["ANY"].ratios):
                assert curves[label].at(u) <= any_ratio + 1e-12
