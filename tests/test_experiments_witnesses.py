"""Tests for witness search and the incomparability census."""

import pytest

from repro.core.dp import dp_test
from repro.core.gn1 import gn1_test
from repro.core.gn2 import gn2_test
from repro.experiments.witnesses import (
    TABLE_PATTERNS,
    acceptance_pattern,
    find_witness,
    incomparability_census,
)
from repro.fpga.device import Fpga
from repro.util.rngutil import rng_from_seed


class TestAcceptancePattern:
    def test_matches_paper_tables(self, table1, table2, table3, fpga10):
        assert acceptance_pattern(table1, fpga10) == (True, False, False)
        assert acceptance_pattern(table2, fpga10) == (False, True, False)
        assert acceptance_pattern(table3, fpga10) == (False, False, True)


class TestFindWitness:
    @pytest.mark.parametrize("name,pattern", sorted(TABLE_PATTERNS.items()))
    def test_regenerates_each_table_pattern(self, name, pattern):
        """Random search finds fresh tasksets realizing every exclusive
        pattern of Tables 1-3 — the incomparability is generic, not an
        artifact of the paper's hand-picked examples.  (DP-only is the
        hard one: it needs >= 3 tasks and a high area floor; the 2-task
        Table 1 sits exactly on a decision boundary.)"""
        ts = find_witness(pattern, rng_from_seed(hash(name) % 2**32), max_tries=200_000)
        assert ts is not None, f"no witness found for {name}"
        fpga = Fpga(width=10)
        assert acceptance_pattern(ts, fpga) == pattern

    def test_all_accept_pattern_is_easy(self):
        ts = find_witness((True, True, True), rng_from_seed(1), max_tries=10_000)
        assert ts is not None
        fpga = Fpga(width=10)
        assert dp_test(ts, fpga).accepted
        assert gn1_test(ts, fpga).accepted
        assert gn2_test(ts, fpga).accepted

    def test_returns_none_when_budget_exhausted(self):
        # a pattern with a tiny budget will (almost surely) not be found
        assert find_witness((True, False, False), rng_from_seed(2), max_tries=1) is None


class TestCensus:
    def test_census_counts_sum(self):
        census = incomparability_census(300, rng_from_seed(3))
        assert census.total == 300
        assert sum(census.counts.values()) == 300

    def test_gn1_and_gn2_exclusive_patterns_occur(self):
        """GN1-only and GN2-only acceptance is common under the default
        census profile; DP-only is a measure-zero corner there (it needs
        >= 3 tasks and a high area floor — see find_witness), so it is
        deliberately NOT asserted here."""
        census = incomparability_census(4000, rng_from_seed(4))
        found = census.exclusive_witnesses_found
        assert found["table2-like (GN1 only)"] > 0
        assert found["table3-like (GN2 only)"] > 0

    def test_render(self):
        census = incomparability_census(200, rng_from_seed(5))
        text = census.render()
        assert "pattern" in text and "fraction" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            incomparability_census(0, rng_from_seed(1))
