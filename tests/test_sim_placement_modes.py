"""Tests for the §7 extension modes: placement constraints, reconfiguration
overhead and release-offset sampling."""

from fractions import Fraction as F

import pytest

from repro.fpga.device import Fpga, StaticRegion
from repro.fpga.placement import PlacementPolicy
from repro.fpga.reconfig import ReconfigurationModel
from repro.model.task import Task, TaskSet
from repro.sched.edf_nf import EdfNf
from repro.sim.offsets import sample_offsets, simulate_with_offsets
from repro.sim.simulator import MigrationMode, simulate
from repro.util.rngutil import rng_from_seed


class TestRelocatableMode:
    def test_equivalent_to_free_when_no_fragmentation(self):
        ts = TaskSet(
            [
                Task(wcet=2, period=10, area=4, name="a"),
                Task(wcet=2, period=10, area=4, name="b"),
            ]
        )
        free = simulate(ts, Fpga(width=10), EdfNf(), horizon=30)
        reloc = simulate(
            ts, Fpga(width=10), EdfNf(), horizon=30, mode=MigrationMode.RELOCATABLE
        )
        assert free.schedulable and reloc.schedulable
        assert free.metrics.busy_area_time == reloc.metrics.busy_area_time

    def test_static_region_fragmentation_blocks(self):
        """Total free area is 8 but split 4+4 by a static block: an
        area-5 job runs in FREE mode (capacity check) yet cannot be placed
        contiguously in RELOCATABLE mode."""
        fpga = Fpga(width=10, static_regions=(StaticRegion(4, 2),))
        ts = TaskSet([Task(wcet=2, period=10, deadline=4, area=5, name="wide")])
        free = simulate(ts, fpga, EdfNf(), horizon=10)
        reloc = simulate(ts, fpga, EdfNf(), horizon=10, mode=MigrationMode.RELOCATABLE)
        assert free.schedulable
        assert not reloc.schedulable

    def test_policy_affects_fragmentation(self):
        # three staggered tasks: best-fit vs worst-fit produce different
        # placements (sanity check that the policy knob is live).
        ts = TaskSet(
            [
                Task(wcet=4, period=20, area=3, name="a"),
                Task(wcet=4, period=20, area=4, name="b"),
                Task(wcet=4, period=20, area=3, name="c"),
            ]
        )
        for policy in PlacementPolicy:
            res = simulate(
                ts, Fpga(width=10), EdfNf(), horizon=20,
                mode=MigrationMode.RELOCATABLE, placement_policy=policy,
            )
            assert res.schedulable


class TestPinnedMode:
    def test_resume_requires_original_columns(self):
        """A preempted pinned job resumes only at its original columns."""
        # burst occupies the whole device every 5 time units with a tight
        # deadline; the long job (C=10) is evicted at t=5 and t=10 and
        # resumes at its pinned position each time.
        ts = TaskSet(
            [
                Task(wcet=10, period=20, deadline=20, area=6, name="long"),
                Task(wcet=1, period=5, deadline=2, area=10, name="burst"),
            ]
        )
        res = simulate(
            ts, Fpga(width=10), EdfNf(), horizon=40,
            mode=MigrationMode.PINNED, stop_at_first_miss=False,
        )
        # PINNED never relocates; the evictions are preemptions.
        assert res.metrics.migrations == 0
        assert res.metrics.preemptions >= 2

    def test_pinned_no_worse_than_needed(self):
        ts = TaskSet([Task(wcet=2, period=10, area=4, name="only")])
        res = simulate(
            ts, Fpga(width=10), EdfNf(), horizon=30, mode=MigrationMode.PINNED
        )
        assert res.schedulable


class TestMigrationCounting:
    def test_relocation_counts_migrations(self):
        """A running job relocates when a higher-priority arrival takes its
        columns but enough width remains elsewhere."""
        ts = TaskSet(
            [
                Task(wcet=6, period=30, deadline=30, area=4, name="mover"),
                Task(wcet=2, period=30, deadline=6, area=6, name="blocker"),
            ]
        )
        res = simulate(
            ts, Fpga(width=10), EdfNf(), horizon=30,
            mode=MigrationMode.RELOCATABLE, offsets={"blocker": 1},
            stop_at_first_miss=False,
        )
        # t=1: blocker (earlier deadline) is placed first-fit at column 0,
        # overlapping mover's [0,4); mover relocates to [6,10) and keeps
        # running -> exactly one migration, no deadline misses.
        assert res.schedulable
        assert res.metrics.migrations == 1


class TestReconfigurationOverhead:
    def test_overhead_delays_completion(self):
        ts = TaskSet([Task(wcet=2, period=10, area=4, name="a")])
        rc = ReconfigurationModel(base=1)
        res = simulate(ts, Fpga(width=10), EdfNf(), horizon=10, reconfig=rc)
        assert res.metrics.worst_response["a"] == 3  # 1 load + 2 work

    def test_per_column_cost_scales_with_area(self):
        rc = ReconfigurationModel(per_column=F(1, 4))
        ts = TaskSet([Task(wcet=1, period=10, area=8, name="wide")])
        res = simulate(ts, Fpga(width=10), EdfNf(), horizon=10, reconfig=rc)
        assert res.metrics.worst_response["wide"] == 1 + 2  # 8/4 load

    def test_overhead_can_cause_miss(self):
        rc = ReconfigurationModel(base=3)
        ts = TaskSet([Task(wcet=3, period=10, deadline=5, area=4, name="tight")])
        assert simulate(ts, Fpga(width=10), EdfNf(), horizon=10).schedulable
        assert not simulate(
            ts, Fpga(width=10), EdfNf(), horizon=10, reconfig=rc
        ).schedulable

    def test_preemption_charges_reload(self):
        """A preempted-and-resumed job pays the load cost twice."""
        rc = ReconfigurationModel(base=1)
        ts = TaskSet(
            [
                Task(wcet=4, period=30, deadline=30, area=10, name="long"),
                Task(wcet=1, period=30, deadline=4, area=10, name="mid"),
            ]
        )
        res = simulate(
            ts, Fpga(width=10), EdfNf(), horizon=30,
            reconfig=rc, offsets={"mid": 2}, stop_at_first_miss=False,
        )
        # long: load 1 + work [1,2), preempt; mid: load+work [2,4);
        # long reload 1 + remaining 3 => completes at 8: response 8.
        assert res.metrics.worst_response["long"] == 8


class TestOffsetSampling:
    def test_sample_offsets_in_period_range(self):
        ts = TaskSet(
            [
                Task(wcet=1, period=5, area=2, name="a"),
                Task(wcet=1, period=9, area=2, name="b"),
            ]
        )
        offs = sample_offsets(ts, rng_from_seed(3))
        assert 0 <= offs["a"] < 5
        assert 0 <= offs["b"] < 9

    def test_offset_search_finds_counterexample(self):
        """Synchronous release masks this miss; offsets reveal it.

        Witness found by randomized search (see DESIGN.md §4.9): the
        synchronous pattern — the paper's coarse upper bound — survives,
        but some release offsets overload the device and miss.  This is
        precisely why §6 calls simulation only an upper bound.
        """
        ts = TaskSet(
            [
                Task(wcet=1.7, period=6.0, deadline=4.0, area=4, name="a"),
                Task(wcet=1.8, period=5.0, deadline=5.0, area=8, name="b"),
                Task(wcet=2.2, period=6.0, deadline=3.0, area=6, name="c"),
            ]
        )
        fpga = Fpga(width=10)
        sync = simulate(ts, fpga, EdfNf(), horizon=120)
        assert sync.schedulable  # the paper's coarse upper bound says yes
        res = simulate_with_offsets(
            ts, fpga, EdfNf(), horizon=120, rng=rng_from_seed(5), samples=60
        )
        assert not res.schedulable  # offset search tightens the bound

    def test_passes_when_truly_robust(self):
        ts = TaskSet(
            [
                Task(wcet=1, period=10, area=3, name="a"),
                Task(wcet=1, period=10, area=3, name="b"),
            ]
        )
        res = simulate_with_offsets(
            ts, Fpga(width=10), EdfNf(), horizon=60, rng=rng_from_seed(7), samples=10
        )
        assert res.schedulable

    def test_validation(self):
        ts = TaskSet([Task(wcet=1, period=5, area=2, name="a")])
        with pytest.raises(ValueError):
            simulate_with_offsets(
                ts, Fpga(width=10), EdfNf(), 10, rng_from_seed(1), samples=-1
            )
        with pytest.raises(ValueError):
            simulate_with_offsets(
                ts, Fpga(width=10), EdfNf(), 10, rng_from_seed(1),
                samples=0, include_synchronous=False,
            )
