"""Regression tests: the paper's §6 worked examples (Tables 1-3).

These are the only ground-truth numbers in the paper, so they pin down the
formula-ambiguity resolutions documented in DESIGN.md §4.  All arithmetic
is exact (Fractions).
"""

from fractions import Fraction as F

import pytest

from repro.core.dp import AreaModel, DpTest, dp_test
from repro.core.gn1 import Gn1Test, Gn1Variant, gn1_test
from repro.core.gn2 import Gn2Test, gn2_test
from repro.core.workload import gn1_beta, gn2_beta, gn2_lambda_candidates


class TestAcceptRejectMatrix:
    """The headline claim of Tables 1-3: the three tests are incomparable."""

    def test_table1_dp_accepts(self, table1, fpga10):
        assert dp_test(table1, fpga10).accepted

    def test_table1_gn1_rejects(self, table1, fpga10):
        assert not gn1_test(table1, fpga10).accepted

    def test_table1_gn2_rejects(self, table1, fpga10):
        assert not gn2_test(table1, fpga10).accepted

    def test_table2_dp_rejects(self, table2, fpga10):
        assert not dp_test(table2, fpga10).accepted

    def test_table2_gn1_accepts(self, table2, fpga10):
        assert gn1_test(table2, fpga10).accepted

    def test_table2_gn2_rejects(self, table2, fpga10):
        assert not gn2_test(table2, fpga10).accepted

    def test_table3_dp_rejects(self, table3, fpga10):
        assert not dp_test(table3, fpga10).accepted

    def test_table3_gn1_rejects(self, table3, fpga10):
        assert not gn1_test(table3, fpga10).accepted

    def test_table3_gn2_accepts(self, table3, fpga10):
        assert gn2_test(table3, fpga10).accepted


class TestTable3WorkedNumbers:
    """§6 prints intermediate numbers for Table 3; reproduce them exactly."""

    def test_system_utilization_is_4_94(self, table3):
        assert table3.system_utilization == F("4.94")

    def test_dp_bound_for_tau2_is_4_85_ish(self, table3, fpga10):
        # (A(H) - Amax + 1)(1 - UT(τ2)) + US(τ2) = 4*(5/7) + 2 = 34/7
        res = dp_test(table3, fpga10)
        tau2 = next(v for v in res.per_task if v.task == "tau2")
        assert tau2.rhs == F(34, 7)
        assert not tau2.passed  # 4.94 > 34/7 ≈ 4.857

    def test_gn1_beta1_is_0_82(self, table3):
        # β1 = 4.1/5 — the paper normalizes by D_i (worked example).
        beta = gn1_beta(table3[0], table3[1])
        assert beta == F("4.1") / 5

    def test_gn1_lhs_is_5_for_tau2(self, table3, fpga10):
        res = gn1_test(table3, fpga10)
        tau2 = next(v for v in res.per_task if v.task == "tau2")
        assert tau2.lhs == 5  # 7 * min(0.82, 5/7) = 7 * 5/7
        assert tau2.rhs == F(20, 7)  # (10-7+1)*(1-2/7)
        assert not tau2.passed

    def test_gn2_betas_at_lambda_042(self, table3):
        lam = F("0.42")  # C1/T1
        tau1, tau2 = table3
        assert gn2_beta(tau1, tau1, lam) == F("0.42")
        # paper prints 0.29 (rounded); exact value is 2/7
        assert gn2_beta(tau2, tau1, lam) == F(2, 7)
        assert gn2_beta(tau1, tau2, lam) == F("0.42")
        assert gn2_beta(tau2, tau2, lam) == F(2, 7)

    def test_gn2_condition2_numbers(self, table3, fpga10):
        # (Abnd - Amin)(1-λ) + Amin = (4-7)(0.58) + 7 = 5.26
        # Σ A_i min(β,1) = 7*0.42 + 7*(2/7) = 4.94 < 5.26 -> accepted
        lam = F("0.42")
        abnd = 10 - 7 + 1
        amin = 7
        rhs = (abnd - amin) * (1 - lam) + amin
        assert rhs == F("5.26")
        lhs = 7 * F("0.42") + 7 * F(2, 7)
        assert lhs == F("4.94")
        assert lhs < rhs

    def test_gn2_witnesses_via_condition2(self, table3, fpga10):
        for k in range(2):
            witness = Gn2Test().find_witness(table3, fpga10, k)
            assert witness is not None
            assert witness.condition == 2
            assert witness.lam == F("0.42")


class TestTable1KnifeEdge:
    """Table 1 vs GN2 is an exact boundary: condition 2 holds with equality
    at λ = 0.19, so the printed `<=` would accept while the paper claims
    rejection.  DESIGN.md §4.4."""

    def test_condition2_equality_at_lambda_019(self, table1):
        lam = F("0.19")
        tau1, tau2 = table1
        b1 = gn2_beta(tau1, tau1, lam)
        b2 = gn2_beta(tau2, tau1, lam)
        assert b1 == F("0.18")
        assert b2 == F("0.19")
        lhs = 9 * b1 + 6 * b2
        abnd, amin = 10 - 9 + 1, 6
        rhs = (abnd - amin) * (1 - lam) + amin
        assert lhs == rhs == F("2.76")

    def test_strict_variant_rejects_nonstrict_accepts(self, table1, fpga10):
        assert not Gn2Test(strict_condition2=True)(table1, fpga10).accepted
        assert Gn2Test(strict_condition2=False)(table1, fpga10).accepted

    def test_dp_equality_at_tau2_still_accepts(self, table1, fpga10):
        # DP's bound is `<=` and Table 1 also sits exactly on it for τ2.
        res = dp_test(table1, fpga10)
        tau2 = next(v for v in res.per_task if v.task == "tau2")
        assert tau2.lhs == tau2.rhs == F("2.76")
        assert res.accepted


class TestTable2Details:
    """Table 2 exercises the N_i = 0 carry-in-only path of Lemma 4."""

    def test_gn1_beta_with_zero_complete_jobs(self, table2):
        # window D1=8 < D2=9 -> N2 = 0, β2 = min(C2, D1)/D2 = 8/9
        beta = gn1_beta(table2[1], table2[0])
        assert beta == F(8, 9)

    def test_gn1_accepts_each_task(self, table2, fpga10):
        res = gn1_test(table2, fpga10)
        assert all(v.passed for v in res.per_task)

    def test_dp_rejects_at_tau1(self, table2, fpga10):
        res = dp_test(table2, fpga10)
        tau1 = next(v for v in res.per_task if v.task == "tau1")
        assert not tau1.passed
        # US(Γ) = 4.5*3/8 + 8*5/9 = 883/144
        assert tau1.lhs == F(27, 16) + F(40, 9)

    def test_gn2_rejects_for_tau1_regardless_of_lambda(self, table2, fpga10):
        assert Gn2Test().find_witness(table2, fpga10, 0) is None


class TestVariantSensitivity:
    """The DESIGN.md §4 variants change verdicts only where expected."""

    def test_gn1_theorem_literal_still_matches_tables(self, table1, table2, table3, fpga10):
        literal = Gn1Test(Gn1Variant.THEOREM_LITERAL)
        assert not literal(table1, fpga10).accepted
        assert literal(table2, fpga10).accepted
        assert not literal(table3, fpga10).accepted

    def test_gn1_bcl_window_diverges_on_table1(self, table1, table2, table3, fpga10):
        # Normalizing the workload by the window D_k (BCL's convention)
        # instead of the printed D_i ACCEPTS Table 1 (β2 = 1.9/7 -> LHS
        # 1.6286 < 1.64) — evidence that the paper's own evaluation used
        # the printed /D_i form, which rejects it.
        bcl = Gn1Test(Gn1Variant.BCL_WINDOW)
        assert bcl(table1, fpga10).accepted
        assert bcl(table2, fpga10).accepted
        assert not bcl(table3, fpga10).accepted

    def test_dp_real_area_variant_rejects_table1(self, table1, fpga10):
        # With Danne's real-valued α the guaranteed-busy area drops from 2
        # to 1 column and Table 1 no longer fits — the integer-area
        # correction is exactly what makes DP accept it.
        assert not DpTest(AreaModel.REAL)(table1, fpga10).accepted

    def test_lambda_candidates_table3(self, table3):
        # D=T everywhere: candidates are the task utilizations >= C_k/T_k.
        cands = gn2_lambda_candidates(table3, table3[0])
        assert cands == [F("0.42")]
        cands2 = gn2_lambda_candidates(table3, table3[1])
        assert cands2 == [F(2, 7), F("0.42")]
