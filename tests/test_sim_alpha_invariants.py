"""Trace-based verification of the §3 work-conserving lemmas.

These tests run randomized simulations with trace recording and assert
that every execution segment satisfies:

* Lemma 1 (EDF-FkF): occupied >= A(H) - Amax + 1 whenever jobs wait;
* Lemma 2 (EDF-NF):  occupied >= A(H) - A_k + 1 while a job of area A_k
  waits.

This is the executable counterpart of the paper's Fig. 1 and the
foundation both bound tests stand on — a simulator bug or a lemma
misreading would show up here.
"""

import numpy as np
import pytest

from repro.fpga.device import Fpga
from repro.gen.profiles import GenerationProfile, paper_unconstrained
from repro.gen.random_tasksets import generate_taskset
from repro.model.task import Task, TaskSet
from repro.sched.edf_fkf import EdfFkf
from repro.sched.edf_nf import EdfNf
from repro.sim.simulator import default_horizon, simulate
from repro.util.rngutil import rng_from_seed


def _run_traced(ts, fpga, scheduler, horizon=None):
    return simulate(
        ts,
        fpga,
        scheduler,
        horizon or default_horizon(ts, factor=5),
        record_trace=True,
        stop_at_first_miss=False,
    )


class TestFig1Scenarios:
    """Deterministic versions of the paper's Fig. 1 illustrations."""

    def _contended(self):
        # One running job + one waiting wide job: exactly Fig. 1's setup.
        return TaskSet(
            [
                Task(wcet=4, period=20, deadline=10, area=7, name="holder"),
                Task(wcet=2, period=20, deadline=12, area=9, name="wide"),
            ]
        )

    def test_fkf_alpha_segments(self):
        res = _run_traced(self._contended(), Fpga(width=10), EdfFkf(), horizon=20)
        assert res.trace is not None
        assert res.trace.check_fkf_alpha(amax=9) == []

    def test_nf_alpha_segments(self):
        res = _run_traced(self._contended(), Fpga(width=10), EdfNf(), horizon=20)
        assert res.trace.check_nf_alpha() == []

    def test_waiting_segment_exists(self):
        # sanity: the scenario really does produce a waiting interval
        res = _run_traced(self._contended(), Fpga(width=10), EdfNf(), horizon=20)
        assert any(s.queue_nonempty for s in res.trace.segments)

    def test_nf_check_would_catch_violation(self):
        """Negative control: a fabricated under-occupied segment with a
        waiting job must be flagged."""
        from repro.sim.trace import Trace, TraceSegment

        trace = Trace(capacity=10)
        trace.append(
            TraceSegment(start=0, end=1, running=(("j1", 2),), waiting=(("j2", 5),))
        )
        # occupied 2 < 10 - 5 + 1 = 6
        violations = trace.check_nf_alpha()
        assert len(violations) == 1
        assert violations[0].required == 6


@pytest.mark.parametrize("seed", range(6))
class TestRandomizedAlphaInvariants:
    def _taskset(self, seed, n=8):
        rng = rng_from_seed(1000 + seed)
        profile = GenerationProfile(
            n_tasks=n, area_min=1, area_max=60, period_min=5, period_max=20,
            util_min=0.1, util_max=0.9, name="alpha-stress",
        )
        return generate_taskset(profile, rng)

    def test_fkf_lemma1_holds(self, seed):
        ts = self._taskset(seed)
        fpga = Fpga(width=100)
        res = _run_traced(ts, fpga, EdfFkf())
        violations = res.trace.check_fkf_alpha(amax=int(ts.max_area))
        assert violations == [], violations[:3]

    def test_nf_lemma2_holds(self, seed):
        ts = self._taskset(seed)
        fpga = Fpga(width=100)
        res = _run_traced(ts, fpga, EdfNf())
        violations = res.trace.check_nf_alpha()
        assert violations == [], violations[:3]

    def test_nf_occupancy_at_least_fkf(self, seed):
        """EDF-NF never leaves more area idle than EDF-FkF on the same
        workload (aggregate busy area-time)."""
        ts = self._taskset(seed)
        fpga = Fpga(width=100)
        nf = _run_traced(ts, fpga, EdfNf())
        fkf = _run_traced(ts, fpga, EdfFkf())
        # identical released work; NF can only fit more per instant, but
        # completing earlier can lower the *integral*; compare occupancy
        # only while both have backlogs: use the lemma-driven weak check.
        assert nf.trace.busy_area_time() >= 0  # structural sanity
        assert nf.trace.check_nf_alpha() == []
        assert fkf.trace.check_fkf_alpha(int(ts.max_area)) == []


class TestTraceAccounting:
    def test_segments_partition_time(self):
        ts = TaskSet([Task(wcet=2, period=5, area=3, name="a")])
        res = _run_traced(ts, Fpga(width=10), EdfNf(), horizon=20)
        segs = res.trace.segments
        assert segs[0].start == 0
        for a, b in zip(segs, segs[1:]):
            assert a.end == b.start
        assert segs[-1].end == 20

    def test_busy_area_time_matches_metrics(self):
        ts = TaskSet(
            [
                Task(wcet=2, period=5, area=3, name="a"),
                Task(wcet=1, period=7, area=9, name="b"),
            ]
        )
        res = _run_traced(ts, Fpga(width=10), EdfNf(), horizon=35)
        assert res.trace.busy_area_time() == res.metrics.busy_area_time

    def test_average_occupancy_in_unit_range(self):
        ts = TaskSet([Task(wcet=4, period=5, area=8, name="hot")])
        res = _run_traced(ts, Fpga(width=10), EdfNf(), horizon=50)
        occ = res.trace.average_occupancy()
        assert 0.0 < occ <= 1.0
        assert occ == pytest.approx(8 * 4 / (5 * 10))

    def test_rejects_negative_segment(self):
        from repro.sim.trace import Trace, TraceSegment

        trace = Trace(capacity=10)
        with pytest.raises(ValueError):
            trace.append(TraceSegment(start=5, end=4, running=(), waiting=()))
