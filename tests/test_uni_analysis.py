"""Tests for uniprocessor EDF analysis: dbf, PDA, QPA."""

from fractions import Fraction as F

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.task import Task, TaskSet
from repro.uni.dbf import (
    demand_bound,
    demand_points,
    last_demand_point_before,
    taskset_demand,
)
from repro.uni.pda import pda_analysis_bound, processor_demand_test
from repro.uni.qpa import qpa_test
from repro.uni.utilization import edf_utilization_test


import itertools

_counter = itertools.count()


def _t(c, d, t, name=None):
    return Task(
        wcet=c, deadline=d, period=t, name=name or f"{c}/{d}/{t}#{next(_counter)}"
    )


class TestDbf:
    def test_zero_before_first_deadline(self):
        assert demand_bound(_t(2, 5, 10), 4) == 0

    def test_steps_at_deadlines(self):
        task = _t(2, 5, 10)
        assert demand_bound(task, 5) == 2
        assert demand_bound(task, 14) == 2
        assert demand_bound(task, 15) == 4

    def test_implicit_deadline(self):
        task = _t(3, 10, 10)
        assert demand_bound(task, 10) == 3
        assert demand_bound(task, 25) == 6

    def test_taskset_demand_sums(self):
        ts = TaskSet([_t(2, 5, 10, "a"), _t(3, 10, 10, "b")])
        assert taskset_demand(ts, 10) == 5

    def test_demand_points(self):
        ts = TaskSet([_t(1, 4, 6, "a"), _t(1, 5, 10, "b")])
        assert demand_points(ts, 17) == [4, 5, 10, 15, 16]

    def test_last_demand_point_before(self):
        ts = TaskSet([_t(1, 4, 6, "a"), _t(1, 5, 10, "b")])
        assert last_demand_point_before(ts, 17) == 16
        assert last_demand_point_before(ts, 16) == 15
        assert last_demand_point_before(ts, 4) is None

    @given(st.integers(1, 60))
    def test_dbf_monotone(self, t):
        task = _t(2, 5, 7)
        assert demand_bound(task, t) <= demand_bound(task, t + 1)


class TestUtilizationTest:
    def test_exact_for_implicit(self):
        assert edf_utilization_test(TaskSet([_t(5, 10, 10)])).accepted
        assert edf_utilization_test(TaskSet([_t(5, 10, 10), _t(5, 10, 10)])).accepted
        assert not edf_utilization_test(
            TaskSet([_t(6, 10, 10), _t(5, 10, 10)])
        ).accepted

    def test_full_utilization_accepted(self):
        assert edf_utilization_test(TaskSet([_t(10, 10, 10)])).accepted

    def test_infeasible_task_rejected(self):
        assert not edf_utilization_test(TaskSet([_t(6, 5, 10)])).accepted


class TestPda:
    def test_accepts_schedulable_constrained(self):
        ts = TaskSet([_t(1, 4, 6, "a"), _t(2, 5, 10, "b")])
        assert processor_demand_test(ts).accepted

    def test_rejects_constrained_overload(self):
        # UT < 1 but deadline-constrained demand exceeds capacity at t=5
        ts = TaskSet([_t(3, 5, 20, "a"), _t(3, 5, 20, "b")])
        assert not processor_demand_test(ts).accepted

    def test_rejects_ut_above_one(self):
        ts = TaskSet([_t(6, 10, 10, "a"), _t(5, 10, 10, "b")])
        assert not processor_demand_test(ts).accepted

    def test_rejects_infeasible_task(self):
        assert not processor_demand_test(TaskSet([_t(6, 5, 10)])).accepted

    def test_analysis_bound_grows_with_constrained_deadlines(self):
        implicit = TaskSet([_t(2, 10, 10, "a"), _t(3, 12, 12, "b")])
        assert pda_analysis_bound(implicit) == 12
        constrained = TaskSet([_t(2, 5, 10, "a"), _t(3, 6, 12, "b")])
        assert pda_analysis_bound(constrained) >= 6

    def test_bound_rejects_overload(self):
        with pytest.raises(ValueError):
            pda_analysis_bound(TaskSet([_t(11, 10, 10)]))

    def test_full_utilization_implicit_uses_hyperperiod(self):
        ts = TaskSet([_t(F(5), 10, 10, "a"), _t(F(5), 10, 10, "b")])
        assert pda_analysis_bound(ts) == 10
        assert processor_demand_test(ts).accepted


@st.composite
def uni_tasksets(draw):
    n = draw(st.integers(1, 5))
    tasks = []
    for i in range(n):
        period = draw(st.integers(3, 15))
        deadline = draw(st.integers(2, period))
        wcet = F(draw(st.integers(1, deadline * 10)), 10)
        tasks.append(_t(wcet, deadline, period, name=f"t{i}"))
    return TaskSet(tasks)


class TestQpaEquivalence:
    def test_matches_pda_on_examples(self):
        examples = [
            TaskSet([_t(1, 4, 6, "a"), _t(2, 5, 10, "b")]),
            TaskSet([_t(3, 5, 20, "a"), _t(3, 5, 20, "b")]),
            TaskSet([_t(2, 6, 8, "a"), _t(1, 3, 9, "b"), _t(1, 9, 12, "c")]),
        ]
        for ts in examples:
            assert qpa_test(ts).accepted == processor_demand_test(ts).accepted

    @given(ts=uni_tasksets())
    @settings(max_examples=150, deadline=None)
    def test_qpa_equals_pda(self, ts):
        """QPA and PDA are the same exact test, computed differently."""
        assert qpa_test(ts).accepted == processor_demand_test(ts).accepted

    def test_qpa_rejects_infeasible(self):
        assert not qpa_test(TaskSet([_t(6, 5, 10)])).accepted

    def test_qpa_rejects_ut_above_one(self):
        assert not qpa_test(TaskSet([_t(6, 10, 10), _t(5, 10, 10)])).accepted
