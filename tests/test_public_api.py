"""Public-API hygiene: exports resolve, are documented, and stay stable."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.model",
    "repro.util",
    "repro.gen",
    "repro.core",
    "repro.mp",
    "repro.uni",
    "repro.fpga",
    "repro.fpga2d",
    "repro.sched",
    "repro.sim",
    "repro.vector",
    "repro.incremental",
    "repro.experiments",
]


@pytest.mark.parametrize("name", PACKAGES)
class TestPackageSurface:
    def test_imports(self, name):
        importlib.import_module(name)

    def test_has_docstring(self, name):
        mod = importlib.import_module(name)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 20, name

    def test_all_entries_resolve(self, name):
        mod = importlib.import_module(name)
        exported = getattr(mod, "__all__", [])
        assert exported, f"{name} should declare __all__"
        for entry in exported:
            assert hasattr(mod, entry), f"{name}.{entry} missing"

    def test_exported_callables_documented(self, name):
        mod = importlib.import_module(name)
        undocumented = []
        for entry in getattr(mod, "__all__", []):
            obj = getattr(mod, entry)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(entry)
        assert undocumented == [], f"{name}: undocumented exports {undocumented}"


class TestTopLevelConvenience:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_quickstart_snippet_from_docstring(self):
        """The README/module-docstring quickstart must actually work."""
        from repro import Fpga, Task, TaskSet
        from repro.core import dp_test, gn2_test

        ts = TaskSet(
            [
                Task(wcet=2.1, deadline=5, period=5, area=7),
                Task(wcet=2.0, deadline=7, period=7, area=7),
            ]
        )
        fpga = Fpga(width=10)
        assert dp_test(ts, fpga).accepted is False
        assert gn2_test(ts, fpga).accepted is True
