"""Seeded RL011 violation: the host sync hides one helper away.

RL005 bans ``.tolist()`` written directly inside a sim_vec pass loop;
here the loop body only calls ``_collect`` and the stall lives in the
helper — invisible per-module, caught by the HOST_SYNC effect closure.
"""


def _collect(row):
    return row.tolist()


def run_passes(frames):
    out = []
    for frame in frames:
        out.append(_collect(frame))
    return out
