"""RL006 good: time.sleep / strftime are not clock *reads*, and naming
a local function perf_counter shadows nothing."""

import time


def wait(dt):
    time.sleep(dt)
    return time.strftime("%Y")
