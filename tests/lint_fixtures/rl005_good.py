"""RL005 good (linted as repro.vector.sim_vec): sync at the batch
boundary only; keyed dict .get inside loops stays legal."""

from repro.vector import xp


def fused_pass(live, options):
    count = 0
    for key in options:
        count += options.get(key, 0)  # dict lookup, not a device sync
    while live.any():
        live = advance(live)
    xp.synchronize()  # boundary sync, outside any loop
    return xp.asnumpy(live), count, live.sum().item()  # boundary read


def advance(live):
    return live
