"""Pragma-shaped text inside strings is inert — this docstring says
``# repro-lint: disable=RL001 -- example`` and must neither suppress
anything nor count as an unused pragma (RL008)."""

EXAMPLE = "# repro-lint: disable-file=RL004 -- also inert"


def nothing():
    return EXAMPLE
