"""RL013-clean twins: re-validate after the await, or reserve before
it and roll back in an except handler."""

import asyncio


class Engine:
    def __init__(self):
        self.resident = set()
        self.version = 0

    async def admit(self, task, cost):
        if task in self.resident:
            return False
        await asyncio.sleep(cost)
        if task in self.resident:
            return False
        self.resident.add(task)
        return True

    async def reserve(self, task, cost):
        self.resident.add(task)
        try:
            await asyncio.sleep(cost)
        except BaseException:
            self.resident.discard(task)
            raise
        return True
