"""RL002 good: lazy function-body resolution and TYPE_CHECKING-only
imports never execute at module import time."""

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    import torch


def resolve(x) -> "torch.Tensor":
    import torch  # the sanctioned lazy escape hatch

    return torch.as_tensor(x)
