"""RL003 good (linted as an allowlisted generation module): the
sampler layer constructs seeded generators freely."""

import numpy as np


def sample(seed, n):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, size=n)
