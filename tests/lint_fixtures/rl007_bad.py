"""RL007 bad (linted as repro.core.newtest): a core module importing
the experiments layer at module scope."""

from repro.experiments.figures import run_figure  # line 4: RL007
from repro.model.task import TaskSet


def analyze(ts: TaskSet):
    return run_figure(ts)
