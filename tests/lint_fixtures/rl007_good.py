"""RL007 good (linted as repro.core.newtest): downward imports at
module scope; an upward reference deferred to a function body."""

from repro.model.task import TaskSet
from repro.util.mathutil import lcm_all


def analyze(ts: TaskSet):
    from repro.experiments.figures import run_figure  # sanctioned lazy

    return run_figure(ts), lcm_all([int(t.period) for t in ts])
