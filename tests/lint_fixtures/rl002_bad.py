"""RL002 bad: module-top-level accelerator imports (plain, aliased,
try-wrapped — all execute at import time)."""

import torch  # line 4: RL002

try:
    import cupy as cp  # line 7: RL002
except ImportError:
    cp = None


def run(x):
    return torch.as_tensor(x)
