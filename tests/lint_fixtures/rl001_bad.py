"""RL001 bad: a kernel module importing numpy directly.

Linted as ``repro.vector.kern`` — both the top-level and the
function-body import are violations (no lazy escape hatch for numpy
inside the kernel surface).
"""

import numpy as np  # line 8: RL001


def kernel(batch):
    from numpy import asarray  # line 12: RL001

    return asarray(np.zeros_like(batch))
