"""RL004 good: float64 pinning at the batch boundary; "float32" in a
docstring or comment is not a dtype.  Widening float32 inputs is fine —
only producing/naming the narrow dtype is flagged."""

from repro.vector import xp


def pin(batch, ns):
    # float32 inputs must widen here, not stay narrow.
    return ns.asarray(batch, dtype=ns.float64)
