"""Seeded RL013 violations: check-then-act straddling an await."""

import asyncio


class Engine:
    def __init__(self):
        self.resident = set()
        self.version = 0

    async def admit(self, task, cost):
        if task in self.resident:
            return False
        await asyncio.sleep(cost)
        self.resident.add(task)
        return True

    async def bump(self, fresh):
        v = self.version
        await asyncio.sleep(0)
        self.version = v + fresh
