"""RL007 bad (linted as repro.incremental.newmod): the analysis layers
must never depend back on the service front — the service imports
*them*, not the other way around."""

from repro.service.engine import BatchEngine  # line 5: RL007


def decide(requests):
    return BatchEngine().process_batch(requests)
