"""RL005 bad (linted as repro.vector.sim_vec): per-iteration host-device
syncs inside pass loops."""


def fused_pass(live, deadlines):
    total = 0.0
    while live.any():
        total += live.sum().item()  # line 8: RL005 (.item in while)
        live = advance(live)
    for row in deadlines:
        misses = row.tolist()  # line 11: RL005 (.tolist in for)
        buf = row.get()  # line 12: RL005 (zero-arg .get in for)
    return total, misses, buf


def advance(live):
    return live
