"""Seeded RL010 violation: the draw is two helpers deep.

RL003 sees nothing here — ``repro.vector.newkern`` is not a strict
kernel module, so a method-style draw on a passed-in generator is
invisible to the per-module rule.  The whole-program effect fixpoint
still reaches it through the helper chain.
"""


def _draw(rng, n):
    return rng.uniform(size=n)


def _indirect(rng, n):
    return _draw(rng, n)


def kernel_mix(xs, rng):
    noise = _indirect(rng, len(xs))
    return xs + noise
