"""RL001 good: a kernel module computing through the xp namespace."""

from repro.vector import xp
from repro.vector.xp import host as hnp


def kernel(batch, backend=None):
    ns = xp.resolve(backend)
    arr = ns.asarray(batch, dtype=ns.float64)
    return xp.asnumpy(arr), hnp.zeros(3)
