"""Suppression forms (linted as repro.vector.kern): every violation
below carries a pragma, so the file lints clean — and every pragma is
used, so no RL008 either."""

import numpy as np  # repro-lint: disable=RL001 -- same-line form

# repro-lint: disable=RL001 -- standalone form covers the next line
from numpy import asarray


def kernel(batch, ns):
    a = ns.asarray(
        batch, dtype=ns.float32  # repro-lint: disable=RL004 -- deliberate narrow staging copy
    )
    return asarray(a), np.zeros(3)
