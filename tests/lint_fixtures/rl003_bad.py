"""RL003 bad: RNG construction and global-state draws outside the
sampler layer (linted as a vector kernel module)."""

import random  # line 4: RL003 (stdlib random)

from repro.vector import xp


def kernel(batch):
    rng = xp.host.random.default_rng(17)  # line 10: RL003 (construction)
    jitter = rng.uniform(0.0, 1.0, size=8)  # line 11: RL003 (strict draw)
    return random.shuffle(list(batch)), jitter  # line 12: RL003 (global draw)
