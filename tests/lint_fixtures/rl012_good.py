"""RL012-clean twin: timestamps arrive as data (minted by
repro.service.clock or the caller), never read in the analysis tree."""


def elapsed(start, now):
    return now - start


def span(events):
    return max(events) - min(events)
