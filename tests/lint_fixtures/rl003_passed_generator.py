"""RL003 good (linted as a non-strict, non-allowlisted module): drawing
from an explicitly *passed* generator is the sanctioned pattern — only
construction and global-state draws are flagged outside strict kernels."""


def score(rng, n):
    return rng.uniform(0.0, 1.0, size=n).sum()
