"""RL010-clean twin: the noise is sampled host-side by the caller and
passed in as data, so no call chain from the kernel reaches a draw."""


def _mix(xs, noise):
    return xs + noise


def kernel_mix(xs, noise):
    return _mix(xs, noise)
