"""RL004 bad: float32 dtypes in the kernel surface (attribute, string
keyword, astype-string forms)."""

from repro.vector import xp


def kernel(batch, ns):
    a = ns.asarray(batch, dtype=ns.float32)  # line 8: RL004 (attribute)
    b = ns.zeros(3, dtype="float32")  # line 9: RL004 (dtype string)
    return a, b.astype("float32")  # line 10: RL004 (astype string)
