"""RL008: pragmas that no finding matches are themselves findings
(linted as repro.vector.kern)."""

from repro.vector import xp  # repro-lint: disable=RL001 -- line 4: unused (xp is not numpy)

# repro-lint: disable-file=RL005 -- line 6: unused (no sync calls here)


def kernel(batch, ns):
    return ns.asarray(batch, dtype=ns.float64)
