"""RL006 bad (linted as repro.service.batcher): clock reads outside the
``repro.service.clock`` shim are still findings — service code must
route timing through the one allowlisted module."""

import time
from time import monotonic


def window_deadline(max_wait):
    start = time.monotonic()  # line 10: RL006
    return monotonic() + max_wait - start  # line 11: RL006
