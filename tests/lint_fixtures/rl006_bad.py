"""RL006 bad: wall-clock reads in the analysis tree (module-call,
aliased-module, and from-import forms)."""

import time
import time as t
from time import perf_counter as pc


def profile(fn):
    start = time.time()  # line 10: RL006
    mid = t.monotonic()  # line 11: RL006
    fn()
    return pc() - start + mid  # line 13: RL006
