"""RL007 good (linted as repro.service.engine): the service layer sits
*above* the incremental engine and the vector kernels — importing both
downward is its sanctioned shape."""

from repro.incremental.reverdict import accept_masks
from repro.incremental.state import AdmissionState
from repro.vector.xp import get_backend


def shape(state: AdmissionState):
    return get_backend(None), accept_masks
