"""RL006 good (linted as repro.service.clock): the admission service's
single allowlisted wall-clock touchpoint — batching-window deadlines and
latency metrics may read the clock here, and only here."""

import time


def now() -> float:
    return time.monotonic()
