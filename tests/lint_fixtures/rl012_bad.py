"""Seeded RL012 violation: a locally-excused clock still leaks.

The RL006 pragma excuses the direct read; RL012 flags the *caller*,
because wall-clock influence must never be inherited silently outside
repro.service.clock.
"""

import time


def _stamp():
    return time.perf_counter()  # repro-lint: disable=RL006 -- seeded fixture: the point is the caller below


def elapsed(start):
    return _stamp() - start
