"""RL011-clean twin: the materialising helper runs once at the batch
boundary, outside every pass loop."""


def _collect(rows):
    return rows.tolist()


def run_passes(frames, xp):
    acc = frames
    for _ in range(3):
        acc = xp.step(acc)
    return _collect(acc)
