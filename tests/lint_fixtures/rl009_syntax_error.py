"""RL009: a file the parser rejects cannot be checked."""

def broken(:
    return None
