# repro-lint: disable-file=RL001,RL004 -- multi-id file-level form
"""File-level suppression (linted as repro.vector.kern): one pragma
covers every RL001/RL004 finding in the file."""

import numpy as np
from numpy import asarray


def kernel(batch, ns):
    a = ns.asarray(batch, dtype=ns.float32)
    return asarray(a), np.float32(0.0)
