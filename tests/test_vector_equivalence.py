"""Cross-validation: vectorized verdicts == scalar reference verdicts."""

import numpy as np
import pytest

from repro.core.dp import DpTest, AreaModel, dp_test
from repro.core.gn1 import Gn1Test, Gn1Variant, gn1_test
from repro.core.gn2 import Gn2Test, gn2_test
from repro.fpga.device import Fpga
from repro.gen.profiles import (
    GenerationProfile,
    paper_unconstrained,
    spatially_heavy_temporally_light,
    spatially_light_temporally_heavy,
)
from repro.vector.batch import TaskSetBatch, generate_batch
from repro.vector.dp_vec import dp_accepts, necessary_mask
from repro.vector.gn1_vec import gn1_accepts
from repro.vector.gn2_vec import gn2_accepts
from repro.util.rngutil import rng_from_seed

CAPACITY = 100
FPGA = Fpga(width=CAPACITY)

PROFILES = [
    paper_unconstrained(2),
    paper_unconstrained(4),
    paper_unconstrained(10),
    spatially_heavy_temporally_light(),
    spatially_light_temporally_heavy(),
    # constrained-deadline stress (exercises N_i = 0 and carry paths)
    GenerationProfile(n_tasks=5, area_min=1, area_max=40, name="vec-stress"),
]


def _batch(profile, seed, count=150):
    batch = generate_batch(profile, count, rng_from_seed(seed))
    # spread across the utilization axis like the figures do
    rng = rng_from_seed(seed + 1)
    targets = rng.uniform(2, CAPACITY, size=count)
    scaled = batch.scaled_to_system_utilization(targets)
    # keep only model-feasible sets (C <= T); the rest are rejected by
    # both paths identically anyway, but keep some infeasible ones too
    return scaled


class TestBatchStructure:
    def test_from_to_tasksets_roundtrip(self):
        batch = generate_batch(paper_unconstrained(4), 10, rng_from_seed(3))
        tasksets = batch.to_tasksets()
        again = TaskSetBatch.from_tasksets(tasksets)
        assert np.allclose(batch.wcet, again.wcet)
        assert np.allclose(batch.area, again.area)

    def test_aggregates_match_object_model(self):
        batch = generate_batch(paper_unconstrained(5), 20, rng_from_seed(5))
        for i in (0, 7, 19):
            ts = batch.taskset(i)
            assert float(ts.system_utilization) == pytest.approx(
                batch.system_utilization[i]
            )
            assert float(ts.time_utilization) == pytest.approx(
                batch.time_utilization[i]
            )
            assert ts.max_area == batch.max_area[i]

    def test_scaling_hits_targets(self):
        batch = generate_batch(paper_unconstrained(5), 20, rng_from_seed(7))
        targets = np.linspace(5, 95, 20)
        scaled = batch.scaled_to_system_utilization(targets)
        assert np.allclose(scaled.system_utilization, targets)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            TaskSetBatch(
                np.ones((2, 3)), np.ones((2, 3)), np.ones((2, 3)), np.ones((2, 4))
            )
        with pytest.raises(ValueError):
            TaskSetBatch(np.ones(3), np.ones(3), np.ones(3), np.ones(3))

    def test_generate_batch_validation(self):
        with pytest.raises(ValueError):
            generate_batch(paper_unconstrained(3), 0, rng_from_seed(1))

    def test_feasible_mask(self):
        batch = generate_batch(paper_unconstrained(3), 50, rng_from_seed(9))
        assert batch.feasible_mask.all()  # factor <= 1 guarantees C <= T
        hot = batch.scaled_to_system_utilization(np.full(50, 1e4))
        assert not hot.feasible_mask.any()


@pytest.mark.usefixtures("array_backend")
@pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
@pytest.mark.parametrize("seed", [1, 2])
class TestScalarVectorEquivalence:
    def test_necessary_mask(self, profile, seed):
        from repro.core.interfaces import necessary_conditions

        batch = _batch(profile, seed)
        vec = necessary_mask(batch, CAPACITY)
        for i, ts in enumerate(batch.to_tasksets()):
            assert vec[i] == necessary_conditions(ts, FPGA).accepted, f"set {i}"

    def test_dp(self, profile, seed):
        batch = _batch(profile, seed)
        vec = dp_accepts(batch, CAPACITY)
        for i, ts in enumerate(batch.to_tasksets()):
            assert vec[i] == dp_test(ts, FPGA).accepted, f"set {i}: {ts}"

    def test_dp_real_area_variant(self, profile, seed):
        batch = _batch(profile, seed)
        vec = dp_accepts(batch, CAPACITY, integer_areas=False)
        scalar = DpTest(AreaModel.REAL)
        for i, ts in enumerate(batch.to_tasksets()):
            assert vec[i] == scalar(ts, FPGA).accepted, f"set {i}"

    def test_gn1(self, profile, seed):
        batch = _batch(profile, seed)
        vec = gn1_accepts(batch, CAPACITY)
        for i, ts in enumerate(batch.to_tasksets()):
            assert vec[i] == gn1_test(ts, FPGA).accepted, f"set {i}: {ts}"

    def test_gn1_variants(self, profile, seed):
        batch = _batch(profile, seed)
        literal = gn1_accepts(batch, CAPACITY, plus_one_bound=False)
        window = gn1_accepts(batch, CAPACITY, window_denominator=True)
        s_literal = Gn1Test(Gn1Variant.THEOREM_LITERAL)
        s_window = Gn1Test(Gn1Variant.BCL_WINDOW)
        for i, ts in enumerate(batch.to_tasksets()):
            assert literal[i] == s_literal(ts, FPGA).accepted, f"set {i}"
            assert window[i] == s_window(ts, FPGA).accepted, f"set {i}"

    def test_gn2(self, profile, seed):
        batch = _batch(profile, seed)
        vec = gn2_accepts(batch, CAPACITY)
        for i, ts in enumerate(batch.to_tasksets()):
            assert vec[i] == gn2_test(ts, FPGA).accepted, f"set {i}: {ts}"

    def test_gn2_nonstrict_variant(self, profile, seed):
        batch = _batch(profile, seed)
        vec = gn2_accepts(batch, CAPACITY, strict_condition2=False)
        scalar = Gn2Test(strict_condition2=False)
        for i, ts in enumerate(batch.to_tasksets()):
            assert vec[i] == scalar(ts, FPGA).accepted, f"set {i}"


@pytest.mark.usefixtures("array_backend")
class TestFloat32Inputs:
    """Knife-edge dtype pinning: float32 input batches must yield the
    same verdicts as their (exactly-representable) float64 twins — the
    kernels pin every array to float64 at the batch boundary, so no
    backend computes the strict-inequality bounds in single precision."""

    def _pair(self, seed=11, count=120):
        b64 = _batch(paper_unconstrained(6), seed, count=count)
        f32 = TaskSetBatch(
            b64.wcet.astype(np.float32), b64.period.astype(np.float32),
            b64.deadline.astype(np.float32), b64.area.astype(np.float32),
        )
        # Evaluate the float64 reference on the float32 values (the cast
        # rounds); upcasting back is exact, so verdicts must agree.
        back = TaskSetBatch(
            f32.wcet.astype(np.float64), f32.period.astype(np.float64),
            f32.deadline.astype(np.float64), f32.area.astype(np.float64),
        )
        return f32, back

    def test_analytical_verdicts_match_float64(self):
        f32, back = self._pair()
        assert (dp_accepts(f32, CAPACITY) == dp_accepts(back, CAPACITY)).all()
        assert (gn1_accepts(f32, CAPACITY) == gn1_accepts(back, CAPACITY)).all()
        assert (gn2_accepts(f32, CAPACITY) == gn2_accepts(back, CAPACITY)).all()
        assert (
            necessary_mask(f32, CAPACITY) == necessary_mask(back, CAPACITY)
        ).all()

    def test_float32_verdicts_match_scalar_reference(self):
        """And the float32 batch agrees with the scalar tests evaluated
        on the rounded values, bit for bit."""
        f32, back = self._pair(seed=12, count=60)
        vec = dp_accepts(f32, CAPACITY)
        for i, ts in enumerate(back.to_tasksets()):
            assert vec[i] == dp_test(ts, FPGA).accepted, f"set {i}"


class TestChunking:
    def test_chunked_equals_unchunked(self):
        batch = _batch(paper_unconstrained(6), 42, count=100)
        full = gn2_accepts(batch, CAPACITY, chunk=10_000)
        small = gn2_accepts(batch, CAPACITY, chunk=7)
        assert (full == small).all()

    def test_chunk_validation(self):
        batch = _batch(paper_unconstrained(3), 1, count=5)
        with pytest.raises(ValueError):
            gn2_accepts(batch, CAPACITY, chunk=0)

    def test_paper_tables_through_vector_path(self, table1, table2, table3):
        """The three paper tables, evaluated via the batch path (floats)."""
        for ts, expect in [
            (table1, (True, False, False)),
            (table2, (False, True, False)),
            (table3, (False, False, True)),
        ]:
            batch = TaskSetBatch.from_tasksets([ts])
            got = (
                bool(dp_accepts(batch, 10)[0]),
                bool(gn1_accepts(batch, 10)[0]),
                bool(gn2_accepts(batch, 10)[0]),
            )
            assert got == expect
