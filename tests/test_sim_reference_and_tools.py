"""Cross-validation of the event-driven simulator against the quantized
reference, plus the hyperperiod decision and Gantt rendering tools."""

from fractions import Fraction as F

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga.device import Fpga
from repro.model.task import Task, TaskSet
from repro.sched.edf_fkf import EdfFkf
from repro.sched.edf_nf import EdfNf
from repro.sim.gantt import render_gantt
from repro.sim.hyperperiod import SynchronousVerdict, decide_synchronous
from repro.sim.reference import simulate_reference
from repro.sim.simulator import simulate


@st.composite
def integer_tasksets(draw):
    n = draw(st.integers(1, 5))
    tasks = []
    for i in range(n):
        period = draw(st.integers(3, 12))
        deadline = draw(st.integers(2, period))
        wcet = draw(st.integers(1, deadline))
        area = draw(st.integers(1, 8))
        tasks.append(
            Task(wcet=wcet, period=period, deadline=deadline, area=area, name=f"t{i}")
        )
    return TaskSet(tasks)


class TestReferenceEquivalence:
    """On integer workloads every event is integral, so the quantized
    reference simulator is exact — both engines must agree."""

    @given(ts=integer_tasksets(), sched=st.sampled_from([EdfNf(), EdfFkf()]))
    @settings(max_examples=120, deadline=None)
    def test_verdict_and_accounting_agree(self, ts, sched):
        fpga = Fpga(width=10)
        horizon = 60
        ref = simulate_reference(ts, fpga, sched, horizon, stop_at_first_miss=False)
        evt = simulate(
            ts, fpga, sched, horizon, eps=0, stop_at_first_miss=False
        )
        assert ref.schedulable == evt.schedulable
        assert ref.jobs_released == evt.metrics.jobs_released
        assert ref.busy_area_time == evt.metrics.busy_area_time

    @given(ts=integer_tasksets())
    @settings(max_examples=80, deadline=None)
    def test_first_miss_time_agrees(self, ts):
        fpga = Fpga(width=10)
        ref = simulate_reference(ts, fpga, EdfNf(), 60)
        evt = simulate(ts, fpga, EdfNf(), 60, eps=0)
        if not ref.schedulable:
            assert not evt.schedulable
            assert evt.misses[0].deadline == ref.first_miss_time

    @given(ts=integer_tasksets(), offset=st.integers(0, 9))
    @settings(max_examples=60, deadline=None)
    def test_agreement_with_offsets(self, ts, offset):
        fpga = Fpga(width=10)
        offsets = {ts[0].name: offset}
        ref = simulate_reference(
            ts, fpga, EdfNf(), 60, offsets=offsets, stop_at_first_miss=False
        )
        evt = simulate(
            ts, fpga, EdfNf(), 60, offsets=offsets, eps=0, stop_at_first_miss=False
        )
        assert ref.schedulable == evt.schedulable
        assert ref.busy_area_time == evt.metrics.busy_area_time

    def test_rejects_fractional_parameters(self):
        ts = TaskSet([Task(wcet=1.5, period=5, area=2, name="frac")])
        with pytest.raises(ValueError):
            simulate_reference(ts, Fpga(width=10), EdfNf(), 20)

    def test_rejects_bad_horizon(self):
        ts = TaskSet([Task(wcet=1, period=5, area=2, name="a")])
        with pytest.raises(ValueError):
            simulate_reference(ts, Fpga(width=10), EdfNf(), 0)


class TestHyperperiodDecision:
    def test_schedulable_taskset_decided(self):
        ts = TaskSet(
            [
                Task(wcet=2, period=5, area=4, name="a"),
                Task(wcet=3, period=7, area=5, name="b"),
            ]
        )
        verdict, miss = decide_synchronous(ts, Fpga(width=10), EdfNf())
        assert verdict is SynchronousVerdict.SCHEDULABLE
        assert miss is None

    def test_unschedulable_taskset_decided_with_miss_time(self):
        ts = TaskSet(
            [
                Task(wcet=4, period=5, area=8, name="a"),
                Task(wcet=4, period=5, area=8, name="b"),
            ]
        )
        verdict, miss = decide_synchronous(ts, Fpga(width=10), EdfNf())
        assert verdict is SynchronousVerdict.UNSCHEDULABLE
        assert miss == 5

    def test_rational_periods(self):
        ts = TaskSet(
            [
                Task(wcet=F(1, 4), period=F(1, 2), area=5, name="x"),
                Task(wcet=F(1, 6), period=F(1, 3), area=5, name="y"),
            ]
        )
        verdict, _ = decide_synchronous(ts, Fpga(width=10), EdfNf())
        assert verdict is SynchronousVerdict.SCHEDULABLE

    def test_full_utilization_never_idle_is_schedulable(self):
        # UT = 1 per column-group: one full-width task with C == T: the
        # boundary state is empty exactly at each hyperperiod multiple.
        ts = TaskSet([Task(wcet=5, period=5, area=10, name="hot")])
        verdict, _ = decide_synchronous(ts, Fpga(width=10), EdfNf())
        assert verdict is SynchronousVerdict.SCHEDULABLE

    def test_agrees_with_reference_on_random_integer_sets(self):
        import numpy as np

        rng = np.random.default_rng(9)
        fpga = Fpga(width=10)
        for _ in range(30):
            n = int(rng.integers(1, 4))
            tasks = [
                Task(
                    wcet=int(rng.integers(1, 4)),
                    period=int(rng.integers(3, 9)),
                    area=int(rng.integers(1, 9)),
                    name=f"t{i}",
                )
                for i in range(n)
            ]
            ts = TaskSet(tasks)
            verdict, _ = decide_synchronous(ts, fpga, EdfNf(), max_hyperperiods=8)
            if verdict is SynchronousVerdict.UNDECIDED:
                continue
            from repro.util.mathutil import hyperperiod

            h = int(hyperperiod([t.period for t in ts]))
            ref = simulate_reference(ts, fpga, EdfNf(), h * 8)
            assert ref.schedulable == (verdict is SynchronousVerdict.SCHEDULABLE)

    def test_validation(self):
        ts = TaskSet([Task(wcet=1, period=5, area=2, name="a")])
        with pytest.raises(ValueError):
            decide_synchronous(ts, Fpga(width=10), EdfNf(), max_hyperperiods=0)
        float_ts = TaskSet([Task(wcet=1.0, period=5.5, area=2, name="a")])
        with pytest.raises(TypeError):
            decide_synchronous(float_ts, Fpga(width=10), EdfNf())


class TestGantt:
    def _trace(self):
        ts = TaskSet(
            [
                Task(wcet=2, period=8, area=6, name="big"),
                Task(wcet=4, period=8, area=4, name="small"),
            ]
        )
        res = simulate(
            ts, Fpga(width=10), EdfNf(), 8, record_trace=True, eps=0
        )
        return res.trace

    def test_renders_grid(self):
        out = render_gantt(self._trace(), time_step=1.0)
        lines = out.split("\n")
        assert len(lines) == 12  # header + 10 columns + legend
        assert "legend:" in lines[-1]
        assert "big#0" in lines[-1]

    def test_occupancy_shape(self):
        out = render_gantt(self._trace(), time_step=1.0)
        rows = out.split("\n")[1:-1]
        # at t=0 both jobs run: all 10 columns busy in first slot
        first_col = [r[0] for r in rows]
        assert "." not in first_col
        # after t=4 everything is idle
        last_col = [r[-1] for r in rows]
        assert set(last_col) == {"."}

    def test_idle_trace(self):
        from repro.sim.trace import Trace, TraceSegment

        trace = Trace(capacity=3)
        trace.append(TraceSegment(0, 4, (), ()))
        out = render_gantt(trace, time_step=1.0)
        assert "(idle)" in out

    def test_empty_trace(self):
        from repro.sim.trace import Trace

        assert render_gantt(Trace(capacity=3)) == "(empty trace)"

    def test_validation(self):
        with pytest.raises(ValueError):
            render_gantt(self._trace(), time_step=0)
