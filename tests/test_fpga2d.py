"""Tests for the 2D extension: packing, simulation, shelf bound."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpga.device import Fpga
from repro.fpga.placement import PlacementPolicy
from repro.fpga2d.bounds import necessary_conditions_2d, shelf_test
from repro.fpga2d.device import Fpga2D
from repro.fpga2d.model import Task2D, TaskSet2D
from repro.fpga2d.packing import BottomLeftPacker, PackingError
from repro.fpga2d.sim2d import FitRule, simulate_2d
from repro.model.task import Task, TaskSet
from repro.sched.edf_nf import EdfNf
from repro.sim.simulator import MigrationMode, simulate


class TestDeviceAndModel:
    def test_device(self):
        f = Fpga2D(width=10, height=4)
        assert f.area == 40
        with pytest.raises(ValueError):
            Fpga2D(width=0, height=4)
        with pytest.raises(TypeError):
            Fpga2D(width=2.5, height=4)  # type: ignore[arg-type]

    def test_task(self):
        from fractions import Fraction as F

        t = Task2D(wcet=2, period=10, width=3, height=2, name="t")
        assert t.footprint == 6
        assert t.deadline == 10
        assert t.system_utilization == F(6, 5)

    def test_task_validation(self):
        with pytest.raises(ValueError):
            Task2D(wcet=0, period=5)
        with pytest.raises(ValueError):
            Task2D(wcet=1, period=5, width=0)

    def test_taskset(self):
        ts = TaskSet2D([Task2D(wcet=1, period=5, width=2, height=3, name="a")])
        assert ts.max_height == 3 and ts.max_width == 2
        with pytest.raises(ValueError):
            TaskSet2D([])
        with pytest.raises(ValueError):
            TaskSet2D([Task2D(wcet=1, period=5, name="x"),
                       Task2D(wcet=1, period=6, name="x")])


class TestBottomLeftPacker:
    def test_places_bottom_left(self):
        p = BottomLeftPacker(Fpga2D(width=10, height=10))
        r1 = p.place("a", 4, 3)
        assert (r1.x, r1.y) == (0, 0)
        r2 = p.place("b", 4, 3)
        assert (r2.x, r2.y) == (4, 0)  # beside, not on top

    def test_stacks_when_row_full(self):
        p = BottomLeftPacker(Fpga2D(width=8, height=10))
        p.place("a", 4, 3)
        p.place("b", 4, 3)
        r3 = p.place("c", 4, 3)
        assert (r3.x, r3.y) == (0, 3)

    def test_fragmentation_blocks_despite_free_area(self):
        """The §7 effect in one picture: 4 corner blocks leave 60% free
        area but no 5x5 hole."""
        p = BottomLeftPacker(Fpga2D(width=10, height=10))
        p.place_at("tl", 0, 6, 4, 4)
        p.place_at("tr", 6, 6, 4, 4)
        p.place_at("bl", 0, 0, 4, 4)
        p.place_at("br", 6, 0, 4, 4)
        assert p.free_area == 36
        assert p.find_position(5, 5) is None  # but 5x5=25 <= 36!
        assert p.find_position(2, 10) is not None  # the middle strip works

    def test_release_reopens_space(self):
        p = BottomLeftPacker(Fpga2D(width=4, height=4))
        p.place("a", 4, 4)
        assert p.place("b", 1, 1) is None
        p.release("a")
        assert p.place("b", 1, 1) is not None

    def test_errors(self):
        p = BottomLeftPacker(Fpga2D(width=4, height=4))
        p.place("a", 2, 2)
        with pytest.raises(PackingError):
            p.place("a", 1, 1)
        with pytest.raises(PackingError):
            p.release("ghost")
        with pytest.raises(PackingError):
            p.place_at("b", 1, 1, 2, 2)  # overlaps a
        with pytest.raises(PackingError):
            p.find_position(0, 1)

    @given(
        ops=st.lists(
            st.tuples(st.integers(1, 5), st.integers(1, 5), st.booleans()),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_invariants_under_random_scripts(self, ops):
        p = BottomLeftPacker(Fpga2D(width=12, height=12))
        live = []
        for i, (w, h, release_one) in enumerate(ops):
            if release_one and live:
                p.release(live.pop())
            elif p.place(i, w, h) is not None:
                live.append(i)
            p.check_invariants()
        assert p.used_area <= 12 * 12


class TestSimulate2D:
    def test_simple_schedulable(self):
        ts = TaskSet2D(
            [
                Task2D(wcet=2, period=10, width=4, height=4, name="a"),
                Task2D(wcet=2, period=10, width=4, height=4, name="b"),
            ]
        )
        res = simulate_2d(ts, Fpga2D(width=10, height=4), horizon=30)
        assert res.schedulable
        assert res.jobs_released == 6
        assert res.busy_area_time == 6 * 2 * 16

    def test_oversized_task_misses(self):
        ts = TaskSet2D([Task2D(wcet=1, period=10, width=20, height=1, name="wide")])
        res = simulate_2d(ts, Fpga2D(width=10, height=4), horizon=20)
        assert not res.schedulable

    def test_area_rule_dominates_packed_rule(self):
        """AREA ignores geometry, so its acceptance is an upper bound."""
        ts = TaskSet2D(
            [
                Task2D(wcet=3, period=10, deadline=4, width=7, height=7, name="big"),
                Task2D(wcet=3, period=10, deadline=5, width=7, height=4, name="flat"),
            ]
        )
        fpga = Fpga2D(width=10, height=10)
        area = simulate_2d(ts, fpga, horizon=20, fit_rule=FitRule.AREA)
        packed = simulate_2d(ts, fpga, horizon=20, fit_rule=FitRule.PACKED)
        # big (49) + flat (28) = 77 <= 100 CLBs: AREA runs both at once.
        assert area.schedulable
        # geometrically impossible: side by side 7+7 > 10 wide, stacked
        # 7+4 > 10 tall — flat waits for big and misses its deadline.
        assert not packed.schedulable

    def test_fkf_prefix_rule_blocks(self):
        # NF: head+tail run [0,4), mid runs [4,6) — all meet deadlines.
        # FkF: mid (2nd in queue) doesn't fit beside head, prefix stops;
        # tail idles [0,4) although its rectangle is free, then cannot
        # finish 4 units by t=7.
        ts = TaskSet2D(
            [
                Task2D(wcet=4, period=20, deadline=5, width=6, height=4, name="head"),
                Task2D(wcet=2, period=20, deadline=6, width=6, height=4, name="mid"),
                Task2D(wcet=4, period=20, deadline=7, width=4, height=4, name="tail"),
            ]
        )
        fpga = Fpga2D(width=10, height=4)
        nf = simulate_2d(ts, fpga, horizon=20, skip_blocked=True)
        fkf = simulate_2d(ts, fpga, horizon=20, skip_blocked=False)
        assert nf.schedulable
        assert not fkf.schedulable  # tail blocked behind mid, misses at 7

    def test_full_height_tasks_equal_1d_relocatable(self):
        """Degenerate check: full-height rectangles ARE the 1D model."""
        import numpy as np

        rng = np.random.default_rng(13)
        for trial in range(25):
            n = int(rng.integers(1, 5))
            tasks2d, tasks1d = [], []
            for i in range(n):
                c = int(rng.integers(1, 4))
                t = int(rng.integers(3, 10))
                w = int(rng.integers(1, 8))
                tasks2d.append(
                    Task2D(wcet=c, period=t, width=w, height=4, name=f"t{i}")
                )
                tasks1d.append(Task(wcet=c, period=t, area=w, name=f"t{i}"))
            res2d = simulate_2d(
                TaskSet2D(tasks2d), Fpga2D(width=10, height=4), horizon=50,
                fit_rule=FitRule.PACKED, eps=0,
            )
            res1d = simulate(
                TaskSet(tasks1d), Fpga(width=10), EdfNf(), 50,
                mode=MigrationMode.RELOCATABLE,
                placement_policy=PlacementPolicy.FIRST_FIT, eps=0,
            )
            assert res2d.schedulable == res1d.schedulable, f"trial {trial}"
            assert res2d.busy_area_time == res1d.metrics.busy_area_time * 4

    def test_validation(self):
        ts = TaskSet2D([Task2D(wcet=1, period=5, name="a")])
        with pytest.raises(ValueError):
            simulate_2d(ts, Fpga2D(width=4, height=4), horizon=0)


class TestShelfBound:
    def test_necessary_conditions(self):
        fpga = Fpga2D(width=10, height=10)
        bad = TaskSet2D([Task2D(wcet=1, period=5, width=11, height=1, name="w")])
        assert not necessary_conditions_2d(bad, fpga).accepted
        ok = TaskSet2D([Task2D(wcet=1, period=5, width=2, height=2, name="w")])
        assert necessary_conditions_2d(ok, fpga).accepted

    def test_accepts_light_workload(self):
        ts = TaskSet2D(
            [
                Task2D(wcet=1, period=10, width=3, height=2, name="a"),
                Task2D(wcet=1, period=10, width=4, height=2, name="b"),
                Task2D(wcet=1, period=10, width=5, height=2, name="c"),
            ]
        )
        res = shelf_test(ts, Fpga2D(width=10, height=6))
        assert res.accepted
        assert any(v.task.startswith("shelf") for v in res.per_task)

    def test_rejects_when_no_shelf_fits(self):
        ts = TaskSet2D([Task2D(wcet=1, period=10, width=2, height=7, name="tall")])
        res = shelf_test(ts, Fpga2D(width=10, height=6))
        assert not res.accepted

    def test_shelf_height_below_tallest_rejected(self):
        ts = TaskSet2D([Task2D(wcet=1, period=10, width=2, height=3, name="t")])
        res = shelf_test(ts, Fpga2D(width=10, height=6), shelf_height=2)
        assert not res.accepted

    def test_single_shelf_equals_1d_portfolio(self):
        """All-full-height tasks: shelf test == the paper's 1D portfolio."""
        from repro.core.composite import paper_portfolio
        from repro.core.interfaces import SchedulerKind

        ts2d = TaskSet2D(
            [
                Task2D(wcet=2, period=5, width=7, height=4, name="t1"),
                Task2D(wcet=2, period=7, width=7, height=4, name="t2"),
            ]
        )
        ts1d = TaskSet(
            [
                Task(wcet=2, period=5, area=7, name="t1"),
                Task(wcet=2, period=7, area=7, name="t2"),
            ]
        )
        res2d = shelf_test(ts2d, Fpga2D(width=10, height=4))
        res1d = paper_portfolio(SchedulerKind.EDF_NF)(ts1d, Fpga(width=10))
        assert res2d.accepted == res1d.accepted

    def test_sound_against_simulation(self):
        """Shelf acceptance implies packed-simulation success."""
        import numpy as np

        rng = np.random.default_rng(21)
        fpga = Fpga2D(width=10, height=8)
        accepted = 0
        for _ in range(60):
            n = int(rng.integers(2, 5))
            tasks = [
                Task2D(
                    wcet=float(rng.uniform(0.2, 2.0)),
                    period=float(rng.uniform(5, 15)),
                    width=int(rng.integers(1, 8)),
                    height=int(rng.integers(1, 5)),
                    name=f"t{i}",
                )
                for i in range(n)
            ]
            ts = TaskSet2D(tasks)
            if shelf_test(ts, fpga).accepted:
                accepted += 1
                res = simulate_2d(ts, fpga, horizon=300, fit_rule=FitRule.PACKED)
                assert res.schedulable, ts
        assert accepted > 0  # the property was actually exercised

    def test_shelves_partition_strict_tasks(self):
        # two heavy same-height tasks that cannot share a shelf timewise
        ts = TaskSet2D(
            [
                Task2D(wcet=8, period=10, width=9, height=2, name="a"),
                Task2D(wcet=8, period=10, width=9, height=2, name="b"),
            ]
        )
        res = shelf_test(ts, Fpga2D(width=10, height=4))
        assert res.accepted  # two shelves of height 2
        res_short = shelf_test(ts, Fpga2D(width=10, height=2))
        assert not res_short.accepted  # only one shelf: cannot share
