"""HTTP layer of the admission service: endpoints, errors, coalescing.

Every test runs a real :class:`HttpServer` on an ephemeral loopback
port inside ``asyncio.run`` and speaks raw HTTP/1.1 over
``asyncio.open_connection`` — no HTTP client dependency, same as the
server side.
"""

import asyncio
import json

from repro.service import AdmissionService, BatchConfig, HttpServer

TASK = {"name": "a", "wcet": 1.0, "period": 10.0, "area": 2}


async def raw_call(host, port, method, path, body=None, reader_writer=None):
    """One request; returns ``(status, parsed_json, reader, writer)`` so
    keep-alive tests can reuse the connection."""
    if reader_writer is None:
        reader, writer = await asyncio.open_connection(host, port)
    else:
        reader, writer = reader_writer
    payload = json.dumps(body).encode() if body is not None else b""
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n"
        ).encode()
        + payload
    )
    await writer.drain()
    status = int((await reader.readline()).split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b""):
            break
        key, _, value = line.decode().partition(":")
        headers[key.lower().strip()] = value.strip()
    data = await reader.readexactly(int(headers.get("content-length", 0)))
    return status, json.loads(data), reader, writer


def with_service(coro_fn, **service_kwargs):
    """Run ``coro_fn(service, host, port, call)`` against a live server."""

    async def main():
        service = AdmissionService(**service_kwargs)
        server = HttpServer(service)
        await service.start()
        host, port = await server.start()

        async def call(method, path, body=None):
            status, data, _, writer = await raw_call(host, port, method, path, body)
            writer.close()
            return status, data

        try:
            return await coro_fn(service, host, port, call)
        finally:
            await server.close()
            await service.close()

    return asyncio.run(main())


def test_health_devices_and_decisions():
    async def scenario(service, host, port, call):
        assert await call("GET", "/healthz") == (200, {"ok": True})
        status, info = await call("POST", "/v1/devices", {"name": "d", "width": 64})
        assert status == 201 and info["capacity"] == 64 and info["resident"] == 0
        status, listing = await call("GET", "/v1/devices")
        assert status == 200 and [d["name"] for d in listing["devices"]] == ["d"]

        status, dec = await call("POST", "/v1/admit", {"device": "d", "task": TASK})
        assert status == 200 and dec["ok"] and dec["via"] in ("kernel", "certifier")
        status, dec = await call(
            "POST", "/v1/trial", {"device": "d", "task": dict(TASK, name="b")}
        )
        assert status == 200 and dec["ok"] and dec["op"] == "trial"
        status, info = await call("GET", "/v1/devices/d")
        assert status == 200 and [t["name"] for t in info["tasks"]] == ["a"]
        status, dec = await call("POST", "/v1/remove", {"device": "d", "name": "a"})
        assert status == 200 and dec["ok"]
        status, dec = await call("POST", "/v1/remove", {"device": "d", "name": "a"})
        assert status == 200 and not dec["ok"] and dec["error"] == "task not resident"

        status, snap = await call("GET", "/v1/metrics")
        assert status == 200
        assert snap["decisions_total"] == 4 and snap["batching"]

    with_service(scenario)


def test_http_error_paths():
    async def scenario(service, host, port, call):
        await call("POST", "/v1/devices", {"name": "d", "width": 64})
        assert (await call("GET", "/v1/missing"))[0] == 404
        assert (await call("GET", "/v1/devices/ghost"))[0] == 404
        assert (await call("POST", "/healthz"))[0] == 405
        assert (await call("POST", "/v1/devices", {"name": "d", "width": 64}))[0] == 409
        assert (await call("POST", "/v1/devices", {"name": "", "width": 64}))[0] == 400
        assert (await call("POST", "/v1/devices", {"name": "x", "width": True}))[0] == 400
        assert (await call("POST", "/v1/devices", {"name": "x", "width": -3}))[0] == 400
        assert (await call("POST", "/v1/admit", {"device": "d"}))[0] == 400
        assert (await call("POST", "/v1/admit", {"device": "d", "task": {}}))[0] == 400
        assert (await call("POST", "/v1/remove", {"device": "d"}))[0] == 400
        # unknown device is a *decision* error, not a transport error
        status, dec = await call(
            "POST", "/v1/admit", {"device": "ghost", "task": TASK}
        )
        assert status == 200 and not dec["ok"] and dec["error"] == "unknown device"

    with_service(scenario)


def test_malformed_payload_is_400():
    async def scenario(service, host, port, call):
        reader, writer = await asyncio.open_connection(host, port)
        body = b"{not json"
        writer.write(
            (
                f"POST /v1/admit HTTP/1.1\r\nHost: t\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            ).encode()
            + body
        )
        await writer.drain()
        status = int((await reader.readline()).split()[1])
        assert status == 400
        writer.close()

    with_service(scenario)


def test_keep_alive_reuses_one_connection():
    async def scenario(service, host, port, call):
        await call("POST", "/v1/devices", {"name": "d", "width": 64})
        reader, writer = await asyncio.open_connection(host, port)
        for i in range(5):
            status, dec, reader, writer = await raw_call(
                host, port, "POST", "/v1/admit",
                {"device": "d", "task": dict(TASK, name=f"t{i}")},
                reader_writer=(reader, writer),
            )
            assert status == 200 and dec["ok"]
        writer.close()
        status, info = await call("GET", "/v1/devices/d")
        assert info["resident"] == 5

    with_service(scenario)


def test_concurrent_requests_coalesce_into_batches():
    async def scenario(service, host, port, call):
        await call("POST", "/v1/devices", {"name": "d", "width": 256})

        async def admit(i):
            return await call(
                "POST", "/v1/admit",
                {"device": "d",
                 "task": {"name": f"c{i}", "wcet": 0.2, "period": 60.0, "area": 1}},
            )

        results = await asyncio.gather(*[admit(i) for i in range(80)])
        assert all(status == 200 and dec["ok"] for status, dec in results)
        status, snap = await call("GET", "/v1/metrics")
        decision_batches = {
            int(size): count
            for size, count in snap["batch_size_histogram"].items()
        }
        assert sum(size * n for size, n in decision_batches.items()) >= 80
        assert max(decision_batches) > 1  # concurrency actually coalesced
        assert snap["certifier"]["certified"] > 0  # fast path engaged
        assert snap["latency_seconds"]["p99"] >= snap["latency_seconds"]["p50"]

    with_service(scenario, config=BatchConfig(max_batch=64, max_wait=0.005))


def test_sharded_service_routes_consistently():
    async def scenario(service, host, port, call):
        for i in range(6):
            await call("POST", "/v1/devices", {"name": f"dev{i}", "width": 64})
        status, listing = await call("GET", "/v1/devices")
        shards = {d["name"]: d["shard"] for d in listing["devices"]}
        assert len(listing["devices"]) == 6
        assert set(shards.values()) <= {0, 1, 2}
        # every decision reaches the owning shard's state
        for i in range(6):
            status, dec = await call(
                "POST", "/v1/admit",
                {"device": f"dev{i}", "task": dict(TASK, name="only")},
            )
            assert status == 200 and dec["ok"]
        for i in range(6):
            status, info = await call("GET", f"/v1/devices/dev{i}")
            assert info["resident"] == 1 and info["shard"] == shards[f"dev{i}"]
        status, snap = await call("GET", "/v1/metrics")
        assert snap["shards"] == 3 and snap["devices"] == 6

    with_service(scenario, shards=3)
