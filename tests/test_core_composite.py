"""Tests for the §6 composite ("apply all bounds together") test."""

import pytest

from repro.core.composite import CompositeTest, composite_test, paper_portfolio
from repro.core.dp import dp_test
from repro.core.gn1 import gn1_test
from repro.core.gn2 import gn2_test
from repro.core.interfaces import SchedulerKind


class TestPaperPortfolio:
    def test_accepts_union_of_tables(self, table1, table2, table3, fpga10):
        portfolio = paper_portfolio(SchedulerKind.EDF_NF)
        assert portfolio(table1, fpga10).accepted  # via DP
        assert portfolio(table2, fpga10).accepted  # via GN1
        assert portfolio(table3, fpga10).accepted  # via GN2

    def test_reports_which_member_accepted(self, table2, fpga10):
        res = paper_portfolio(SchedulerKind.EDF_NF)(table2, fpga10)
        assert "GN1" in res.test_name

    def test_fkf_portfolio_skips_gn1(self, table2, fpga10):
        """GN1 only certifies EDF-NF; for EDF-FkF Table 2 must be rejected
        because DP and GN2 both reject it."""
        fkf = paper_portfolio(SchedulerKind.EDF_FKF)
        assert not fkf(table2, fpga10).accepted

    def test_fkf_portfolio_still_accepts_dp_and_gn2_sets(self, table1, table3, fpga10):
        fkf = paper_portfolio(SchedulerKind.EDF_FKF)
        assert fkf(table1, fpga10).accepted
        assert fkf(table3, fpga10).accepted

    def test_rejection_lists_members(self, fpga10):
        from repro.model.task import Task, TaskSet

        hopeless = TaskSet(
            [Task(wcet=9, period=10, area=9, name=f"t{i}") for i in range(2)]
        )
        res = paper_portfolio(SchedulerKind.EDF_NF)(hopeless, fpga10)
        assert not res.accepted
        assert "rejected by all members" in res.reason


class TestCompositeMechanics:
    def test_empty_members_rejected(self):
        with pytest.raises(ValueError):
            CompositeTest(())

    def test_composite_with_single_member(self, table1, fpga10):
        comp = composite_test([dp_test])
        assert comp(table1, fpga10).accepted

    def test_guarantee_restricted_to_requested_scheduler(self, table2, fpga10):
        res = composite_test([gn1_test], scheduler=SchedulerKind.EDF_NF)(table2, fpga10)
        assert res.accepted
        assert res.schedulers == frozenset({SchedulerKind.EDF_NF})

    def test_unrestricted_composite_unions_guarantees(self, table1, fpga10):
        res = composite_test([dp_test, gn1_test, gn2_test])(table1, fpga10)
        assert res.accepted
        # accepted via DP, which certifies both schedulers
        assert SchedulerKind.EDF_FKF in res.schedulers

    def test_no_applicable_member(self, table2, fpga10):
        comp = composite_test([gn1_test], scheduler=SchedulerKind.EDF_FKF)
        res = comp(table2, fpga10)
        assert not res.accepted
        assert "no applicable member" in res.reason
