"""Tests for the FPGA device model and static regions."""

import pytest

from repro.fpga.device import Fpga, StaticRegion


class TestFpga:
    def test_basic_properties(self):
        f = Fpga(width=100)
        assert f.area == 100
        assert f.capacity == 100
        assert f.reserved_area == 0
        assert list(f.free_spans()) == [(0, 100)]

    def test_fits(self):
        f = Fpga(width=10)
        assert f.fits(10)
        assert not f.fits(11)

    @pytest.mark.parametrize("width", [0, -3])
    def test_rejects_nonpositive_width(self, width):
        with pytest.raises(ValueError):
            Fpga(width=width)

    def test_rejects_non_integer_width(self):
        with pytest.raises(TypeError):
            Fpga(width=10.5)  # type: ignore[arg-type]


class TestStaticRegions:
    def test_capacity_excludes_static(self):
        f = Fpga(width=10, static_regions=(StaticRegion(2, 3),))
        assert f.capacity == 7
        assert f.reserved_area == 3

    def test_free_spans_fragmented(self):
        f = Fpga(width=10, static_regions=(StaticRegion(2, 3), StaticRegion(8, 1)))
        assert list(f.free_spans()) == [(0, 2), (5, 8), (9, 10)]

    def test_region_at_edges(self):
        f = Fpga(width=10, static_regions=(StaticRegion(0, 2), StaticRegion(8, 2)))
        assert list(f.free_spans()) == [(2, 8)]

    def test_regions_sorted_automatically(self):
        f = Fpga(width=10, static_regions=(StaticRegion(6, 2), StaticRegion(1, 2)))
        assert [r.start for r in f.static_regions] == [1, 6]

    def test_rejects_overlapping_regions(self):
        with pytest.raises(ValueError):
            Fpga(width=10, static_regions=(StaticRegion(0, 5), StaticRegion(4, 2)))

    def test_rejects_out_of_range_region(self):
        with pytest.raises(ValueError):
            Fpga(width=10, static_regions=(StaticRegion(8, 5),))

    def test_rejects_bad_region_params(self):
        with pytest.raises(ValueError):
            StaticRegion(-1, 2)
        with pytest.raises(ValueError):
            StaticRegion(0, 0)

    def test_whole_device_reserved(self):
        f = Fpga(width=4, static_regions=(StaticRegion(0, 4),))
        assert f.capacity == 0
        assert list(f.free_spans()) == []
