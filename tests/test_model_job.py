"""Unit tests for runtime Job instances."""

from fractions import Fraction as F

from repro.model.job import Job
from repro.model.task import Task


def _task(**kw):
    defaults = dict(wcet=2, period=10, deadline=8, area=3, name="t")
    defaults.update(kw)
    return Task(**defaults)


class TestJob:
    def test_absolute_deadline(self):
        j = Job(task=_task(), release=5)
        assert j.absolute_deadline == 13

    def test_remaining_defaults_to_wcet(self):
        j = Job(task=_task(), release=0)
        assert j.remaining == 2
        assert j.executed == 0
        assert not j.completed

    def test_area_delegates_to_task(self):
        assert Job(task=_task(area=7), release=0).area == 7

    def test_completion(self):
        j = Job(task=_task(), release=0)
        j.remaining = 0
        assert j.completed
        assert j.executed == 2

    def test_laxity_at(self):
        j = Job(task=_task(), release=0)  # d=8, rem=2
        assert j.laxity_at(0) == 6
        assert j.laxity_at(7) == -1  # cannot make it anymore

    def test_edf_ordering_by_deadline(self):
        early = Job(task=_task(name="e", deadline=4), release=0)
        late = Job(task=_task(name="l", deadline=9), release=0)
        assert early < late

    def test_tie_break_by_release_time(self):
        # paper Defs 1-2: ties of deadline broken by release time
        first = Job(task=_task(name="a", deadline=6), release=0)
        second = Job(task=_task(name="b", deadline=4), release=2)  # same abs deadline 6
        assert first < second

    def test_tie_break_deterministic_by_name(self):
        a = Job(task=_task(name="a"), release=0)
        b = Job(task=_task(name="b"), release=0)
        assert a < b

    def test_sorting_a_queue(self):
        jobs = [
            Job(task=_task(name="x", deadline=9), release=0),
            Job(task=_task(name="y", deadline=3), release=1),
            Job(task=_task(name="z", deadline=5), release=0),
        ]
        ordered = sorted(jobs)
        assert [j.task.name for j in ordered] == ["y", "z", "x"]

    def test_exact_arithmetic(self):
        j = Job(task=_task(wcet=F("0.3"), deadline=F("0.9"), period=1), release=F("0.1"))
        assert j.absolute_deadline == F(1)
        assert j.laxity_at(F("0.4")) == F("0.3")
