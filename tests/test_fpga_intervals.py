"""Property tests for the shared interval representation.

The scalar :class:`repro.fpga.freelist.FreeList` (sorted interval lists)
and the batched :class:`repro.vector.placement_vec.BatchFreeList`
(per-row uint64 column bitmaps) must describe the *same* free-space
state — same holes, same policy choices, same allocations — under any
sequence of places and frees, on any device geometry (including
static-region pre-fragmentation).  Hypothesis drives random op
sequences against both and compares them step by step.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.fpga import intervals as iv
from repro.fpga.device import Fpga, StaticRegion
from repro.fpga.freelist import FreeList
from repro.fpga.placement import PlacementPolicy, choose_interval
from repro.vector.placement_vec import BatchFreeList


@st.composite
def devices(draw, max_width=96):
    """A device with random width and random disjoint static regions."""
    width = draw(st.integers(1, max_width))
    regions = []
    cursor = 0
    while cursor < width and draw(st.booleans()):
        start = draw(st.integers(cursor, width - 1))
        block = draw(st.integers(1, width - start))
        regions.append(StaticRegion(start, block))
        cursor = start + block
    return Fpga(width=width, static_regions=tuple(regions))


def _arr(x):
    return np.array([x])


class TestEncodingRoundTrip:
    @given(devices())
    @settings(max_examples=80, deadline=None)
    def test_spans_words_round_trip(self, fpga):
        spans = list(fpga.free_spans())
        words = iv.spans_to_words(spans, fpga.width)
        assert iv.words_to_spans(words, fpga.width) == spans

    @given(devices())
    @settings(max_examples=80, deadline=None)
    def test_complement_partitions_device(self, fpga):
        spans = list(fpga.free_spans())
        occupied = iv.complement(spans, fpga.width)
        assert iv.total_width(spans) + iv.total_width(occupied) == fpga.width
        merged = []  # adjacent static regions coalesce in the complement
        for r in fpga.static_regions:
            if merged and merged[-1][1] == r.start:
                merged[-1] = (merged[-1][0], r.end)
            else:
                merged.append((r.start, r.end))
        assert occupied == merged


class TestFreeListVsBitmap:
    @given(data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_random_place_free_sequences_agree(self, data):
        """FreeList and BatchFreeList report identical holes, totals,
        largest holes, span-freeness and policy choices under a random
        place/free sequence."""
        fpga = data.draw(devices())
        fl = FreeList(fpga)
        bfl = BatchFreeList(fpga, 1)
        assert bfl.free_spans_of(0) == fl.free_intervals
        live = {}
        key = 0
        for _ in range(data.draw(st.integers(0, 30))):
            if live and data.draw(st.booleans()):
                victim = data.draw(st.sampled_from(sorted(live)))
                start, width = live.pop(victim)
                fl.release(victim)
                bfl.vacate(_arr(0), _arr(start), _arr(width))
            else:
                width = data.draw(st.integers(1, fpga.width + 1))
                policy = data.draw(st.sampled_from(list(PlacementPolicy)))
                ref = choose_interval(fl.free_intervals, width, policy)
                got = int(bfl.choose(_arr(width), policy)[0])
                assert (ref if ref is not None else -1) == got
                if ref is not None:
                    fl.allocate(key, width, policy)
                    bfl.occupy(_arr(0), _arr(ref), _arr(width))
                    live[key] = (ref, width)
                    key += 1
            # The two representations must agree on every query surface.
            assert bfl.free_spans_of(0) == fl.free_intervals
            assert int(bfl.total_free()[0]) == fl.total_free
            assert int(bfl.largest_hole()[0]) == fl.largest_hole
            probe = data.draw(st.integers(0, fpga.width - 1))
            probe_w = data.draw(st.integers(1, fpga.width - probe))
            assert bool(bfl.is_free(_arr(probe), _arr(probe_w))[0]) == fl.is_free(
                probe, probe_w
            )
            fl.check_invariants()

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_choose_matches_reference_on_random_holes(self, data):
        """The batched chooser equals ``choose_interval`` on arbitrary
        (not just reachable-by-allocation) hole configurations."""
        width = data.draw(st.integers(1, 120))
        spans = []
        cursor = 0
        while cursor < width:
            start = data.draw(st.integers(cursor, width - 1))
            end = data.draw(st.integers(start + 1, width))
            spans.append((start, end))
            cursor = end + 1
            if not data.draw(st.booleans()):
                break
        words = iv.spans_to_words(spans, width)[None, :]
        need = data.draw(st.integers(1, width + 1))
        from repro.vector.placement_vec import choose_batch

        for policy in PlacementPolicy:
            ref = choose_interval(spans, need, policy)
            got = int(choose_batch(words, np.array([need]), width, policy)[0])
            assert (ref if ref is not None else -1) == got

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_batch_rows_are_independent(self, data):
        """Mutating one row of a BatchFreeList never leaks into others."""
        fpga = data.draw(devices(max_width=40))
        bfl = BatchFreeList(fpga, 3)
        baseline = bfl.free_spans_of(1)
        width = data.draw(st.integers(1, fpga.width))
        start = int(bfl.choose(np.array([width] * 3), PlacementPolicy.FIRST_FIT)[0])
        if start >= 0:
            bfl.occupy(_arr(0), _arr(start), _arr(width))
            assert bfl.free_spans_of(1) == baseline
            assert bfl.free_spans_of(2) == baseline
            bfl.vacate(_arr(0), _arr(start), _arr(width))
            assert bfl.free_spans_of(0) == baseline


class TestIntervalPrimitives:
    def test_carve_requires_containment(self):
        with pytest.raises(ValueError):
            iv.carve([(0, 4), (6, 10)], 3, 3)

    def test_insert_rejects_overlap(self):
        with pytest.raises(ValueError):
            iv.insert_coalesced([(0, 4)], 2, 6)
        with pytest.raises(ValueError):
            iv.insert_coalesced([(0, 4)], 2, 2)

    def test_insert_coalesces_both_sides(self):
        assert iv.insert_coalesced([(0, 2), (4, 6)], 2, 4) == [(0, 6)]

    def test_spans_to_words_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            iv.spans_to_words([(0, 11)], 10)
