"""Unit tests for the Task/TaskSet model."""

from fractions import Fraction as F

import pytest

from repro.model.task import Task, TaskSet
from repro.model.validation import TaskParameterError, TaskSetError


class TestTask:
    def test_deadline_defaults_to_period(self):
        t = Task(wcet=1, period=10)
        assert t.deadline == 10
        assert t.implicit_deadline

    def test_explicit_deadline(self):
        t = Task(wcet=1, period=10, deadline=5)
        assert t.deadline == 5
        assert t.constrained_deadline
        assert not t.implicit_deadline

    def test_post_period_deadline(self):
        t = Task(wcet=1, period=5, deadline=9)
        assert not t.constrained_deadline

    def test_time_utilization(self):
        assert Task(wcet=2, period=8).time_utilization == F(1, 4)

    def test_system_utilization_weights_area(self):
        assert Task(wcet=2, period=8, area=6).system_utilization == F(3, 2)

    def test_density_and_laxity(self):
        t = Task(wcet=3, period=10, deadline=6)
        assert t.density == F(1, 2)
        assert t.laxity == 3

    def test_exact_arithmetic_with_fractions(self):
        t = Task(wcet=F("1.26"), period=7)
        assert t.time_utilization == F("0.18")

    def test_float_parameters_stay_float(self):
        t = Task(wcet=1.5, period=3.0)
        assert isinstance(t.time_utilization, float)
        assert t.time_utilization == 0.5

    def test_default_names_unique(self):
        a, b = Task(wcet=1, period=2), Task(wcet=1, period=2)
        assert a.name != b.name

    def test_scaled(self):
        t = Task(wcet=2, period=8, area=4)
        s = t.scaled(time_factor=F(1, 2), area_factor=2)
        assert s.wcet == 1 and s.area == 8
        assert s.period == 8  # unchanged

    def test_with_area_and_wcet(self):
        t = Task(wcet=2, period=8, area=4)
        assert t.with_area(7).area == 7
        assert t.with_wcet(3).wcet == 3

    def test_as_fractions(self):
        t = Task(wcet=0.5, period=2.0, area=3)
        ft = t.as_fractions()
        assert ft.wcet == F(1, 2)
        assert isinstance(ft.period, F)

    def test_has_integral_area(self):
        assert Task(wcet=1, period=2, area=3).has_integral_area
        assert not Task(wcet=1, period=2, area=2.5).has_integral_area

    def test_feasible_alone(self):
        assert Task(wcet=2, period=5).feasible_alone
        assert not Task(wcet=6, period=8, deadline=5).feasible_alone

    def test_frozen(self):
        t = Task(wcet=1, period=2)
        with pytest.raises(AttributeError):
            t.wcet = 5  # type: ignore[misc]


class TestTaskValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(wcet=0, period=1),
        dict(wcet=-1, period=1),
        dict(wcet=1, period=0),
        dict(wcet=1, period=-2),
        dict(wcet=1, period=2, deadline=0),
        dict(wcet=1, period=2, area=0),
        dict(wcet=1, period=2, area=0.5),
    ])
    def test_rejects_nonpositive_parameters(self, kwargs):
        with pytest.raises(TaskParameterError):
            Task(**kwargs)

    def test_rejects_non_numeric(self):
        with pytest.raises(TaskParameterError):
            Task(wcet="fast", period=1)  # type: ignore[arg-type]

    def test_rejects_bool(self):
        with pytest.raises(TaskParameterError):
            Task(wcet=True, period=1)  # type: ignore[arg-type]

    def test_wcet_above_deadline_allowed_but_flagged(self):
        # Not a parameter error: the schedulability tests must reject it.
        t = Task(wcet=9, period=10, deadline=5)
        assert not t.feasible_alone


class TestTaskSet:
    def _ts(self):
        return TaskSet([
            Task(wcet=1, period=4, area=2, name="a"),
            Task(wcet=2, period=8, area=5, name="b"),
        ])

    def test_len_iter_getitem(self):
        ts = self._ts()
        assert len(ts) == 2
        assert [t.name for t in ts] == ["a", "b"]
        assert ts[1].name == "b"
        assert isinstance(ts[0:1], TaskSet)

    def test_aggregates(self):
        ts = self._ts()
        assert ts.time_utilization == F(1, 2)
        assert ts.system_utilization == F(1, 2) + F(5, 4)
        assert ts.max_area == 5
        assert ts.min_area == 2
        assert ts.max_period == 8

    def test_all_predicates(self):
        ts = self._ts()
        assert ts.all_implicit_deadline
        assert ts.all_constrained_deadline
        assert ts.all_integral_area
        assert ts.all_feasible_alone

    def test_rejects_empty(self):
        with pytest.raises(TaskSetError):
            TaskSet([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(TaskSetError):
            TaskSet([Task(wcet=1, period=2, name="x"), Task(wcet=1, period=3, name="x")])

    def test_equality_and_hash(self):
        a = TaskSet([Task(wcet=1, period=2, name="x")])
        b = TaskSet([Task(wcet=1, period=2, name="x")])
        assert a == b
        assert hash(a) == hash(b)

    def test_scaled_to_system_utilization(self):
        ts = self._ts().scaled_to_system_utilization(F(7, 2))
        assert ts.system_utilization == F(7, 2)
        # periods and areas unchanged
        assert ts.max_area == 5 and ts.max_period == 8

    def test_scaled_to_zero_current_raises(self):
        # impossible to construct zero-utilization taskset (wcet > 0), so
        # verify the rescale math instead on a tiny utilization
        ts = self._ts().scaled_to_system_utilization(F(1, 1000))
        assert ts.system_utilization == F(1, 1000)

    def test_without(self):
        ts = self._ts().without(0)
        assert [t.name for t in ts] == ["b"]
        with pytest.raises(IndexError):
            self._ts().without(5)

    def test_extended(self):
        ts = self._ts().extended([Task(wcet=1, period=9, name="c")])
        assert len(ts) == 3

    def test_by_name(self):
        assert self._ts().by_name("b").area == 5
        with pytest.raises(KeyError):
            self._ts().by_name("zzz")

    def test_sorted_by(self):
        ts = self._ts().sorted_by(lambda t: -t.area)
        assert ts[0].name == "b"

    def test_map_preserves_type(self):
        ts = self._ts().map(lambda t: t.with_area(1))
        assert isinstance(ts, TaskSet)
        assert ts.max_area == 1
