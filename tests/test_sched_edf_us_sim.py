"""Simulation-level tests for the EDF-US hybrid (paper §7 future work).

The classic motivation (Dhall's effect, transplanted to the FPGA): a few
near-saturated tasks starve under plain global EDF because short-deadline
light jobs keep displacing them.  EDF-US gives heavy tasks top priority
and fixes exactly this — demonstrated here against the simulator.
"""

from fractions import Fraction as F

import pytest

from repro.fpga.device import Fpga
from repro.model.task import Task, TaskSet
from repro.sched.edf_nf import EdfNf
from repro.sched.edf_us import EdfUs
from repro.sim.simulator import simulate


def dhall_style_taskset():
    """Two light unit-width tasks + one near-saturated one on 2 columns.

    Plain EDF: lights (earlier deadlines) grab both columns first; the
    heavy task accumulates lag and misses at t=2.  EDF-US runs the heavy
    task continuously and everything fits.
    """
    return TaskSet(
        [
            Task(wcet=F(1, 2), period=1, area=1, name="light1"),
            Task(wcet=F(1, 2), period=1, area=1, name="light2"),
            Task(wcet=F(19, 10), period=2, area=1, name="heavy"),
        ]
    )


class TestDhallRescue:
    def test_plain_edf_misses(self):
        res = simulate(dhall_style_taskset(), Fpga(width=2), EdfNf(), 4, eps=0)
        assert not res.schedulable
        assert res.misses[0].task == "heavy"

    def test_edf_us_schedules(self):
        sched = EdfUs(threshold=F(2, 3))
        res = simulate(dhall_style_taskset(), Fpga(width=2), sched, 8, eps=0)
        assert res.schedulable

    def test_threshold_one_behaves_like_plain_edf(self):
        """With threshold 1 no task is 'heavy' (u > 1 impossible), so
        EDF-US degenerates to plain EDF and misses the same way."""
        sched = EdfUs(threshold=1)
        res = simulate(dhall_style_taskset(), Fpga(width=2), sched, 4, eps=0)
        assert not res.schedulable

    def test_us_fkf_fit_variant_also_rescues(self):
        sched = EdfUs(threshold=F(2, 3), fit="fkf")
        res = simulate(dhall_style_taskset(), Fpga(width=2), sched, 8, eps=0)
        assert res.schedulable


class TestSystemHeavinessVariant:
    def test_area_weighted_priority_rescues_wide_task(self):
        """Four narrow short-deadline tasks collectively exclude the wide
        task under plain EDF (4x1 + 8 > 10) although two of them could run
        beside it (2x1 + 8 = 10).  Promoting the wide task by *system*
        utilization lets it run continuously while the narrows take turns
        in the leftover columns — everything then fits."""
        ts = TaskSet(
            [Task(wcet=F(1, 2), period=1, area=1, name=f"n{i}") for i in range(4)]
            + [Task(wcet=F(19, 10), period=2, area=8, name="wide")]
        )
        fpga = Fpga(width=10)
        plain = simulate(ts, fpga, EdfNf(), 4, eps=0)
        assert not plain.schedulable
        assert plain.misses[0].task == "wide"

        # wide's US share = 1.9*8/2/10 = 0.76 > 1/2; narrows are 0.05.
        promoted = EdfUs(threshold=F(1, 2), heaviness="system", device_area=10)
        res = simulate(ts, fpga, promoted, 8, eps=0)
        assert res.schedulable

    def test_heaviness_threshold_is_strict(self):
        # u == threshold does not count as heavy (strict > in is_heavy)
        sched = EdfUs(threshold=F(1, 2), heaviness="time")
        from repro.model.job import Job

        heavy_job = Job(task=Task(wcet=F(19, 10), period=2, area=8, name="w"), release=0)
        light_job = Job(task=Task(wcet=F(1, 2), period=1, area=3, name="n"), release=0)
        assert sched.is_heavy(heavy_job)
        assert not sched.is_heavy(light_job)
