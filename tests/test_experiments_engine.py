"""Tests for the acceptance-ratio engine and experiment plumbing."""

import math

import numpy as np
import pytest

from repro.experiments.acceptance import (
    AcceptanceCurves,
    AcceptanceSeries,
    acceptance_experiment,
    binned_batch_at,
    feasible_batch_at,
)
from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.report import as_csv, as_markdown, as_text, render, sparkline
from repro.experiments.tables import run_tables, render_tables
from repro.fpga.device import Fpga, StaticRegion
from repro.gen.profiles import paper_unconstrained, spatially_light_temporally_heavy
from repro.util.rngutil import rng_from_seed


class TestFeasibleBatchAt:
    def test_hits_target_exactly(self):
        batch = feasible_batch_at(paper_unconstrained(5), 40.0, 50, rng_from_seed(1))
        assert batch.count == 50
        assert np.allclose(batch.system_utilization, 40.0)
        assert batch.feasible_mask.all()

    def test_unreachable_target_raises(self):
        from repro.gen.profiles import GenerationProfile

        tiny = GenerationProfile(n_tasks=2, area_min=1, area_max=2)
        with pytest.raises(RuntimeError):
            feasible_batch_at(tiny, 80.0, 10, rng_from_seed(2), max_rounds=5)

    def test_validation(self):
        with pytest.raises(ValueError):
            feasible_batch_at(paper_unconstrained(3), 0, 5, rng_from_seed(1))
        with pytest.raises(ValueError):
            feasible_batch_at(paper_unconstrained(3), 10.0, 0, rng_from_seed(1))


class TestBinnedBatchAt:
    def test_keeps_raw_joint_distribution(self):
        profile = spatially_light_temporally_heavy(10)
        batch = binned_batch_at(profile, 60.0, 3.0, 40, rng_from_seed(3))
        assert batch is not None
        # US within tolerance, and per-task utilizations stay heavy
        assert np.all(np.abs(batch.system_utilization - 60.0) <= 3.0)
        assert (batch.wcet / batch.period >= 0.5 - 1e-12).all()

    def test_unreachable_bucket_returns_none(self):
        profile = spatially_light_temporally_heavy(10)
        # US < 5 impossible: 10 tasks x u>=0.5 x A>=1 => US >= 5
        batch = binned_batch_at(profile, 2.0, 0.5, 10, rng_from_seed(4),
                                max_rounds=2, chunk=2000)
        assert batch is None

    def test_validation(self):
        with pytest.raises(ValueError):
            binned_batch_at(paper_unconstrained(3), 10.0, 0, 5, rng_from_seed(1))
        with pytest.raises(ValueError):
            binned_batch_at(paper_unconstrained(3), 10.0, 1.0, 0, rng_from_seed(1))
        with pytest.raises(ValueError):
            binned_batch_at(paper_unconstrained(3), 10.0, 1.0, 5, rng_from_seed(1),
                            chunk=0)

    def test_adaptive_draw_sizing(self, monkeypatch):
        """Small requests must not trigger flat 50k-set draws per round."""
        import repro.experiments.acceptance as acc

        sizes = []
        real = acc.generate_batch

        def spy(profile, count, rng):
            sizes.append(count)
            return real(profile, count, rng)

        monkeypatch.setattr(acc, "generate_batch", spy)
        batch = binned_batch_at(
            paper_unconstrained(10), 60.0, 5.0, 25, rng_from_seed(11)
        )
        assert batch is not None and batch.count == 25
        assert sizes[0] == 2048  # max(2048, 4*25), not 50_000
        assert all(s <= 50_000 for s in sizes)


class TestAcceptanceExperiment:
    def _run(self, **kw):
        defaults = dict(
            profile=paper_unconstrained(4),
            fpga=Fpga(width=100),
            us_grid=[20.0, 50.0, 80.0],
            samples_per_point=60,
            seed=5,
            sim_samples_per_point=10,
            horizon_factor=5,
        )
        defaults.update(kw)
        return acceptance_experiment(**defaults)

    def test_produces_all_series(self):
        curves = self._run()
        assert set(curves.labels) == {"DP", "GN1", "GN2", "sim:EDF-NF"}
        for s in curves.series:
            assert len(s.ratios) == 3
            assert all(0 <= r <= 1 for r in s.ratios)

    def test_ratios_decrease_with_utilization(self):
        curves = self._run()
        for label in ("DP", "GN1", "GN2"):
            r = curves[label].ratios
            assert r[0] >= r[-1]

    def test_simulation_dominates_tests(self):
        """The paper's headline: all tests pessimistic vs simulation."""
        curves = self._run(samples_per_point=40, sim_samples_per_point=40)
        sim = curves["sim:EDF-NF"].ratios
        for label in ("DP", "GN1", "GN2"):
            for test_r, sim_r in zip(curves[label].ratios, sim):
                # identical tasksets per bucket -> strict dominance holds
                assert test_r <= sim_r + 1e-12

    def test_reproducible(self):
        a = self._run()
        b = self._run()
        assert a.series == b.series

    def test_seed_changes_results(self):
        a = self._run()
        b = self._run(seed=6)
        assert a.series != b.series

    def test_no_simulation_mode(self):
        curves = self._run(sim_schedulers=())
        assert set(curves.labels) == {"DP", "GN1", "GN2"}

    def test_binned_mode_with_unreachable_bucket(self):
        curves = acceptance_experiment(
            spatially_light_temporally_heavy(10),
            Fpga(width=100),
            [2.0, 3.0, 60.0],  # spacing 1 -> bin tolerance 0.5
            samples_per_point=30,
            seed=7,
            tests=("GN1",),
            sim_schedulers=(),
            sampling="bin",
        )
        r = curves["GN1"].ratios
        # US < 5 is impossible for 10 tasks with u >= 0.5 and A >= 1
        assert math.isnan(r[0]) and math.isnan(r[1])
        assert not math.isnan(r[2])

    def test_validation(self):
        with pytest.raises(ValueError):
            self._run(tests=("XXX",))
        with pytest.raises(ValueError):
            self._run(sim_schedulers=("RoundRobin",))
        with pytest.raises(ValueError):
            self._run(samples_per_point=0)
        with pytest.raises(ValueError):
            self._run(sampling="magic")
        with pytest.raises(ValueError):
            self._run(sim_backend="quantum")
        with pytest.raises(ValueError):
            self._run(bin_tolerance=0.0)

    def test_series_lookup(self):
        curves = self._run(sim_schedulers=())
        assert curves["DP"].label == "DP"
        with pytest.raises(KeyError):
            curves["nope"]
        assert curves["DP"].at(20.0) == curves["DP"].ratios[0]
        with pytest.raises(KeyError):
            curves["DP"].at(33.0)

    def test_series_at_tolerates_computed_grids(self):
        """Regression: linspace buckets differ from literals by ulps; an
        exact == lookup used to KeyError on them."""
        grid = np.linspace(0.1, 0.7, 3)  # 0.1, 0.4000000000000001, 0.7
        series = AcceptanceSeries("DP", tuple(grid), (1.0, 0.5, 0.0))
        assert series.at(0.4) == 0.5
        assert series.at(grid[1]) == 0.5
        assert series.at(0.1) == 1.0
        with pytest.raises(KeyError):
            series.at(0.5)

    def test_vector_and_scalar_backends_agree(self):
        """The tentpole contract: identical sim curves from both backends."""
        v = self._run(sim_backend="vector", sim_samples_per_point=30)
        s = self._run(sim_backend="scalar", sim_samples_per_point=30)
        assert v["sim:EDF-NF"].ratios == s["sim:EDF-NF"].ratios
        assert v.sim_budget_exceeded == s.sim_budget_exceeded == 0

    def test_vector_backend_simulates_full_batch(self):
        """No 200-set subsample cap on the vector backend."""
        curves = self._run(samples_per_point=250, sim_samples_per_point=None)
        assert curves.sim_samples_per_point == 250
        scalar = self._run(
            samples_per_point=250, sim_samples_per_point=None,
            sim_backend="scalar", sim_schedulers=(),
        )
        assert scalar.sim_samples_per_point == 200

    def test_event_budget_survives_sweep(self):
        """A blown max_events budget must not abort the experiment."""
        for backend in ("vector", "scalar"):
            curves = self._run(sim_backend=backend, max_events=3)
            assert curves.sim_budget_exceeded == 30  # 3 buckets x 10 sims
            assert all(r == 0.0 for r in curves["sim:EDF-NF"].ratios)

    def test_explicit_bin_tolerance(self):
        curves = acceptance_experiment(
            spatially_light_temporally_heavy(10),
            Fpga(width=100),
            [60.0],
            samples_per_point=20,
            seed=7,
            tests=("GN1",),
            sim_schedulers=(),
            sampling="bin",
            bin_tolerance=3.0,
        )
        assert not math.isnan(curves["GN1"].ratios[0])

    def test_single_bucket_bin_requires_tolerance(self):
        with pytest.raises(ValueError, match="bin_tolerance"):
            acceptance_experiment(
                spatially_light_temporally_heavy(10),
                Fpga(width=100),
                [60.0],
                samples_per_point=20,
                seed=7,
                tests=("GN1",),
                sim_schedulers=(),
                sampling="bin",
            )

    def test_rows_shape(self):
        curves = self._run(sim_schedulers=())
        rows = curves.rows()
        assert len(rows) == 3
        assert len(rows[0]) == 4  # us + 3 tests


class TestArrayBackendThreading:
    """sim_array_backend plumbing + the device-backend serial override."""

    def _run(self, **kw):
        defaults = dict(
            profile=paper_unconstrained(3),
            fpga=Fpga(width=100),
            us_grid=[30.0, 70.0],
            samples_per_point=25,
            seed=9,
            sim_samples_per_point=8,
            horizon_factor=4,
        )
        defaults.update(kw)
        return acceptance_experiment(**defaults)

    def test_explicit_numpy_backend_matches_default(self):
        a = self._run()
        b = self._run(sim_array_backend="numpy")
        assert a.series == b.series

    def test_unknown_array_backend_rejected_eagerly(self):
        with pytest.raises(ValueError, match="array backend"):
            self._run(sim_array_backend="quantum")

    def test_unavailable_array_backend_raises_backend_unavailable(self):
        from repro.vector import xp as xp_mod

        missing = [
            n for n in ("cupy", "torch")
            if not xp_mod.backend_available(n)
        ]
        if not missing:
            pytest.skip("all optional backends installed here")
        with pytest.raises(xp_mod.BackendUnavailable):
            self._run(sim_array_backend=missing[0])

    def test_device_backend_forces_serial_workers(self, monkeypatch):
        """Forked workers must not share a GPU context: with a device
        backend active and workers > 1, the engine warns once and drops
        to serial chunking (the run still completes)."""
        from repro.vector import xp as xp_mod

        backend = xp_mod.get_backend("numpy")
        monkeypatch.setattr(backend, "is_device", True)
        with pytest.warns(RuntimeWarning, match="serial"):
            curves = self._run(sim_array_backend="numpy", workers=4)
        assert curves["sim:EDF-NF"].ratios  # sweep completed
        # workers=1 with a device backend is fine — no warning.
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            self._run(sim_array_backend="numpy", workers=1)

    def test_host_backend_keeps_workers_quiet(self):
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            curves = self._run(workers=2, sim_backend="scalar")
        assert curves["sim:EDF-NF"].ratios


class TestFigures:
    def test_all_figures_registered(self):
        assert set(FIGURES) == {"fig3a", "fig3b", "fig4a", "fig4b"}

    def test_run_figure_small(self):
        curves = run_figure("fig3a", samples=30, sim_samples=0, seed=1)
        assert curves.name.startswith("Fig 3(a)")
        assert len(curves["DP"].ratios) == FIGURES["fig3a"].points

    def test_fig4b_uses_binning(self):
        assert FIGURES["fig4b"].sampling == "bin"


class TestTablesRunner:
    def test_all_tables_match_paper(self):
        outcomes = run_tables()
        assert all(o.matches_paper for o in outcomes.values())

    def test_render(self):
        text = render_tables(run_tables())
        assert "table1" in text and "accept" in text and "NO" not in text


class TestRegistry:
    def test_contains_every_design_md_experiment(self):
        expected = {
            "fig3a", "fig3b", "fig4a", "fig4b",
            "ablation-alpha", "ablation-nf-fkf",
            "ablation-placement", "ablation-offsets",
        }
        assert expected <= set(EXPERIMENTS)

    def test_get_experiment(self):
        assert get_experiment("fig3a").experiment_id == "fig3a"
        with pytest.raises(KeyError):
            get_experiment("fig9z")


class TestReport:
    def _curves(self):
        return AcceptanceCurves(
            name="demo",
            capacity=100,
            samples_per_point=10,
            sim_samples_per_point=5,
            series=(
                AcceptanceSeries("DP", (10.0, 20.0), (1.0, 0.5)),
                AcceptanceSeries("sim:EDF-NF", (10.0, 20.0), (1.0, 1.0)),
            ),
        )

    def test_text(self):
        out = as_text(self._curves())
        assert "demo" in out and "DP" in out and "0.500" in out

    def test_text_normalized(self):
        out = as_text(self._curves(), normalize=True)
        assert "0.100" in out  # 10/100

    def test_csv(self):
        out = as_csv(self._curves())
        lines = out.strip().split("\n")
        assert lines[0] == "us,DP,sim:EDF-NF"
        assert lines[1].startswith("10,")

    def test_markdown(self):
        out = as_markdown(self._curves())
        assert out.count("|") > 8

    def test_sparkline(self):
        line = sparkline(self._curves(), "DP")
        assert "DP" in line and "█" in line

    def test_render_dispatch(self):
        for fmt in ("text", "csv", "markdown"):
            assert render(self._curves(), fmt)
        with pytest.raises(ValueError):
            render(self._curves(), "xml")


class TestCiTargetSizing:
    """Adaptive per-bucket sampling (ROADMAP: size buckets by CI width)."""

    def _run(self, **kw):
        defaults = dict(
            profile=paper_unconstrained(4),
            fpga=Fpga(width=100),
            us_grid=[10.0, 50.0, 90.0],
            samples_per_point=400,
            seed=9,
            horizon_factor=5,
        )
        defaults.update(kw)
        return acceptance_experiment(**defaults)

    def test_uncertain_buckets_draw_more_samples(self):
        """Buckets whose series sit near 0/1 stop near the pilot size;
        the bucket with the most knife-edge ratios spends the most."""
        curves = self._run(ci_target=0.05)
        assert curves.bucket_samples is not None
        assert len(curves.bucket_samples) == 3
        assert all(32 <= n <= 400 for n in curves.bucket_samples)
        assert max(curves.bucket_samples) > min(curves.bucket_samples)
        # the most-uncertain bucket (worst p(1-p) across series) gets
        # the largest draw
        variance = [
            max(s.ratios[i] * (1 - s.ratios[i]) for s in curves.series)
            for i in range(3)
        ]
        assert curves.bucket_samples.index(max(curves.bucket_samples)) == (
            variance.index(max(variance))
        )
        # flat mode records no per-bucket counts
        assert self._run().bucket_samples is None

    def test_tighter_target_draws_more(self):
        loose = self._run(ci_target=0.1)
        tight = self._run(ci_target=0.02)
        assert sum(tight.bucket_samples) >= sum(loose.bucket_samples)

    def test_reproducible(self):
        a = self._run(ci_target=0.05)
        b = self._run(ci_target=0.05)
        assert a.series == b.series
        assert a.bucket_samples == b.bucket_samples

    def test_ratios_stay_sane_and_monotone_enough(self):
        curves = self._run(ci_target=0.05)
        for s in curves.series:
            assert all(0 <= r <= 1 for r in s.ratios)
        for label in ("DP", "GN1", "GN2"):
            r = curves[label].ratios
            assert r[0] >= r[-1]

    def test_binned_sampling_supported(self):
        curves = acceptance_experiment(
            spatially_light_temporally_heavy(10),
            Fpga(width=100),
            [55.0, 65.0],
            samples_per_point=200,
            seed=11,
            tests=("GN1",),
            sim_schedulers=(),
            sampling="bin",
            ci_target=0.08,
        )
        assert curves.bucket_samples is not None
        assert all(n <= 200 for n in curves.bucket_samples)

    def test_validation(self):
        with pytest.raises(ValueError):
            self._run(ci_target=0.0)
        with pytest.raises(ValueError):
            self._run(ci_target=0.7)
        with pytest.raises(ValueError):
            self._run(ci_target=0.05, sim_backend="scalar")
        with pytest.raises(ValueError):
            self._run(ci_target=0.05, sim_samples_per_point=10)
        # scalar backend is fine when no sim curves are requested
        curves = self._run(
            ci_target=0.1, sim_backend="scalar", sim_schedulers=()
        )
        assert curves.bucket_samples is not None

    def test_run_figure_and_cli_expose_ci_target(self):
        curves = run_figure("fig3a", samples=200, seed=3, ci_target=0.1)
        assert curves.bucket_samples is not None
        from repro.experiments.cli import build_parser

        args = build_parser().parse_args(
            ["run", "fig3a", "--ci-target", "0.05"]
        )
        assert args.ci_target == 0.05


class TestOffsetAblationSoundness:
    """The offset/sporadic searches are refinements: searched curves must
    sit pointwise at or below their baseline curves (regression for the
    bug where a sync-failing set could count as offset-accepted)."""

    GRID = (40.0, 60.0, 85.0)

    def test_offset_curve_pointwise_below_sync(self):
        from repro.experiments.ablations import offset_ablation

        curves = offset_ablation(
            us_grid=self.GRID, samples=15, offset_samples=4, seed=43
        )
        sync = curves["sim:synchronous"].ratios
        searched = curves["sim:offset-search"].ratios
        for a, b in zip(sync, searched):
            assert b <= a
        assert all(0 <= r <= 1 for r in sync + searched)

    def test_sporadic_curve_pointwise_below_periodic(self):
        from repro.experiments.ablations import sporadic_ablation

        curves = sporadic_ablation(
            us_grid=self.GRID, samples=15, sporadic_samples=4, seed=47
        )
        periodic = curves["sim:periodic"].ratios
        searched = curves["sim:sporadic-search"].ratios
        for a, b in zip(periodic, searched):
            assert b <= a

    @pytest.mark.parametrize(
        "ablation,kw",
        [
            ("offset_ablation", {"offset_samples": 3}),
            ("sporadic_ablation", {"sporadic_samples": 3}),
        ],
    )
    def test_vector_and_scalar_backends_agree(self, ablation, kw):
        """Shared offset/schedule streams -> identical curves."""
        from repro.experiments import ablations

        fn = getattr(ablations, ablation)
        v = fn(us_grid=(50.0, 80.0), samples=8, seed=5, sim_backend="vector", **kw)
        s = fn(us_grid=(50.0, 80.0), samples=8, seed=5, sim_backend="scalar", **kw)
        for label in v.labels:
            assert v[label].ratios == s[label].ratios, label

    def test_zero_pattern_samples_degenerate_to_baseline(self):
        from repro.experiments.ablations import offset_ablation, sporadic_ablation

        o = offset_ablation(us_grid=(60.0,), samples=10, offset_samples=0, seed=3)
        assert o["sim:synchronous"].ratios == o["sim:offset-search"].ratios
        s = sporadic_ablation(
            us_grid=(60.0,), samples=10, sporadic_samples=0, seed=3
        )
        assert s["sim:periodic"].ratios == s["sim:sporadic-search"].ratios

    def test_validation(self):
        from repro.experiments.ablations import offset_ablation, sporadic_ablation

        with pytest.raises(ValueError):
            offset_ablation(samples=5, sim_backend="quantum")
        with pytest.raises(ValueError):
            offset_ablation(samples=5, offset_samples=-1)
        with pytest.raises(ValueError):
            sporadic_ablation(samples=5, sim_backend="quantum")
        with pytest.raises(ValueError):
            sporadic_ablation(samples=5, sporadic_samples=-1)


class TestSimReleaseThreading:
    """sim_release/sim_jitter reach the engine's vector sim curves."""

    def _run(self, **kw):
        defaults = dict(
            profile=paper_unconstrained(4),
            fpga=Fpga(width=100),
            us_grid=[30.0, 70.0],
            samples_per_point=20,
            seed=17,
            tests=(),
            horizon_factor=5,
        )
        defaults.update(kw)
        return acceptance_experiment(**defaults)

    def test_sporadic_curves_produced_and_reproducible(self):
        a = self._run(sim_release="sporadic")
        b = self._run(sim_release="sporadic")
        assert a.series == b.series
        for s in a.series:
            assert all(0 <= r <= 1 for r in s.ratios)

    def test_zero_jitter_degenerates_to_periodic(self):
        """sim_jitter=0 draws gap == T schedules: same curves as the
        periodic pattern (and proof the jitter knob reaches the sampler)."""
        lo = self._run(sim_release="sporadic", sim_jitter=0.0)
        periodic = self._run()
        assert lo.series == periodic.series

    def test_schedulers_share_patterns(self):
        """Both sim curves in a bucket see the same sampled schedules, so
        NF dominance over FkF holds pairwise under sporadic release."""
        curves = self._run(
            sim_release="sporadic", sim_schedulers=("EDF-NF", "EDF-FkF")
        )
        for a, b in zip(
            curves["sim:EDF-NF"].ratios, curves["sim:EDF-FkF"].ratios
        ):
            assert b <= a + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            self._run(sim_release="bursty")
        with pytest.raises(ValueError):
            self._run(sim_jitter=-0.5)
        with pytest.raises(ValueError):
            self._run(sim_release="sporadic", sim_backend="scalar")
        # scalar backend fine when no sim curves requested
        curves = self._run(
            sim_release="sporadic", sim_backend="scalar",
            sim_schedulers=(), tests=("DP",),
        )
        assert curves.labels == ("DP",)

    def test_run_figure_exposes_release_and_mode(self):
        from repro.fpga.placement import PlacementPolicy
        from repro.sim.simulator import MigrationMode

        sporadic = run_figure(
            "fig3a", samples=20, sim_samples=10, seed=3,
            sim_release="sporadic", horizon_factor=5,
        )
        assert "sim:EDF-NF" in sporadic.labels
        placed = run_figure(
            "fig3a", samples=20, sim_samples=10, seed=3,
            sim_mode=MigrationMode.RELOCATABLE,
            sim_policy=PlacementPolicy.BEST_FIT, horizon_factor=5,
        )
        free = run_figure(
            "fig3a", samples=20, sim_samples=10, seed=3, horizon_factor=5,
        )
        for p, f in zip(placed["sim:EDF-NF"].ratios, free["sim:EDF-NF"].ratios):
            assert p <= f + 1e-12


class TestSimModeThreading:
    """mode/policy reach the engine's sim curves on both backends."""

    def _run(self, **kw):
        from repro.fpga.placement import PlacementPolicy
        from repro.sim.simulator import MigrationMode

        defaults = dict(
            profile=paper_unconstrained(4),
            fpga=Fpga(width=30, static_regions=(StaticRegion(12, 3),)),
            us_grid=[12.0, 20.0],
            samples_per_point=12,
            seed=13,
            tests=(),
            sim_samples_per_point=12,
            horizon_factor=4,
            sim_mode=MigrationMode.RELOCATABLE,
            sim_policy=PlacementPolicy.BEST_FIT,
        )
        defaults.update(kw)
        return acceptance_experiment(**defaults)

    def test_vector_and_scalar_agree_in_placement_mode(self):
        v = self._run(sim_backend="vector")
        s = self._run(sim_backend="scalar")
        assert v["sim:EDF-NF"].ratios == s["sim:EDF-NF"].ratios

    def test_placement_mode_is_no_more_accepting_than_free(self):
        from repro.sim.simulator import MigrationMode

        placed = self._run(sim_backend="vector")
        free = self._run(sim_backend="vector", sim_mode=MigrationMode.FREE)
        for p, f in zip(placed["sim:EDF-NF"].ratios, free["sim:EDF-NF"].ratios):
            assert p <= f + 1e-12

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            self._run(sim_mode="relocatable")
        with pytest.raises(ValueError):
            self._run(sim_policy="best-fit")
