"""The mypy strict legs (mypy.ini) hold ``repro.vector.xp``,
``repro.incremental``, ``repro.lint``, and ``repro.service`` to
disallow_untyped_defs/disallow_incomplete_defs.
mypy itself runs in CI (it is not installed in every dev container), so
this tier-1 test pins the property those flags check — every def on the
strict surfaces fully annotated — keeping the gate honest locally."""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[1] / "src"

STRICT_FILES = sorted(
    [SRC / "repro" / "vector" / "xp.py"]
    + list((SRC / "repro" / "incremental").glob("*.py"))
    + list((SRC / "repro" / "lint").rglob("*.py"))
    + list((SRC / "repro" / "service").glob("*.py"))
)


def incomplete_defs(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    bad = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        named = args.posonlyargs + args.args + args.kwonlyargs
        missing = [
            a.arg
            for a in named
            if a.annotation is None and a.arg not in ("self", "cls")
        ]
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append("*" + args.vararg.arg)
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append("**" + args.kwarg.arg)
        if node.returns is None:
            missing.append("<return>")
        if missing:
            bad.append(f"{path.name}:{node.lineno} {node.name}({', '.join(missing)})")
    return bad


@pytest.mark.parametrize("path", STRICT_FILES, ids=lambda p: p.name)
def test_strict_surface_is_fully_annotated(path):
    assert incomplete_defs(path) == []


def test_strict_file_list_is_current():
    # mypy.ini's CI invocation names xp.py, the incremental package, the
    # lint package (rules/ included), and the service package; if any of
    # them grows a module this picks it up automatically, and this
    # assertion documents the floor.
    assert len(STRICT_FILES) >= 25
