"""Behavioural and property tests for the DP/GN1/GN2 test objects."""

from fractions import Fraction as F

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dp import AreaModel, DpTest, dp_test, dp_test_real_areas
from repro.core.gn1 import Gn1Test, gn1_test
from repro.core.gn2 import Gn2Test, gn2_test
from repro.core.interfaces import SchedulerKind, necessary_conditions
from repro.fpga.device import Fpga
from repro.model.task import Task, TaskSet

ALL_TESTS = [dp_test, gn1_test, gn2_test]


def tiny_taskset():
    """A trivially schedulable set: tiny utilizations, narrow tasks."""
    return TaskSet(
        [
            Task(wcet=F(1, 10), period=10, area=1, name="a"),
            Task(wcet=F(1, 10), period=10, area=1, name="b"),
        ]
    )


def infeasible_taskset():
    return TaskSet([Task(wcet=9, period=10, deadline=5, area=2, name="x")])


@st.composite
def small_tasksets(draw):
    """Random 2-4 task sets with rational parameters, D = T."""
    n = draw(st.integers(2, 4))
    tasks = []
    for i in range(n):
        period = draw(st.integers(5, 20))
        wcet = F(draw(st.integers(1, period * 10)), 10)
        area = draw(st.integers(1, 10))
        tasks.append(Task(wcet=wcet, period=period, area=area, name=f"t{i}"))
    return TaskSet(tasks)


class TestNecessaryConditions:
    def test_accepts_feasible(self):
        res = necessary_conditions(tiny_taskset(), Fpga(width=10))
        assert res.accepted

    def test_rejects_wide_task(self):
        ts = TaskSet([Task(wcet=1, period=10, area=20, name="w")])
        res = necessary_conditions(ts, Fpga(width=10))
        assert not res.accepted
        assert "capacity" in res.per_task[0].detail

    def test_rejects_c_above_d(self):
        res = necessary_conditions(infeasible_taskset(), Fpga(width=10))
        assert not res.accepted

    def test_rejects_overloaded_system(self):
        ts = TaskSet(
            [Task(wcet=9, period=10, area=8, name=f"t{i}") for i in range(3)]
        )
        res = necessary_conditions(ts, Fpga(width=10))
        assert not res.accepted

    def test_accounts_for_static_regions(self):
        fpga = Fpga(width=10)
        from repro.fpga.device import StaticRegion

        shrunk = Fpga(width=10, static_regions=(StaticRegion(0, 5),))
        ts = TaskSet([Task(wcet=1, period=10, area=7, name="w")])
        assert necessary_conditions(ts, fpga).accepted
        assert not necessary_conditions(ts, shrunk).accepted


class TestCommonBehaviour:
    @pytest.mark.parametrize("test", ALL_TESTS, ids=lambda t: t.name)
    def test_accepts_tiny_taskset(self, test):
        assert test(tiny_taskset(), Fpga(width=10)).accepted

    @pytest.mark.parametrize("test", ALL_TESTS, ids=lambda t: t.name)
    def test_rejects_infeasible_task(self, test):
        assert not test(infeasible_taskset(), Fpga(width=10)).accepted

    @pytest.mark.parametrize("test", ALL_TESTS, ids=lambda t: t.name)
    def test_result_metadata(self, test):
        res = test(tiny_taskset(), Fpga(width=10))
        assert res.test_name == test.name
        assert bool(res) is res.accepted

    def test_scheduler_coverage(self):
        assert SchedulerKind.EDF_FKF in dp_test.schedulers
        assert SchedulerKind.EDF_NF in dp_test.schedulers
        assert gn1_test.schedulers == frozenset({SchedulerKind.EDF_NF})
        assert SchedulerKind.EDF_FKF in gn2_test.schedulers

    @pytest.mark.parametrize("test", ALL_TESTS, ids=lambda t: t.name)
    @given(ts=small_tasksets())
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_wcet_scaling(self, test, ts):
        """Scaling all WCETs down never flips accept -> reject."""
        fpga = Fpga(width=10)
        if test(ts, fpga).accepted:
            smaller = ts.scaled(time_factor=F(1, 2))
            assert test(smaller, fpga).accepted

    @pytest.mark.parametrize("test", ALL_TESTS, ids=lambda t: t.name)
    @given(ts=small_tasksets())
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_device_width(self, test, ts):
        """A wider device never turns acceptance into rejection."""
        if test(ts, Fpga(width=10)).accepted:
            assert test(ts, Fpga(width=20)).accepted


class TestDpSpecifics:
    def test_integer_model_dominates_real(self):
        """DP-integer accepts everything DP-real accepts (Abnd is larger)."""
        fpga = Fpga(width=10)
        ts = tiny_taskset()
        assert dp_test(ts, fpga).accepted
        # construct a set right at the real-area boundary
        boundary = TaskSet(
            [
                Task(wcet=F("1.26"), period=7, area=9, name="a"),
                Task(wcet=F("0.95"), period=5, area=6, name="b"),
            ]
        )
        assert dp_test(boundary, fpga).accepted
        assert not dp_test_real_areas(boundary, fpga).accepted

    @given(ts=small_tasksets())
    @settings(max_examples=60, deadline=None)
    def test_real_accept_implies_integer_accept(self, ts):
        fpga = Fpga(width=12)
        if dp_test_real_areas(ts, fpga).accepted:
            assert dp_test(ts, fpga).accepted

    def test_names(self):
        assert dp_test.name == "DP"
        assert DpTest(AreaModel.REAL).name == "DP-real"


class TestGn1Specifics:
    def test_single_task_with_slack_accepted(self):
        ts = TaskSet([Task(wcet=1, period=10, area=5, name="solo")])
        assert gn1_test(ts, Fpga(width=10)).accepted

    def test_single_zero_laxity_task_rejected_by_strictness(self):
        """C = D makes the RHS zero; the strict `<` then fails even though
        the task is feasible — documented pessimism of Theorem 2."""
        ts = TaskSet([Task(wcet=10, period=10, area=5, name="solo")])
        assert not gn1_test(ts, Fpga(width=10)).accepted

    def test_interference_report_mentions_betas(self, table3, fpga10):
        report = Gn1Test().interference_report(table3, fpga10, 1)
        assert "β[tau1]" in report
        assert "fail" in report


class TestGn2Specifics:
    def test_witness_reported_in_details(self, table3, fpga10):
        res = gn2_test(table3, fpga10)
        assert all("certified by λ" in v.detail for v in res.per_task)

    def test_rejection_detail(self, table2, fpga10):
        res = gn2_test(table2, fpga10)
        failing = [v for v in res.per_task if not v.passed]
        assert failing and "no λ candidate" in failing[0].detail

    def test_name_flags_variants(self):
        assert gn2_test.name == "GN2"
        assert Gn2Test(strict_condition2=False).name == "GN2*"
