"""Tests for the multiprocessor baselines and the unit-area reductions.

The reduction identities are the paper's §1 observation: multiprocessor
scheduling is FPGA scheduling with all areas = 1 and A(H) = m.  DP must
then coincide with GFB, GN1 (window variant) with BCL, GN2 with BAK2.
"""

from fractions import Fraction as F

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dp import dp_test
from repro.core.gn1 import Gn1Test, Gn1Variant
from repro.core.gn2 import Gn2Test
from repro.mp.bak2 import Bak2Test, bak2_test
from repro.mp.bcl import bcl_test
from repro.mp.gfb import gfb_test
from repro.mp.reductions import as_unit_area_taskset, cpu_task, platform_for
from repro.model.task import Task, TaskSet


def cpu_ts(*specs):
    return TaskSet([cpu_task(c, t, d, name=f"t{i}") for i, (c, d, t) in enumerate(specs)])


class TestGfb:
    def test_light_taskset_accepted(self):
        ts = cpu_ts((1, 10, 10), (1, 10, 10))
        assert gfb_test(ts, 2).accepted

    def test_dhall_effect_rejected(self):
        # classic Dhall: light tasks + one heavy task breaks plain EDF
        ts = cpu_ts((2, 10, 10), (2, 10, 10), (9, 10, 10))
        assert not gfb_test(ts, 2).accepted

    def test_bound_is_tight_in_m(self):
        # UT = m(1-u)+u exactly at boundary is accepted (<=)
        u = F(1, 2)
        m = 3
        # three tasks of u=1/2 plus filler to land exactly on bound
        target = m * (1 - u) + u  # = 2
        ts = cpu_ts((5, 10, 10), (5, 10, 10), (5, 10, 10), (5, 10, 10))
        assert ts.time_utilization == target
        assert gfb_test(ts, m).accepted

    def test_rejects_utilization_above_one_task(self):
        ts = TaskSet([Task(wcet=12, period=10, area=1, name="x")])
        assert not gfb_test(ts, 4).accepted

    def test_rejects_bad_processor_count(self):
        with pytest.raises(ValueError):
            gfb_test(cpu_ts((1, 10, 10)), 0)


class TestBcl:
    def test_accepts_light(self):
        ts = cpu_ts((1, 10, 10), (1, 10, 10), (1, 10, 10))
        assert bcl_test(ts, 2).accepted

    def test_handles_constrained_deadlines(self):
        ts = cpu_ts((1, 5, 10), (1, 5, 10))
        assert bcl_test(ts, 2).accepted

    def test_rejects_zero_laxity(self):
        ts = cpu_ts((10, 10, 10), (10, 10, 10))
        assert not bcl_test(ts, 2).accepted

    def test_rejects_infeasible(self):
        ts = cpu_ts((6, 5, 10))
        assert not bcl_test(ts, 2).accepted


class TestBak2:
    def test_accepts_light(self):
        ts = cpu_ts((1, 10, 10), (1, 10, 10))
        assert bak2_test(ts, 2).accepted

    def test_incomparable_with_bcl_direction_one(self):
        """BAK2 accepts a set BCL rejects (λ-extension pays off).

        Witness found by randomized search; Baker 2006 shows the tests are
        incomparable in general.
        """
        ts = cpu_ts(
            (F(1, 10), 2, 5), (F(17, 5), 6, 8), (F(9, 10), 8, 12), (F(11, 10), 4, 5)
        )
        assert bak2_test(ts, 2).accepted
        assert not bcl_test(ts, 2).accepted

    def test_incomparable_with_bcl_direction_two(self):
        """BCL accepts a set BAK2 rejects (BAK2's Σ includes i = k)."""
        ts = cpu_ts((F(14, 5), 3, 9), (F(13, 2), 8, 9), (F(4, 5), 3, 7))
        assert bcl_test(ts, 3).accepted
        assert not bak2_test(ts, 3).accepted

    def test_rejects_overload(self):
        ts = cpu_ts((9, 10, 10), (9, 10, 10), (9, 10, 10))
        assert not bak2_test(ts, 2).accepted


@st.composite
def unit_cpu_tasksets(draw):
    n = draw(st.integers(2, 5))
    tasks = []
    for i in range(n):
        period = draw(st.integers(4, 16))
        wcet = F(draw(st.integers(1, period * 10)), 10)
        deadline = draw(st.integers(max(1, period - 3), period))
        tasks.append(cpu_task(wcet, period, deadline, name=f"t{i}"))
    return TaskSet(tasks)


class TestReductions:
    def test_platform_for(self):
        assert platform_for(4).capacity == 4
        with pytest.raises(ValueError):
            platform_for(0)

    def test_as_unit_area(self):
        ts = TaskSet([Task(wcet=1, period=5, area=7, name="w")])
        flat = as_unit_area_taskset(ts)
        assert flat.max_area == 1
        assert flat[0].wcet == 1

    @given(ts=unit_cpu_tasksets(), m=st.integers(2, 6))
    @settings(max_examples=100, deadline=None)
    def test_dp_reduces_to_gfb(self, ts, m):
        """DP with unit areas on Fpga(m) == GFB on m processors."""
        fpga = platform_for(m)
        dp = dp_test(ts, fpga)
        gfb = gfb_test(ts, m)
        # GFB has no necessary-conditions pre-filter; align on feasible sets
        if all(t.feasible_alone and t.time_utilization <= 1 for t in ts):
            assert dp.accepted == gfb.accepted, (
                f"DP={dp.accepted} GFB={gfb.accepted} for {ts}"
            )

    @given(ts=unit_cpu_tasksets(), m=st.integers(2, 6))
    @settings(max_examples=100, deadline=None)
    def test_gn1_window_reduces_to_bcl(self, ts, m):
        """GN1 (BCL window variant) with unit areas == BCL."""
        fpga = platform_for(m)
        gn1 = Gn1Test(Gn1Variant.BCL_WINDOW)(ts, fpga)
        bcl = bcl_test(ts, m)
        if all(t.feasible_alone and t.time_utilization <= 1 for t in ts):
            assert gn1.accepted == bcl.accepted

    @given(ts=unit_cpu_tasksets(), m=st.integers(2, 6))
    @settings(max_examples=100, deadline=None)
    def test_gn2_reduces_to_bak2(self, ts, m):
        """GN2 with unit areas (Abnd=m, Amin=1) == BAK2."""
        fpga = platform_for(m)
        gn2 = Gn2Test()(ts, fpga)
        bak = Bak2Test(m)(ts)
        if all(t.feasible_alone and t.time_utilization <= 1 for t in ts):
            assert gn2.accepted == bak.accepted
