"""Tests for the discrete-event FPGA simulator (free-migration mode)."""

from fractions import Fraction as F

import pytest

from repro.fpga.device import Fpga
from repro.model.task import Task, TaskSet
from repro.sched.edf_fkf import EdfFkf
from repro.sched.edf_nf import EdfNf
from repro.sim.simulator import (
    MigrationMode,
    SimulationError,
    default_horizon,
    simulate,
)


def _t(c, t, a=1, d=None, name=None):
    return Task(wcet=c, period=t, deadline=d, area=a, name=name or f"t{c}-{t}-{a}")


class TestSingleTask:
    def test_runs_and_completes(self):
        ts = TaskSet([_t(2, 10, a=4, name="solo")])
        res = simulate(ts, Fpga(width=10), EdfNf(), horizon=30)
        assert res.schedulable
        assert res.metrics.jobs_released == 3
        assert res.metrics.jobs_completed == 3
        assert res.metrics.worst_response["solo"] == 2

    def test_infeasible_task_misses_immediately(self):
        ts = TaskSet([_t(6, 10, d=5, name="late")])
        res = simulate(ts, Fpga(width=10), EdfNf(), horizon=30)
        assert not res.schedulable
        assert res.misses[0].task == "late"
        assert res.misses[0].deadline == 5

    def test_task_wider_than_device_never_runs(self):
        ts = TaskSet([_t(1, 10, a=20, name="wide")])
        res = simulate(ts, Fpga(width=10), EdfNf(), horizon=30)
        assert not res.schedulable
        assert res.misses[0].remaining == 1

    def test_busy_area_time_matches_demand(self):
        ts = TaskSet([_t(2, 10, a=4, name="solo")])
        res = simulate(ts, Fpga(width=10), EdfNf(), horizon=30)
        # three jobs x 2 time units x 4 columns
        assert res.metrics.busy_area_time == 24


class TestParallelism:
    def test_two_tasks_run_concurrently(self):
        """FPGAs are inherently parallel (paper §1): two fitting tasks both
        complete with response time == C, no interference."""
        ts = TaskSet([_t(5, 10, a=4, name="a"), _t(5, 10, a=5, name="b")])
        res = simulate(ts, Fpga(width=10), EdfNf(), horizon=10)
        assert res.schedulable
        assert res.metrics.worst_response["a"] == 5
        assert res.metrics.worst_response["b"] == 5
        assert res.metrics.preemptions == 0

    def test_serialization_when_not_fitting(self):
        """Two full-width tasks must serialize: the later-deadline one
        waits for the earlier to finish."""
        ts = TaskSet(
            [_t(2, 10, a=10, name="first"), _t(2, 20, a=10, name="second")]
        )
        res = simulate(ts, Fpga(width=10), EdfNf(), horizon=20)
        assert res.schedulable
        assert res.metrics.worst_response["first"] == 2
        assert res.metrics.worst_response["second"] == 4  # waited behind first

    def test_preemption_by_earlier_deadline(self):
        """A newly released tight-deadline job displaces a running one."""
        ts = TaskSet(
            [
                _t(8, 20, a=10, name="long"),  # starts at 0, d=20
                _t(2, 20, d=5, a=10, name="urgent"),  # competes for full width
            ]
        )
        # urgent (d=5) preempts long (d=20) at release time 0? both release
        # at 0: urgent runs first (earlier deadline), long runs after.
        res = simulate(ts, Fpga(width=10), EdfNf(), horizon=20)
        assert res.schedulable
        assert res.metrics.worst_response["urgent"] == 2
        assert res.metrics.worst_response["long"] == 10

    def test_midstream_preemption_counted(self):
        ts = TaskSet(
            [
                Task(wcet=6, period=20, area=10, name="long"),
                Task(wcet=2, period=10, deadline=4, area=10, name="tick"),
            ]
        )
        # offset tick to release at 2: long runs [0,2), preempted.
        res = simulate(
            ts, Fpga(width=10), EdfNf(), horizon=20, offsets={"tick": 2}
        )
        assert res.schedulable
        assert res.metrics.preemptions >= 1


class TestBlockingFkfVsNf:
    def _blocking_set(self):
        # Queue at t=0 in deadline order: head (A=6), mid (A=6), narrow (A=3).
        # FkF runs only `head` (6+6 > 10 stops the prefix), blocking `narrow`
        # even though 6+3 fits; NF skips `mid` and runs `narrow` at once.
        return TaskSet(
            [
                _t(2, 20, d=5, a=6, name="head"),
                _t(3, 20, d=6, a=6, name="mid"),
                _t(2, 20, d=7, a=3, name="narrow"),
            ]
        )

    def test_nf_uses_idle_area(self):
        res = simulate(self._blocking_set(), Fpga(width=10), EdfNf(), horizon=20)
        assert res.schedulable
        assert res.metrics.worst_response["narrow"] == 2  # ran immediately

    def test_fkf_blocks_behind_wide_job(self):
        """Same set under FkF: 'narrow' cannot start before 'mid', so its
        completion is later than under NF — the paper's §1 intuition."""
        nf = simulate(self._blocking_set(), Fpga(width=10), EdfNf(), horizon=20)
        fkf = simulate(self._blocking_set(), Fpga(width=10), EdfFkf(), horizon=20)
        assert fkf.schedulable  # still makes its deadlines here
        assert fkf.metrics.worst_response["narrow"] > nf.metrics.worst_response["narrow"]


class TestDeadlineHandling:
    def test_finish_exactly_at_deadline_is_success(self):
        ts = TaskSet([_t(5, 10, d=5, a=10, name="edge")])
        res = simulate(ts, Fpga(width=10), EdfNf(), horizon=20)
        assert res.schedulable

    def test_stop_at_first_miss(self):
        ts = TaskSet([_t(6, 10, d=5, a=10, name="bad")])
        res = simulate(ts, Fpga(width=10), EdfNf(), horizon=100)
        assert len(res.misses) == 1
        assert res.metrics.simulated_time <= 10

    def test_continue_after_miss_records_all(self):
        ts = TaskSet([_t(6, 10, d=5, a=10, name="bad")])
        res = simulate(
            ts, Fpga(width=10), EdfNf(), horizon=40, stop_at_first_miss=False
        )
        assert not res.schedulable
        assert len(res.misses) >= 2  # several periods, several misses

    def test_tardy_job_still_completes(self):
        ts = TaskSet([_t(6, 50, d=5, a=10, name="tardy")])
        res = simulate(
            ts, Fpga(width=10), EdfNf(), horizon=50, stop_at_first_miss=False
        )
        assert res.metrics.jobs_completed == 1
        assert res.metrics.worst_response["tardy"] == 6


class TestExactArithmetic:
    def test_fraction_timeline(self):
        ts = TaskSet(
            [
                Task(wcet=F(1, 3), period=F(1, 2), area=5, name="x"),
                Task(wcet=F(1, 7), period=F(1, 2), area=5, name="y"),
            ]
        )
        res = simulate(ts, Fpga(width=10), EdfNf(), horizon=F(5, 2), eps=0)
        assert res.schedulable
        assert res.metrics.jobs_released == 10
        assert res.metrics.worst_response["x"] == F(1, 3)


class TestValidationAndGuards:
    def test_rejects_nonpositive_horizon(self):
        ts = TaskSet([_t(1, 10)])
        with pytest.raises(ValueError):
            simulate(ts, Fpga(width=10), EdfNf(), horizon=0)

    def test_rejects_unknown_offset_names(self):
        ts = TaskSet([_t(1, 10, name="a")])
        with pytest.raises(ValueError):
            simulate(ts, Fpga(width=10), EdfNf(), horizon=10, offsets={"zzz": 1})

    def test_event_bound_guards_runaway(self):
        ts = TaskSet([_t(1, 10, name="a")])
        with pytest.raises(SimulationError):
            simulate(ts, Fpga(width=10), EdfNf(), horizon=10_000, max_events=5)

    def test_placement_mode_requires_integer_areas(self):
        ts = TaskSet([Task(wcet=1, period=10, area=2.5, name="frac")])
        with pytest.raises(ValueError):
            simulate(
                ts, Fpga(width=10), EdfNf(), horizon=10,
                mode=MigrationMode.RELOCATABLE,
            )

    def test_default_horizon(self):
        ts = TaskSet([_t(1, 10, d=8), _t(1, 5)])
        assert default_horizon(ts, factor=20) == 8 + 20 * 10
        with pytest.raises(ValueError):
            default_horizon(ts, factor=0)


class TestOffsets:
    def test_offset_shifts_releases(self):
        ts = TaskSet([_t(1, 10, name="a")])
        res = simulate(ts, Fpga(width=10), EdfNf(), horizon=30, offsets={"a": 5})
        # releases at 5, 15, 25
        assert res.metrics.jobs_released == 3

    def test_offset_beyond_horizon_never_releases(self):
        ts = TaskSet([_t(1, 10, name="a")])
        res = simulate(ts, Fpga(width=10), EdfNf(), horizon=10, offsets={"a": 50})
        assert res.metrics.jobs_released == 0
        assert res.schedulable
