"""Cross-validation: batched simulator verdicts == scalar simulator verdicts.

The contract (ISSUE: same ``sequential_sum`` discipline as the analytical
vector tests) is *bit-identical* schedulability verdicts between
:func:`repro.vector.sim_vec.simulate_batch` and the scalar
:func:`repro.sim.simulator.simulate` run on ``batch.taskset(i)``, for
EDF-NF and EDF-FkF, on random batches (float and integer periods) and on
the paper's knife-edge tasksets.
"""

import numpy as np
import pytest

from repro.fpga.device import Fpga
from repro.gen.profiles import (
    GenerationProfile,
    paper_unconstrained,
    spatially_heavy_temporally_light,
    spatially_light_temporally_heavy,
)
from repro.sched.edf_fkf import EdfFkf
from repro.sched.edf_nf import EdfNf
from repro.sched.edf_us import EdfUs, edf_us_threshold
from repro.sim.simulator import SimulationError, default_horizon, simulate
from repro.util.rngutil import rng_from_seed
from repro.vector.batch import TaskSetBatch, generate_batch
from repro.vector.sim_vec import default_horizon_batch, simulate_batch

CAPACITY = 100
FPGA = Fpga(width=CAPACITY)
SCHEDULERS = [("EDF-NF", EdfNf), ("EDF-FkF", EdfFkf)]

PROFILES = [
    paper_unconstrained(2),
    paper_unconstrained(4),
    paper_unconstrained(10),
    spatially_heavy_temporally_light(10),
    spatially_light_temporally_heavy(10),
    # integer periods: synchronized releases -> massive deadline ties,
    # exercising the (release, name) tie-break incl. tau10 < tau2
    GenerationProfile(n_tasks=6, integer_periods=True, name="int-periods-6"),
    GenerationProfile(n_tasks=12, integer_periods=True, name="int-periods-12"),
]


def _batch(profile, seed, count=30):
    """A batch spread over the utilization axis (mixed verdicts)."""
    raw = generate_batch(profile, count, rng_from_seed(seed))
    targets = rng_from_seed(seed + 100).uniform(20, 120, size=count)
    scaled = raw.scaled_to_system_utilization(targets)
    keep = scaled.feasible_mask
    return TaskSetBatch(
        scaled.wcet[keep], scaled.period[keep],
        scaled.deadline[keep], scaled.area[keep],
    )


def _assert_verdicts_match(batch, sched_name, sched_cls, factor=5):
    vec = simulate_batch(batch, CAPACITY, sched_name, horizon_factor=factor)
    for i in range(batch.count):
        ts = batch.taskset(i)
        ref = simulate(
            ts, FPGA, sched_cls(), default_horizon(ts, factor=factor)
        ).schedulable
        assert bool(vec.schedulable[i]) == ref, f"set {i}: {ts}"
    return vec


@pytest.mark.parametrize("sched_name,sched_cls", SCHEDULERS)
@pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
class TestRandomBatchEquivalence:
    def test_verdicts_bit_identical(self, profile, sched_name, sched_cls):
        batch = _batch(profile, seed=1)
        vec = _assert_verdicts_match(batch, sched_name, sched_cls)
        assert not vec.budget_exceeded.any()
        assert 0.0 <= vec.acceptance_ratio <= 1.0


@pytest.mark.parametrize("sched_name,sched_cls", SCHEDULERS)
class TestKnifeEdgeEquivalence:
    def test_paper_tables(self, sched_name, sched_cls, table1, table2, table3):
        """The paper's Tables 1-3 sets, simulated on the 10-column device."""
        batch = TaskSetBatch.from_tasksets([table1, table2, table3])
        vec = simulate_batch(batch, 10, sched_name, horizon_factor=5)
        for i in range(3):
            ts = batch.taskset(i)
            ref = simulate(
                ts, Fpga(width=10), sched_cls(), default_horizon(ts, factor=5)
            ).schedulable
            assert bool(vec.schedulable[i]) == ref

    def test_identical_periods_tie_storm(self, sched_name, sched_cls):
        """12 tasks, one shared period: every release ties every deadline,
        so selection is decided purely by the name tie-break."""
        rng = rng_from_seed(9)
        n, b = 12, 20
        period = np.full((b, n), 10.0)
        wcet = rng.uniform(0.5, 6.0, size=(b, n))
        area = rng.integers(5, 60, size=(b, n)).astype(float)
        batch = TaskSetBatch(wcet, period, period.copy(), area)
        _assert_verdicts_match(batch, sched_name, sched_cls)

    def test_completion_exactly_at_deadline(self, sched_name, sched_cls):
        """C == D: the job finishes exactly on its deadline — a success in
        both simulators (completions are processed before miss checks)."""
        wcet = np.array([[4.0, 3.0]])
        period = np.array([[4.0, 6.0]])
        area = np.array([[60.0, 40.0]])
        batch = TaskSetBatch(wcet, period, period.copy(), area)
        _assert_verdicts_match(batch, sched_name, sched_cls)


class TestBudgetAndHorizon:
    def test_budget_exceeded_rows_marked_not_schedulable(self):
        batch = _batch(paper_unconstrained(4), seed=3, count=10)
        res = simulate_batch(batch, CAPACITY, "EDF-NF", max_events=3)
        assert res.budget_exceeded.all()
        assert not res.schedulable.any()
        # the scalar reference raises where the batch runner records
        ts = batch.taskset(0)
        with pytest.raises(SimulationError):
            simulate(ts, FPGA, EdfNf(), default_horizon(ts), max_events=3)

    def test_default_horizon_matches_scalar(self):
        batch = _batch(paper_unconstrained(5), seed=4, count=8)
        hz = default_horizon_batch(batch, factor=7)
        for i in range(batch.count):
            assert hz[i] == float(default_horizon(batch.taskset(i), factor=7))

    def test_explicit_horizon_broadcasts(self):
        batch = _batch(paper_unconstrained(3), seed=5, count=6)
        scalar_h = simulate_batch(batch, CAPACITY, "EDF-NF", horizon=50.0)
        array_h = simulate_batch(
            batch, CAPACITY, "EDF-NF", horizon=np.full(batch.count, 50.0)
        )
        assert (scalar_h.schedulable == array_h.schedulable).all()
        for i in range(batch.count):
            ref = simulate(batch.taskset(i), FPGA, EdfNf(), 50.0).schedulable
            assert bool(scalar_h.schedulable[i]) == ref

    def test_events_counted(self):
        batch = _batch(paper_unconstrained(3), seed=6, count=5)
        res = simulate_batch(batch, CAPACITY, "EDF-NF", horizon_factor=3)
        assert (res.events > 0).all()


class TestValidation:
    def _tiny(self):
        return TaskSetBatch(
            np.array([[1.0]]), np.array([[4.0]]),
            np.array([[4.0]]), np.array([[2.0]]),
        )

    def test_scheduler_instances_accepted(self):
        batch = self._tiny()
        assert simulate_batch(batch, 10, EdfNf()).schedulable.all()
        assert simulate_batch(batch, 10, EdfFkf()).schedulable.all()

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            simulate_batch(self._tiny(), 10, "RoundRobin")
        with pytest.raises(ValueError):
            simulate_batch(self._tiny(), 10, EdfUs(edf_us_threshold(2)))
        with pytest.raises(TypeError):
            simulate_batch(self._tiny(), 10, 42)

    def test_unconstrained_deadline_rejected(self):
        batch = TaskSetBatch(
            np.array([[1.0]]), np.array([[4.0]]),
            np.array([[5.0]]), np.array([[2.0]]),
        )
        with pytest.raises(ValueError):
            simulate_batch(batch, 10)

    def test_degenerate_parameters_rejected(self):
        bad_wcet = TaskSetBatch(
            np.array([[1e-12]]), np.array([[4.0]]),
            np.array([[4.0]]), np.array([[2.0]]),
        )
        with pytest.raises(ValueError):
            simulate_batch(bad_wcet, 10)
        with pytest.raises(ValueError):
            simulate_batch(self._tiny(), 10, horizon=0.0)
        with pytest.raises(ValueError):
            simulate_batch(self._tiny(), 10, max_events=0)
        with pytest.raises(ValueError):
            simulate_batch(self._tiny(), 10, horizon_factor=0)
