"""Cross-validation: batched simulator verdicts == scalar simulator verdicts.

The contract (ISSUE: same ``sequential_sum`` discipline as the analytical
vector tests) is *bit-identical* schedulability verdicts between
:func:`repro.vector.sim_vec.simulate_batch` and the scalar
:func:`repro.sim.simulator.simulate` run on ``batch.taskset(i)``, for
EDF-NF and EDF-FkF, on random batches (float and integer periods), on
the paper's knife-edge tasksets, for the placement-aware
RELOCATABLE/PINNED modes — under every placement policy, with and
without static-region pre-fragmentation — and for every release
pattern: random per-row offsets against ``simulate(offsets=...)`` and
seed-shared sporadic schedules against ``simulate_release_schedule``.
"""

import warnings

import numpy as np
import pytest

from repro.fpga.device import Fpga, StaticRegion
from repro.fpga.placement import PlacementPolicy
from repro.gen.profiles import (
    GenerationProfile,
    paper_unconstrained,
    spatially_heavy_temporally_light,
    spatially_light_temporally_heavy,
)
from repro.sched.edf_fkf import EdfFkf
from repro.sched.edf_nf import EdfNf
from repro.sched.edf_us import EdfUs, edf_us_threshold
from repro.sim.simulator import (
    MigrationMode,
    SimulationError,
    default_horizon,
    simulate,
)
from repro.sim.sporadic import sample_release_schedule, simulate_release_schedule
from repro.util.rngutil import rng_from_seed
from repro.vector.batch import TaskSetBatch, generate_batch
from repro.vector import xp as xp_backends
from repro.vector.sim_vec import (
    SIM_WORKERS_ENV,
    default_horizon_batch,
    resolve_sim_workers,
    sample_offsets_batch,
    sample_release_times_batch,
    simulate_batch,
)

CAPACITY = 100
FPGA = Fpga(width=CAPACITY)
SCHEDULERS = [("EDF-NF", EdfNf), ("EDF-FkF", EdfFkf)]

PROFILES = [
    paper_unconstrained(2),
    paper_unconstrained(4),
    paper_unconstrained(10),
    spatially_heavy_temporally_light(10),
    spatially_light_temporally_heavy(10),
    # integer periods: synchronized releases -> massive deadline ties,
    # exercising the (release, name) tie-break incl. tau10 < tau2
    GenerationProfile(n_tasks=6, integer_periods=True, name="int-periods-6"),
    GenerationProfile(n_tasks=12, integer_periods=True, name="int-periods-12"),
]


def _batch(profile, seed, count=30):
    """A batch spread over the utilization axis (mixed verdicts)."""
    raw = generate_batch(profile, count, rng_from_seed(seed))
    targets = rng_from_seed(seed + 100).uniform(20, 120, size=count)
    scaled = raw.scaled_to_system_utilization(targets)
    keep = scaled.feasible_mask
    return TaskSetBatch(
        scaled.wcet[keep], scaled.period[keep],
        scaled.deadline[keep], scaled.area[keep],
    )


def _assert_verdicts_match(batch, sched_name, sched_cls, factor=5):
    vec = simulate_batch(batch, CAPACITY, sched_name, horizon_factor=factor)
    for i in range(batch.count):
        ts = batch.taskset(i)
        ref = simulate(
            ts, FPGA, sched_cls(), default_horizon(ts, factor=factor)
        ).schedulable
        assert bool(vec.schedulable[i]) == ref, f"set {i}: {ts}"
    return vec


@pytest.mark.usefixtures("array_backend")
@pytest.mark.parametrize("sched_name,sched_cls", SCHEDULERS)
@pytest.mark.parametrize("profile", PROFILES, ids=lambda p: p.name)
class TestRandomBatchEquivalence:
    def test_verdicts_bit_identical(self, profile, sched_name, sched_cls):
        batch = _batch(profile, seed=1)
        vec = _assert_verdicts_match(batch, sched_name, sched_cls)
        assert not vec.budget_exceeded.any()
        assert 0.0 <= vec.acceptance_ratio <= 1.0


@pytest.mark.usefixtures("array_backend")
@pytest.mark.parametrize("sched_name,sched_cls", SCHEDULERS)
class TestKnifeEdgeEquivalence:
    def test_paper_tables(self, sched_name, sched_cls, table1, table2, table3):
        """The paper's Tables 1-3 sets, simulated on the 10-column device."""
        batch = TaskSetBatch.from_tasksets([table1, table2, table3])
        vec = simulate_batch(batch, 10, sched_name, horizon_factor=5)
        for i in range(3):
            ts = batch.taskset(i)
            ref = simulate(
                ts, Fpga(width=10), sched_cls(), default_horizon(ts, factor=5)
            ).schedulable
            assert bool(vec.schedulable[i]) == ref

    def test_identical_periods_tie_storm(self, sched_name, sched_cls):
        """12 tasks, one shared period: every release ties every deadline,
        so selection is decided purely by the name tie-break."""
        rng = rng_from_seed(9)
        n, b = 12, 20
        period = np.full((b, n), 10.0)
        wcet = rng.uniform(0.5, 6.0, size=(b, n))
        area = rng.integers(5, 60, size=(b, n)).astype(float)
        batch = TaskSetBatch(wcet, period, period.copy(), area)
        _assert_verdicts_match(batch, sched_name, sched_cls)

    def test_completion_exactly_at_deadline(self, sched_name, sched_cls):
        """C == D: the job finishes exactly on its deadline — a success in
        both simulators (completions are processed before miss checks)."""
        wcet = np.array([[4.0, 3.0]])
        period = np.array([[4.0, 6.0]])
        area = np.array([[60.0, 40.0]])
        batch = TaskSetBatch(wcet, period, period.copy(), area)
        _assert_verdicts_match(batch, sched_name, sched_cls)


@pytest.mark.usefixtures("array_backend")
class TestFloat32Inputs:
    """Knife-edge dtype pinning: simulate_batch pins its state arrays to
    float64 at the batch boundary, so a float32 input batch yields the
    same verdicts as its exactly-upcast float64 twin — on every backend
    (float32 event arithmetic would drift the eps comparisons)."""

    def test_float32_batch_matches_float64_twin(self):
        b64 = _batch(paper_unconstrained(6), seed=61, count=20)
        f32 = TaskSetBatch(
            b64.wcet.astype(np.float32), b64.period.astype(np.float32),
            b64.deadline.astype(np.float32), b64.area.astype(np.float32),
        )
        back = TaskSetBatch(
            f32.wcet.astype(np.float64), f32.period.astype(np.float64),
            f32.deadline.astype(np.float64), f32.area.astype(np.float64),
        )
        for sched_name, _ in SCHEDULERS:
            lo = simulate_batch(f32, CAPACITY, sched_name, horizon_factor=5)
            hi = simulate_batch(back, CAPACITY, sched_name, horizon_factor=5)
            assert (lo.schedulable == hi.schedulable).all()
            assert (lo.horizon == hi.horizon).all()
            assert lo.schedulable.dtype == np.bool_
            assert lo.horizon.dtype == np.float64

    def test_float32_verdicts_match_scalar_reference(self):
        """The float32 batch agrees with the scalar simulator evaluated
        on the rounded (then exactly-upcast) parameters, bit for bit."""
        b64 = _batch(paper_unconstrained(4), seed=62, count=12)
        f32 = TaskSetBatch(
            b64.wcet.astype(np.float32), b64.period.astype(np.float32),
            b64.deadline.astype(np.float32), b64.area.astype(np.float32),
        )
        vec = simulate_batch(f32, CAPACITY, "EDF-NF", horizon_factor=5)
        for i in range(f32.count):
            ts = f32.taskset(i)  # Task stores python floats — exact upcast
            ref = simulate(
                ts, FPGA, EdfNf(), default_horizon(ts, factor=5)
            ).schedulable
            assert bool(vec.schedulable[i]) == ref, f"set {i}: {ts}"


class TestBudgetAndHorizon:
    def test_budget_exceeded_rows_marked_not_schedulable(self):
        batch = _batch(paper_unconstrained(4), seed=3, count=10)
        res = simulate_batch(batch, CAPACITY, "EDF-NF", max_events=3)
        assert res.budget_exceeded.all()
        assert not res.schedulable.any()
        # the scalar reference raises where the batch runner records
        ts = batch.taskset(0)
        with pytest.raises(SimulationError):
            simulate(ts, FPGA, EdfNf(), default_horizon(ts), max_events=3)

    def test_default_horizon_matches_scalar(self):
        batch = _batch(paper_unconstrained(5), seed=4, count=8)
        hz = default_horizon_batch(batch, factor=7)
        for i in range(batch.count):
            assert hz[i] == float(default_horizon(batch.taskset(i), factor=7))

    def test_explicit_horizon_broadcasts(self):
        batch = _batch(paper_unconstrained(3), seed=5, count=6)
        scalar_h = simulate_batch(batch, CAPACITY, "EDF-NF", horizon=50.0)
        array_h = simulate_batch(
            batch, CAPACITY, "EDF-NF", horizon=np.full(batch.count, 50.0)
        )
        assert (scalar_h.schedulable == array_h.schedulable).all()
        for i in range(batch.count):
            ref = simulate(batch.taskset(i), FPGA, EdfNf(), 50.0).schedulable
            assert bool(scalar_h.schedulable[i]) == ref

    def test_events_counted(self):
        batch = _batch(paper_unconstrained(3), seed=6, count=5)
        res = simulate_batch(batch, CAPACITY, "EDF-NF", horizon_factor=3)
        assert (res.events > 0).all()


#: Narrow devices make fragmentation bite at small batch sizes, so the
#: scalar reference stays affordable while verdicts remain mixed.
PLACEMENT_DEVICES = [
    Fpga(width=30),
    Fpga(width=30, static_regions=(StaticRegion(8, 3), StaticRegion(20, 2))),
]
PLACEMENT_MODES = [MigrationMode.RELOCATABLE, MigrationMode.PINNED]
NARROW = GenerationProfile(n_tasks=5, area_min=1, area_max=12, name="narrow-5")


def _placement_batch(seed, count=12):
    raw = generate_batch(NARROW, count, rng_from_seed(seed))
    targets = rng_from_seed(seed + 50).uniform(8.0, 34.0, size=count)
    scaled = raw.scaled_to_system_utilization(targets)
    keep = scaled.feasible_mask
    return TaskSetBatch(
        scaled.wcet[keep], scaled.period[keep],
        scaled.deadline[keep], scaled.area[keep],
    )


def _assert_placement_match(batch, fpga, mode, policy, sched_name, sched_cls,
                            factor=4):
    vec = simulate_batch(
        batch, fpga, sched_name,
        mode=mode, placement_policy=policy, horizon_factor=factor,
    )
    assert vec.mode is mode and vec.policy is policy
    for i in range(batch.count):
        ts = batch.taskset(i)
        ref = simulate(
            ts, fpga, sched_cls(), default_horizon(ts, factor=factor),
            mode=mode, placement_policy=policy,
        ).schedulable
        assert bool(vec.schedulable[i]) == ref, (
            f"set {i} under {mode}/{policy.value}/{sched_name}: {ts}"
        )
    return vec


@pytest.mark.usefixtures("array_backend")
@pytest.mark.parametrize("fpga", PLACEMENT_DEVICES,
                         ids=["plain", "static-regions"])
@pytest.mark.parametrize("policy", list(PlacementPolicy),
                         ids=lambda p: p.value)
@pytest.mark.parametrize("mode", PLACEMENT_MODES, ids=lambda m: m.value)
class TestPlacementEquivalence:
    def test_verdicts_bit_identical_nf(self, mode, policy, fpga):
        batch = _placement_batch(seed=21)
        vec = _assert_placement_match(batch, fpga, mode, policy, "EDF-NF", EdfNf)
        assert not vec.budget_exceeded.any()

    def test_verdicts_bit_identical_fkf(self, mode, policy, fpga):
        batch = _placement_batch(seed=22)
        _assert_placement_match(batch, fpga, mode, policy, "EDF-FkF", EdfFkf)


class TestPlacementKnifeEdges:
    def test_static_region_fragmentation_blocks(self):
        """8 free columns split 4+4 by a static block: an area-5 job runs
        under FREE (capacity check) but not under RELOCATABLE — the same
        witness as the scalar test_sim_placement_modes case."""
        fpga = Fpga(width=10, static_regions=(StaticRegion(4, 2),))
        batch = TaskSetBatch(
            np.array([[2.0]]), np.array([[10.0]]),
            np.array([[4.0]]), np.array([[5.0]]),
        )
        free = simulate_batch(batch, fpga, "EDF-NF", horizon_factor=1)
        reloc = simulate_batch(
            batch, fpga, "EDF-NF", mode=MigrationMode.RELOCATABLE,
            horizon_factor=1,
        )
        assert free.schedulable.all()
        assert not reloc.schedulable.any()

    def test_exact_fill_contiguous(self):
        """Widths 6+4 exactly fill the 10-column device; the third job is
        blocked at zero remaining columns (NF skips it, FkF stops)."""
        wcet = np.array([[3.0, 3.0, 2.0]])
        period = np.array([[10.0, 10.0, 10.0]])
        area = np.array([[6.0, 4.0, 3.0]])
        batch = TaskSetBatch(wcet, period, period.copy(), area)
        for sched_name, sched_cls in SCHEDULERS:
            for mode in PLACEMENT_MODES:
                for policy in PlacementPolicy:
                    _assert_placement_match(
                        batch, Fpga(width=10), mode, policy,
                        sched_name, sched_cls, factor=2,
                    )

    def test_pinned_resume_requires_original_columns(self):
        """The scalar pinned-eviction witness, through the batch path."""
        # long: C=10, T=D=20, A=6; burst: C=1, T=5, D=2, A=10.
        wcet = np.array([[10.0, 1.0]])
        period = np.array([[20.0, 5.0]])
        deadline = np.array([[20.0, 2.0]])
        area = np.array([[6.0, 10.0]])
        batch = TaskSetBatch(wcet, period, deadline, area)
        for policy in PlacementPolicy:
            _assert_placement_match(
                batch, Fpga(width=10), MigrationMode.PINNED, policy,
                "EDF-NF", EdfNf, factor=2,
            )


class TestEdgeCases:
    def test_empty_batch(self):
        """B == 0 must yield an empty result (and a quiet nan ratio),
        not a reduction error — callers slice batches freely."""
        empty = TaskSetBatch(*(np.empty((0, 3)) for _ in range(4)))
        for mode in MigrationMode:
            res = simulate_batch(
                empty, Fpga(width=10), "EDF-NF", mode=mode, horizon=5.0
            )
            assert res.count == 0
            assert res.schedulable.shape == (0,)
            assert not res.budget_exceeded.any()
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert np.isnan(res.acceptance_ratio)

    def test_zero_task_rows_rejected(self):
        degenerate = TaskSetBatch(*(np.empty((2, 0)) for _ in range(4)))
        with pytest.raises(ValueError):
            simulate_batch(degenerate, 10)

    def test_single_task_rows(self):
        """N == 1 exercises the degenerate sort/selection shapes."""
        batch = _batch(paper_unconstrained(1), seed=8, count=12)
        for sched_name, sched_cls in SCHEDULERS:
            _assert_verdicts_match(batch, sched_name, sched_cls)
        for mode in PLACEMENT_MODES:
            _assert_placement_match(
                batch, FPGA, mode, PlacementPolicy.FIRST_FIT, "EDF-NF", EdfNf
            )

    def test_zero_remaining_capacity_tie(self):
        """Areas summing *exactly* to the capacity: the boundary of the
        <= fit comparison must match the scalar queue for both fit
        disciplines (NF skips the overflowing job, FkF stops on it)."""
        wcet = np.array([[2.0, 2.0, 1.0], [2.0, 2.0, 1.0]])
        period = np.array([[8.0, 8.0, 3.0], [8.0, 8.0, 2.9]])
        area = np.array([[60.0, 40.0, 10.0], [60.0, 40.0, 10.0]])
        batch = TaskSetBatch(wcet, period, period.copy(), area)
        for sched_name, sched_cls in SCHEDULERS:
            vec = _assert_verdicts_match(batch, sched_name, sched_cls, factor=2)
            assert vec.count == 2

    def test_oversized_area_never_places(self):
        """Regression: an area wider than the device (here wider than
        256, past the narrow hole dtype) must block forever — the raw
        width used to wrap in the uint8 comparison and falsely place."""
        fpga = Fpga(width=100)
        batch = TaskSetBatch(
            np.array([[1.0]]), np.array([[4.0]]),
            np.array([[4.0]]), np.array([[300.0]]),
        )
        for mode in PLACEMENT_MODES:
            for policy in PlacementPolicy:
                _assert_placement_match(
                    batch, fpga, mode, policy, "EDF-NF", EdfNf, factor=1
                )
                vec = simulate_batch(
                    batch, fpga, "EDF-NF", mode=mode,
                    placement_policy=policy, horizon_factor=1,
                )
                assert not vec.schedulable.any()

    def test_non_integral_area_rejected_for_placement(self):
        batch = TaskSetBatch(
            np.array([[1.0]]), np.array([[4.0]]),
            np.array([[4.0]]), np.array([[2.5]]),
        )
        assert simulate_batch(batch, 10).schedulable.all()  # FREE is fine
        with pytest.raises(ValueError):
            simulate_batch(batch, 10, mode=MigrationMode.RELOCATABLE)

    def test_placement_needs_integral_width_device(self):
        batch = TaskSetBatch(
            np.array([[1.0]]), np.array([[4.0]]),
            np.array([[4.0]]), np.array([[2.0]]),
        )
        with pytest.raises(ValueError):
            simulate_batch(batch, 10.5, mode=MigrationMode.PINNED)


def _offsets_map(batch, offsets, i):
    """Row ``i`` of an offsets array as the scalar simulate() mapping."""
    return {f"tau{j + 1}": float(offsets[i, j]) for j in range(batch.n_tasks)}


def _assert_offset_verdicts_match(batch, offsets, sched_name, sched_cls,
                                  fpga=FPGA, factor=5, mode=MigrationMode.FREE):
    vec = simulate_batch(
        batch, fpga, sched_name, offsets=offsets,
        horizon_factor=factor, mode=mode,
    )
    for i in range(batch.count):
        ts = batch.taskset(i)
        omap = _offsets_map(batch, offsets, i)
        ref = simulate(
            ts, fpga, sched_cls(),
            default_horizon(ts, factor=factor, offsets=omap),
            offsets=omap, mode=mode,
        ).schedulable
        assert bool(vec.schedulable[i]) == ref, f"set {i}: {ts} offsets {omap}"
    return vec


def _assert_sporadic_verdicts_match(batch, seed, sched_name, sched_cls,
                                    jitter=0.5, fpga=FPGA, factor=5,
                                    mode=MigrationMode.FREE):
    """Shared-seed contract: one generator drives the batched sampler, an
    identically-seeded twin drives per-row scalar sample_release_schedule
    calls in row order — verdicts must agree bit for bit."""
    vec = simulate_batch(
        batch, fpga, sched_name, release="sporadic", jitter=jitter,
        rng=rng_from_seed(seed), horizon_factor=factor, mode=mode,
    )
    hz = default_horizon_batch(batch, factor=factor)
    scalar_rng = rng_from_seed(seed)
    for i in range(batch.count):
        ts = batch.taskset(i)
        schedule = sample_release_schedule(ts, hz[i], scalar_rng, jitter)
        ref = simulate_release_schedule(
            ts, fpga, sched_cls(), hz[i], schedule, mode=mode
        ).schedulable
        assert bool(vec.schedulable[i]) == ref, f"set {i}: {ts}"
    return vec


@pytest.mark.usefixtures("array_backend")
@pytest.mark.parametrize("sched_name,sched_cls", SCHEDULERS)
class TestOffsetEquivalence:
    """Random per-row offsets: batch verdicts == simulate(offsets=...)."""

    @pytest.mark.parametrize(
        "profile",
        [paper_unconstrained(4), paper_unconstrained(10),
         GenerationProfile(n_tasks=6, integer_periods=True, name="int-6")],
        ids=lambda p: p.name,
    )
    def test_random_offsets_bit_identical(self, profile, sched_name, sched_cls):
        batch = _batch(profile, seed=31)
        offsets = sample_offsets_batch(batch, rng_from_seed(310))
        vec = _assert_offset_verdicts_match(batch, offsets, sched_name, sched_cls)
        assert vec.release == "periodic"

    def test_zero_offsets_match_synchronous(self, sched_name, sched_cls):
        batch = _batch(paper_unconstrained(5), seed=32, count=15)
        zero = np.zeros((batch.count, batch.n_tasks))
        plain = simulate_batch(batch, CAPACITY, sched_name, horizon_factor=5)
        offs = simulate_batch(
            batch, CAPACITY, sched_name, offsets=zero, horizon_factor=5
        )
        assert (plain.schedulable == offs.schedulable).all()
        assert (plain.horizon == offs.horizon).all()

    def test_offset_equal_period(self, sched_name, sched_cls):
        """Knife edge: every first release exactly one period late."""
        batch = _batch(paper_unconstrained(4), seed=33, count=12)
        _assert_offset_verdicts_match(
            batch, batch.period.copy(), sched_name, sched_cls
        )

    def test_offset_at_and_beyond_horizon(self, sched_name, sched_cls):
        """Knife edge: a task whose offset reaches the (explicit) horizon
        never releases — in both simulators (strict `release < horizon`)."""
        batch = _batch(paper_unconstrained(3), seed=34, count=10)
        horizon = 30.0
        offsets = np.zeros((batch.count, batch.n_tasks))
        offsets[:, 0] = horizon  # exactly at the horizon
        offsets[:, -1] = horizon + 5.0  # beyond it
        vec = simulate_batch(
            batch, CAPACITY, sched_name, offsets=offsets, horizon=horizon
        )
        for i in range(batch.count):
            ts = batch.taskset(i)
            ref = simulate(
                ts, FPGA, sched_cls(), horizon,
                offsets=_offsets_map(batch, offsets, i),
            ).schedulable
            assert bool(vec.schedulable[i]) == ref

    def test_offsets_with_placement_modes(self, sched_name, sched_cls):
        batch = _placement_batch(seed=35, count=8)
        offsets = sample_offsets_batch(batch, rng_from_seed(350))
        for fpga in PLACEMENT_DEVICES:
            for mode in PLACEMENT_MODES:
                _assert_offset_verdicts_match(
                    batch, offsets, sched_name, sched_cls,
                    fpga=fpga, factor=4, mode=mode,
                )


@pytest.mark.usefixtures("array_backend")
@pytest.mark.parametrize("sched_name,sched_cls", SCHEDULERS)
class TestSporadicEquivalence:
    """Seed-shared sporadic schedules: batch == simulate_release_schedule."""

    @pytest.mark.parametrize(
        "profile",
        [paper_unconstrained(4), paper_unconstrained(10),
         GenerationProfile(n_tasks=6, integer_periods=True, name="int-6")],
        ids=lambda p: p.name,
    )
    def test_shared_seed_bit_identical(self, profile, sched_name, sched_cls):
        batch = _batch(profile, seed=41)
        vec = _assert_sporadic_verdicts_match(batch, 410, sched_name, sched_cls)
        assert vec.release == "sporadic"

    def test_zero_jitter_matches_periodic(self, sched_name, sched_cls):
        """Knife edge: jitter 0 degenerates to the synchronous-periodic
        pattern — same releases, same verdicts (float periods, so no
        cross-task deadline ties to expose the pseudo-name rank)."""
        batch = _batch(paper_unconstrained(5), seed=42, count=20)
        periodic = simulate_batch(batch, CAPACITY, sched_name, horizon_factor=5)
        sporadic = simulate_batch(
            batch, CAPACITY, sched_name, release="sporadic", jitter=0.0,
            rng=rng_from_seed(420), horizon_factor=5,
        )
        assert (periodic.schedulable == sporadic.schedulable).all()

    def test_release_times_replay_matches_rng(self, sched_name, sched_cls):
        """Precomputed release_times replay == in-call rng sampling."""
        batch = _batch(paper_unconstrained(4), seed=43, count=10)
        hz = default_horizon_batch(batch, factor=5)
        times = sample_release_times_batch(batch, hz, rng_from_seed(430), 0.5)
        replay = simulate_batch(
            batch, CAPACITY, sched_name, release="sporadic",
            release_times=times, horizon_factor=5,
        )
        sampled = simulate_batch(
            batch, CAPACITY, sched_name, release="sporadic",
            rng=rng_from_seed(430), horizon_factor=5,
        )
        assert (replay.schedulable == sampled.schedulable).all()

    def test_sporadic_with_placement_modes(self, sched_name, sched_cls):
        batch = _placement_batch(seed=44, count=8)
        for mode in PLACEMENT_MODES:
            _assert_sporadic_verdicts_match(
                batch, 440, sched_name, sched_cls,
                fpga=PLACEMENT_DEVICES[1], factor=4, mode=mode,
            )


try:
    from hypothesis import given, settings, strategies as st
except ImportError:  # pragma: no cover - CI always installs hypothesis
    given = None

if given is not None:

    class TestReleasePatternProperties:
        """Hypothesis sweep over seeds/jitter: the equivalences hold on
        arbitrary random batches, not just the fixed ones above."""

        @given(seed=st.integers(0, 10**6))
        @settings(max_examples=10, deadline=None)
        def test_random_offsets(self, seed):
            rng = rng_from_seed(seed)
            n = int(rng.integers(1, 7))
            batch = _batch(paper_unconstrained(n), seed=seed, count=8)
            if batch.count == 0:
                return
            offsets = sample_offsets_batch(batch, rng)
            for sched_name, sched_cls in SCHEDULERS:
                _assert_offset_verdicts_match(
                    batch, offsets, sched_name, sched_cls, factor=3
                )

        @given(seed=st.integers(0, 10**6),
               jitter=st.floats(0.0, 2.0, allow_nan=False))
        @settings(max_examples=10, deadline=None)
        def test_random_sporadic_schedules(self, seed, jitter):
            rng = rng_from_seed(seed)
            n = int(rng.integers(1, 7))
            batch = _batch(paper_unconstrained(n), seed=seed + 1, count=8)
            if batch.count == 0:
                return
            for sched_name, sched_cls in SCHEDULERS:
                _assert_sporadic_verdicts_match(
                    batch, seed, sched_name, sched_cls, jitter=jitter,
                    factor=3,
                )


class TestReleasePatternValidation:
    def _tiny(self):
        return TaskSetBatch(
            np.array([[1.0]]), np.array([[4.0]]),
            np.array([[4.0]]), np.array([[2.0]]),
        )

    def test_unknown_release_rejected(self):
        with pytest.raises(ValueError):
            simulate_batch(self._tiny(), 10, release="bursty")

    def test_sporadic_needs_exactly_one_source(self):
        t = self._tiny()
        with pytest.raises(ValueError):
            simulate_batch(t, 10, release="sporadic")  # neither
        times = np.array([[[0.0, np.inf]]])
        with pytest.raises(ValueError):
            simulate_batch(
                t, 10, release="sporadic",
                rng=rng_from_seed(1), release_times=times,
            )  # both

    def test_periodic_rejects_sporadic_knobs(self):
        t = self._tiny()
        with pytest.raises(ValueError):
            simulate_batch(t, 10, rng=rng_from_seed(1))
        with pytest.raises(ValueError):
            simulate_batch(t, 10, release_times=np.array([[[0.0]]]))

    def test_offsets_incompatible_with_sporadic(self):
        with pytest.raises(ValueError):
            simulate_batch(
                self._tiny(), 10, release="sporadic",
                rng=rng_from_seed(1), offsets=np.array([[1.0]]),
            )

    def test_bad_offsets_rejected(self):
        t = self._tiny()
        with pytest.raises(ValueError):
            simulate_batch(t, 10, offsets=np.array([[-1.0]]))
        with pytest.raises(ValueError):
            simulate_batch(t, 10, offsets=np.array([[np.inf]]))
        with pytest.raises(ValueError):
            simulate_batch(t, 10, jitter=-0.1)

    def test_bad_release_times_rejected(self):
        t = self._tiny()
        for times in (
            np.array([[0.0]]),  # not 3-D
            np.zeros((2, 1, 1)),  # wrong B
            np.array([[[3.0, 1.0]]]),  # descending
            np.array([[[-1.0]]]),  # negative
        ):
            with pytest.raises(ValueError):
                simulate_batch(
                    t, 10, release="sporadic", release_times=times
                )

    def test_release_gap_below_deadline_rejected(self):
        """Regression: a replayed gap shorter than the deadline would
        clobber the live job in the one-slot-per-task layout and return
        a false schedulable verdict — it must be rejected instead."""
        batch = TaskSetBatch(
            np.array([[3.0]]), np.array([[4.0]]),
            np.array([[4.0]]), np.array([[60.0]]),
        )
        with pytest.raises(ValueError, match="deadline"):
            simulate_batch(
                batch, 100, release="sporadic",
                release_times=np.array([[[0.0, 1.0, np.inf]]]),
                horizon=10.0,
            )
        # gap == deadline is the legal knife edge (job decided at its
        # deadline before the successor releases)
        ok = simulate_batch(
            batch, 100, release="sporadic",
            release_times=np.array([[[0.0, 4.0, np.inf]]]),
            horizon=10.0,
        )
        assert ok.count == 1

    def test_sampler_validation(self):
        t = self._tiny()
        with pytest.raises(ValueError):
            sample_release_times_batch(t, 10.0, rng_from_seed(1), -0.5)
        with pytest.raises(ValueError):
            sample_release_times_batch(t, 0.0, rng_from_seed(1))


class TestValidation:
    def _tiny(self):
        return TaskSetBatch(
            np.array([[1.0]]), np.array([[4.0]]),
            np.array([[4.0]]), np.array([[2.0]]),
        )

    def test_scheduler_instances_accepted(self):
        batch = self._tiny()
        assert simulate_batch(batch, 10, EdfNf()).schedulable.all()
        assert simulate_batch(batch, 10, EdfFkf()).schedulable.all()

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            simulate_batch(self._tiny(), 10, "RoundRobin")
        with pytest.raises(ValueError):
            simulate_batch(self._tiny(), 10, EdfUs(edf_us_threshold(2)))
        with pytest.raises(TypeError):
            simulate_batch(self._tiny(), 10, 42)

    def test_unconstrained_deadline_rejected(self):
        batch = TaskSetBatch(
            np.array([[1.0]]), np.array([[4.0]]),
            np.array([[5.0]]), np.array([[2.0]]),
        )
        with pytest.raises(ValueError):
            simulate_batch(batch, 10)

    def test_degenerate_parameters_rejected(self):
        bad_wcet = TaskSetBatch(
            np.array([[1e-12]]), np.array([[4.0]]),
            np.array([[4.0]]), np.array([[2.0]]),
        )
        with pytest.raises(ValueError):
            simulate_batch(bad_wcet, 10)
        with pytest.raises(ValueError):
            simulate_batch(self._tiny(), 10, horizon=0.0)
        with pytest.raises(ValueError):
            simulate_batch(self._tiny(), 10, max_events=0)
        with pytest.raises(ValueError):
            simulate_batch(self._tiny(), 10, horizon_factor=0)


def _assert_results_equal(a, b, counters=False):
    """Every per-row field of two SimBatchResults, bit-for-bit."""
    assert (a.schedulable == b.schedulable).all()
    assert (a.budget_exceeded == b.budget_exceeded).all()
    assert (a.events == b.events).all()
    assert np.array_equal(a.horizon, b.horizon)
    assert np.array_equal(a.min_slack, b.min_slack, equal_nan=True)
    if counters:
        assert a.kernel_passes == b.kernel_passes
        assert a.event_steps == b.event_steps


@pytest.mark.usefixtures("array_backend")
class TestFusionKnifeEdges:
    """Fused stepping must be invisible in every per-row output."""

    def test_fuse_one_equals_fused(self):
        batch = _batch(paper_unconstrained(10), seed=21)
        for sched_name, _ in SCHEDULERS:
            base = simulate_batch(batch, CAPACITY, sched_name, fuse=1)
            # fuse=1 is the unfused path: one event step per kernel pass
            assert base.kernel_passes == base.event_steps
            for fuse in (2, 8):
                fused = simulate_batch(batch, CAPACITY, sched_name, fuse=fuse)
                _assert_results_equal(base, fused)
                assert fused.event_steps == base.event_steps
                assert fused.kernel_passes <= base.kernel_passes

    def test_fuse_beyond_events_per_row(self):
        """K larger than any row's event count: everything decides in
        very few passes, outputs untouched."""
        batch = _batch(paper_unconstrained(4), seed=22, count=10)
        base = simulate_batch(batch, CAPACITY, "EDF-NF", fuse=1)
        huge = simulate_batch(batch, CAPACITY, "EDF-NF", fuse=10 * base.event_steps)
        _assert_results_equal(base, huge)
        assert huge.kernel_passes == 1

    def test_nf_select_parity(self):
        batch = _batch(paper_unconstrained(10), seed=23)
        for fuse in (1, 8):
            greedy = simulate_batch(
                batch, CAPACITY, "EDF-NF", fuse=fuse, nf_select="greedy"
            )
            batched = simulate_batch(
                batch, CAPACITY, "EDF-NF", fuse=fuse, nf_select="batched"
            )
            _assert_results_equal(greedy, batched, counters=True)

    def test_max_events_exhaustion_mid_chunk(self):
        """The budget counts events, not passes: a budget that runs out
        in the middle of a fused chunk must match the unfused verdicts."""
        batch = _batch(paper_unconstrained(10), seed=24)
        base = simulate_batch(batch, CAPACITY, "EDF-NF", max_events=5, fuse=1)
        assert base.budget_exceeded.any()  # the knife edge is exercised
        for fuse in (2, 4, 8):
            fused = simulate_batch(batch, CAPACITY, "EDF-NF", max_events=5, fuse=fuse)
            _assert_results_equal(base, fused)
        assert (base.events[xp_backends.asnumpy(base.budget_exceeded)] == 6).all()

    def test_instrumentation_counters(self):
        batch = _batch(paper_unconstrained(10), seed=25)
        res = simulate_batch(batch, CAPACITY, "EDF-NF", fuse=8)
        assert res.kernel_passes >= 1
        assert res.event_steps >= res.kernel_passes
        assert res.fusion_factor == pytest.approx(
            res.event_steps / res.kernel_passes
        )
        assert int(res.events.max()) <= res.event_steps

    def test_fuse_validation(self):
        batch = _batch(paper_unconstrained(4), seed=26, count=5)
        with pytest.raises(ValueError):
            simulate_batch(batch, CAPACITY, fuse=0)
        with pytest.raises(ValueError):
            simulate_batch(batch, CAPACITY, fuse=1.5)
        with pytest.raises(ValueError):
            simulate_batch(batch, CAPACITY, nf_select="bogus")


class TestShardingKnifeEdges:
    """sim_workers must be invisible in every per-row output.

    Process pools are numpy-only here: the backend-parametrized
    equivalence above already pins fused verdicts per backend, and the
    sharded path re-enters ``simulate_batch`` per shard with the same
    backend name, so numpy sharding plus per-backend fusion covers the
    matrix without forking device contexts.
    """

    def test_not_divisible_and_prime_batch(self):
        full = _batch(paper_unconstrained(10), seed=31)
        batch = full.rows(slice(0, 29))  # prime: indivisible by any worker count
        assert batch.count == 29
        serial = simulate_batch(batch, CAPACITY, "EDF-NF", sim_workers=1)
        for workers in (2, 3, 7):
            sharded = simulate_batch(
                batch, CAPACITY, "EDF-NF", sim_workers=workers
            )
            _assert_results_equal(serial, sharded)

    def test_single_row_batch(self):
        batch = _batch(paper_unconstrained(4), seed=32, count=3)
        one = TaskSetBatch(
            batch.wcet[:1], batch.period[:1], batch.deadline[:1], batch.area[:1]
        )
        serial = simulate_batch(one, CAPACITY, "EDF-NF", sim_workers=1)
        sharded = simulate_batch(one, CAPACITY, "EDF-NF", sim_workers=4)
        _assert_results_equal(serial, sharded, counters=True)

    def test_empty_batch(self):
        empty = TaskSetBatch(
            np.empty((0, 3)), np.empty((0, 3)), np.empty((0, 3)), np.empty((0, 3))
        )
        res = simulate_batch(empty, CAPACITY, "EDF-NF", sim_workers=4, fuse=8)
        assert res.schedulable.shape == (0,)
        assert res.kernel_passes == 0 and res.event_steps == 0

    def test_sharded_offsets_and_sporadic(self):
        batch = _batch(paper_unconstrained(10), seed=33)
        offsets = sample_offsets_batch(batch, rng_from_seed(34))
        serial = simulate_batch(batch, CAPACITY, "EDF-NF", offsets=offsets)
        sharded = simulate_batch(
            batch, CAPACITY, "EDF-NF", offsets=offsets, sim_workers=3
        )
        _assert_results_equal(serial, sharded)
        # sporadic: the release schedules are sampled from the full-batch
        # stream *before* the split, so shards replay identical draws
        spo_serial = simulate_batch(
            batch, CAPACITY, "EDF-NF",
            release="sporadic", jitter=0.4, rng=rng_from_seed(35),
        )
        spo_sharded = simulate_batch(
            batch, CAPACITY, "EDF-NF",
            release="sporadic", jitter=0.4, rng=rng_from_seed(35), sim_workers=3,
        )
        _assert_results_equal(spo_serial, spo_sharded)

    def test_shard_counters_sum_to_shard_work(self):
        """Counters account the work actually done: each shard steps its
        own rows, so the sharded totals exceed the serial globals while
        the per-row ``events`` stay bit-identical."""
        batch = _batch(paper_unconstrained(10), seed=36)
        serial = simulate_batch(batch, CAPACITY, "EDF-NF", sim_workers=1)
        sharded = simulate_batch(batch, CAPACITY, "EDF-NF", sim_workers=3)
        assert sharded.event_steps >= serial.event_steps
        assert sharded.kernel_passes >= serial.kernel_passes
        assert (serial.events == sharded.events).all()

    def test_device_backend_forces_serial(self, monkeypatch):
        batch = _batch(paper_unconstrained(4), seed=37, count=6)
        ns = xp_backends.get_backend("numpy")
        serial = simulate_batch(batch, CAPACITY, "EDF-NF")
        monkeypatch.setattr(ns, "is_device", True)
        with pytest.warns(RuntimeWarning, match="serial"):
            forced = simulate_batch(batch, CAPACITY, "EDF-NF", sim_workers=4)
        _assert_results_equal(serial, forced)
        # device passes may pad trailing no-op steps inside the last
        # chunk (the all-rows-dead early break is host-only), so only
        # the pass count is pinned, not event_steps
        assert forced.kernel_passes == serial.kernel_passes

    def test_resolve_sim_workers_precedence(self, monkeypatch):
        monkeypatch.delenv(SIM_WORKERS_ENV, raising=False)
        assert resolve_sim_workers(None) == 1
        assert resolve_sim_workers(3) == 3
        monkeypatch.setenv(SIM_WORKERS_ENV, "5")
        assert resolve_sim_workers(None) == 5
        assert resolve_sim_workers(2) == 2  # kwarg beats env
        with pytest.raises(ValueError):
            resolve_sim_workers(0)
        monkeypatch.setenv(SIM_WORKERS_ENV, "zero")
        with pytest.raises(ValueError):
            resolve_sim_workers(None)

    def test_env_var_drives_simulate_batch(self, monkeypatch):
        batch = _batch(paper_unconstrained(4), seed=38, count=9)
        serial = simulate_batch(batch, CAPACITY, "EDF-NF")
        monkeypatch.setenv(SIM_WORKERS_ENV, "2")
        via_env = simulate_batch(batch, CAPACITY, "EDF-NF")
        _assert_results_equal(serial, via_env)
