"""Tests for the release-offset search (`repro.sim.offsets`).

Centerpiece: the horizon-extension rule.  Shifting a task's first
release to ``O_i`` removes jobs from a fixed window (it sees
``floor((H - O_i) / T_i)`` jobs instead of ``floor(H / T_i)``), so an
offset pattern simulated over the *synchronous* window can silently
check fewer jobs per task and falsely pass — the regression fixture
below only misses inside the extension window.
"""

import numpy as np
import pytest

import repro.sim.offsets as offsets_mod
from repro.fpga.device import Fpga
from repro.model.task import Task, TaskSet
from repro.sched.edf_nf import EdfNf
from repro.sim.offsets import sample_offsets, simulate_with_offsets
from repro.sim.simulator import default_horizon, simulate
from repro.util.rngutil import rng_from_seed

FPGA = Fpga(width=10)

#: Sync-schedulable over H = default_horizon(factor=2) = 26.4, and the
#: offset pattern below *passes* over that unextended window but misses
#: a deadline inside the extension window (H, H + max offset].
REGRESSION_TS = TaskSet(
    [
        Task(wcet=3.1, period=6.0, deadline=5.1, area=5, name="tau1"),
        Task(wcet=4.4, period=9.0, deadline=8.4, area=5, name="tau2"),
        Task(wcet=5.4, period=7.0, deadline=6.5, area=4, name="tau3"),
    ]
)
REGRESSION_OFFSETS = {"tau1": 4.7, "tau2": 1.0, "tau3": 2.0}


def small_ts():
    return TaskSet(
        [
            Task(wcet=1, period=5, area=4, name="a"),
            Task(wcet=2, period=8, area=5, name="b"),
        ]
    )


class TestDefaultHorizonOffsets:
    def test_no_offsets_unchanged(self):
        ts = small_ts()
        assert default_horizon(ts, factor=3) == 8 + 3 * 8
        assert default_horizon(ts, factor=3, offsets={}) == 8 + 3 * 8
        assert default_horizon(ts, factor=3, offsets=None) == 8 + 3 * 8

    def test_extended_by_max_offset(self):
        ts = small_ts()
        base = default_horizon(ts, factor=3)
        assert default_horizon(ts, factor=3, offsets={"a": 2.5}) == base + 2.5
        assert (
            default_horizon(ts, factor=3, offsets={"a": 2.5, "b": 7.0})
            == base + 7.0
        )

    def test_zero_offsets_unchanged(self):
        ts = small_ts()
        assert default_horizon(
            ts, factor=3, offsets={"a": 0.0, "b": 0.0}
        ) == default_horizon(ts, factor=3)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            default_horizon(small_ts(), offsets={"a": -1.0})


class TestHorizonExtensionRegression:
    """The offset-shift unsoundness: fewer simulated jobs per task."""

    def test_fixture_shape(self):
        horizon = default_horizon(REGRESSION_TS, factor=2)
        assert simulate(REGRESSION_TS, FPGA, EdfNf(), horizon).schedulable
        # The unextended window sees too few jobs and falsely passes...
        assert simulate(
            REGRESSION_TS, FPGA, EdfNf(), horizon, offsets=REGRESSION_OFFSETS
        ).schedulable
        # ...the extended window catches the miss.
        extended = default_horizon(
            REGRESSION_TS, factor=2, offsets=REGRESSION_OFFSETS
        )
        assert extended == horizon + 4.7
        assert not simulate(
            REGRESSION_TS, FPGA, EdfNf(), extended, offsets=REGRESSION_OFFSETS
        ).schedulable

    def test_simulate_with_offsets_extends_the_window(self, monkeypatch):
        """The search applies the extension rule per assignment."""
        monkeypatch.setattr(
            offsets_mod, "sample_offsets", lambda ts, rng: dict(REGRESSION_OFFSETS)
        )
        horizon = default_horizon(REGRESSION_TS, factor=2)
        result = simulate_with_offsets(
            REGRESSION_TS, FPGA, EdfNf(), horizon, rng_from_seed(1), samples=1
        )
        assert not result.schedulable

    def test_batched_path_mirrors_the_extension(self):
        """simulate_batch(offsets=...) applies the same rule by default."""
        from repro.vector.batch import TaskSetBatch
        from repro.vector.sim_vec import default_horizon_batch, simulate_batch

        batch = TaskSetBatch.from_tasksets([REGRESSION_TS])
        offs = np.array([[4.7, 1.0, 2.0]])
        hz = default_horizon_batch(batch, factor=2, offsets=offs)
        assert hz[0] == float(
            default_horizon(REGRESSION_TS, factor=2, offsets=REGRESSION_OFFSETS)
        )
        res = simulate_batch(
            batch, FPGA, "EDF-NF", offsets=offs, horizon_factor=2
        )
        assert res.horizon[0] == hz[0]
        assert not res.schedulable[0]
        # The unextended window reproduces the old false pass.
        base = default_horizon_batch(batch, factor=2)
        assert simulate_batch(
            batch, FPGA, "EDF-NF", offsets=offs, horizon=base
        ).schedulable[0]


class TestSimulateWithOffsets:
    def test_synchronous_pattern_included_by_default(self):
        """A sync-failing set must never be offset-accepted: the all-zero
        pattern is part of the default search."""
        doomed = TaskSet(
            [Task(wcet=6, period=10, deadline=5, area=4, name="x")]
        )
        res = simulate_with_offsets(
            doomed, FPGA, EdfNf(), 30, rng_from_seed(2), samples=0
        )
        assert not res.schedulable

    def test_failing_pattern_is_returned_as_certificate(self):
        res = simulate_with_offsets(
            REGRESSION_TS,
            FPGA,
            EdfNf(),
            default_horizon(REGRESSION_TS, factor=2),
            rng_from_seed(3),
            samples=8,
        )
        if not res.schedulable:
            assert res.misses

    def test_sample_offsets_within_period(self):
        ts = small_ts()
        offs = sample_offsets(ts, rng_from_seed(4))
        assert set(offs) == {"a", "b"}
        for t in ts:
            assert 0 <= offs[t.name] < float(t.period)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_with_offsets(
                small_ts(), FPGA, EdfNf(), 10, rng_from_seed(1), samples=-1
            )
        with pytest.raises(ValueError):
            simulate_with_offsets(
                small_ts(), FPGA, EdfNf(), 10, rng_from_seed(1),
                samples=0, include_synchronous=False,
            )
