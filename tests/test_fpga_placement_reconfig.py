"""Tests for placement policies and the reconfiguration-overhead model."""

from fractions import Fraction as F

import pytest

from repro.fpga.placement import PlacementPolicy, choose_interval
from repro.fpga.reconfig import ZERO_RECONFIG, ReconfigurationModel, inflate_taskset
from repro.model.task import Task, TaskSet

HOLES = [(0, 3), (5, 10), (12, 16)]  # widths 3, 5, 4


class TestChooseInterval:
    def test_first_fit_takes_leftmost(self):
        assert choose_interval(HOLES, 3, PlacementPolicy.FIRST_FIT) == 0
        assert choose_interval(HOLES, 4, PlacementPolicy.FIRST_FIT) == 5

    def test_best_fit_takes_tightest(self):
        assert choose_interval(HOLES, 3, PlacementPolicy.BEST_FIT) == 0
        assert choose_interval(HOLES, 4, PlacementPolicy.BEST_FIT) == 12

    def test_worst_fit_takes_largest(self):
        assert choose_interval(HOLES, 3, PlacementPolicy.WORST_FIT) == 5

    def test_no_hole_fits(self):
        assert choose_interval(HOLES, 6, PlacementPolicy.FIRST_FIT) is None

    def test_tie_break_leftmost(self):
        holes = [(0, 4), (6, 10)]  # both width 4
        assert choose_interval(holes, 2, PlacementPolicy.BEST_FIT) == 0
        assert choose_interval(holes, 2, PlacementPolicy.WORST_FIT) == 0

    def test_rejects_nonpositive_need(self):
        with pytest.raises(ValueError):
            choose_interval(HOLES, 0, PlacementPolicy.FIRST_FIT)

    def test_empty_free_list(self):
        assert choose_interval([], 1, PlacementPolicy.FIRST_FIT) is None


class TestReconfigurationModel:
    def test_zero_model(self):
        assert ZERO_RECONFIG.is_zero
        assert ZERO_RECONFIG.load_time(50) == 0

    def test_affine_cost(self):
        m = ReconfigurationModel(base=F(1, 2), per_column=F(1, 10))
        assert m.load_time(5) == 1
        assert not m.is_zero

    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            ReconfigurationModel(base=-1)
        with pytest.raises(ValueError):
            ReconfigurationModel(per_column=-1)


class TestInflateTaskset:
    def _ts(self):
        return TaskSet(
            [
                Task(wcet=1, period=10, area=4, name="a"),
                Task(wcet=2, period=10, area=8, name="b"),
            ]
        )

    def test_zero_model_is_identity(self):
        ts = self._ts()
        assert inflate_taskset(ts, ZERO_RECONFIG) == ts

    def test_single_load_inflation(self):
        m = ReconfigurationModel(base=F(1, 4), per_column=F(1, 8))
        out = inflate_taskset(self._ts(), m)
        assert out.by_name("a").wcet == 1 + F(1, 4) + F(4, 8)
        assert out.by_name("b").wcet == 2 + F(1, 4) + 1

    def test_multiple_reconfigurations(self):
        m = ReconfigurationModel(base=1)
        out = inflate_taskset(self._ts(), m, reconfigurations_per_job=3)
        assert out.by_name("a").wcet == 4

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            inflate_taskset(self._ts(), ZERO_RECONFIG, reconfigurations_per_job=-1)

    def test_wider_tasks_pay_more(self):
        m = ReconfigurationModel(per_column=F(1, 100))
        out = inflate_taskset(self._ts(), m)
        added_a = out.by_name("a").wcet - 1
        added_b = out.by_name("b").wcet - 2
        assert added_b == 2 * added_a
