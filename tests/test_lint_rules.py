"""`repro.lint` rule engine: fixture pairs per rule, suppression
pragmas, unused-suppression detection, JSON round-trip, CLI exit codes,
and the repo-wide gate (``src`` lints clean — the same invariant CI
enforces)."""

import ast
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import lint_paths, lint_source
from repro.lint.cli import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS, main
from repro.lint.effects import build_project, effects_report
from repro.lint.engine import (
    PARSE_ERROR_ID,
    build_project_for,
    module_name_for,
    resolve_lint_jobs,
)
from repro.lint.reporters import render_json, result_from_json, text_report

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).parent / "lint_fixtures"


def lint_fixture(name, modname, **kwargs):
    path = FIXTURES / name
    return lint_source(
        path.read_text(encoding="utf-8"), modname, path=str(path), **kwargs
    )


def rule_lines(result, rule):
    return sorted(f.line for f in result.findings if f.rule == rule)


# -- good/bad fixture pairs per rule ---------------------------------------

# (bad fixture, modname, rule, expected finding lines)
BAD_CASES = [
    ("rl001_bad.py", "repro.vector.kern", "RL001", [8, 12]),
    ("rl002_bad.py", "repro.experiments.figures", "RL002", [4, 7]),
    ("rl003_bad.py", "repro.vector.dp_vec", "RL003", [4, 10, 11, 12]),
    ("rl004_bad.py", "repro.vector.kern", "RL004", [8, 9, 10]),
    ("rl005_bad.py", "repro.vector.sim_vec", "RL005", [8, 11, 12]),
    ("rl006_bad.py", "repro.core.newtest", "RL006", [10, 11, 13]),
    ("rl006_service_bad.py", "repro.service.batcher", "RL006", [10, 11]),
    ("rl007_bad.py", "repro.core.newtest", "RL007", [4]),
    ("rl007_service_bad.py", "repro.incremental.newmod", "RL007", [5]),
    ("rl010_bad.py", "repro.vector.newkern", "RL010", [15, 19]),
    ("rl011_bad.py", "repro.vector.sim_vec", "RL011", [16]),
    ("rl012_bad.py", "repro.core.newtest", "RL012", [16]),
    ("rl013_bad.py", "repro.service.newengine", "RL013", [15, 21]),
]

GOOD_CASES = [
    ("rl001_good.py", "repro.vector.kern"),
    ("rl002_good.py", "repro.experiments.figures"),
    ("rl003_good.py", "repro.gen.custom"),
    ("rl003_passed_generator.py", "repro.experiments.scoring"),
    ("rl004_good.py", "repro.vector.kern"),
    ("rl005_good.py", "repro.vector.sim_vec"),
    ("rl006_good.py", "repro.core.newtest"),
    ("rl006_service_good.py", "repro.service.clock"),
    ("rl007_good.py", "repro.core.newtest"),
    ("rl007_service_good.py", "repro.service.engine"),
    ("rl010_good.py", "repro.vector.newkern"),
    ("rl011_good.py", "repro.vector.sim_vec"),
    ("rl012_good.py", "repro.core.newtest"),
    ("rl013_good.py", "repro.service.newengine"),
]


@pytest.mark.parametrize("name,modname,rule,lines", BAD_CASES)
def test_bad_fixture_flags_rule_at_lines(name, modname, rule, lines):
    result = lint_fixture(name, modname)
    assert rule_lines(result, rule) == lines
    # No stray findings from other rules on these minimal snippets.
    assert {f.rule for f in result.findings} == {rule}


@pytest.mark.parametrize("name,modname", GOOD_CASES)
def test_good_fixture_is_clean(name, modname):
    result = lint_fixture(name, modname)
    assert result.clean, text_report(result)


def test_rules_scope_by_module_identity():
    # The same numpy-importing source is a finding inside repro.vector
    # and legal outside it (RL001), legal in xp.py and search.patterns.
    src = "import numpy as np\n"
    assert not lint_source(src, "repro.gen.custom").findings
    assert not lint_source(src, "repro.vector.xp").findings
    assert not lint_source(src, "repro.search.patterns").findings
    bad = lint_source(src, "repro.vector.kern")
    assert [f.rule for f in bad.findings] == ["RL001"]


def test_rl005_scope_is_the_kernel_pass_modules():
    src = "def f(xs):\n    for x in xs:\n        x.item()\n"
    assert lint_source(src, "repro.vector.sim_vec").findings
    assert lint_source(src, "repro.vector.placement_vec").findings
    # Outside the pass-loop modules the idiom is not banned.
    assert not lint_source(src, "repro.vector.batch").findings


def test_rl007_layer_table_examples():
    # The contracts named in the rule: vector/core never import
    # experiments; model imports nothing above it.
    for mod in ("repro.vector.kern", "repro.core.newtest"):
        r = lint_source("import repro.experiments\n", mod)
        assert [f.rule for f in r.findings] == ["RL007"]
    r = lint_source("from repro.fpga.device import Fpga\n", "repro.model.custom")
    assert [f.rule for f in r.findings] == ["RL007"]
    # Downward is fine, and the scalar-twin exception holds: the
    # offsets module sits above repro.search by explicit table entry.
    assert not lint_source(
        "from repro.search.adaptive import adaptive_pattern_search\n",
        "repro.sim.offsets",
    ).findings
    # ... but the rest of repro.sim does not.
    assert lint_source(
        "from repro.search.adaptive import adaptive_pattern_search\n",
        "repro.sim.simulator",
    ).findings


def test_rl007_relative_imports_resolve():
    src = "from ..experiments import figures\n"
    r = lint_source(src, "repro.core.newtest")
    assert [f.rule for f in r.findings] == ["RL007"]
    # Package __init__ resolves level-1 to itself: repro/sim/__init__.py
    # importing .offsets (layer 7) is sanctioned by its own pin.
    assert not lint_source(
        "from . import offsets\n", "repro.sim", is_package=True
    ).findings


# -- transitive rules & effect fixpoint -------------------------------------

_TRANSITIVE_BAD = [
    ("rl010_bad.py", "repro.vector.newkern"),
    ("rl011_bad.py", "repro.vector.sim_vec"),
    ("rl012_bad.py", "repro.core.newtest"),
    ("rl013_bad.py", "repro.service.newengine"),
]


def test_transitive_rules_close_per_module_holes():
    # Each seeded violation is invisible to the per-module rule it
    # transitively closes — that's the hole RL010/011/012 exist for.
    clean = lint_fixture("rl010_bad.py", "repro.vector.newkern", select=["RL003"])
    assert clean.clean, text_report(clean)
    clean = lint_fixture("rl011_bad.py", "repro.vector.sim_vec", select=["RL005"])
    assert clean.clean, text_report(clean)
    clean = lint_fixture("rl012_bad.py", "repro.core.newtest", select=["RL006"])
    assert clean.clean, text_report(clean)


def test_transitive_findings_carry_witness_chains():
    result = lint_fixture("rl010_bad.py", "repro.vector.newkern")
    outer = next(f for f in result.findings if f.line == 19)
    assert "_indirect" in outer.message and "_draw" in outer.message
    result = lint_fixture("rl011_bad.py", "repro.vector.sim_vec")
    assert "_collect" in result.findings[0].message
    result = lint_fixture("rl012_bad.py", "repro.core.newtest")
    assert "_stamp" in result.findings[0].message


def test_rl013_names_the_straddled_await():
    result = lint_fixture("rl013_bad.py", "repro.service.newengine")
    by_line = {f.line: f.message for f in result.findings}
    assert "self.resident" in by_line[15] and "await at line 14" in by_line[15]
    assert "self.version" in by_line[21] and "await at line 20" in by_line[21]


def _fixture_modules():
    out = []
    for name, modname in _TRANSITIVE_BAD:
        src = (FIXTURES / name).read_text(encoding="utf-8")
        out.append((modname, ast.parse(src), False))
    return out


def test_fixpoint_is_order_independent():
    modules = _fixture_modules()
    orders = [modules, list(reversed(modules)), modules[2:] + modules[:2]]
    summaries = [build_project(order) for order in orders]
    for s in summaries[1:]:
        assert s.functions == summaries[0].functions
        assert s.calls == summaries[0].calls
        assert effects_report(s) == effects_report(summaries[0])
    # Findings under the shared summary are identical for every order.
    per_order = [
        [
            lint_fixture(name, modname, project=s).findings
            for name, modname in _TRANSITIVE_BAD
        ]
        for s in summaries
    ]
    assert per_order[0] == per_order[1] == per_order[2]


def test_effects_report_matches_checked_in_baseline():
    summary, _ = build_project_for([str(REPO_ROOT / "src")])
    report = effects_report(summary)
    again, _ = build_project_for([str(REPO_ROOT / "src")])
    assert report == effects_report(again)  # byte-stable across runs
    baseline = (REPO_ROOT / "tests" / "lint_effects_baseline.json").read_text(
        encoding="utf-8"
    )
    assert report == baseline, (
        "effect summary drifted from tests/lint_effects_baseline.json; "
        "if intentional, regenerate it: PYTHONPATH=src python -m "
        "repro.lint --effects src --output tests/lint_effects_baseline.json"
    )


# -- suppression pragmas ----------------------------------------------------


def test_suppressed_fixture_is_clean_and_pragmas_all_used():
    result = lint_fixture("suppressed.py", "repro.vector.kern")
    assert result.clean, text_report(result)


def test_file_level_multi_id_suppression():
    result = lint_fixture("suppressed_file_level.py", "repro.vector.kern")
    assert result.clean, text_report(result)


def test_unused_pragmas_are_findings():
    result = lint_fixture("unused_pragma.py", "repro.vector.kern")
    assert [f.rule for f in result.findings] == ["RL008", "RL008"]
    assert rule_lines(result, "RL008") == [4, 6]
    assert "unused" in result.findings[0].message


def test_pragma_in_string_is_inert():
    result = lint_fixture("pragma_in_docstring.py", "repro.vector.kern")
    assert result.clean, text_report(result)


def test_suppression_does_not_leak_across_lines():
    src = (
        "import numpy  # repro-lint: disable=RL001 -- this line only\n"
        "import numpy.random\n"
    )
    result = lint_source(src, "repro.vector.kern")
    assert [(f.rule, f.line) for f in result.findings] == [("RL001", 2)]


def test_syntax_error_reported_as_rl009():
    result = lint_fixture("rl009_syntax_error.py", "repro.vector.kern")
    assert [f.rule for f in result.findings] == [PARSE_ERROR_ID]
    assert "syntax error" in result.findings[0].message


# -- reporters --------------------------------------------------------------


def test_json_report_round_trips():
    result = lint_fixture("rl001_bad.py", "repro.vector.kern")
    rebuilt = result_from_json(render_json(result))
    assert rebuilt.findings == result.findings
    assert rebuilt.files_checked == result.files_checked
    assert not rebuilt.clean


def test_json_report_shape():
    obj = json.loads(render_json(lint_fixture("rl001_bad.py", "repro.vector.kern")))
    assert obj["version"] == 1
    assert obj["clean"] is False
    assert obj["counts_by_rule"] == {"RL001": 2}
    assert {"path", "line", "col", "rule", "message"} <= set(obj["findings"][0])


def test_text_report_location_format():
    result = lint_fixture("rl001_bad.py", "repro.vector.kern")
    first = text_report(result).splitlines()[0]
    assert first.startswith(f"{FIXTURES / 'rl001_bad.py'}:8:0: RL001 ")


# -- engine plumbing --------------------------------------------------------


def test_module_name_resolution_from_real_tree():
    assert module_name_for(str(REPO_ROOT / "src/repro/vector/xp.py")) == (
        "repro.vector.xp"
    )
    assert module_name_for(str(REPO_ROOT / "src/repro/sim/__init__.py")) == (
        "repro.sim"
    )
    assert module_name_for(str(REPO_ROOT / "scripts/regenerate_results.py")) == (
        "regenerate_results"
    )


def test_select_and_ignore():
    result = lint_fixture("rl003_bad.py", "repro.vector.dp_vec", select=["RL001"])
    assert result.clean  # the RL003 findings are deselected
    result = lint_fixture("rl003_bad.py", "repro.vector.dp_vec", ignore=["RL003"])
    assert result.clean
    with pytest.raises(ValueError, match="unknown rule"):
        lint_fixture("rl003_bad.py", "repro.vector.dp_vec", select=["RL999"])
    # --ignore validates too: a typo must not silently no-op (it used
    # to be subtracted without a registry check).
    with pytest.raises(ValueError, match="RL999"):
        lint_fixture("rl003_bad.py", "repro.vector.dp_vec", ignore=["RL999"])


def test_deselected_rules_pragmas_are_not_flagged_unused():
    # suppressed.py carries RL001/RL004 pragmas.  With those rules not
    # run, their pragmas cannot be proven unused — RL008 (active here)
    # must stay quiet rather than flag every deselected-rule pragma.
    result = lint_fixture(
        "suppressed.py", "repro.vector.kern", select=["RL006", "RL008"]
    )
    assert result.clean, text_report(result)


def test_parallel_jobs_matches_serial(tmp_path):
    src = _seed_tree(
        tmp_path,
        "import torch\n\n\ndef f():\n    import numpy\n    return numpy\n",
    )
    (tmp_path / "src" / "repro" / "vector" / "extra.py").write_text(
        "import time\n\n\ndef g():\n    return time.monotonic()\n"
    )
    serial = lint_paths([str(src)])
    for jobs in (2, 3):
        par = lint_paths([str(src)], jobs=jobs)
        assert par.findings == serial.findings
        assert par.files_checked == serial.files_checked
    assert not serial.clean  # the comparison is over real findings


def test_resolve_lint_jobs_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_LINT_JOBS", raising=False)
    assert resolve_lint_jobs() == 1
    monkeypatch.setenv("REPRO_LINT_JOBS", "3")
    assert resolve_lint_jobs() == 3
    assert resolve_lint_jobs(1) == 1  # explicit kwarg beats the env
    monkeypatch.setenv("REPRO_LINT_JOBS", "many")
    with pytest.raises(ValueError, match="REPRO_LINT_JOBS"):
        resolve_lint_jobs()
    with pytest.raises(ValueError, match=">= 1"):
        resolve_lint_jobs(0)


def test_repo_src_is_lint_clean():
    # The CI gate as a tier-1 invariant: the whole tree — library plus
    # benchmarks/examples/scripts — must stay clean.
    result = lint_paths(
        [
            str(REPO_ROOT / p)
            for p in ("src", "benchmarks", "examples", "scripts")
        ]
    )
    assert result.clean, text_report(result)
    assert result.files_checked > 100


# -- CLI --------------------------------------------------------------------


def _seed_tree(tmp_path, kernel_body="def f():\n    return 0\n"):
    pkg = tmp_path / "src" / "repro" / "vector"
    pkg.mkdir(parents=True)
    (tmp_path / "src" / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "kern.py").write_text(kernel_body)
    return tmp_path / "src"


def test_cli_clean_tree_exits_zero(tmp_path, capsys):
    src = _seed_tree(tmp_path)
    assert main([str(src)]) == EXIT_CLEAN
    assert "clean" in capsys.readouterr().out


@pytest.mark.parametrize(
    "body,rule,line",
    [
        ("import torch\n", "RL002", 1),
        ("def f():\n    import numpy\n", "RL001", 2),
        ("from numpy.random import default_rng\nR = default_rng(0)\n", "RL003", 2),
    ],
)
def test_cli_seeded_violation_exits_nonzero_with_location(
    tmp_path, capsys, body, rule, line
):
    src = _seed_tree(tmp_path, body)
    assert main([str(src)]) == EXIT_FINDINGS
    out = capsys.readouterr().out
    kern = src / "repro" / "vector" / "kern.py"
    assert f"{kern}:{line}:" in out
    assert rule in out


def test_cli_json_output_file(tmp_path, capsys):
    src = _seed_tree(tmp_path, "import torch\n")
    report = tmp_path / "lint-report.json"
    assert main([str(src), "--output", str(report)]) == EXIT_FINDINGS
    rebuilt = result_from_json(report.read_text())
    assert [f.rule for f in rebuilt.findings] == ["RL002"]
    # --format json writes the same report to stdout.
    capsys.readouterr()
    assert main([str(src), "--format", "json"]) == EXIT_FINDINGS
    assert json.loads(capsys.readouterr().out)["counts_by_rule"] == {"RL002": 1}


def test_cli_list_rules_and_errors(tmp_path, capsys):
    assert main(["--list-rules"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
                    "RL007", "RL008", "RL009", "RL010", "RL011", "RL012",
                    "RL013"):
        assert rule_id in out
    assert main([str(tmp_path / "missing_dir_or_file")]) == EXIT_ERROR
    assert main(["--select", "RL999", str(tmp_path)]) == EXIT_ERROR
    capsys.readouterr()  # drain before asserting on the next error
    assert main(["--ignore", "RL999", str(tmp_path)]) == EXIT_ERROR
    assert "RL999" in capsys.readouterr().err
    assert main([str(tmp_path), "--jobs", "0"]) == EXIT_ERROR


def test_cli_effects_report(tmp_path, capsys):
    src = _seed_tree(
        tmp_path,
        "import time\n\n\ndef stamp():\n"
        "    return time.monotonic()"
        "  # repro-lint: disable=RL006 -- seeded\n",
    )
    out_file = tmp_path / "effects.json"
    assert main(["--effects", str(src), "--output", str(out_file)]) == EXIT_CLEAN
    obj = json.loads(capsys.readouterr().out)
    assert obj["version"] == 1
    assert obj["functions"]["repro.vector.kern.stamp"] == ["WALL_CLOCK"]
    assert json.loads(out_file.read_text()) == obj


def test_python_dash_m_entry_point(tmp_path):
    src = _seed_tree(tmp_path, "import cupy\n")
    env_src = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(src)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == EXIT_FINDINGS
    assert "RL002" in proc.stdout
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(REPO_ROOT / "src")],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == EXIT_CLEAN, proc.stdout + proc.stderr
