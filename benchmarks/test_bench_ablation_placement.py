"""Ablation: what the free-migration assumption is worth (§7).

FREE (the paper's model) vs contiguous placement with relocation vs
pinned placement.  The FREE-RELOCATABLE gap is fragmentation; the
RELOCATABLE-PINNED gap is the value of migration.

Since the placement modes run on the vectorized array free-list
(``repro.vector.placement_vec``), the ablation covers full buckets; the
second bench pins the per-set speedup of the batched placement-aware
simulator over the scalar event loop at the ISSUE's reference batch
size (B=1000) so placement-kernel regressions are caught per-PR.
"""

import time

import numpy as np
import pytest

from benchmarks.helpers import auc, print_curves

from repro.experiments.ablations import placement_ablation
from repro.fpga.device import Fpga
from repro.fpga.placement import PlacementPolicy
from repro.gen.profiles import paper_unconstrained
from repro.sched.edf_nf import EdfNf
from repro.sim.simulator import MigrationMode, default_horizon, simulate
from repro.util.rngutil import rng_from_seed
from repro.vector.batch import generate_batch
from repro.vector.sim_vec import simulate_batch

FPGA = Fpga(width=100)
BATCH = 1000  # the ISSUE's reference batch size for the speedup target


@pytest.mark.bench_smoke
def test_bench_placement_modes(benchmark, scale):
    samples = 25 * scale
    curves = benchmark.pedantic(
        lambda: placement_ablation(
            samples=samples,
            seed=41,
            policies=(PlacementPolicy.FIRST_FIT, PlacementPolicy.BEST_FIT),
        ),
        rounds=1,
        iterations=1,
    )
    print_curves(curves, "free migration vs contiguous placement")

    free = curves["sim:FREE"]
    pinned = curves["sim:PINNED"]
    # FREE dominates every placement-constrained mode per bucket.
    for label in curves.labels:
        if label == "sim:FREE":
            continue
        for a, b in zip(free.ratios, curves[label].ratios):
            assert a >= b, label
    # PINNED is the most restrictive mode overall.
    for label in curves.labels:
        assert auc(pinned) <= auc(curves[label]) + 1e-9, label


@pytest.mark.bench_smoke
def test_bench_placement_vector_vs_scalar(benchmark):
    """Per-set speedup of the batched RELOCATABLE simulator at B=1000.

    Same workload shape as the FREE-mode throughput bench (fig3b sets
    pinned at US=60 — nearly every row runs to the horizon, the batch
    path's worst case) but through the contiguous-placement free-list.
    """
    raw = generate_batch(paper_unconstrained(10), BATCH, rng_from_seed(55))
    batch = raw.scaled_to_system_utilization(np.full(BATCH, 60.0))
    benchmark.group = "sim-batch-placement"

    res = benchmark.pedantic(
        lambda: simulate_batch(
            batch, FPGA, "EDF-NF",
            mode=MigrationMode.RELOCATABLE, horizon_factor=10,
        ),
        rounds=1,
        iterations=1,
    )
    # Reuse the pedantic measurement rather than timing a second full
    # B=1000 pass (the most expensive call in the smoke suite).
    vector_per_set = benchmark.stats.stats.mean / BATCH

    # Scalar reference, timed once over a subsample (full B=1000 scalar
    # placement passes would dominate the suite's runtime).
    sub = 40
    t0 = time.perf_counter()
    scalar_ok = []
    for i in range(sub):
        ts = batch.taskset(i)
        scalar_ok.append(
            simulate(
                ts, FPGA, EdfNf(), default_horizon(ts, factor=10),
                mode=MigrationMode.RELOCATABLE,
            ).schedulable
        )
    scalar_per_set = (time.perf_counter() - t0) / sub

    assert (np.array(scalar_ok) == res.schedulable[:sub]).all()
    speedup = scalar_per_set / vector_per_set
    print(f"\nRELOCATABLE: scalar {scalar_per_set * 1e3:.2f} ms/set, "
          f"vector {vector_per_set * 1e3:.3f} ms/set "
          f"-> {speedup:.1f}x at B={BATCH}")
    # Measured ~5.5-7x on the reference machine (the printed line above
    # is the demonstration); the ISSUE's acceptance floor is 5x.
    assert speedup > 5.0
