"""Ablation: what the free-migration assumption is worth (§7).

FREE (the paper's model) vs contiguous placement with relocation vs
pinned placement.  The FREE-RELOCATABLE gap is fragmentation; the
RELOCATABLE-PINNED gap is the value of migration.
"""

from benchmarks.helpers import auc, print_curves

from repro.experiments.ablations import placement_ablation
from repro.fpga.placement import PlacementPolicy


def test_bench_placement_modes(benchmark, scale):
    samples = 25 * scale
    curves = benchmark.pedantic(
        lambda: placement_ablation(
            samples=samples,
            seed=41,
            policies=(PlacementPolicy.FIRST_FIT, PlacementPolicy.BEST_FIT),
        ),
        rounds=1,
        iterations=1,
    )
    print_curves(curves, "free migration vs contiguous placement")

    free = curves["sim:FREE"]
    pinned = curves["sim:PINNED"]
    # FREE dominates every placement-constrained mode per bucket.
    for label in curves.labels:
        if label == "sim:FREE":
            continue
        for a, b in zip(free.ratios, curves[label].ratios):
            assert a >= b, label
    # PINNED is the most restrictive mode overall.
    for label in curves.labels:
        assert auc(pinned) <= auc(curves[label]) + 1e-9, label
