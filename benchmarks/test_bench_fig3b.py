"""Figure 3(b): acceptance ratio vs US, 10 unconstrained tasks.

Shape claims (checked via :mod:`repro.experiments.claims`): all tests
pessimistic vs simulation; DP best for many tasks.
"""

from benchmarks.helpers import print_curves

from repro.experiments.claims import check_figure
from repro.experiments.figures import FIGURES, run_figure


def test_bench_fig3b(benchmark, scale):
    samples = 400 * scale
    benchmark.pedantic(
        lambda: run_figure("fig3b", samples=samples, sim_samples=0, seed=2007),
        rounds=1,
        iterations=1,
    )
    full = run_figure(
        "fig3b", samples=samples, sim_samples=max(40, 4 * scale), seed=2007
    )
    print_curves(full, FIGURES["fig3b"].title)
    assert check_figure("fig3b", full) == []

    # additionally: the 10-task curves die earlier than fig3a's — by US=50
    # nothing analytical survives.
    idx50 = full["DP"].utilizations.index(50.0)
    for label in ("DP", "GN1", "GN2"):
        assert full[label].ratios[idx50] < 0.02
