"""Ablation: simulation is only an upper bound (§6).

The paper can only simulate the synchronous release pattern; random
release offsets and sporadic inter-arrival jitter find counterexamples
the synchronous pattern misses.  These benches measure how much
acceptance melts under the pattern searches — run on the batched
backend, which fans the pattern axis into the batch dimension
(``samples x patterns`` rows per bucket in one ``simulate_batch``
sweep) — and the smoke-marked comparison pins the scalar event loop and
the vector backend to *identical* curves (shared offset/schedule
streams) while recording the speedup, so release-pattern regressions
are caught per-PR.
"""

import time

import pytest

from benchmarks.helpers import auc, print_curves

from repro.experiments.ablations import offset_ablation, sporadic_ablation

GRID = (40.0, 60.0, 80.0)


def _assert_search_below_baseline(curves, baseline, searched):
    for a, b in zip(curves[baseline].ratios, curves[searched].ratios):
        assert a >= b  # searching can only remove acceptances


def test_bench_offset_search(benchmark, scale):
    samples = 25 * scale
    curves = benchmark.pedantic(
        lambda: offset_ablation(samples=samples, offset_samples=10, seed=43),
        rounds=1,
        iterations=1,
    )
    print_curves(curves, "synchronous-release vs offset-searched acceptance")
    _assert_search_below_baseline(curves, "sim:synchronous", "sim:offset-search")
    gap = auc(curves["sim:synchronous"]) - auc(curves["sim:offset-search"])
    print(f"acceptance removed by offset search: {gap:.4f} (mean)")


def test_bench_sporadic_search(benchmark, scale):
    samples = 25 * scale
    curves = benchmark.pedantic(
        lambda: sporadic_ablation(samples=samples, sporadic_samples=10, seed=47),
        rounds=1,
        iterations=1,
    )
    print_curves(curves, "periodic vs sporadic-searched acceptance")
    _assert_search_below_baseline(curves, "sim:periodic", "sim:sporadic-search")
    gap = auc(curves["sim:periodic"]) - auc(curves["sim:sporadic-search"])
    print(f"acceptance removed by sporadic search: {gap:.4f} (mean)")


@pytest.mark.bench_smoke
def test_bench_offset_search_vector_vs_scalar(benchmark):
    """Offset search on both backends: identical curves, vector faster.

    Both backends draw the same offset assignments (taskset-major
    stream) and extend every pattern's horizon by its largest offset, so
    the curves must match exactly — the per-PR guard for the batched
    release-pattern path.
    """
    samples, patterns = 20, 5
    benchmark.group = "offset-search-backend"
    curves = benchmark.pedantic(
        lambda: offset_ablation(
            us_grid=GRID, samples=samples, offset_samples=patterns, seed=43,
            sim_backend="vector",
        ),
        rounds=1,
        iterations=1,
    )
    vector_time = benchmark.stats.stats.mean

    t0 = time.perf_counter()
    scalar = offset_ablation(
        us_grid=GRID, samples=samples, offset_samples=patterns, seed=43,
        sim_backend="scalar",
    )
    scalar_time = time.perf_counter() - t0

    for label in curves.labels:
        assert curves[label].ratios == scalar[label].ratios, label
    _assert_search_below_baseline(curves, "sim:synchronous", "sim:offset-search")
    print(f"\noffset search: scalar {scalar_time:.2f} s, "
          f"vector {vector_time:.2f} s "
          f"-> {scalar_time / vector_time:.1f}x "
          f"({samples} sets x {patterns} patterns x {len(GRID)} buckets)")
