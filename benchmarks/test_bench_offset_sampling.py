"""Ablation: simulation is only an upper bound (§6).

The paper can only simulate the synchronous release pattern; random
release offsets find counterexamples the synchronous pattern misses.
This bench measures how much acceptance melts under a 10-offset search.
"""

from benchmarks.helpers import auc, print_curves

from repro.experiments.ablations import offset_ablation


def test_bench_offset_search(benchmark, scale):
    samples = 25 * scale
    curves = benchmark.pedantic(
        lambda: offset_ablation(samples=samples, offset_samples=10, seed=43),
        rounds=1,
        iterations=1,
    )
    print_curves(curves, "synchronous-release vs offset-searched acceptance")

    sync = curves["sim:synchronous"]
    searched = curves["sim:offset-search"]
    for a, b in zip(sync.ratios, searched.ratios):
        assert a >= b  # searching can only remove acceptances
    gap = auc(sync) - auc(searched)
    print(f"acceptance removed by offset search: {gap:.4f} (mean)")
