"""Admission-service throughput: micro-batched pipeline vs serial baseline.

The PR-9 acceptance criteria:

* the asyncio HTTP service sustains **>= 1000 decisions/second** in one
  process under closed-loop load at concurrency >= 64;
* the micro-batched pipeline decides **>= 3x** faster than the
  per-request serial baseline at the same concurrency, with
  **bit-identical decisions** (serial replay of the exact same stream).

The workload is steady-state churn around ~60 resident tasks per device
at moderate utilization — the stationary regime an online admission
controller operates in, where the delta-certifier absorbs most arrivals
and the grouped DP/GN1 kernels the residue.  (Near the schedulability
boundary the portfolio escalates to GN2, whose per-row cost no batching
amortizes; the randomized parity suite pins correctness there, and the
incremental engine — the serial path — is the right tool for that
regime.)  Decisions/sec, the batch-size histogram, the certifier hit
rate and latency percentiles land in ``extra_info`` ->
``BENCH_<sha>.json`` so the trajectory is tracked per PR.
"""

import asyncio
import time
from collections import Counter

import pytest

from benchmarks.helpers import bench_scale
from benchmarks.service_loadtest import closed_loop, open_loop, steady_stream, to_wire
from repro.fpga.device import Fpga
from repro.service import AdmissionService, BatchConfig, BatchEngine, HttpServer
from repro.service.metrics import percentile

DEVICES = ("fpga0", "fpga1", "fpga2", "fpga4")
SEED = 29
CONCURRENCY = 64
HTTP_REQUESTS = 3000
ENGINE_REQUESTS = 2000
RESIDENT = 60
WIDTH = 100
OPEN_LOOP_RATE = 1500.0  # offered load for the latency-under-load probe
REQUIRED_DECISIONS_PER_S = 1000.0
REQUIRED_SPEEDUP = 3.0


def _decision_key(decision):
    return (decision.op, decision.device, decision.name, decision.ok, decision.error)


@pytest.mark.bench_smoke
def test_bench_service_http_sustained(benchmark):
    """Closed-loop HTTP load at concurrency 64: >= 1000 decisions/s."""
    benchmark.group = "service-admission"
    n_requests = HTTP_REQUESTS * bench_scale()
    stream = steady_stream(SEED, n_requests, DEVICES, RESIDENT)
    wire_ops = [to_wire(r) for r in stream]
    measured = {}

    async def scenario():
        service = AdmissionService(config=BatchConfig(max_batch=128, max_wait=0.002))
        server = HttpServer(service)
        await service.start()
        host, port = await server.start()
        try:
            for name in DEVICES:
                service.create_device(name, WIDTH)
            elapsed, decisions, latencies = await closed_loop(
                host, port, wire_ops, CONCURRENCY
            )
            measured["elapsed"] = elapsed
            measured["decisions"] = decisions
            measured["closed_latencies"] = sorted(latencies)
            # Open loop on the same (already-churned) service: latency
            # under a fixed offered load, the SLO-facing distribution.
            probe = steady_stream(SEED + 1, n_requests // 3, DEVICES, RESIDENT)
            _, open_latencies = await open_loop(
                host, port, [to_wire(r) for r in probe], rate=OPEN_LOOP_RATE
            )
            measured["open_latencies"] = sorted(open_latencies)
            measured["snapshot"] = service.snapshot()
        finally:
            await server.close()
            await service.close()

    benchmark.pedantic(lambda: asyncio.run(scenario()), rounds=1, iterations=1)

    decisions_per_s = len(measured["decisions"]) / measured["elapsed"]
    snap = measured["snapshot"]
    closed = measured["closed_latencies"]
    open_lat = measured["open_latencies"]
    benchmark.extra_info["decisions_per_s"] = decisions_per_s
    benchmark.extra_info["concurrency"] = CONCURRENCY
    benchmark.extra_info["requests"] = len(wire_ops)
    benchmark.extra_info["mean_batch_size"] = snap["mean_batch_size"]
    benchmark.extra_info["batch_size_histogram"] = snap["batch_size_histogram"]
    benchmark.extra_info["certifier_hit_rate"] = snap["certifier"]["hit_rate"]
    benchmark.extra_info["closed_loop_p50_ms"] = percentile(closed, 0.50) * 1e3
    benchmark.extra_info["closed_loop_p99_ms"] = percentile(closed, 0.99) * 1e3
    benchmark.extra_info["open_loop_rate_per_s"] = OPEN_LOOP_RATE
    benchmark.extra_info["open_loop_p50_ms"] = percentile(open_lat, 0.50) * 1e3
    benchmark.extra_info["open_loop_p99_ms"] = percentile(open_lat, 0.99) * 1e3

    ok = sum(1 for d in measured["decisions"] if "error" not in d)
    print(
        f"\nservice HTTP: {len(wire_ops)} decisions in {measured['elapsed']:.2f} s "
        f"at C={CONCURRENCY} -> {decisions_per_s:.0f}/s ({ok} clean), "
        f"mean batch {snap['mean_batch_size']:.1f}, "
        f"certifier hit {snap['certifier']['hit_rate']:.3f}, "
        f"closed p50/p99 {percentile(closed, 0.5)*1e3:.1f}/"
        f"{percentile(closed, 0.99)*1e3:.1f} ms, "
        f"open@{OPEN_LOOP_RATE:.0f}/s p50/p99 {percentile(open_lat, 0.5)*1e3:.1f}/"
        f"{percentile(open_lat, 0.99)*1e3:.1f} ms"
    )
    assert len(measured["decisions"]) == len(wire_ops)
    assert decisions_per_s >= REQUIRED_DECISIONS_PER_S


@pytest.mark.bench_smoke
def test_bench_service_batched_vs_serial(benchmark):
    """Batched pipeline >= 3x the serial baseline, decisions identical.

    Concurrency is the coalesced batch: every ``process_batch`` call
    carries 64 concurrently-pending requests; the baseline decides the
    exact same stream one request at a time through
    ``AdmissionState.admit`` — then decision sequences are compared
    bit-for-bit."""
    benchmark.group = "service-admission"
    n_requests = ENGINE_REQUESTS * bench_scale()
    stream = steady_stream(SEED, n_requests, DEVICES, RESIDENT)

    def make_engine():
        engine = BatchEngine()
        for name in DEVICES:
            engine.add_device(name, Fpga(width=WIDTH))
        return engine

    def run_batched():
        engine = make_engine()
        decisions = []
        for k in range(0, len(stream), CONCURRENCY):
            decisions.extend(engine.process_batch(stream[k : k + CONCURRENCY]))
        return engine, decisions

    (batched_engine, batched_decisions) = benchmark.pedantic(
        run_batched, rounds=1, iterations=1
    )
    batched_time = benchmark.stats.stats.mean

    serial_engine = make_engine()
    t0 = time.perf_counter()
    serial_decisions = serial_engine.process_serial(stream)
    serial_time = time.perf_counter() - t0

    # Bit-identical decisions and final resident sets.
    assert list(map(_decision_key, batched_decisions)) == list(
        map(_decision_key, serial_decisions)
    )
    for name in DEVICES:
        assert sorted(t.name for t in batched_engine.device(name).state.tasks) == sorted(
            t.name for t in serial_engine.device(name).state.tasks
        )

    batched_rate = len(stream) / batched_time
    serial_rate = len(stream) / serial_time
    speedup = batched_rate / serial_rate
    snap = batched_engine.metrics.snapshot()
    by_via = Counter(d.via for d in batched_decisions)
    benchmark.extra_info["requests"] = len(stream)
    benchmark.extra_info["batch_size"] = CONCURRENCY
    benchmark.extra_info["batched_decisions_per_s"] = batched_rate
    benchmark.extra_info["serial_decisions_per_s"] = serial_rate
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["by_via"] = dict(by_via)
    benchmark.extra_info["certifier_hit_rate"] = snap["certifier"]["hit_rate"]
    benchmark.extra_info["kernel_calls"] = snap["kernel_calls_total"]
    benchmark.extra_info["kernel_rows"] = snap["kernel_rows_total"]

    print(
        f"\nservice engine: batched {batched_rate:.0f}/s "
        f"({len(stream)} reqs, {batched_time:.3f} s) vs serial "
        f"{serial_rate:.0f}/s ({serial_time:.3f} s) -> {speedup:.1f}x, "
        f"via {dict(by_via)}, certifier hit {snap['certifier']['hit_rate']:.3f}"
    )
    assert speedup >= REQUIRED_SPEEDUP
