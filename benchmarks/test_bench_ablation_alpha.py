"""Ablation: the §3 integer-area correction.

The paper's sole change to Danne & Platzner's bound is one extra
guaranteed-busy column (``Amax - 1`` instead of ``Amax``).  This bench
measures how much acceptance that column buys across the utilization axis
— and verifies DP-integer dominates DP-real everywhere.
"""

from benchmarks.helpers import auc, print_curves

from repro.experiments.ablations import alpha_ablation


def test_bench_alpha_ablation(benchmark, scale):
    samples = 1000 * scale
    curves = benchmark.pedantic(
        lambda: alpha_ablation(samples=samples, seed=31),
        rounds=1,
        iterations=1,
    )
    print_curves(curves, "integer-area alpha (DP) vs real-area alpha (DP-real)")

    dp, dp_real = curves["DP"], curves["DP-real"]
    # Dominance: the integer correction never loses (same tasksets).
    for a, b in zip(dp.ratios, dp_real.ratios):
        assert a >= b
    # And strictly wins somewhere (the paper's Table 1 is such a case).
    assert auc(dp) > auc(dp_real)
    print(f"acceptance gained by the +1 column: "
          f"{auc(dp) - auc(dp_real):.4f} (mean over buckets)")
