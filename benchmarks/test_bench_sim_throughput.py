"""Simulator throughput: events/second on a representative workload.

The discrete-event simulator is the cost driver of every ``sim:`` curve;
this bench pins its performance on the fig3b workload shape so
regressions show up.
"""

from repro.fpga.device import Fpga
from repro.gen.profiles import paper_unconstrained
from repro.gen.sweep import generate_at_system_utilization
from repro.sched.edf_fkf import EdfFkf
from repro.sched.edf_nf import EdfNf
from repro.sim.simulator import MigrationMode, default_horizon, simulate
from repro.util.rngutil import rng_from_seed

FPGA = Fpga(width=100)


def _workload():
    return generate_at_system_utilization(
        paper_unconstrained(10), 60.0, rng_from_seed(77)
    )


def test_bench_simulate_nf(benchmark):
    ts = _workload()
    horizon = default_horizon(ts, factor=20)
    benchmark.group = "simulate"
    res = benchmark(
        lambda: simulate(ts, FPGA, EdfNf(), horizon, stop_at_first_miss=False)
    )
    print(f"\ndecision points: {res.metrics.decision_points}, "
          f"jobs: {res.metrics.jobs_released}")


def test_bench_simulate_fkf(benchmark):
    ts = _workload()
    horizon = default_horizon(ts, factor=20)
    benchmark.group = "simulate"
    benchmark(lambda: simulate(ts, FPGA, EdfFkf(), horizon, stop_at_first_miss=False))


def test_bench_simulate_with_placement(benchmark):
    ts = _workload()
    horizon = default_horizon(ts, factor=20)
    benchmark.group = "simulate"
    benchmark(
        lambda: simulate(
            ts, FPGA, EdfNf(), horizon,
            mode=MigrationMode.RELOCATABLE, stop_at_first_miss=False,
        )
    )


def test_bench_simulate_with_trace(benchmark):
    ts = _workload()
    horizon = default_horizon(ts, factor=20)
    benchmark.group = "simulate"
    res = benchmark(
        lambda: simulate(
            ts, FPGA, EdfNf(), horizon,
            record_trace=True, stop_at_first_miss=False,
        )
    )
    assert res.trace is not None
