"""Simulator throughput: events/second on a representative workload.

The discrete-event simulator is the cost driver of every ``sim:`` curve;
this bench pins its performance on the fig3b workload shape so
regressions show up.  The batch benches compare the scalar per-taskset
event loop against the vectorized FREE-mode batch simulator
(:func:`repro.vector.sim_vec.simulate_batch`) at B=1000 and report the
per-set speedup that lets the acceptance engine simulate full buckets.

The per-backend axis runs the batched simulator once per installed
:mod:`repro.vector.xp` backend (numpy always; torch-CPU and the device
backends when importable, skip-with-reason otherwise), asserts verdict
parity against the numpy run, and records the backend name in the
benchmark JSON (``extra_info["array_backend"]``) so the uploaded
``BENCH_<sha>.json`` artifacts chart backend speedups over time.
"""

import os
import time

import numpy as np
import pytest

from repro.fpga.device import Fpga
from repro.gen.profiles import paper_unconstrained
from repro.gen.sweep import generate_at_system_utilization
from repro.sched.edf_fkf import EdfFkf
from repro.sched.edf_nf import EdfNf
from repro.sim.simulator import MigrationMode, default_horizon, simulate
from repro.util.rngutil import rng_from_seed
from repro.vector import xp as xp_backends
from repro.vector.batch import generate_batch
from repro.vector.sim_vec import simulate_batch

FPGA = Fpga(width=100)
BATCH = 1000  # the ISSUE's reference batch size for the speedup target


def _backend_params():
    """numpy always; the optional backends (incl. the GPU legs) skip
    with the precise unavailability reason when absent."""
    params = [pytest.param("numpy", id="numpy")]
    for name in ("torch", "torch:cuda", "cupy"):
        reason = xp_backends.backend_skip_reason(name)
        marks = () if reason is None else pytest.mark.skip(reason=reason)
        params.append(pytest.param(name, id=name, marks=marks))
    return params


def _workload():
    return generate_at_system_utilization(
        paper_unconstrained(10), 60.0, rng_from_seed(77)
    )


def test_bench_simulate_nf(benchmark):
    ts = _workload()
    horizon = default_horizon(ts, factor=20)
    benchmark.group = "simulate"
    res = benchmark(
        lambda: simulate(ts, FPGA, EdfNf(), horizon, stop_at_first_miss=False)
    )
    print(f"\ndecision points: {res.metrics.decision_points}, "
          f"jobs: {res.metrics.jobs_released}")


def test_bench_simulate_fkf(benchmark):
    ts = _workload()
    horizon = default_horizon(ts, factor=20)
    benchmark.group = "simulate"
    benchmark(lambda: simulate(ts, FPGA, EdfFkf(), horizon, stop_at_first_miss=False))


def test_bench_simulate_with_placement(benchmark):
    ts = _workload()
    horizon = default_horizon(ts, factor=20)
    benchmark.group = "simulate"
    benchmark(
        lambda: simulate(
            ts, FPGA, EdfNf(), horizon,
            mode=MigrationMode.RELOCATABLE, stop_at_first_miss=False,
        )
    )


def test_bench_simulate_with_trace(benchmark):
    ts = _workload()
    horizon = default_horizon(ts, factor=20)
    benchmark.group = "simulate"
    res = benchmark(
        lambda: simulate(
            ts, FPGA, EdfNf(), horizon,
            record_trace=True, stop_at_first_miss=False,
        )
    )
    assert res.trace is not None


def _sim_batch():
    """B=1000 fig3b-shaped sets pinned at US=60 (all run to horizon —
    the worst case for the batch path, which cannot retire rows early)."""
    raw = generate_batch(paper_unconstrained(10), BATCH, rng_from_seed(55))
    return raw.scaled_to_system_utilization(np.full(BATCH, 60.0))


@pytest.mark.bench_smoke
@pytest.mark.parametrize("sched_name,sched_cls",
                         [("EDF-NF", EdfNf), ("EDF-FkF", EdfFkf)])
def test_bench_sim_batch_vector_vs_scalar(benchmark, sched_name, sched_cls):
    """Batched vs scalar simulation throughput (and verdict parity)."""
    batch = _sim_batch()
    benchmark.group = f"sim-batch-{sched_name}"

    res = benchmark(lambda: simulate_batch(batch, 100, sched_name))

    # Scalar reference, timed once over a subsample (full B=1000 scalar
    # passes would dominate the suite's runtime).
    sub = 60
    t0 = time.perf_counter()
    scalar_ok = []
    for i in range(sub):
        ts = batch.taskset(i)
        scalar_ok.append(
            simulate(ts, FPGA, sched_cls(), default_horizon(ts)).schedulable
        )
    scalar_per_set = (time.perf_counter() - t0) / sub

    t0 = time.perf_counter()
    simulate_batch(batch, 100, sched_name)
    vector_per_set = (time.perf_counter() - t0) / BATCH

    assert (np.array(scalar_ok) == res.schedulable[:sub]).all()
    speedup = scalar_per_set / vector_per_set
    print(f"\n{sched_name}: scalar {scalar_per_set * 1e3:.2f} ms/set, "
          f"vector {vector_per_set * 1e3:.3f} ms/set "
          f"-> {speedup:.1f}x at B={BATCH}")
    # Measured ~12-14x on the reference machine (the printed line above is
    # the demonstration); 5x is the regression floor, wide enough that
    # noisy CI neighbours cannot fail the suite without a real regression.
    assert speedup > 5.0


@pytest.mark.bench_smoke
@pytest.mark.parametrize("backend", _backend_params())
def test_bench_sim_batch_array_backends(benchmark, backend):
    """Batched-simulator throughput per array backend (parity-checked).

    The numpy leg doubles as the indirection-overhead guard for the
    pluggable namespace; the torch/cupy legs start the per-backend perf
    trajectory (torch-CPU is expected near numpy; the device backends
    are the scaling headroom).
    """
    batch = _sim_batch()
    benchmark.group = "sim-batch-array-backend"
    benchmark.extra_info["array_backend"] = backend

    res = benchmark(
        lambda: simulate_batch(batch, 100, "EDF-NF", array_backend=backend)
    )

    reference = simulate_batch(batch, 100, "EDF-NF", array_backend="numpy")
    assert (res.schedulable == reference.schedulable).all()
    assert res.schedulable.dtype == np.bool_  # host verdicts, any backend
    per_set = benchmark.stats.stats.mean / BATCH
    print(f"\n{backend}: {per_set * 1e6:.1f} us/set at B={BATCH}")


@pytest.mark.bench_smoke
def test_bench_sim_batch_fused_sharded(benchmark):
    """Fused stepping + batch sharding vs the pre-fusion serial path.

    The benchmarked configuration is the default fast path — ``fuse=8``
    (eight event steps per kernel pass), ``nf_select="auto"``, and the
    batch dimension sharded over ``min(4, cpus)`` worker processes.
    The baseline is the exact pre-fusion behaviour, reachable through
    the same entry point: ``fuse=1`` (one event step per pass),
    ``nf_select="greedy"`` (the per-task loop, which is also what
    ``auto`` resolves to on host backends — the batched fixpoint pays
    off where launches cost, i.e. on device backends), serial.

    Fusion is a *launch-count* optimisation: it collapses host↔kernel
    round-trips ~8x (asserted on the pass counters below), which is the
    big lever on device backends, and on numpy removes the per-pass
    sync/compaction overhead — roughly throughput-neutral single-core.
    The wall-clock multiplier on host backends comes from sharding, so
    the speedup floor scales with the cores this runner actually has:
    >= 2x with >= 4 cores (the CI runner class), >= 1.3x with 2-3, and
    >= 0.9x (fusion alone must not regress; measured ~1.15x) on a
    single core, where a process pool cannot help.  Verdicts and
    ``min_slack`` must be bit-identical to the baseline in every
    configuration.
    """
    batch = _sim_batch()
    cpus = os.cpu_count() or 1
    workers = min(4, cpus)
    benchmark.group = "sim-batch-fused"

    res = benchmark(
        lambda: simulate_batch(batch, 100, "EDF-NF", fuse=8, sim_workers=workers)
    )

    def once(**kw):
        t0 = time.perf_counter()
        out = simulate_batch(batch, 100, "EDF-NF", **kw)
        return time.perf_counter() - t0, out

    # Interleave the baseline/fused/sharded measurements so load drift
    # on a shared runner hits both sides of every ratio equally.
    t_baseline = t_fused_serial = t_sharded = float("inf")
    for _ in range(3):
        dt, base = once(fuse=1, nf_select="greedy", sim_workers=1)
        t_baseline = min(t_baseline, dt)
        dt, fused_serial = once(fuse=8, sim_workers=1)
        t_fused_serial = min(t_fused_serial, dt)
        dt, _ = once(fuse=8, sim_workers=workers)
        t_sharded = min(t_sharded, dt)
    t_fused_sharded = min(benchmark.stats.stats.min, t_sharded)

    # the hard contract: fusion and sharding are invisible per row
    for other in (fused_serial, res):
        assert (other.schedulable == base.schedulable).all()
        assert np.array_equal(other.min_slack, base.min_slack, equal_nan=True)

    # fusion factor: >= 5x fewer kernel passes than event steps
    assert fused_serial.event_steps >= 5 * fused_serial.kernel_passes
    assert base.kernel_passes == base.event_steps  # unfused = 1 step/pass

    speedup = t_baseline / t_fused_sharded
    benchmark.extra_info.update(
        sim_workers=workers,
        cpus=cpus,
        fuse=8,
        kernel_passes=fused_serial.kernel_passes,
        event_steps=fused_serial.event_steps,
        fusion_factor=round(fused_serial.fusion_factor, 2),
        # row-events: every row advances one event per live step, so the
        # per-row counters sum to the work actually simulated
        events_per_sec=round(
            float(np.asarray(fused_serial.events).sum()) / t_fused_serial, 1
        ),
        t_unfused_serial=round(t_baseline, 4),
        t_fused_serial=round(t_fused_serial, 4),
        t_fused_sharded=round(t_fused_sharded, 4),
        speedup_vs_unfused_serial=round(speedup, 3),
    )
    print(f"\nfused+sharded(w={workers}): {t_fused_sharded:.3f}s vs "
          f"unfused serial {t_baseline:.3f}s -> {speedup:.2f}x; "
          f"passes {fused_serial.kernel_passes} for "
          f"{fused_serial.event_steps} events "
          f"({fused_serial.fusion_factor:.1f}x fused)")
    floor = 2.0 if workers >= 4 else (1.3 if workers >= 2 else 0.9)
    assert speedup >= floor
