"""Simulator throughput: events/second on a representative workload.

The discrete-event simulator is the cost driver of every ``sim:`` curve;
this bench pins its performance on the fig3b workload shape so
regressions show up.  The batch benches compare the scalar per-taskset
event loop against the vectorized FREE-mode batch simulator
(:func:`repro.vector.sim_vec.simulate_batch`) at B=1000 and report the
per-set speedup that lets the acceptance engine simulate full buckets.

The per-backend axis runs the batched simulator once per installed
:mod:`repro.vector.xp` backend (numpy always; torch-CPU and the device
backends when importable, skip-with-reason otherwise), asserts verdict
parity against the numpy run, and records the backend name in the
benchmark JSON (``extra_info["array_backend"]``) so the uploaded
``BENCH_<sha>.json`` artifacts chart backend speedups over time.
"""

import time

import numpy as np
import pytest

from repro.fpga.device import Fpga
from repro.gen.profiles import paper_unconstrained
from repro.gen.sweep import generate_at_system_utilization
from repro.sched.edf_fkf import EdfFkf
from repro.sched.edf_nf import EdfNf
from repro.sim.simulator import MigrationMode, default_horizon, simulate
from repro.util.rngutil import rng_from_seed
from repro.vector import xp as xp_backends
from repro.vector.batch import generate_batch
from repro.vector.sim_vec import simulate_batch

FPGA = Fpga(width=100)
BATCH = 1000  # the ISSUE's reference batch size for the speedup target


def _backend_params():
    """numpy always; the optional backends (incl. the GPU legs) skip
    with the precise unavailability reason when absent."""
    params = [pytest.param("numpy", id="numpy")]
    for name in ("torch", "torch:cuda", "cupy"):
        reason = xp_backends.backend_skip_reason(name)
        marks = () if reason is None else pytest.mark.skip(reason=reason)
        params.append(pytest.param(name, id=name, marks=marks))
    return params


def _workload():
    return generate_at_system_utilization(
        paper_unconstrained(10), 60.0, rng_from_seed(77)
    )


def test_bench_simulate_nf(benchmark):
    ts = _workload()
    horizon = default_horizon(ts, factor=20)
    benchmark.group = "simulate"
    res = benchmark(
        lambda: simulate(ts, FPGA, EdfNf(), horizon, stop_at_first_miss=False)
    )
    print(f"\ndecision points: {res.metrics.decision_points}, "
          f"jobs: {res.metrics.jobs_released}")


def test_bench_simulate_fkf(benchmark):
    ts = _workload()
    horizon = default_horizon(ts, factor=20)
    benchmark.group = "simulate"
    benchmark(lambda: simulate(ts, FPGA, EdfFkf(), horizon, stop_at_first_miss=False))


def test_bench_simulate_with_placement(benchmark):
    ts = _workload()
    horizon = default_horizon(ts, factor=20)
    benchmark.group = "simulate"
    benchmark(
        lambda: simulate(
            ts, FPGA, EdfNf(), horizon,
            mode=MigrationMode.RELOCATABLE, stop_at_first_miss=False,
        )
    )


def test_bench_simulate_with_trace(benchmark):
    ts = _workload()
    horizon = default_horizon(ts, factor=20)
    benchmark.group = "simulate"
    res = benchmark(
        lambda: simulate(
            ts, FPGA, EdfNf(), horizon,
            record_trace=True, stop_at_first_miss=False,
        )
    )
    assert res.trace is not None


def _sim_batch():
    """B=1000 fig3b-shaped sets pinned at US=60 (all run to horizon —
    the worst case for the batch path, which cannot retire rows early)."""
    raw = generate_batch(paper_unconstrained(10), BATCH, rng_from_seed(55))
    return raw.scaled_to_system_utilization(np.full(BATCH, 60.0))


@pytest.mark.bench_smoke
@pytest.mark.parametrize("sched_name,sched_cls",
                         [("EDF-NF", EdfNf), ("EDF-FkF", EdfFkf)])
def test_bench_sim_batch_vector_vs_scalar(benchmark, sched_name, sched_cls):
    """Batched vs scalar simulation throughput (and verdict parity)."""
    batch = _sim_batch()
    benchmark.group = f"sim-batch-{sched_name}"

    res = benchmark(lambda: simulate_batch(batch, 100, sched_name))

    # Scalar reference, timed once over a subsample (full B=1000 scalar
    # passes would dominate the suite's runtime).
    sub = 60
    t0 = time.perf_counter()
    scalar_ok = []
    for i in range(sub):
        ts = batch.taskset(i)
        scalar_ok.append(
            simulate(ts, FPGA, sched_cls(), default_horizon(ts)).schedulable
        )
    scalar_per_set = (time.perf_counter() - t0) / sub

    t0 = time.perf_counter()
    simulate_batch(batch, 100, sched_name)
    vector_per_set = (time.perf_counter() - t0) / BATCH

    assert (np.array(scalar_ok) == res.schedulable[:sub]).all()
    speedup = scalar_per_set / vector_per_set
    print(f"\n{sched_name}: scalar {scalar_per_set * 1e3:.2f} ms/set, "
          f"vector {vector_per_set * 1e3:.3f} ms/set "
          f"-> {speedup:.1f}x at B={BATCH}")
    # Measured ~12-14x on the reference machine (the printed line above is
    # the demonstration); 5x is the regression floor, wide enough that
    # noisy CI neighbours cannot fail the suite without a real regression.
    assert speedup > 5.0


@pytest.mark.bench_smoke
@pytest.mark.parametrize("backend", _backend_params())
def test_bench_sim_batch_array_backends(benchmark, backend):
    """Batched-simulator throughput per array backend (parity-checked).

    The numpy leg doubles as the indirection-overhead guard for the
    pluggable namespace; the torch/cupy legs start the per-backend perf
    trajectory (torch-CPU is expected near numpy; the device backends
    are the scaling headroom).
    """
    batch = _sim_batch()
    benchmark.group = "sim-batch-array-backend"
    benchmark.extra_info["array_backend"] = backend

    res = benchmark(
        lambda: simulate_batch(batch, 100, "EDF-NF", array_backend=backend)
    )

    reference = simulate_batch(batch, 100, "EDF-NF", array_backend="numpy")
    assert (res.schedulable == reference.schedulable).all()
    assert res.schedulable.dtype == np.bool_  # host verdicts, any backend
    per_set = benchmark.stats.stats.mean / BATCH
    print(f"\n{backend}: {per_set * 1e6:.1f} us/set at B={BATCH}")
