"""Benchmark fixtures.

Benchmarks double as the paper's experiment regeneration harness: each
prints the rows/series the corresponding table or figure reports and
asserts the paper's qualitative claims (orderings, crossovers,
pessimism), while pytest-benchmark times the underlying computation.

Sample counts scale with the ``REPRO_BENCH_SCALE`` environment variable
(default 1); paper-fidelity runs (10,000 tasksets per point) need scale
~25 and correspondingly more patience.
"""

import pytest

from benchmarks.helpers import bench_scale


@pytest.fixture(scope="session")
def scale() -> int:
    return bench_scale()
