"""Shared helpers for the benchmark/reproduction harness."""

import math
import os

from repro.experiments.report import as_text


def bench_scale() -> int:
    """Sample-count multiplier from the REPRO_BENCH_SCALE env var."""
    return max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))


def print_curves(curves, title: str = "") -> None:
    """Print a regenerated figure/ablation as a fixed-width table."""
    print()
    if title:
        print(f"=== {title} ===")
    print(as_text(curves))


def auc(series) -> float:
    """Mean acceptance over the buckets (NaN buckets skipped) — a scalar
    summary for 'test X outperforms test Y on this workload'."""
    vals = [r for r in series.ratios if not math.isnan(r)]
    return sum(vals) / len(vals) if vals else 0.0
