"""Figure 4(b): 10 spatially light, temporally heavy tasks.

Paper claim (checked via :mod:`repro.experiments.claims`): "for
temporally-heavy tasks, GN1 performs best while DP performs worst."
Reproduced with the binned (raw-draw) sampling the paper used — rescaled
sampling would wash the heaviness out (DESIGN.md §4.8).
"""

from benchmarks.helpers import print_curves

from repro.experiments.claims import check_figure
from repro.experiments.figures import FIGURES, run_figure


def test_bench_fig4b(benchmark, scale):
    samples = 300 * scale
    benchmark.pedantic(
        lambda: run_figure("fig4b", samples=samples, sim_samples=0, seed=2007),
        rounds=1,
        iterations=1,
    )
    full = run_figure(
        "fig4b", samples=samples, sim_samples=max(30, 3 * scale), seed=2007
    )
    print_curves(full, FIGURES["fig4b"].title)
    assert check_figure("fig4b", full) == []

    # GN1 tracks simulation closely in the low-US regime
    assert full["GN1"].at(45.0) >= 0.95
