"""Ablation (beyond the paper, §7): the 2D fragmentation effect.

Measures the acceptance gap between the optimistic total-area fit rule
and true bottom-left rectangle packing on random 2D workloads — the
quantity the paper says makes 2D scheduling hard ("we cannot assume that
a task can fit on the FPGA as long as there is enough free area").
"""

import numpy as np

from repro.fpga2d import FitRule, Fpga2D, shelf_test, simulate_2d
from repro.fpga2d.gen2d import GenerationProfile2D, generate_tasksets_2d


def _workloads(count, rng):
    """Constrained-deadline rectangle workloads heavy enough that geometry
    matters (light loads schedule under any fit rule and show no gap)."""
    return generate_tasksets_2d(GenerationProfile2D(), count, rng)


def test_bench_2d_fragmentation(benchmark, scale):
    fpga = Fpga2D(width=12, height=12)
    workloads = _workloads(60 * scale, np.random.default_rng(19))

    def run():
        area = packed = 0
        for ts in workloads:
            area += simulate_2d(ts, fpga, 120, fit_rule=FitRule.AREA).schedulable
            packed += simulate_2d(ts, fpga, 120, fit_rule=FitRule.PACKED).schedulable
        return area, packed

    area, packed = benchmark.pedantic(run, rounds=1, iterations=1)
    n = len(workloads)
    print(f"\nAREA rule: {area / n:.3f}  PACKED rule: {packed / n:.3f}  "
          f"fragmentation cost: {(area - packed) / n:.3f}")
    # AREA ignores geometry, so it accepts a superset of workloads.
    assert area >= packed
    # and the gap is the point of the experiment: it must exist
    assert area > packed


def test_bench_2d_shelf_bound_soundness(benchmark, scale):
    """Time the shelf test over random workloads; every acceptance must
    survive packed simulation (soundness under load)."""
    fpga = Fpga2D(width=12, height=12)
    workloads = _workloads(40 * scale, np.random.default_rng(23))

    def run():
        return [shelf_test(ts, fpga).accepted for ts in workloads]

    verdicts = benchmark.pedantic(run, rounds=1, iterations=1)
    accepted = [ts for ts, ok in zip(workloads, verdicts) if ok]
    print(f"\nshelf test accepted {len(accepted)}/{len(workloads)}")
    for ts in accepted:
        assert simulate_2d(ts, fpga, 120, fit_rule=FitRule.PACKED).schedulable
