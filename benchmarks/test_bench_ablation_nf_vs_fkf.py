"""Ablation: EDF-NF vs EDF-FkF under simulation (§1 dominance claim).

Danne et al. prove any FkF-schedulable set is NF-schedulable; this bench
quantifies the gap (how many sets NF rescues from head-of-queue blocking)
and times the paired simulation sweep.
"""

from benchmarks.helpers import auc, print_curves

from repro.experiments.ablations import nf_vs_fkf_ablation


def test_bench_nf_vs_fkf(benchmark, scale):
    samples = 40 * scale
    curves = benchmark.pedantic(
        lambda: nf_vs_fkf_ablation(samples=samples, seed=37),
        rounds=1,
        iterations=1,
    )
    print_curves(curves, "simulated acceptance: EDF-NF vs EDF-FkF")

    nf, fkf = curves["sim:EDF-NF"], curves["sim:EDF-FkF"]
    # dominance per bucket (same tasksets simulated under both)
    for a, b in zip(nf.ratios, fkf.ratios):
        assert a >= b
    print(f"NF advantage (mean over buckets): {auc(nf) - auc(fkf):.4f}")
