"""Figure 3(a): acceptance ratio vs US, 4 unconstrained tasks.

Prints the regenerated series (DP/GN1/GN2/simulation), asserts the
paper's shape claims via :mod:`repro.experiments.claims`, and times the
vectorized analytical sweep.
"""

from benchmarks.helpers import print_curves

from repro.experiments.claims import check_figure
from repro.experiments.figures import FIGURES, run_figure


def test_bench_fig3a(benchmark, scale):
    samples = 400 * scale
    benchmark.pedantic(
        lambda: run_figure("fig3a", samples=samples, sim_samples=0, seed=2007),
        rounds=1,
        iterations=1,
    )
    full = run_figure(
        "fig3a", samples=samples, sim_samples=max(40, 4 * scale), seed=2007
    )
    print_curves(full, FIGURES["fig3a"].title)
    assert check_figure("fig3a", full) == []
