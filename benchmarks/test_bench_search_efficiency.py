"""Budget efficiency of the release-pattern searches (uniform vs
adaptive).

The §6 upper bound tightens with every counterexample found, so the
figure of merit for a pattern search is **misses certified per 1000
simulated patterns** at a fixed per-taskset budget.  The smoke-marked
bench runs both searches over the seeded fixture sweeps of the
offset/sporadic ablations (same batch and pattern streams, misses
counted among the synchronous/periodic survivors — exactly the
population the searched curves subtract from) and records both rates in
the benchmark JSON (``extra_info`` -> the ``BENCH_<sha>.json``
artifacts), giving the efficiency trajectory a per-PR data point next
to the throughput benches.  It also asserts the PR's acceptance
property: at equal per-taskset budget the adaptive search certifies at
least as many misses as uniform in every bucket and strictly more in
at least one — while early stop means it simulates *fewer* patterns to
do so, which the per-1k rates amplify.
"""

import time

import pytest

from repro.experiments.acceptance import feasible_batch_at
from repro.fpga.device import Fpga
from repro.gen.profiles import paper_unconstrained
from repro.search import SearchConfig
from repro.search.drivers import (
    adaptive_offset_search_batch,
    adaptive_sporadic_search_batch,
    uniform_offset_search_batch,
    uniform_sporadic_search_batch,
)
from repro.util.rngutil import rng_from_seed, spawn_rngs
from repro.vector.batch import TaskSetBatch
from repro.vector.sim_vec import simulate_batch

FPGA = Fpga(width=100)
HORIZON_FACTOR = 10
CONFIG = SearchConfig(rounds=4, elite_frac=0.25)

#: family -> (us grid, tasksets per bucket, patterns per taskset, seed)
#: — the seeded fixture sweeps of tests/test_search_adaptive.py's
#: dominance tests, reproduced at driver level so pattern counts are
#: exact.
FIXTURES = {
    "offsets": ((70.0, 80.0, 85.0), 30, 20, 43),
    "sporadic": ((80.0, 85.0, 90.0), 40, 30, 47),
}


def _sweep(family: str, search: str):
    """Per-bucket misses among baseline survivors + total patterns."""
    grid, samples, budget, seed = FIXTURES[family]
    bucket_rngs = spawn_rngs(seed, len(grid))
    misses, patterns = [], 0
    for i, us in enumerate(grid):
        batch = feasible_batch_at(
            paper_unconstrained(10), us, samples, bucket_rngs[i]
        )
        sync = simulate_batch(
            batch, FPGA, "EDF-NF", horizon_factor=HORIZON_FACTOR
        ).schedulable
        if family == "offsets":
            if search == "uniform":
                out = uniform_offset_search_batch(
                    batch, FPGA, "EDF-NF", patterns=budget,
                    rng=rng_from_seed(seed * 1000 + i),
                    horizon_factor=HORIZON_FACTOR,
                )
            else:
                out = adaptive_offset_search_batch(
                    batch, FPGA, "EDF-NF", budget=budget,
                    rngs=spawn_rngs(seed * 1000 + i, batch.count),
                    config=CONFIG, horizon_factor=HORIZON_FACTOR,
                )
        else:
            if search == "uniform":
                out = uniform_sporadic_search_batch(
                    batch, FPGA, "EDF-NF", patterns=budget,
                    rng=rng_from_seed(seed * 1000 + i),
                    horizon_factor=HORIZON_FACTOR,
                )
            else:
                out = adaptive_sporadic_search_batch(
                    batch, FPGA, "EDF-NF", budget=budget,
                    rngs=spawn_rngs(seed * 1000 + i, batch.count),
                    config=CONFIG, horizon_factor=HORIZON_FACTOR,
                )
        misses.append(int((out.found & sync).sum()))
        patterns += int(out.patterns_used.sum())
    return misses, patterns


def _rate(misses, patterns) -> float:
    return 1000.0 * sum(misses) / patterns if patterns else 0.0


@pytest.mark.bench_smoke
@pytest.mark.parametrize("family", sorted(FIXTURES))
def test_bench_search_budget_efficiency(benchmark, family):
    """Misses found per 1k patterns: adaptive >= uniform, per bucket."""
    benchmark.group = f"search-efficiency-{family}"
    adaptive_misses, adaptive_patterns = benchmark.pedantic(
        lambda: _sweep(family, "adaptive"), rounds=1, iterations=1
    )
    adaptive_time = benchmark.stats.stats.mean

    t0 = time.perf_counter()
    uniform_misses, uniform_patterns = _sweep(family, "uniform")
    uniform_time = time.perf_counter() - t0

    uniform_rate = _rate(uniform_misses, uniform_patterns)
    adaptive_rate = _rate(adaptive_misses, adaptive_patterns)
    benchmark.extra_info["uniform_misses_per_1k_patterns"] = uniform_rate
    benchmark.extra_info["adaptive_misses_per_1k_patterns"] = adaptive_rate
    benchmark.extra_info["uniform_misses"] = uniform_misses
    benchmark.extra_info["adaptive_misses"] = adaptive_misses
    benchmark.extra_info["pattern_budget"] = FIXTURES[family][2]

    grid = FIXTURES[family][0]
    print(f"\n{family}: uniform {sum(uniform_misses)} misses / "
          f"{uniform_patterns} patterns ({uniform_rate:.1f}/1k, "
          f"{uniform_time:.2f} s), adaptive {sum(adaptive_misses)} / "
          f"{adaptive_patterns} ({adaptive_rate:.1f}/1k, "
          f"{adaptive_time:.2f} s) over buckets {grid}")
    print(f"per-bucket misses: uniform {uniform_misses}, "
          f"adaptive {adaptive_misses}")

    assert all(a >= u for u, a in zip(uniform_misses, adaptive_misses))
    assert sum(adaptive_misses) > sum(uniform_misses)
    assert adaptive_rate > uniform_rate
