"""Load-test harness for the admission service (PR 9).

Two client disciplines over real loopback HTTP/1.1 sockets, plus the
deterministic steady-state request stream both the bench and the
parity replay consume:

* **closed loop** — ``concurrency`` workers, each with one keep-alive
  connection, firing its next request the moment the previous decision
  lands.  Measures sustained decisions/second at a fixed concurrency
  level (the ISSUE's ``>= 1000/s at concurrency >= 64`` criterion).
* **open loop** — requests dispatched on a fixed schedule (``rate`` per
  second) regardless of completions, the way arrivals actually behave;
  measures the latency distribution under a fixed offered load and
  exposes queueing that closed-loop clients hide.

Streams are *steady-state churn*: admits and removals balanced around a
resident-set target, the regime an online admission controller lives in
(and where decision cost stays stationary instead of growing with every
accepted task).  Everything is seeded — the exact request sequence is
reproducible and replayable through ``BatchEngine.process_serial`` for
the bit-identity check.
"""

import asyncio
import json
import random
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.model.task import Task
from repro.service.protocol import Request

WirePayload = Tuple[str, Dict[str, Any]]  # (path, JSON body)

_PATHS = {"add": "/v1/admit", "trial": "/v1/trial", "remove": "/v1/remove"}


def draw_task(rng: random.Random, name: str) -> Task:
    """Moderate-utilization float64 task (irregular WCET keeps the
    stream off exact knife edges)."""
    period = float(rng.randint(40, 90))
    wcet = rng.randint(1, 5) + 0.05 + 0.01 * rng.random()
    return Task(wcet=wcet, period=period, area=rng.randint(1, 8), name=name)


def steady_stream(
    seed: int,
    n_requests: int,
    devices: Sequence[str],
    resident_target: int = 40,
) -> List[Request]:
    """Seeded add/remove/trial stream churning around ``resident_target``
    residents per device.  Residency is tracked optimistically (adds
    assumed admitted) — good enough to keep the stream bounded; actual
    admission decisions come from the engine under test."""
    rng = random.Random(seed)
    resident: Dict[str, List[str]] = {d: [] for d in devices}
    serial = 0
    stream: List[Request] = []
    for _ in range(n_requests):
        device = rng.choice(list(devices))
        names = resident[device]
        roll = rng.random()
        if len(names) < resident_target // 2:
            op = "add"
        elif roll < 0.40 and names:
            op = "remove"
        elif roll < 0.60 or len(names) > resident_target * 3 // 2:
            op = "trial"
        else:
            op = "add"
        if op == "remove":
            name = names.pop(len(names) // 2)
            stream.append(Request(op="remove", device=device, name=name))
        else:
            serial += 1
            task = draw_task(rng, f"t{serial}")
            stream.append(Request(op=op, device=device, task=task))
            if op == "add":
                names.append(task.name)
    return stream


def to_wire(request: Request) -> WirePayload:
    if request.op == "remove":
        return _PATHS["remove"], {"device": request.device, "name": request.name}
    task = request.task
    assert task is not None
    return _PATHS[request.op], {
        "device": request.device,
        "task": {
            "name": task.name,
            "wcet": float(task.wcet),
            "period": float(task.period),
            "deadline": float(task.deadline),
            "area": float(task.area),
        },
    }


# -- raw HTTP client -----------------------------------------------------------


class HttpClient:
    """One keep-alive HTTP/1.1 connection speaking the service's JSON."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def call(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, Any]]:
        assert self._reader is not None and self._writer is not None
        payload = json.dumps(body).encode() if body is not None else b""
        self._writer.write(
            (
                f"{method} {path} HTTP/1.1\r\nHost: bench\r\n"
                f"Content-Length: {len(payload)}\r\n\r\n"
            ).encode()
            + payload
        )
        await self._writer.drain()
        status = int((await self._reader.readline()).split()[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b""):
                break
            key, _, value = line.decode().partition(":")
            headers[key.lower().strip()] = value.strip()
        data = await self._reader.readexactly(int(headers.get("content-length", 0)))
        return status, json.loads(data)


# -- client disciplines --------------------------------------------------------


async def closed_loop(
    host: str,
    port: int,
    wire_ops: Sequence[WirePayload],
    concurrency: int,
) -> Tuple[float, List[Dict[str, Any]], List[float]]:
    """``concurrency`` keep-alive workers drain the shared request list.

    Returns ``(elapsed_seconds, decisions_in_request_order,
    client_side_latencies)``.
    """
    queue: List[Tuple[int, WirePayload]] = list(enumerate(wire_ops))
    queue.reverse()  # pop() serves requests in stream order
    decisions: List[Optional[Dict[str, Any]]] = [None] * len(wire_ops)
    latencies: List[float] = []

    async def worker() -> None:
        client = HttpClient(host, port)
        await client.connect()
        try:
            while queue:
                index, (path, body) = queue.pop()
                sent = time.perf_counter()
                status, decision = await client.call("POST", path, body)
                latencies.append(time.perf_counter() - sent)
                assert status == 200, (status, decision)
                decisions[index] = decision
        finally:
            await client.close()

    start = time.perf_counter()
    await asyncio.gather(*[worker() for _ in range(concurrency)])
    elapsed = time.perf_counter() - start
    return elapsed, [d for d in decisions if d is not None], latencies


async def open_loop(
    host: str,
    port: int,
    wire_ops: Sequence[WirePayload],
    rate: float,
    connections: int = 16,
) -> Tuple[float, List[float]]:
    """Fire requests on a fixed ``rate``/s schedule over a small
    connection pool; returns ``(elapsed, latencies)``.  Latency here
    includes any queueing behind the offered load — the number an SLO
    would be written against."""
    pool: List[HttpClient] = []
    locks: List[asyncio.Lock] = []
    for _ in range(connections):
        client = HttpClient(host, port)
        await client.connect()
        pool.append(client)
        locks.append(asyncio.Lock())
    latencies: List[float] = []
    start = time.perf_counter()

    async def fire(index: int, path: str, body: Dict[str, Any]) -> None:
        due = start + index / rate
        delay = due - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        slot = index % connections
        async with locks[slot]:  # HTTP/1.1: one in-flight request per conn
            status, _ = await pool[slot].call("POST", path, body)
        assert status == 200
        latencies.append(time.perf_counter() - due)

    try:
        await asyncio.gather(
            *[fire(i, path, body) for i, (path, body) in enumerate(wire_ops)]
        )
    finally:
        for client in pool:
            await client.close()
    return time.perf_counter() - start, latencies
