"""Figure 4(a): 10 spatially heavy, temporally light tasks.

Paper claim (checked via :mod:`repro.experiments.claims`): "for
spatially-heavy tasksets all three tests exhibit poor performance" —
wide tasks crush the guaranteed-busy-area credit.
"""

from benchmarks.helpers import print_curves

from repro.experiments.claims import check_figure
from repro.experiments.figures import FIGURES, run_figure


def test_bench_fig4a(benchmark, scale):
    samples = 400 * scale
    benchmark.pedantic(
        lambda: run_figure("fig4a", samples=samples, sim_samples=0, seed=2007),
        rounds=1,
        iterations=1,
    )
    full = run_figure(
        "fig4a", samples=samples, sim_samples=max(40, 4 * scale), seed=2007
    )
    print_curves(full, FIGURES["fig4a"].title)
    assert check_figure("fig4a", full) == []

    # the workload itself is far from hopeless at mid utilization
    assert full["sim:EDF-NF"].at(40.0) > 0.9
    # and every test has (essentially) flatlined there
    idx = full["DP"].utilizations.index(40.0)
    for label in ("DP", "GN1", "GN2"):
        assert all(r <= 0.005 for r in full[label].ratios[idx:]), label
