"""Incremental admission vs from-scratch recompute under churn.

The PR-6 acceptance criterion: at N≈50 resident tasks, the
:mod:`repro.incremental` engine must deliver at least **5x** the member
verdicts/second of scalar from-scratch recomputation over the same
seeded arrival/departure stream, with bit-identical accept/reject
decisions.

The measured unit is one churn *operation* = apply one add/remove, then
query **all three** member verdicts (DP, GN1, GN2) — the worst case for
the incremental engine, since a real portfolio short-circuits on DP
acceptance and never pays GN1/GN2 cache sync.  The from-scratch
reference replays a prefix of the identical operation stream through
the scalar tests on a freshly built ``TaskSet`` per query; decision
tuples are asserted equal on the shared prefix before any rate is
reported.  Rates and the speedup land in the benchmark JSON
(``extra_info`` -> the ``BENCH_<sha>.json`` artifacts) so the ratio has
a per-PR trajectory.
"""

import random
import time
from typing import List, Tuple

import pytest

from repro.core.dp import dp_test
from repro.core.gn1 import gn1_test
from repro.core.gn2 import gn2_test
from repro.fpga.device import Fpga
from repro.incremental import AdmissionState, Delta
from repro.model.task import Task, TaskSet

FPGA = Fpga(width=100)
SEED = 13
RESIDENT = 50  #: resident-set size the stream oscillates around
OPS = 200  #: incremental operations timed
SCRATCH_OPS = 40  #: from-scratch prefix (O(N^3) per op — keep it short)
MEMBERS = ("DP", "GN1", "GN2")
SCALAR = {"DP": dp_test, "GN1": gn1_test, "GN2": gn2_test}
REQUIRED_SPEEDUP = 5.0


def _draw_task(rng: random.Random, name: str) -> Task:
    # Irregular float WCETs keep the stream off exact knife edges, the
    # regime the engines' bit-identity contract covers for floats.
    period = float(rng.randint(8, 30))
    wcet = rng.randint(1, int(period) // 4) + 0.05 + 0.01 * rng.random()
    return Task(
        wcet=wcet, period=period, area=rng.randint(2, 12), name=name
    )


def _build_stream() -> Tuple[List[Task], List[Delta]]:
    """Seeded initial residents + deterministic add/remove operation list.

    Residency is simulated here once (plain name list) so both engines
    replay the *same* concrete operations — no admission decision feeds
    back into the stream.
    """
    rng = random.Random(SEED)
    serial = 0
    # Portfolio-governed initial fill: trial-admit draws until RESIDENT
    # stick, leaving the set near the schedulability boundary — the
    # regime an online admission controller actually operates in (and
    # where GN1/GN2 do real work instead of trivially accepting).
    filler = AdmissionState(FPGA)
    while len(filler) < RESIDENT:
        serial += 1
        filler.admit(_draw_task(rng, f"t{serial}"))
    initial = list(filler.tasks)
    residents = [t.name for t in initial]
    ops: List[Delta] = []
    for _ in range(OPS):
        if rng.random() < 0.5 and residents:
            victim = residents.pop(len(residents) // 2)
            ops.append(Delta.remove(victim))
        else:
            serial += 1
            t = _draw_task(rng, f"t{serial}")
            residents.append(t.name)
            ops.append(Delta.add(t))
    return initial, ops


def _run_incremental(initial, ops) -> List[Tuple[bool, bool, bool]]:
    state = AdmissionState(FPGA, initial)
    for name in MEMBERS:  # warm caches: the steady-state being measured
        state.accepts(name)
    decisions = []
    for delta in ops:
        state.apply(delta)
        decisions.append(tuple(state.accepts(name) for name in MEMBERS))
    return decisions


def _run_scratch(initial, ops) -> List[Tuple[bool, bool, bool]]:
    tasks = list(initial)
    index = {t.name: i for i, t in enumerate(tasks)}
    decisions = []
    for delta in ops:
        if delta.kind == "add":
            index[delta.task.name] = len(tasks)
            tasks.append(delta.task)
        else:
            pos = index.pop(delta.name)
            tasks.pop(pos)
            for later in tasks[pos:]:
                index[later.name] -= 1
        taskset = TaskSet(tasks)
        decisions.append(
            tuple(SCALAR[name](taskset, FPGA).accepted for name in MEMBERS)
        )
    return decisions


@pytest.mark.bench_smoke
def test_bench_churn_incremental_speedup(benchmark):
    """Incremental >= 5x from-scratch verdicts/s, identical decisions."""
    benchmark.group = f"churn-admission-N{RESIDENT}"
    initial, ops = _build_stream()

    inc_decisions = benchmark.pedantic(
        lambda: _run_incremental(initial, ops), rounds=1, iterations=1
    )
    inc_time = benchmark.stats.stats.mean

    t0 = time.perf_counter()
    scratch_decisions = _run_scratch(initial, ops[:SCRATCH_OPS])
    scratch_time = time.perf_counter() - t0

    # Bit-identical accept/reject decisions on the shared prefix.
    assert inc_decisions[:SCRATCH_OPS] == scratch_decisions

    inc_rate = len(MEMBERS) * OPS / inc_time
    scratch_rate = len(MEMBERS) * SCRATCH_OPS / scratch_time
    speedup = inc_rate / scratch_rate
    benchmark.extra_info["resident_tasks"] = RESIDENT
    benchmark.extra_info["incremental_ops"] = OPS
    benchmark.extra_info["recompute_ops"] = SCRATCH_OPS
    benchmark.extra_info["incremental_verdicts_per_s"] = inc_rate
    benchmark.extra_info["recompute_verdicts_per_s"] = scratch_rate
    benchmark.extra_info["speedup"] = speedup

    print(
        f"\nchurn N~{RESIDENT}: incremental {inc_rate:.0f} verdicts/s "
        f"({OPS} ops, {inc_time:.2f} s) vs from-scratch "
        f"{scratch_rate:.0f} verdicts/s ({SCRATCH_OPS} ops, "
        f"{scratch_time:.2f} s) -> {speedup:.1f}x"
    )
    assert speedup >= REQUIRED_SPEEDUP
