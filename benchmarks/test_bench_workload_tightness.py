"""Ablation: how tight is Lemma 4's workload bound in practice?

GN1's pessimism has two sources: the interference workload bound
(Lemma 4) and the occupancy credit (Lemma 2).  This bench isolates the
first: it measures the actual interference-relevant execution inside
every problem window of simulated schedules and reports the
observed/bound ratio.  Soundness (ratio <= 1) is asserted; the mean
ratio quantifies the slack GN1 leaves on the table.
"""

import numpy as np

from repro.fpga.device import Fpga
from repro.gen.profiles import GenerationProfile
from repro.gen.random_tasksets import generate_taskset
from repro.sched.edf_nf import EdfNf
from repro.sim.simulator import simulate
from repro.sim.workload_measure import measure_workload_bounds, tightness_summary
from repro.util.rngutil import rng_from_seed


def test_bench_lemma4_tightness(benchmark, scale):
    profile = GenerationProfile(
        n_tasks=6, area_min=1, area_max=50, period_min=5, period_max=15,
        util_min=0.2, util_max=0.8, name="tightness",
    )
    tasksets = [
        generate_taskset(profile, rng_from_seed(7000 + i)) for i in range(10 * scale)
    ]
    fpga = Fpga(width=100)

    def run():
        all_measurements = []
        for ts in tasksets:
            res = simulate(
                ts, fpga, EdfNf(), 60.0, record_trace=True,
                stop_at_first_miss=True,
            )
            all_measurements.extend(
                measure_workload_bounds(ts, res.trace, res.metrics.simulated_time)
            )
        return all_measurements

    measurements = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = tightness_summary(measurements)
    print(f"\nwindows measured: {stats['count']}, "
          f"violations: {stats['violations']}, "
          f"mean observed/bound: {stats['mean_ratio']:.3f}, "
          f"max: {stats['max_ratio']:.3f}")
    assert stats["violations"] == 0  # Lemma 4 soundness, empirically
    assert stats["count"] > 0
    # the bound is not vacuous: real schedules approach it somewhere
    assert stats["max_ratio"] > 0.5
