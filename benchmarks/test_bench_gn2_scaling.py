"""Ablation: GN2's O(N^3) complexity claim (§5).

"The test in Theorem 3 has running time complexity of O(N^3), since the
only values of λ that need be considered are the minimum points and the
discontinuities of β."  This bench times the scalar GN2 across taskset
sizes; the grouped output lets the cubic growth be read off directly.
"""

import pytest

from repro.core.gn2 import gn2_test
from repro.fpga.device import Fpga
from repro.gen.profiles import GenerationProfile
from repro.gen.random_tasksets import generate_taskset
from repro.util.rngutil import rng_from_seed


def _taskset(n):
    profile = GenerationProfile(
        n_tasks=n, area_min=1, area_max=40,
        period_min=5, period_max=20, util_min=0.05, util_max=0.5,
        name=f"gn2-scale-{n}",
    )
    ts = generate_taskset(profile, rng_from_seed(100 + n))
    # Rescale to a feasible utilization so every size exercises the full
    # λ search instead of short-circuiting on the necessary conditions.
    return ts.scaled_to_system_utilization(50.0)


@pytest.mark.parametrize("n", [5, 10, 20, 40])
def test_bench_gn2_scaling(benchmark, n):
    ts = _taskset(n)
    fpga = Fpga(width=100)
    benchmark.group = "gn2-scaling"
    result = benchmark(gn2_test, ts, fpga)
    assert result.test_name == "GN2"
    # Work bound sanity: λ candidates are O(N), tasks O(N), inner sum O(N).
    # (Timing ratios across the group exhibit the cubic trend.)
