"""Ablation: scalar reference vs numpy-vectorized batch evaluation.

The vectorized path is what makes the paper's 10,000-taskset sweeps
practical in Python; this bench verifies identical verdicts and reports
the speedup.
"""

import numpy as np
import pytest

from repro.core.dp import dp_test
from repro.core.gn1 import gn1_test
from repro.core.gn2 import gn2_test
from repro.fpga.device import Fpga
from repro.gen.profiles import paper_unconstrained
from repro.util.rngutil import rng_from_seed
from repro.vector.batch import generate_batch
from repro.vector.dp_vec import dp_accepts
from repro.vector.gn1_vec import gn1_accepts
from repro.vector.gn2_vec import gn2_accepts

BATCH = 300
FPGA = Fpga(width=100)


@pytest.fixture(scope="module")
def batch():
    raw = generate_batch(paper_unconstrained(10), BATCH, rng_from_seed(55))
    targets = rng_from_seed(56).uniform(5, 95, size=BATCH)
    return raw.scaled_to_system_utilization(targets)


@pytest.fixture(scope="module")
def tasksets(batch):
    return batch.to_tasksets()


@pytest.mark.parametrize(
    "name",
    ["dp", "gn1", "gn2"],
)
def test_bench_scalar(benchmark, name, batch, tasksets):
    scalar = {"dp": dp_test, "gn1": gn1_test, "gn2": gn2_test}[name]
    benchmark.group = f"{name}-{BATCH}-tasksets"

    def run_scalar():
        return [scalar(ts, FPGA).accepted for ts in tasksets]

    verdicts = benchmark(run_scalar)
    assert len(verdicts) == BATCH


@pytest.mark.parametrize(
    "name",
    ["dp", "gn1", "gn2"],
)
def test_bench_vectorized(benchmark, name, batch, tasksets):
    vec = {"dp": dp_accepts, "gn1": gn1_accepts, "gn2": gn2_accepts}[name]
    scalar = {"dp": dp_test, "gn1": gn1_test, "gn2": gn2_test}[name]
    benchmark.group = f"{name}-{BATCH}-tasksets"

    mask = benchmark(vec, batch, 100)
    # identical verdicts to the scalar reference
    expected = np.array([scalar(ts, FPGA).accepted for ts in tasksets])
    assert (mask == expected).all()
