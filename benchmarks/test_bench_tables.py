"""Tables 1-3 (paper §6): regenerate the accept/reject matrix and time
the three scalar bound tests on the example tasksets."""

from repro.experiments.tables import (
    PAPER_VERDICTS,
    TABLE_TASKSETS,
    render_tables,
    run_tables,
)
from repro.fpga.device import Fpga
from repro.core.dp import dp_test
from repro.core.gn1 import gn1_test
from repro.core.gn2 import gn2_test
import pytest


@pytest.mark.bench_smoke
def test_bench_table_matrix(benchmark):
    """Time the full 3x3 evaluation; assert it reproduces the paper."""
    outcomes = benchmark(run_tables)
    print()
    print(render_tables(outcomes))
    for name, outcome in outcomes.items():
        assert outcome.verdicts == PAPER_VERDICTS[name], name


def test_bench_dp_on_table1(benchmark):
    fpga = Fpga(width=10)
    ts = TABLE_TASKSETS["table1"]
    result = benchmark(dp_test, ts, fpga)
    assert result.accepted


def test_bench_gn1_on_table2(benchmark):
    fpga = Fpga(width=10)
    ts = TABLE_TASKSETS["table2"]
    result = benchmark(gn1_test, ts, fpga)
    assert result.accepted


def test_bench_gn2_on_table3(benchmark):
    fpga = Fpga(width=10)
    ts = TABLE_TASKSETS["table3"]
    result = benchmark(gn2_test, ts, fpga)
    assert result.accepted
