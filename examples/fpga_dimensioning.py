#!/usr/bin/env python
"""Design-space exploration: how many columns does a workload need?

A system architect choosing an FPGA part wants the *smallest* device that
certifiably schedules the workload — columns cost money and power.  The
schedulability bounds answer this offline: sweep the device width, find
the first width each test accepts.

Because the three bounds are incomparable (Tables 1-3!), the portfolio
often certifies a smaller device than any single test, directly saving
hardware — a concrete payoff of the paper's contribution.

Run: ``python examples/fpga_dimensioning.py``
"""

from typing import Optional

from repro import Fpga, Task, TaskSet
from repro.core import SchedulerKind, dp_test, gn1_test, gn2_test, paper_portfolio
from repro.gen.profiles import GenerationProfile
from repro.gen.random_tasksets import generate_taskset
from repro.sched import EdfNf
from repro.sim import default_horizon, simulate
from repro.util.rngutil import rng_from_seed


def min_width(taskset: TaskSet, test, lo: int = 1, hi: int = 300) -> Optional[int]:
    """Smallest device width accepted by ``test`` (binary search).

    All tests are monotone in device width (property-tested in the suite),
    so binary search is valid.
    """
    amax = int(taskset.max_area)
    lo = max(lo, amax)
    if not test(taskset, Fpga(width=hi)).accepted:
        return None
    while lo < hi:
        mid = (lo + hi) // 2
        if test(taskset, Fpga(width=mid)).accepted:
            hi = mid
        else:
            lo = mid + 1
    return lo


def min_width_simulated(taskset: TaskSet, lo: int = 1, hi: int = 300) -> Optional[int]:
    """Smallest width that survives synchronous-release simulation.

    Simulation acceptance is NOT guaranteed monotone in width, so this
    scans linearly — it is the (coarse) empirical lower bound on the
    width any sound test could ever certify.
    """
    horizon = default_horizon(taskset, factor=20)
    for width in range(max(lo, int(taskset.max_area)), hi + 1):
        if simulate(taskset, Fpga(width=width), EdfNf(), horizon).schedulable:
            return width
    return None


def main() -> None:
    rng = rng_from_seed(7)
    profile = GenerationProfile(
        n_tasks=6, area_min=5, area_max=40,
        period_min=5, period_max=20, util_min=0.1, util_max=0.5,
        name="dimensioning",
    )

    print(f"{'workload':<10} {'DP':>6} {'GN1':>6} {'GN2':>6} "
          f"{'portfolio':>10} {'sim (floor)':>12}")
    portfolio = paper_portfolio(SchedulerKind.EDF_NF)
    for w in range(5):
        ts = generate_taskset(profile, rng)
        widths = {
            "DP": min_width(ts, dp_test),
            "GN1": min_width(ts, gn1_test),
            "GN2": min_width(ts, gn2_test),
            "portfolio": min_width(ts, portfolio),
            "sim": min_width_simulated(ts),
        }
        fmt = lambda v: "-" if v is None else str(v)
        print(f"workload{w:<2} {fmt(widths['DP']):>6} {fmt(widths['GN1']):>6} "
              f"{fmt(widths['GN2']):>6} {fmt(widths['portfolio']):>10} "
              f"{fmt(widths['sim']):>12}")

    print(
        "\nportfolio width = min over the three bounds (certified); "
        "sim = empirical\nfloor under synchronous release (not a guarantee, "
        "paper §6)."
    )


if __name__ == "__main__":
    main()
