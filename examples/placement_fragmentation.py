#!/usr/bin/env python
"""What the free-migration assumption is worth (paper §7 future work).

The paper's analysis assumes a job fits whenever total free area
suffices — implicitly defragmenting the fabric for free.  Real devices
need *contiguous* columns, and moving a running task costs a full
reconfiguration.  This example quantifies the gap by simulating the same
workloads under the three migration models:

* FREE        — the paper's model (capacity check only);
* RELOCATABLE — contiguous hole required; jobs may move on resume;
* PINNED      — a job is nailed to its first placement.

and under the three §1 placement policies, with and without
reconfiguration overhead.

Run: ``python examples/placement_fragmentation.py``
"""

from repro import Fpga
from repro.experiments.acceptance import feasible_batch_at
from repro.fpga.placement import PlacementPolicy
from repro.fpga.reconfig import ReconfigurationModel
from repro.gen.profiles import GenerationProfile
from repro.sched import EdfNf
from repro.sim import MigrationMode, default_horizon, simulate
from repro.util.rngutil import rng_from_seed


def acceptance(tasksets, fpga, **sim_kwargs) -> float:
    ok = 0
    for ts in tasksets:
        horizon = default_horizon(ts, factor=10)
        ok += simulate(ts, fpga, EdfNf(), horizon, **sim_kwargs).schedulable
    return ok / len(tasksets)


def main() -> None:
    fpga = Fpga(width=100)
    profile = GenerationProfile(
        n_tasks=8, area_min=10, area_max=60,
        period_min=5, period_max=20, util_min=0.1, util_max=0.8,
        name="fragmentation-stress",
    )
    rng = rng_from_seed(11)
    us_target = 55.0
    batch = feasible_batch_at(profile, us_target, 60, rng)
    tasksets = batch.to_tasksets()
    print(f"{len(tasksets)} tasksets at US = {us_target} on "
          f"{fpga.width} columns (EDF-NF)\n")

    rows = [("FREE (paper assumption)", dict(mode=MigrationMode.FREE))]
    for policy in PlacementPolicy:
        rows.append(
            (f"RELOCATABLE / {policy.value}",
             dict(mode=MigrationMode.RELOCATABLE, placement_policy=policy))
        )
    rows.append(("PINNED / first-fit", dict(mode=MigrationMode.PINNED)))

    print(f"{'model':<28} {'acceptance':>10}")
    for label, kwargs in rows:
        print(f"{label:<28} {acceptance(tasksets, fpga, **kwargs):>10.2%}")

    # Reconfiguration overhead on top of the paper's FREE model.
    print(f"\n{'reconfig overhead (FREE)':<28} {'acceptance':>10}")
    for base in (0.0, 0.1, 0.3, 1.0):
        rc = ReconfigurationModel(base=base, per_column=base / 100)
        ratio = acceptance(tasksets, fpga, mode=MigrationMode.FREE, reconfig=rc)
        print(f"{f'base={base}, col={base/100}':<28} {ratio:>10.2%}")

    print(
        "\nThe FREE-vs-RELOCATABLE gap is pure fragmentation loss; "
        "PINNED adds\nresume blocking; overhead erodes all of them — the "
        "quantities §7 plans\nto incorporate into the bounds."
    )


if __name__ == "__main__":
    main()
