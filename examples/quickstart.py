#!/usr/bin/env python
"""Quickstart: analyze and simulate one hardware taskset.

Walks through the paper's whole pipeline on Table 3's taskset:

1. model a taskset of hardware tasks (C, D, T, A);
2. run the three schedulability bound tests (DP, GN1, GN2);
3. combine them as the paper recommends (portfolio);
4. simulate EDF-NF and EDF-FkF as a sanity check;
5. inspect the work-conserving occupancy trace.

Run: ``python examples/quickstart.py``
"""

from fractions import Fraction as F

from repro import Fpga, Task, TaskSet
from repro.core import SchedulerKind, dp_test, gn1_test, gn2_test, paper_portfolio
from repro.sched import EdfFkf, EdfNf
from repro.sim import default_horizon, simulate


def main() -> None:
    # -- 1. The taskset of the paper's Table 3 (exact rationals) -------------
    taskset = TaskSet(
        [
            Task(wcet=F("2.10"), deadline=5, period=5, area=7, name="video"),
            Task(wcet=F("2.00"), deadline=7, period=7, area=7, name="crypto"),
        ]
    )
    fpga = Fpga(width=10)
    print(f"taskset: {taskset}")
    print(f"device:  {fpga.width} columns")
    print(f"UT(Γ) = {float(taskset.time_utilization):.3f}, "
          f"US(Γ) = {float(taskset.system_utilization):.3f}\n")

    # -- 2. The three bound tests -------------------------------------------------
    for test in (dp_test, gn1_test, gn2_test):
        result = test(taskset, fpga)
        print(f"{test.name:4} -> {'ACCEPT' if result.accepted else 'reject'}")
        for verdict in result.per_task:
            mark = "ok " if verdict.passed else "FAIL"
            detail = verdict.detail
            if verdict.lhs is not None:
                detail = f"lhs={float(verdict.lhs):.3f} rhs={float(verdict.rhs):.3f}"
            print(f"       [{mark}] {verdict.task}: {detail}")
    print()

    # -- 3. The paper's advice: apply all bounds together -----------------------
    portfolio = paper_portfolio(SchedulerKind.EDF_NF)
    combined = portfolio(taskset, fpga)
    print(f"portfolio -> {'ACCEPT' if combined.accepted else 'reject'} "
          f"({combined.reason or combined.test_name})\n")

    # -- 4. Simulation cross-check ------------------------------------------
    horizon = default_horizon(taskset, factor=20)
    for scheduler in (EdfNf(), EdfFkf()):
        sim = simulate(taskset, fpga, scheduler, horizon, record_trace=True)
        print(
            f"simulate {scheduler.name:8} horizon={float(horizon):6.1f}: "
            f"{'no misses' if sim.schedulable else 'MISSED ' + str(sim.misses[0])}, "
            f"avg occupancy {sim.trace.average_occupancy():.2%}, "
            f"preemptions {sim.metrics.preemptions}"
        )

    # -- 5. Work-conserving invariants (paper §3, Fig. 1) ---------------------
    sim = simulate(taskset, fpga, EdfNf(), horizon, record_trace=True)
    violations = sim.trace.check_nf_alpha()
    print(f"\nLemma 2 occupancy check over {len(sim.trace.segments)} segments: "
          f"{len(violations)} violations")


if __name__ == "__main__":
    main()
