#!/usr/bin/env python
"""Partitioned vs global scheduling on a PRTR FPGA.

Danne & Platzner (the paper's reference [10]) restrict each task to a
fixed device partition — simple, analyzable with plain uniprocessor EDF
theory, but statically fragmenting the fabric.  The paper analyzes
*global* scheduling instead.  This example compares:

* partitioned first-fit-decreasing + exact per-partition QPA,
* the global bounds (DP / GN1 / GN2 portfolio),
* global EDF-NF simulation (coarse upper bound),

over workloads of increasing spatial pressure, showing the regime where
global scheduling's flexibility wins.

Run: ``python examples/partitioned_vs_global.py``
"""

from repro import Fpga
from repro.core import SchedulerKind, paper_portfolio
from repro.experiments.acceptance import feasible_batch_at
from repro.gen.profiles import GenerationProfile
from repro.sched import EdfNf
from repro.sched.partitioned import partitioned_test
from repro.sim import default_horizon, simulate
from repro.util.rngutil import rng_from_seed


def main() -> None:
    fpga = Fpga(width=100)
    rng = rng_from_seed(5)
    portfolio = paper_portfolio(SchedulerKind.EDF_NF)

    print(f"{'US':>4} {'partitioned':>12} {'global-bounds':>14} {'sim EDF-NF':>11}")
    for us_target in (20.0, 35.0, 50.0, 65.0, 80.0):
        profile = GenerationProfile(
            n_tasks=8, area_min=10, area_max=50,
            period_min=5, period_max=20, util_min=0.1, util_max=0.9,
            name="pvg",
        )
        batch = feasible_batch_at(profile, us_target, 50, rng)
        tasksets = batch.to_tasksets()
        part = sum(partitioned_test(ts, fpga).accepted for ts in tasksets)
        glob = sum(portfolio(ts, fpga).accepted for ts in tasksets)
        sim = sum(
            simulate(ts, fpga, EdfNf(), default_horizon(ts, factor=10)).schedulable
            for ts in tasksets
        )
        n = len(tasksets)
        print(f"{us_target:>4.0f} {part/n:>12.2%} {glob/n:>14.2%} {sim/n:>11.2%}")

    print(
        "\npartitioned = FFD packing + exact QPA per partition;"
        "\nglobal-bounds = DP ∪ GN1 ∪ GN2 (sufficient, pessimistic);"
        "\nsim = synchronous-release global EDF-NF (coarse upper bound)."
        "\nGlobal simulation dominates everywhere; the analytical global"
        "\nbounds trade some of that headroom for a hard guarantee."
    )


if __name__ == "__main__":
    main()
