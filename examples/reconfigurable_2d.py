#!/usr/bin/env python
"""2D-reconfigurable scheduling: the paper's §7 future work, running.

A 2D device schedules rectangle tasks.  This example walks through:

1. the fragmentation effect the paper warns about — total free area is
   NOT a fit guarantee in 2D, even with free migration;
2. simulated acceptance under the optimistic AREA rule vs true
   bottom-left PACKING — the measurable size of that effect;
3. the sound shelf-decomposition bound, which reduces 2D schedulability
   to the paper's own 1D tests per shelf.

Run: ``python examples/reconfigurable_2d.py``
"""

import numpy as np

from repro.fpga2d import (
    BottomLeftPacker,
    FitRule,
    Fpga2D,
    Task2D,
    TaskSet2D,
    shelf_test,
    simulate_2d,
)


def fragmentation_demo() -> None:
    print("1. Fragmentation: free area is not a fit guarantee in 2D")
    fpga = Fpga2D(width=10, height=10)
    packer = BottomLeftPacker(fpga)
    for key, (x, y) in {"tl": (0, 6), "tr": (6, 6), "bl": (0, 0), "br": (6, 0)}.items():
        packer.place_at(key, x, y, 4, 4)
    print(f"   placed 4 corner blocks of 4x4; free area = "
          f"{packer.free_area}/{fpga.area} CLBs")
    print(f"   can a 5x5 task (25 CLBs) be placed? "
          f"{packer.find_position(5, 5) is not None}")
    print(f"   can a 2x10 strip (20 CLBs) be placed? "
          f"{packer.find_position(2, 10) is not None}\n")


def area_vs_packed() -> None:
    print("2. Simulated acceptance: optimistic AREA rule vs real packing")
    rng = np.random.default_rng(17)
    fpga = Fpga2D(width=12, height=12)
    trials = 150
    area_ok = packed_ok = 0
    for _ in range(trials):
        n = int(rng.integers(4, 8))
        tasks = []
        for i in range(n):
            period = float(rng.uniform(6, 14))
            deadline = period * float(rng.uniform(0.5, 1.0))
            tasks.append(
                Task2D(
                    wcet=min(deadline, float(rng.uniform(2.0, 5.0))),
                    period=period,
                    deadline=deadline,
                    width=int(rng.integers(3, 9)),
                    height=int(rng.integers(3, 9)),
                    name=f"t{i}",
                )
            )
        ts = TaskSet2D(tasks)
        area_ok += simulate_2d(ts, fpga, horizon=120, fit_rule=FitRule.AREA).schedulable
        packed_ok += simulate_2d(
            ts, fpga, horizon=120, fit_rule=FitRule.PACKED
        ).schedulable
    print(f"   {trials} random rectangle workloads on a 12x12 grid:")
    print(f"   AREA rule accepts   {area_ok / trials:.1%}  (optimistic, unsound)")
    print(f"   PACKED rule accepts {packed_ok / trials:.1%}  (bottom-left reality)")
    print(f"   -> 2D fragmentation cost: {(area_ok - packed_ok) / trials:.1%}\n")


def shelf_bound_demo() -> None:
    print("3. Sound analysis via shelf decomposition (1D bounds per shelf)")
    ts = TaskSet2D(
        [
            Task2D(wcet=1.0, period=8, width=4, height=3, name="dsp"),
            Task2D(wcet=2.0, period=10, width=6, height=3, name="fft"),
            Task2D(wcet=1.5, period=12, width=5, height=2, name="aes"),
            Task2D(wcet=0.5, period=6, width=3, height=2, name="uart"),
        ]
    )
    fpga = Fpga2D(width=12, height=9)
    res = shelf_test(ts, fpga)
    print(f"   device 12x9, shelf height = {ts.max_height} "
          f"-> {fpga.height // ts.max_height} shelves")
    for v in res.per_task:
        print(f"   {v.task}: {v.detail}")
    print(f"   verdict: {'ACCEPT (guaranteed)' if res.accepted else 'reject'}")
    sim = simulate_2d(ts, fpga, horizon=240, fit_rule=FitRule.PACKED)
    print(f"   packed simulation agrees: {'no misses' if sim.schedulable else 'MISS'}")


def main() -> None:
    fragmentation_demo()
    area_vs_packed()
    shelf_bound_demo()


if __name__ == "__main__":
    main()
