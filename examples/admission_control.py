#!/usr/bin/env python
"""Online admission control for a reconfigurable accelerator card.

Scenario (the use case motivating the paper's bounds): a server offloads
streaming kernels — video scalers, packet filters, crypto engines — onto
a PRTR FPGA at runtime.  Each arriving service asks for a periodic
hardware task ``(C, D, T, A)``.  The admission controller must answer
*now*, without simulating: it accepts a task iff the already-admitted set
plus the newcomer still passes a schedulability bound.

This demo is a thin client of the **admission service pipeline**
(:mod:`repro.service`): concurrent requests coalesce in a micro-batching
window, the :class:`~repro.core.sensitivity.DeltaCertifier` answers the
provably-easy deltas in O(1), and the residue reruns through grouped
vectorized DP/GN1/GN2 kernels — the same pipeline ``repro-service``
exposes over HTTP, driven here in-process through
:class:`repro.service.AdmissionService`.  Decisions are bit-identical to
deciding every request alone through
:class:`repro.incremental.AdmissionState` — pass ``--from-scratch`` to
replay the recorded request sequence through the per-request serial
baseline *and* the from-scratch scalar portfolio, and assert all three
decision sequences are identical.

Run: ``python examples/admission_control.py [--from-scratch]``
"""

import argparse
import asyncio
from typing import List

from repro import Fpga, Task, TaskSet
from repro.core import SchedulerKind, paper_portfolio
from repro.fpga.device import Fpga as ServiceFpga
from repro.gen.profiles import GenerationProfile
from repro.gen.random_tasksets import generate_taskset
from repro.service import AdmissionService, BatchConfig, BatchEngine, Request
from repro.util.rngutil import rng_from_seed

DEVICE = "card0"
WIDTH = 100
BATCH = 16  #: arrivals submitted concurrently per wave
DEPARTURE_EVERY = 4  #: one teardown per this many arrivals


async def drive_service(
    arrivals: List[Task], config: BatchConfig
) -> tuple:
    """Submit arrival waves concurrently (they coalesce into batches),
    tearing down the oldest admitted service every few arrivals.

    Returns ``(recorded_requests, decisions, snapshot)`` — the request
    sequence in its decided per-device order, ready for serial replay.
    """
    service = AdmissionService(config=config)
    await service.start()
    service.create_device(DEVICE, WIDTH)
    recorded: List[Request] = []
    decisions = []
    admitted: List[str] = []
    try:
        for wave_start in range(0, len(arrivals), BATCH):
            wave = arrivals[wave_start : wave_start + BATCH]
            requests = [Request(op="add", device=DEVICE, task=t) for t in wave]
            recorded.extend(requests)
            # gather() fans the wave into the micro-batching window; the
            # batcher coalesces it into (at most) one engine batch.
            wave_decisions = await asyncio.gather(
                *[service.submit(r) for r in requests]
            )
            decisions.extend(wave_decisions)
            admitted.extend(d.name for d in wave_decisions if d.ok)
            departures = [
                Request(op="remove", device=DEVICE, name=admitted.pop(0))
                for _ in range(len(wave) // DEPARTURE_EVERY)
                if admitted
            ]
            if departures:
                recorded.extend(departures)
                decisions.extend(
                    await asyncio.gather(*[service.submit(r) for r in departures])
                )
        return recorded, decisions, service.snapshot()
    finally:
        await service.close()


def replay_serial(recorded: List[Request]) -> List:
    """The per-request baseline: the same sequence, one request at a
    time through ``AdmissionState.admit`` — no batching, no certifier,
    no kernels."""
    engine = BatchEngine(use_certifier=False)
    engine.add_device(DEVICE, ServiceFpga(width=WIDTH))
    return engine.process_serial(recorded)


def replay_from_scratch(recorded: List[Request]) -> List[bool]:
    """Reference replay: every decision runs the scalar §6 portfolio
    from scratch on a freshly built TaskSet."""
    fpga = Fpga(width=WIDTH)
    portfolio = paper_portfolio(SchedulerKind.EDF_NF)
    admitted: List[Task] = []
    decisions: List[bool] = []
    for request in recorded:
        if request.op == "remove":
            admitted = [t for t in admitted if t.name != request.name]
            decisions.append(True)
            continue
        assert request.task is not None
        candidate = TaskSet(admitted + [request.task])
        ok = bool(portfolio(candidate, fpga).accepted)
        if ok:
            admitted.append(request.task)
        decisions.append(ok)
    return decisions


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--from-scratch",
        action="store_true",
        help="also replay the recorded request sequence through the "
        "per-request serial baseline and the from-scratch scalar "
        "portfolio, and assert all decision sequences are identical",
    )
    parser.add_argument("--arrivals", type=int, default=120)
    parser.add_argument("--seed", type=int, default=2024)
    args = parser.parse_args()

    profile = GenerationProfile(
        n_tasks=1, area_min=5, area_max=45,
        period_min=5, period_max=20, util_min=0.05, util_max=0.5,
        name="service-requests",
    )
    rng = rng_from_seed(args.seed)
    arrivals = [generate_taskset(profile, rng, name_prefix=f"svc{i}_")[0]
                for i in range(args.arrivals)]

    print(f"{len(arrivals)} service requests against a {WIDTH}-column "
          f"device (micro-batched admission service, waves of {BATCH})\n")
    recorded, decisions, snapshot = asyncio.run(
        drive_service(arrivals, BatchConfig(max_batch=BATCH, max_wait=0.002))
    )

    adds = [d for d in decisions if d.op == "add"]
    accepted = sum(1 for d in adds if d.ok)
    by_via = snapshot["by_via"]
    print(f"{'accepted':>9} {'rejected':>9} {'batches':>8} "
          f"{'mean size':>10} {'O(1) certs':>11} {'kernel':>7}")
    print(f"{accepted:>9} {len(adds) - accepted:>9} "
          f"{snapshot['batches_total']:>8} "
          f"{snapshot['mean_batch_size']:>10.1f} "
          f"{snapshot['certifier']['hit_rate']:>10.0%} "
          f"{by_via.get('kernel', 0):>7}")
    histogram = ", ".join(
        f"{size}x{count}" for size, count in snapshot["batch_size_histogram"].items()
    )
    print(f"\nbatch-size histogram (size x batches): {histogram}")

    if args.from_scratch:
        verdicts = [(d.op, d.name, d.ok) for d in decisions]
        serial = replay_serial(recorded)
        assert [(d.op, d.name, d.ok) for d in serial] == verdicts, (
            "service decisions diverged from per-request serial replay"
        )
        scratch = replay_from_scratch(recorded)
        assert [d.ok for d in decisions] == scratch, (
            "service decisions diverged from from-scratch portfolio replay"
        )
        print("\ncross-check: batched service decisions identical to the "
              "per-request serial replay\nand identical to from-scratch "
              "scalar portfolio replays of the recorded sequence")

    print(
        "\nThe portfolio admits at least as many services as any single "
        "bound\n(paper §6: 'different schedulability bounds should be "
        "applied together'),\nand the service answers them in coalesced "
        "batches without changing one verdict."
    )


if __name__ == "__main__":
    main()
