#!/usr/bin/env python
"""Online admission control for a reconfigurable accelerator card.

Scenario (the use case motivating the paper's bounds): a server offloads
streaming kernels — video scalers, packet filters, crypto engines — onto
a PRTR FPGA at runtime.  Each arriving service asks for a periodic
hardware task ``(C, D, T, A)``.  The admission controller must answer
*now*, without simulating: it accepts a task iff the already-admitted set
plus the newcomer still passes a schedulability bound.

This demo replays a randomized arrival/departure workload and compares
admission throughput of the three bounds and of the paper-recommended
portfolio (accept if ANY bound accepts) — showing why portfolios matter
in practice.

Run: ``python examples/admission_control.py``
"""

from typing import Callable, List

from repro import Fpga, Task, TaskSet
from repro.core import SchedulerKind, dp_test, gn1_test, gn2_test, paper_portfolio
from repro.gen.profiles import GenerationProfile
from repro.gen.random_tasksets import generate_taskset
from repro.util.rngutil import rng_from_seed


def replay(
    arrivals: List[Task],
    fpga: Fpga,
    admit: Callable[[TaskSet, Fpga], object],
    departure_every: int = 4,
) -> dict:
    """Feed arrivals through one admission policy; every ``departure_every``
    arrivals the oldest admitted task departs (service teardown)."""
    admitted: List[Task] = []
    accepted = rejected = 0
    peak_us = 0.0
    for idx, task in enumerate(arrivals):
        candidate = TaskSet(admitted + [task])
        if admit(candidate, fpga).accepted:
            admitted.append(task)
            accepted += 1
            peak_us = max(peak_us, float(candidate.system_utilization))
        else:
            rejected += 1
        if departure_every and (idx + 1) % departure_every == 0 and admitted:
            admitted.pop(0)
    return {
        "accepted": accepted,
        "rejected": rejected,
        "resident": len(admitted),
        "peak_US": peak_us,
    }


def main() -> None:
    fpga = Fpga(width=100)
    profile = GenerationProfile(
        n_tasks=1, area_min=5, area_max=45,
        period_min=5, period_max=20, util_min=0.05, util_max=0.5,
        name="service-requests",
    )
    rng = rng_from_seed(2024)
    arrivals = [generate_taskset(profile, rng, name_prefix=f"svc{i}_")[0]
                for i in range(120)]

    policies = [
        ("DP", dp_test),
        ("GN1", gn1_test),
        ("GN2", gn2_test),
        ("portfolio", paper_portfolio(SchedulerKind.EDF_NF)),
    ]

    print(f"{len(arrivals)} service requests against a "
          f"{fpga.width}-column device\n")
    print(f"{'policy':<10} {'accepted':>9} {'rejected':>9} "
          f"{'resident':>9} {'peak US':>9}")
    for name, policy in policies:
        stats = replay(arrivals, fpga, policy)
        print(f"{name:<10} {stats['accepted']:>9} {stats['rejected']:>9} "
              f"{stats['resident']:>9} {stats['peak_US']:>9.1f}")

    print(
        "\nThe portfolio admits at least as many services as any single "
        "bound\n(paper §6: 'different schedulability bounds should be "
        "applied together')."
    )


if __name__ == "__main__":
    main()
