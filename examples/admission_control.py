#!/usr/bin/env python
"""Online admission control for a reconfigurable accelerator card.

Scenario (the use case motivating the paper's bounds): a server offloads
streaming kernels — video scalers, packet filters, crypto engines — onto
a PRTR FPGA at runtime.  Each arriving service asks for a periodic
hardware task ``(C, D, T, A)``.  The admission controller must answer
*now*, without simulating: it accepts a task iff the already-admitted set
plus the newcomer still passes a schedulability bound.

This demo replays a randomized arrival/departure workload through the
**incremental** engine (:class:`repro.incremental.AdmissionState`): each
decision reuses the cached interference aggregates of the resident set
instead of recomputing the O(N²)/O(N³) sums from scratch, and a
:class:`repro.core.sensitivity.DeltaCertifier` answers the provably-easy
deltas (departures under a DP/GN1 acceptance, arrivals fitting inside the
cached DP slack) in O(1) without any rerun.  Decisions are bit-identical
to the from-scratch tests either way — pass ``--from-scratch`` to replay
both paths and assert it.

Run: ``python examples/admission_control.py [--from-scratch]``
"""

import argparse
from typing import List, Optional

from repro import Fpga, Task, TaskSet
from repro.core import SchedulerKind, dp_test, gn1_test, gn2_test, paper_portfolio
from repro.core.sensitivity import DeltaCertifier
from repro.gen.profiles import GenerationProfile
from repro.gen.random_tasksets import generate_taskset
from repro.incremental import AdmissionState
from repro.util.rngutil import rng_from_seed

#: Tests an AdmissionState tracks, plus the §6 portfolio.
POLICIES = ("DP", "GN1", "GN2", "portfolio")


def replay_incremental(
    arrivals: List[Task],
    fpga: Fpga,
    policy: str,
    departure_every: int = 4,
    certifier: Optional[DeltaCertifier] = None,
) -> dict:
    """Feed arrivals through one admission policy on the incremental
    engine; every ``departure_every`` arrivals the oldest admitted task
    departs (service teardown).  Returns the decision sequence plus stats.

    With a ``certifier``, each trial add / departure is first offered to
    the O(1) delta-certificate fast path; only uncertified deltas rerun
    the (incremental) exact test.
    """
    state = AdmissionState(fpga)
    scheduler = SchedulerKind.EDF_NF

    def portfolio_ok() -> bool:
        if policy == "portfolio":
            return state.portfolio_accepts(scheduler)
        return state.accepts(policy)

    if certifier is not None:
        certifier.refresh(state, scheduler)
    decisions: List[bool] = []
    accepted = rejected = 0
    peak_us = 0.0
    admitted_order: List[str] = []
    for idx, task in enumerate(arrivals):
        verdict: Optional[bool] = None
        if certifier is not None and policy == "portfolio":
            verdict = certifier.certify_add(task)
        if verdict is None:
            state.add(task)
            ok = portfolio_ok()
            if not ok:
                state.remove(task.name)
            if certifier is not None:
                certifier.refresh(state, scheduler)
        else:
            ok = verdict
            if ok:
                state.add(task)  # certificate: no rerun needed
        decisions.append(ok)
        if ok:
            admitted_order.append(task.name)
            accepted += 1
            peak_us = max(peak_us, float(TaskSet(state.tasks).system_utilization))
        else:
            rejected += 1
        if departure_every and (idx + 1) % departure_every == 0 and admitted_order:
            victim = admitted_order.pop(0)
            certified = (
                certifier.certify_remove(victim)
                if certifier is not None and policy == "portfolio"
                else None
            )
            state.remove(victim)
            if certifier is not None and certified is None:
                certifier.refresh(state, scheduler)
    return {
        "accepted": accepted,
        "rejected": rejected,
        "resident": len(state),
        "peak_US": peak_us,
        "decisions": decisions,
    }


def replay_from_scratch(
    arrivals: List[Task],
    fpga: Fpga,
    policy: str,
    departure_every: int = 4,
) -> List[bool]:
    """Reference replay: every decision runs the scalar test from scratch."""
    tests = {
        "DP": dp_test,
        "GN1": gn1_test,
        "GN2": gn2_test,
        "portfolio": paper_portfolio(SchedulerKind.EDF_NF),
    }
    test = tests[policy]
    admitted: List[Task] = []
    decisions: List[bool] = []
    for idx, task in enumerate(arrivals):
        candidate = TaskSet(admitted + [task])
        ok = bool(test(candidate, fpga).accepted)
        decisions.append(ok)
        if ok:
            admitted.append(task)
        if departure_every and (idx + 1) % departure_every == 0 and admitted:
            admitted.pop(0)
    return decisions


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--from-scratch",
        action="store_true",
        help="also replay every policy with from-scratch scalar tests and "
        "assert the accept/reject sequences are identical",
    )
    parser.add_argument("--arrivals", type=int, default=120)
    parser.add_argument("--seed", type=int, default=2024)
    args = parser.parse_args()

    fpga = Fpga(width=100)
    profile = GenerationProfile(
        n_tasks=1, area_min=5, area_max=45,
        period_min=5, period_max=20, util_min=0.05, util_max=0.5,
        name="service-requests",
    )
    rng = rng_from_seed(args.seed)
    arrivals = [generate_taskset(profile, rng, name_prefix=f"svc{i}_")[0]
                for i in range(args.arrivals)]

    print(f"{len(arrivals)} service requests against a "
          f"{fpga.width}-column device (incremental engine)\n")
    print(f"{'policy':<10} {'accepted':>9} {'rejected':>9} "
          f"{'resident':>9} {'peak US':>9} {'O(1) certs':>11}")
    for policy in POLICIES:
        certifier = DeltaCertifier() if policy == "portfolio" else None
        stats = replay_incremental(arrivals, fpga, policy, certifier=certifier)
        cert_note = (
            f"{certifier.hit_rate:>10.0%}" if certifier is not None else f"{'—':>10}"
        )
        print(f"{policy:<10} {stats['accepted']:>9} {stats['rejected']:>9} "
              f"{stats['resident']:>9} {stats['peak_US']:>9.1f} {cert_note}")
        if args.from_scratch:
            reference = replay_from_scratch(arrivals, fpga, policy)
            assert stats["decisions"] == reference, (
                f"{policy}: incremental decisions diverged from from-scratch"
            )
    if args.from_scratch:
        print("\ncross-check: all incremental decision sequences identical "
              "to from-scratch replays")

    print(
        "\nThe portfolio admits at least as many services as any single "
        "bound\n(paper §6: 'different schedulability bounds should be "
        "applied together')."
    )


if __name__ == "__main__":
    main()
