"""Composite "portfolio" testing (paper §6 conclusion).

"No single utilization bound test consistently out-performs others ... In
practice, different schedulability bounds should be applied together, i.e.,
determine that a taskset is unschedulable only if all tests fail."

:func:`composite_test` builds an any-of combination; :func:`paper_portfolio`
is the paper's trio.  The composite's guarantee only covers a scheduler if
the *accepting* member covers it — e.g. a GN1-only acceptance certifies
EDF-NF but not EDF-FkF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.dp import dp_test
from repro.core.gn1 import gn1_test
from repro.core.gn2 import gn2_test
from repro.core.interfaces import (
    SchedulabilityTest,
    SchedulerKind,
    TestResult,
)
from repro.fpga.device import Fpga
from repro.model.task import TaskSet


@dataclass(frozen=True)
class CompositeTest:
    """Accepts when any member test accepts (for a covered scheduler)."""

    members: Tuple[SchedulabilityTest, ...]
    #: Restrict acceptance to members covering this scheduler; ``None``
    #: accepts on any member and unions the resulting guarantees.
    scheduler: SchedulerKind | None = None
    name: str = "composite"

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("composite test needs at least one member")

    def __call__(self, taskset: TaskSet, fpga: Fpga) -> TestResult:
        results = []
        for member in self.members:
            if self.scheduler is not None and self.scheduler not in member.schedulers:
                continue
            res = member(taskset, fpga)
            results.append(res)
            if res.accepted:
                return TestResult(
                    test_name=f"{self.name}({res.test_name})",
                    accepted=True,
                    schedulers=(
                        frozenset({self.scheduler})
                        if self.scheduler is not None
                        else res.schedulers
                    ),
                    per_task=res.per_task,
                    reason=f"accepted by member {res.test_name}",
                )
        rejected_by = ", ".join(r.test_name for r in results) or "(no applicable member)"
        return TestResult(
            test_name=self.name,
            accepted=False,
            schedulers=(
                frozenset({self.scheduler})
                if self.scheduler is not None
                else frozenset(SchedulerKind)
            ),
            reason=f"rejected by all members: {rejected_by}",
        )


def composite_test(
    members: Sequence[SchedulabilityTest],
    scheduler: SchedulerKind | None = None,
    name: str = "composite",
) -> CompositeTest:
    """Build an any-of composite over ``members``."""
    return CompositeTest(tuple(members), scheduler, name)


def paper_portfolio(scheduler: SchedulerKind = SchedulerKind.EDF_NF) -> CompositeTest:
    """The paper's §6 recommendation: DP ∪ GN1 ∪ GN2.

    For EDF-NF all three apply; for EDF-FkF, GN1 is automatically skipped
    (it only certifies EDF-NF).
    """
    return CompositeTest(
        (dp_test, gn1_test, gn2_test), scheduler, name=f"portfolio[{scheduler.value}]"
    )
