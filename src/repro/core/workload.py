"""Interference workload bounds (paper §4 Lemma 4 and §5 Lemma 7).

These are the quantitative hearts of GN1 and GN2:

* :func:`bcl_workload_bound` — Lemma 4: an upper bound on the time work a
  task ``tau_i`` can do inside the problem window ``[r_k, d_k)`` of a job
  of ``tau_k``, maximized over release alignments (deadlines aligned).
* :func:`gn2_beta` — Lemma 7: Baker's per-task load-rate bound
  ``W_i(t-δ, t)/δ <= β^λ_k(i)`` over a maximal ``τλk``-busy interval.
* :func:`gn2_lambda_candidates` — §5's observation that only finitely many
  λ need be examined (minimum points + discontinuities of β).

Both work with exact rationals; see DESIGN.md §4 for the resolved
printed-formula ambiguities.
"""

from __future__ import annotations

import math
from fractions import Fraction
from numbers import Real
from typing import List

from repro.model.task import Task, TaskSet
from repro.util.mathutil import exact_div, float_floor_div


def max_complete_jobs(window_deadline: Real, task_i: Task) -> int:
    """``N_i = max(0, floor((D_k - D_i)/T_i) + 1)`` (Lemma 4).

    The number of jobs of ``tau_i`` that can lie *entirely* inside the
    window ``[r_k, d_k)`` of length ``D_k`` when deadlines are aligned —
    the alignment that maximizes interference.  Negative raw values (window
    far shorter than ``D_i``) are clamped to zero: no complete job fits.
    """
    raw = float_floor_div(window_deadline - task_i.deadline, task_i.period) + 1
    return max(0, raw)


def bcl_workload_bound(task_i: Task, window_deadline: Real) -> Real:
    """Lemma 4: ``W_i <= N_i C_i + min(C_i, max(D_k - N_i T_i, 0))``.

    ``N_i C_i`` counts the complete jobs; the ``min(...)`` term bounds the
    carry-in of the one partial job (it can neither exceed ``C_i`` nor the
    window slack left of the complete jobs).
    """
    n_i = max_complete_jobs(window_deadline, task_i)
    carry_cap = window_deadline - n_i * task_i.period
    if carry_cap < 0:
        carry_cap = 0
    carry = task_i.wcet if task_i.wcet < carry_cap else carry_cap
    return n_i * task_i.wcet + carry


def gn1_beta(task_i: Task, task_k: Task, *, window_denominator: bool = False) -> Real:
    """Theorem 2's ``β_i`` for interfering task ``tau_i`` against ``tau_k``.

    As printed, the workload bound is normalized by ``D_i`` (confirmed by
    the Table 3 worked example, ``β_1 = 4.1/5``).  BCL — the cited basis —
    normalizes by the window length ``D_k``; pass
    ``window_denominator=True`` for that variant.
    """
    w = bcl_workload_bound(task_i, task_k.deadline)
    den = task_k.deadline if window_denominator else task_i.deadline
    return exact_div(w, den)


def gn2_beta(
    task_i: Task,
    task_k: Task,
    lam: Real,
    *,
    literal_case2: bool = False,
) -> Real:
    """Lemma 7's ``β^λ_k(i)`` — load-rate bound in a ``τλ_k``-busy interval.

    Cases (with ``u_i = C_i/T_i``, ``δ_i = C_i/D_i``):

    1. ``u_i <= λ``:   ``max(u_i, u_i (1 - D_i/D_k) + C_i/D_k)``
       — the task is no heavier than the busy threshold; carry-in bounded
       by deadline-alignment geometry.
    2. ``u_i > λ`` and ``λ >= δ_i``:  ``u_i``
       — reachable only for ``D_i > T_i``; the printed paper says
       ``C_k/T_k`` here, an evident i/k subscript typo (see DESIGN.md §4.3);
       ``literal_case2=True`` reproduces the printed text.
    3. ``u_i > λ`` and ``λ < δ_i``:  ``u_i + (C_i - λ D_i)/D_k``
       — heavy task: its carry-in can exceed the busy threshold by the
       un-amortized remainder ``C_i - λ D_i``.
    """
    u_i = task_i.time_utilization
    if u_i <= lam:
        alt = u_i * (1 - exact_div(task_i.deadline, task_k.deadline)) + exact_div(
            task_i.wcet, task_k.deadline
        )
        return u_i if u_i >= alt else alt
    delta_i = task_i.density
    if lam >= delta_i:
        if literal_case2:
            return task_k.time_utilization
        return u_i
    return u_i + exact_div(task_i.wcet - lam * task_i.deadline, task_k.deadline)


def lambda_candidate_values(task: Task) -> List[Real]:
    """The λ values one task contributes to Theorem 3's candidate pool:
    its utilization ``C/T``, plus its density ``C/D`` when ``D > T``
    (the discontinuities of ``β^λ``).  Cache-aware entry point: the
    incremental analyzer maintains these per resident task and rebuilds
    per-``k`` candidate lists without touching the other tasks."""
    values = [task.time_utilization]
    if task.deadline > task.period:
        values.append(task.density)
    return values


def gn2_lambda_candidates_from_values(
    pool_values: List[Real], lam_min: Real
) -> List[Real]:
    """Sorted, deduplicated candidates ``>= lam_min`` from a pooled list of
    :func:`lambda_candidate_values` contributions (``lam_min`` itself is
    always included — Theorem 3's minimum point ``λ = C_k/T_k``)."""
    cands = {lam_min}
    for v in pool_values:
        if v >= lam_min:
            cands.add(v)
    return sorted(cands)


def gn2_lambda_candidates(taskset: TaskSet, task_k: Task) -> List[Real]:
    """Candidate λ values for Theorem 3's existential search.

    §5: only the minimum point ``λ = C_k/T_k`` and the discontinuities of
    ``β^λ_k`` need be considered: ``λ = C_i/T_i`` for all ``i`` and
    ``λ = C_i/D_i`` when ``D_i > T_i``.  Values below ``C_k/T_k`` are
    invalid (Lemma 5/6 need ``λ >= C_k/T_k``); extra candidates would be
    harmless (the theorem is existential) but are unnecessary.

    Candidates are returned sorted and deduplicated.  With exact-rational
    tasks, deduplication is exact.
    """
    pool: List[Real] = []
    for t in taskset:
        pool.extend(lambda_candidate_values(t))
    return gn2_lambda_candidates_from_values(pool, task_k.time_utilization)
