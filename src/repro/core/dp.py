"""DP — Theorem 1: the Danne & Platzner bound with integer-area correction.

Any periodic taskset Γ is feasibly scheduled by EDF-FkF (hence also by
EDF-NF) on a device ``H`` with ``A(H) >= Amax`` if for every task ``tau_k``::

    US(Γ) <= (A(H) - Amax + 1) * (1 - UT(tau_k)) + US(tau_k)

Interpretation: while a job of ``tau_k`` waits, EDF-FkF keeps at least
``A(H) - Amax + 1`` columns busy (Lemma 1), so the aggregate system
utilization the *other* tasks can sustain is bounded; the ``US(tau_k)``
term credits the task's own demand.

Danne & Platzner's original LCTES'06 bound assumed real-valued areas,
yielding the weaker ``(A(H) - Amax)`` coefficient; select it with
``AreaModel.REAL`` (ablation `ablation-alpha`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.interfaces import (
    PerTaskVerdict,
    SchedulerKind,
    TestResult,
    necessary_conditions,
)
from repro.fpga.device import Fpga
from repro.model.task import TaskSet


class AreaModel(enum.Enum):
    """How the guaranteed-busy bound treats task areas (paper §3)."""

    #: Integer column counts: ``Abnd = A(H) - Amax + 1`` (the paper's Lemma 1).
    INTEGER = "integer"
    #: Real-valued areas: ``Abnd = A(H) - Amax`` (Danne & Platzner original).
    REAL = "real"


@dataclass(frozen=True)
class DpTest:
    """Configurable DP test instance (the default is the paper's Theorem 1)."""

    area_model: AreaModel = AreaModel.INTEGER

    schedulers = frozenset({SchedulerKind.EDF_FKF, SchedulerKind.EDF_NF})

    @property
    def name(self) -> str:
        return "DP" if self.area_model is AreaModel.INTEGER else "DP-real"

    def __call__(self, taskset: TaskSet, fpga: Fpga) -> TestResult:
        nec = necessary_conditions(taskset, fpga)
        if not nec.accepted:
            return TestResult(
                self.name, False, self.schedulers, nec.per_task, nec.reason
            )
        area = fpga.capacity
        amax = taskset.max_area
        if self.area_model is AreaModel.INTEGER:
            abnd = area - amax + 1
        else:
            abnd = area - amax
        us_total = taskset.system_utilization
        verdicts = []
        accepted = True
        for t in taskset:
            rhs = abnd * (1 - t.time_utilization) + t.system_utilization
            ok = us_total <= rhs
            accepted &= ok
            verdicts.append(
                PerTaskVerdict(
                    t.name,
                    ok,
                    us_total,
                    rhs,
                    f"US(Γ) <= (A(H)-Amax{'+1' if self.area_model is AreaModel.INTEGER else ''})"
                    f"(1-UT(τk)) + US(τk)",
                )
            )
        return TestResult(self.name, accepted, self.schedulers, tuple(verdicts))


#: The paper's Theorem 1 (integer areas).
dp_test = DpTest()

#: Danne & Platzner's original real-area bound (baseline / ablation).
dp_test_real_areas = DpTest(AreaModel.REAL)
