"""DP — Theorem 1: the Danne & Platzner bound with integer-area correction.

Any periodic taskset Γ is feasibly scheduled by EDF-FkF (hence also by
EDF-NF) on a device ``H`` with ``A(H) >= Amax`` if for every task ``tau_k``::

    US(Γ) <= (A(H) - Amax + 1) * (1 - UT(tau_k)) + US(tau_k)

Interpretation: while a job of ``tau_k`` waits, EDF-FkF keeps at least
``A(H) - Amax + 1`` columns busy (Lemma 1), so the aggregate system
utilization the *other* tasks can sustain is bounded; the ``US(tau_k)``
term credits the task's own demand.

Danne & Platzner's original LCTES'06 bound assumed real-valued areas,
yielding the weaker ``(A(H) - Amax)`` coefficient; select it with
``AreaModel.REAL`` (ablation `ablation-alpha`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.interfaces import (
    PerTaskVerdict,
    SchedulerKind,
    TestResult,
    necessary_conditions,
)
from repro.fpga.device import Fpga
from repro.model.task import TaskSet


class AreaModel(enum.Enum):
    """How the guaranteed-busy bound treats task areas (paper §3)."""

    #: Integer column counts: ``Abnd = A(H) - Amax + 1`` (the paper's Lemma 1).
    INTEGER = "integer"
    #: Real-valued areas: ``Abnd = A(H) - Amax`` (Danne & Platzner original).
    REAL = "real"


@dataclass(frozen=True)
class DpTest:
    """Configurable DP test instance (the default is the paper's Theorem 1)."""

    area_model: AreaModel = AreaModel.INTEGER

    schedulers = frozenset({SchedulerKind.EDF_FKF, SchedulerKind.EDF_NF})

    @property
    def name(self) -> str:
        return "DP" if self.area_model is AreaModel.INTEGER else "DP-real"

    @property
    def detail(self) -> str:
        """The bound comparison recorded on every per-task verdict."""
        return (
            f"US(Γ) <= (A(H)-Amax{'+1' if self.area_model is AreaModel.INTEGER else ''})"
            f"(1-UT(τk)) + US(τk)"
        )

    # -- cache-aware entry points (repro.incremental) -------------------------

    def busy_bound(self, capacity, amax):
        """``Abnd``: the guaranteed-busy area for a cached ``Amax``."""
        if self.area_model is AreaModel.INTEGER:
            return capacity - amax + 1
        return capacity - amax

    def task_verdict(self, task, abnd, us_total, *, ut=None, us=None) -> PerTaskVerdict:
        """One task's Theorem 1 check from precomputed aggregates.

        ``ut``/``us`` allow a caller with cached per-task utilizations to
        skip the divisions; the arithmetic is identical either way.
        """
        if ut is None:
            ut = task.time_utilization
        if us is None:
            us = task.system_utilization
        rhs = abnd * (1 - ut) + us
        return PerTaskVerdict(task.name, us_total <= rhs, us_total, rhs, self.detail)

    def __call__(self, taskset: TaskSet, fpga: Fpga) -> TestResult:
        nec = necessary_conditions(taskset, fpga)
        if not nec.accepted:
            return TestResult(
                self.name, False, self.schedulers, nec.per_task, nec.reason
            )
        abnd = self.busy_bound(fpga.capacity, taskset.max_area)
        us_total = taskset.system_utilization
        verdicts = []
        accepted = True
        for t in taskset:
            v = self.task_verdict(t, abnd, us_total)
            accepted &= v.passed
            verdicts.append(v)
        return TestResult(self.name, accepted, self.schedulers, tuple(verdicts))


#: The paper's Theorem 1 (integer areas).
dp_test = DpTest()

#: Danne & Platzner's original real-area bound (baseline / ablation).
dp_test_real_areas = DpTest(AreaModel.REAL)
