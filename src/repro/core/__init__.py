"""The paper's schedulability tests for EDF on 1D PRTR FPGAs.

* :func:`dp_test` — Theorem 1 (DP): Danne & Platzner's bound corrected for
  integer task areas; valid for EDF-FkF and EDF-NF.
* :func:`gn1_test` — Theorem 2 (GN1): BCL-style interference analysis with
  the interval-α-work-conserving bound; valid for EDF-NF only.
* :func:`gn2_test` — Theorem 3 (GN2): Baker-style busy-interval (λ) analysis
  with the global-α-work-conserving bound; valid for EDF-FkF and EDF-NF.
* :func:`composite_test` / :func:`paper_portfolio` — "apply the bounds
  together; reject only if all fail" (§6).

All tests are *sufficient* conditions: acceptance guarantees
schedulability; rejection is inconclusive.
"""

from repro.core.interfaces import (
    SchedulerKind,
    PerTaskVerdict,
    TestResult,
    SchedulabilityTest,
    IncrementalAnalyzer,
    empty_taskset_result,
    necessary_conditions,
)
from repro.core.alpha import (
    global_alpha_fkf,
    global_alpha_fkf_real_areas,
    interval_alpha_nf,
)
from repro.core.workload import (
    max_complete_jobs,
    bcl_workload_bound,
    gn1_beta,
    gn2_beta,
    gn2_lambda_candidates,
    gn2_lambda_candidates_from_values,
    lambda_candidate_values,
)
from repro.core.dp import AreaModel, dp_test, DpTest
from repro.core.gn1 import Gn1Variant, gn1_test, Gn1Test
from repro.core.gn2 import gn2_test, Gn2Test
from repro.core.composite import CompositeTest, composite_test, paper_portfolio
from repro.core.explain import explain, explain_dp, explain_gn1, explain_gn2
from repro.core.sensitivity import (
    DeltaCertifier,
    acceptance_margin,
    critical_scaling,
    minimum_width,
)

__all__ = [
    "SchedulerKind",
    "PerTaskVerdict",
    "TestResult",
    "SchedulabilityTest",
    "IncrementalAnalyzer",
    "empty_taskset_result",
    "necessary_conditions",
    "global_alpha_fkf",
    "global_alpha_fkf_real_areas",
    "interval_alpha_nf",
    "max_complete_jobs",
    "bcl_workload_bound",
    "gn1_beta",
    "gn2_beta",
    "gn2_lambda_candidates",
    "gn2_lambda_candidates_from_values",
    "lambda_candidate_values",
    "AreaModel",
    "dp_test",
    "DpTest",
    "Gn1Variant",
    "gn1_test",
    "Gn1Test",
    "gn2_test",
    "Gn2Test",
    "CompositeTest",
    "composite_test",
    "paper_portfolio",
    "explain",
    "explain_dp",
    "explain_gn1",
    "explain_gn2",
    "DeltaCertifier",
    "acceptance_margin",
    "critical_scaling",
    "minimum_width",
]
