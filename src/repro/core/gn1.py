"""GN1 — Theorem 2: BCL-style interference bound for EDF-NF.

A taskset Γ is schedulable by EDF-NF if for every ``tau_k``::

    sum_{i != k}  A_i * min(β_i, 1 - C_k/D_k)  <  Bound_k * (1 - C_k/D_k)

where ``β_i`` bounds the time work ``tau_i`` can contribute to the window
``[r_k, d_k)`` (Lemma 4 / :func:`repro.core.workload.gn1_beta`) and
``Bound_k`` comes from the interval-α-work-conserving property of EDF-NF
(Lemma 2): while ``J_k`` waits, at least ``A(H) - A_k + 1`` columns are
busy, so interference "area-time" is delivered at that minimum rate.

The derivation chain (Lemma 3): if a job of ``tau_k`` misses its deadline,
total interference exceeds the slack ``D_k - C_k``; the area-weighted,
slack-truncated workload of the other tasks must then exceed
``(A(H) - A_k + 1)(D_k - C_k)`` — so if the inequality above holds for all
tasks, no deadline can be missed.

Printed-formula discrepancies (DESIGN.md §4.1–4.2) are selectable via
:class:`Gn1Variant`; the default reproduces the paper's worked examples.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from numbers import Real
from typing import List, Tuple

from repro.core.interfaces import (
    PerTaskVerdict,
    SchedulerKind,
    TestResult,
    necessary_conditions,
)
from repro.core.workload import gn1_beta
from repro.fpga.device import Fpga
from repro.model.task import Task, TaskSet
from repro.util.mathutil import exact_div


class Gn1Variant(enum.Enum):
    """Resolutions of the Theorem 2 printing ambiguities.

    ========================  ===========  ==================
    variant                   β denominator  bound coefficient
    ========================  ===========  ==================
    PAPER (worked examples)   ``D_i``      ``A(H) - A_k + 1``
    THEOREM_LITERAL           ``D_i``      ``A(H) - A_k``
    BCL_WINDOW                ``D_k``      ``A(H) - A_k + 1``
    ========================  ===========  ==================
    """

    PAPER = "paper"
    THEOREM_LITERAL = "theorem-literal"
    BCL_WINDOW = "bcl-window"


#: Per-task verdict detail recorded by :meth:`Gn1Test.__call__` (shared
#: with the incremental analyzer so replayed verdicts compare equal).
GN1_DETAIL = "Σ_{i≠k} A_i·min(β_i, 1-C_k/D_k) < Bound_k·(1-C_k/D_k)"


@dataclass(frozen=True)
class Gn1Test:
    """Configurable GN1 instance; the default follows the worked examples."""

    variant: Gn1Variant = Gn1Variant.PAPER

    #: GN1 relies on Lemma 2 (interval-α for EDF-NF); it does NOT certify
    #: EDF-FkF (paper §6: "GN1 is not applicable to EDF-FkF").
    schedulers = frozenset({SchedulerKind.EDF_NF})

    @property
    def name(self) -> str:
        return "GN1" if self.variant is Gn1Variant.PAPER else f"GN1[{self.variant.value}]"

    def _bound_coefficient(self, area: Real, a_k: Real) -> Real:
        if self.variant is Gn1Variant.THEOREM_LITERAL:
            return area - a_k
        return area - a_k + 1

    # -- cache-aware entry points (repro.incremental) -------------------------

    def slack_rate(self, task_k: Task) -> Real:
        """``1 - C_k/D_k`` — the per-task interference budget rate."""
        return 1 - exact_div(task_k.wcet, task_k.deadline)

    def pair_term(
        self, task_i: Task, task_k: Task, slack_rate: Real | None = None
    ) -> Tuple[Real, Real]:
        """``(β_i, A_i·min(β_i, 1-C_k/D_k))`` for one interfering pair.

        The second element is exactly one addend of Theorem 2's LHS, so a
        caller caching these terms per (i, k) pair and re-summing them in
        task order reproduces :meth:`check_task`'s ``lhs`` bit-for-bit.
        """
        if slack_rate is None:
            slack_rate = self.slack_rate(task_k)
        beta = gn1_beta(
            task_i, task_k, window_denominator=self.variant is Gn1Variant.BCL_WINDOW
        )
        contrib = beta if beta < slack_rate else slack_rate
        return beta, task_i.area * contrib

    def task_rhs(self, task_k: Task, capacity: Real, slack_rate: Real | None = None) -> Real:
        """Theorem 2's RHS ``Bound_k · (1 - C_k/D_k)`` for one task."""
        if slack_rate is None:
            slack_rate = self.slack_rate(task_k)
        return self._bound_coefficient(capacity, task_k.area) * slack_rate

    def check_task(
        self, taskset: TaskSet, fpga: Fpga, k: int
    ) -> Tuple[bool, Real, Real, List[Tuple[str, Real]]]:
        """Evaluate Theorem 2's inequality for task index ``k``.

        Returns ``(passed, lhs, rhs, [(name, β_i), ...])`` so callers (and
        the Fig. 2 illustration in the docs) can inspect the interference
        decomposition.
        """
        task_k = taskset[k]
        slack_rate = self.slack_rate(task_k)
        lhs: Real = 0
        betas: List[Tuple[str, Real]] = []
        for i, task_i in enumerate(taskset):
            if i == k:
                continue
            beta, term = self.pair_term(task_i, task_k, slack_rate)
            betas.append((task_i.name, beta))
            lhs += term
        rhs = self.task_rhs(task_k, fpga.capacity, slack_rate)
        return lhs < rhs, lhs, rhs, betas

    def __call__(self, taskset: TaskSet, fpga: Fpga) -> TestResult:
        nec = necessary_conditions(taskset, fpga)
        if not nec.accepted:
            return TestResult(self.name, False, self.schedulers, nec.per_task, nec.reason)
        verdicts = []
        accepted = True
        for k in range(len(taskset)):
            ok, lhs, rhs, _ = self.check_task(taskset, fpga, k)
            accepted &= ok
            verdicts.append(PerTaskVerdict(taskset[k].name, ok, lhs, rhs, GN1_DETAIL))
        return TestResult(self.name, accepted, self.schedulers, tuple(verdicts))

    # -- introspection (Fig. 2 of the paper) ---------------------------------

    def interference_report(self, taskset: TaskSet, fpga: Fpga, k: int) -> str:
        """Human-readable Lemma 3 decomposition for task ``k`` —
        the textual analogue of the paper's Fig. 2."""
        task_k = taskset[k]
        ok, lhs, rhs, betas = self.check_task(taskset, fpga, k)
        slack = task_k.deadline - task_k.wcet
        lines = [
            f"Lemma 3 interference budget for {task_k.name}:",
            f"  slack D_k - C_k = {slack}",
            f"  guaranteed busy area while J_k waits = "
            f"{self._bound_coefficient(fpga.capacity, task_k.area)}",
        ]
        for name, beta in betas:
            lines.append(f"  β[{name}] = {beta}")
        lines.append(f"  LHS = {lhs} {'<' if ok else '>='} RHS = {rhs} -> "
                     f"{'pass' if ok else 'fail'}")
        return "\n".join(lines)


#: Default GN1 (paper worked-example variant).
gn1_test = Gn1Test()
