"""Common result types and the schedulability-test protocol.

Every analysis in :mod:`repro.core` (and the baselines in :mod:`repro.mp`)
returns a :class:`TestResult`: the overall verdict plus a per-task record
of the bound comparison that decided it, so experiments and debugging can
see *why* a taskset was rejected, mirroring the worked examples in the
paper's §6.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from numbers import Real
from typing import Mapping, Protocol, Sequence, Tuple, runtime_checkable

from repro.fpga.device import Fpga
from repro.model.task import Task, TaskSet


class SchedulerKind(enum.Enum):
    """Which global EDF variant a test's guarantee applies to (paper §1).

    EDF-NF dominates EDF-FkF (a set schedulable by FkF is schedulable by
    NF), so a guarantee for EDF-FkF transfers to EDF-NF but not vice
    versa: GN1 certifies only EDF-NF, while DP and GN2 certify both.
    """

    EDF_FKF = "EDF-FkF"
    EDF_NF = "EDF-NF"


@dataclass(frozen=True)
class PerTaskVerdict:
    """Outcome of one task's bound check inside a test.

    ``lhs``/``rhs`` are the two sides of the decisive comparison (their
    meaning is test-specific and described by ``detail``).
    """

    task: str
    passed: bool
    lhs: Real | None = None
    rhs: Real | None = None
    detail: str = ""


@dataclass(frozen=True)
class TestResult:
    """Overall verdict of a schedulability test on one taskset."""

    test_name: str
    accepted: bool
    #: Scheduler variants the acceptance guarantee covers.
    schedulers: frozenset[SchedulerKind] = frozenset(SchedulerKind)
    per_task: Tuple[PerTaskVerdict, ...] = ()
    #: Free-form reason, set when rejection happened before per-task checks
    #: (e.g. a necessary condition failed).
    reason: str = ""

    def __bool__(self) -> bool:
        return self.accepted

    @property
    def failing_tasks(self) -> Tuple[str, ...]:
        return tuple(v.task for v in self.per_task if not v.passed)

    def covers(self, scheduler: SchedulerKind) -> bool:
        """True when this result's guarantee applies to ``scheduler``."""
        return scheduler in self.schedulers


@runtime_checkable
class SchedulabilityTest(Protocol):
    """A callable sufficient schedulability test for FPGA EDF scheduling."""

    name: str
    schedulers: frozenset[SchedulerKind]

    def __call__(self, taskset: TaskSet, fpga: Fpga) -> TestResult: ...


@runtime_checkable
class IncrementalAnalyzer(Protocol):
    """A stateful analyzer tracking one test over a churning taskset.

    Implementations (see :mod:`repro.incremental`) cache the test's
    expensive aggregates and update them in ``O(changed task · N)`` per
    churn operation, while :meth:`result` stays **bit-identical** to
    running ``test(TaskSet(tasks), fpga)`` from scratch on the current
    resident tasks (the churn-parity suite asserts this at every step).
    """

    test: SchedulabilityTest

    def refresh(self, tasks: Sequence[Task]) -> None:
        """Synchronize caches with the current resident task list."""
        ...

    def result(self) -> TestResult:
        """The test's verdict on the current resident taskset."""
        ...


def empty_taskset_result(test_name: str, schedulers: frozenset[SchedulerKind]) -> TestResult:
    """The defined verdict for an *empty* resident set: vacuous acceptance.

    :class:`~repro.model.task.TaskSet` itself rejects empty sets (the
    scalar tests are never called on one), but an admission state drained
    by departures legitimately holds zero tasks — an empty device
    trivially meets every deadline, so incremental analyzers answer with
    this constant instead of erroring.
    """
    return TestResult(
        test_name=test_name,
        accepted=True,
        schedulers=schedulers,
        reason="empty taskset: vacuously schedulable",
    )


def necessary_conditions(taskset: TaskSet, fpga: Fpga) -> TestResult:
    """Cheap *necessary* feasibility conditions (not from the paper's
    theorems, but implied by the model in §2):

    * every task fits on the device: ``A_k <= capacity``;
    * every task can meet its own deadline: ``C_k <= D_k``;
    * no task needs more than a full device timeline: ``C_k <= T_k``
      (otherwise backlog grows without bound);
    * long-run demand fits: ``US(Gamma) <= capacity``.

    A taskset failing any of these is unschedulable by *any* scheduler, so
    all tests short-circuit to rejection on them.
    """
    violations: list[PerTaskVerdict] = []
    cap = fpga.capacity
    for t in taskset:
        if t.area > cap:
            violations.append(
                PerTaskVerdict(t.name, False, t.area, cap, "area exceeds device capacity")
            )
        if t.wcet > t.deadline:
            violations.append(
                PerTaskVerdict(t.name, False, t.wcet, t.deadline, "C > D: infeasible alone")
            )
        if t.wcet > t.period:
            violations.append(
                PerTaskVerdict(t.name, False, t.wcet, t.period, "C > T: unbounded backlog")
            )
    us = taskset.system_utilization
    if us > cap:
        violations.append(
            PerTaskVerdict("*", False, us, cap, "system utilization exceeds capacity")
        )
    return TestResult(
        test_name="necessary",
        accepted=not violations,
        per_task=tuple(violations),
        reason="" if not violations else "necessary feasibility conditions violated",
    )
