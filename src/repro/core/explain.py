"""Human-readable derivations of the bound tests — the §6 bullets as code.

For any taskset, :func:`explain` reproduces the style of the paper's
worked examples: per-test, per-task, the exact quantities each inequality
compares and why the verdict follows.  Useful for debugging rejected
admission requests and for teaching the three bounds.
"""

from __future__ import annotations

from numbers import Real
from typing import List

from repro.core.dp import DpTest, dp_test
from repro.core.gn1 import Gn1Test, gn1_test
from repro.core.gn2 import Gn2Test, gn2_test
from repro.core.workload import gn2_beta, gn2_lambda_candidates
from repro.fpga.device import Fpga
from repro.model.task import TaskSet
from repro.util.mathutil import exact_div


def _fmt(x: Real) -> str:
    """Compact numeric formatting (Fractions as p/q, floats to 4 sig figs)."""
    if isinstance(x, float):
        return f"{x:.4g}"
    return str(x)


def explain_dp(taskset: TaskSet, fpga: Fpga, test: DpTest = dp_test) -> str:
    """Theorem 1 walk-through (the paper's Table 3/DP bullet)."""
    lines = [f"{test.name} (Theorem 1) on A(H) = {fpga.capacity}:"]
    us = taskset.system_utilization
    amax = taskset.max_area
    abnd = fpga.capacity - amax + (1 if test.name == "DP" else 0)
    lines.append(f"  US(Γ) = {_fmt(us)}; Amax = {_fmt(amax)}; "
                 f"guaranteed busy area = {_fmt(abnd)}")
    result = test(taskset, fpga)
    for v, task in zip(result.per_task, taskset):
        op = "<=" if v.passed else ">"
        lines.append(
            f"  k={task.name}: US(Γ) = {_fmt(v.lhs)} {op} "
            f"{_fmt(v.rhs)} = Abnd·(1-UT(τk)) + US(τk)"
            f"  -> {'ok' if v.passed else 'FAIL'}"
        )
    lines.append(f"  verdict: {'ACCEPT' if result.accepted else 'reject'}")
    return "\n".join(lines)


def explain_gn1(taskset: TaskSet, fpga: Fpga, test: Gn1Test = gn1_test) -> str:
    """Theorem 2 walk-through with the β decomposition (paper Fig. 2)."""
    lines = [f"{test.name} (Theorem 2) on A(H) = {fpga.capacity}:"]
    for k, task_k in enumerate(taskset):
        ok, lhs, rhs, betas = test.check_task(taskset, fpga, k)
        slack_rate = 1 - exact_div(task_k.wcet, task_k.deadline)
        lines.append(
            f"  k={task_k.name}: slack rate 1-C/D = {_fmt(slack_rate)}, "
            f"betas: " + ", ".join(f"β[{n}]={_fmt(b)}" for n, b in betas)
        )
        op = "<" if ok else ">="
        lines.append(
            f"    Σ A_i·min(β_i, 1-Ck/Dk) = {_fmt(lhs)} {op} {_fmt(rhs)}"
            f"  -> {'ok' if ok else 'FAIL'}"
        )
    accepted = test(taskset, fpga).accepted
    lines.append(f"  verdict: {'ACCEPT' if accepted else 'reject'}")
    return "\n".join(lines)


def explain_gn2(taskset: TaskSet, fpga: Fpga, test: Gn2Test = gn2_test) -> str:
    """Theorem 3 walk-through: λ candidates, β values, both conditions."""
    area = fpga.capacity
    amax, amin = taskset.max_area, taskset.min_area
    abnd = area - amax + 1
    lines = [
        f"{test.name} (Theorem 3) on A(H) = {area}: "
        f"Abnd = {_fmt(abnd)}, Amin = {_fmt(amin)}"
    ]
    for k, task_k in enumerate(taskset):
        lines.append(f"  k={task_k.name} (λ >= Ck/Tk = {_fmt(task_k.time_utilization)}):")
        witness = test.find_witness(taskset, fpga, k)
        for lam in gn2_lambda_candidates(taskset, task_k):
            t_over_d = exact_div(task_k.period, task_k.deadline)
            lam_k = lam * (t_over_d if t_over_d > 1 else 1)
            one_minus = 1 - lam_k
            betas = [gn2_beta(ti, task_k, lam, literal_case2=test.literal_case2)
                     for ti in taskset]
            lhs1 = sum(
                ti.area * (b if b < one_minus else one_minus)
                for ti, b in zip(taskset, betas)
            )
            lhs2 = sum(
                ti.area * (b if b < 1 else 1) for ti, b in zip(taskset, betas)
            )
            rhs1 = abnd * one_minus
            rhs2 = (abnd - amin) * one_minus + amin
            c1 = lhs1 < rhs1
            c2 = (lhs2 < rhs2) or (not test.strict_condition2 and lhs2 == rhs2)
            beta_str = ", ".join(
                f"β[{ti.name}]={_fmt(b)}" for ti, b in zip(taskset, betas)
            )
            lines.append(f"    λ={_fmt(lam)}: {beta_str}")
            lines.append(
                f"      cond1: {_fmt(lhs1)} {'<' if c1 else '>='} {_fmt(rhs1)}"
                f" {'ok' if c1 else 'fail'};  "
                f"cond2: {_fmt(lhs2)} {'<' if c2 else '>='} {_fmt(rhs2)}"
                f" {'ok' if c2 else 'fail'}"
            )
            if witness is not None and witness.lam == lam:
                lines.append(f"      -> certified by condition {witness.condition}")
                break
        if witness is None:
            lines.append("    -> no λ candidate works: FAIL")
    accepted = test(taskset, fpga).accepted
    lines.append(f"  verdict: {'ACCEPT' if accepted else 'reject'}")
    return "\n".join(lines)


def explain(taskset: TaskSet, fpga: Fpga) -> str:
    """All three derivations, §6-style, for one taskset."""
    parts: List[str] = [
        f"taskset: {taskset}",
        f"UT(Γ) = {_fmt(taskset.time_utilization)}, "
        f"US(Γ) = {_fmt(taskset.system_utilization)}",
        "",
        explain_dp(taskset, fpga),
        "",
        explain_gn1(taskset, fpga),
        "",
        explain_gn2(taskset, fpga),
    ]
    return "\n".join(parts)
