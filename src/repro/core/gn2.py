"""GN2 — Theorem 3: Baker-style busy-interval analysis for EDF-FkF.

A taskset Γ is schedulable by EDF-FkF (hence also EDF-NF) if for every
task ``tau_k`` there EXISTS ``λ >= C_k/T_k`` satisfying, with
``λ_k = λ * max(1, T_k/D_k)``, ``Abnd = A(H) - Amax + 1`` and
``β^λ_k(i)`` from Lemma 7, at least one of::

    1)  Σ_i A_i · min(β^λ_k(i), 1 - λ_k)  <  Abnd · (1 - λ_k)
    2)  Σ_i A_i · min(β^λ_k(i), 1)        <  (Abnd - Amin)(1 - λ_k) + Amin

The derivation extends the problem window downward to a maximal
``τλ_k``-busy interval (Definition 5, Lemmas 5–6), which tightens the
carry-in bound relative to GN1's fixed window — at the cost of using the
weaker global-α occupancy ``Abnd`` (Lemma 1) instead of GN1's per-task
``A(H) - A_k + 1``, since the extended window is no longer
interval-α-work-conserving.  This is exactly the DP/GN1/GN2
incomparability the paper demonstrates with Tables 1–3.

Only finitely many λ need be checked (the minimum point and the
discontinuities of β — see :func:`repro.core.workload.gn2_lambda_candidates`),
giving the O(N³) complexity the paper states.

Strictness note: condition 2 is printed with ``<=``, but the paper's own
accept/reject matrix (Table 1 is *rejected* by GN2) requires strict ``<``
at the exact knife-edge that Table 1 hits; default is strict
(DESIGN.md §4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from numbers import Real
from typing import List, NamedTuple, Optional

from repro.core.interfaces import (
    PerTaskVerdict,
    SchedulerKind,
    TestResult,
    necessary_conditions,
)
from repro.core.workload import gn2_beta, gn2_lambda_candidates
from repro.fpga.device import Fpga
from repro.model.task import TaskSet
from repro.util.mathutil import exact_div


class LambdaWitness(NamedTuple):
    """The λ value and condition number that certified a task."""

    lam: Real
    condition: int  # 1 or 2


def witness_detail(witness: Optional[LambdaWitness]) -> str:
    """The per-task verdict detail :meth:`Gn2Test.__call__` records (shared
    with the incremental analyzer so replayed verdicts compare equal)."""
    if witness is None:
        return "no λ candidate satisfies condition 1 or 2"
    return f"certified by λ={witness.lam} via condition {witness.condition}"


@dataclass(frozen=True)
class Gn2Test:
    """Configurable GN2 instance (Theorem 3)."""

    #: Use strict ``<`` for condition 2 (matches the paper's Table 1 claim);
    #: ``False`` restores the printed ``<=``.
    strict_condition2: bool = True
    #: Reproduce the printed (typo) ``C_k/T_k`` in Lemma 7's case 2 instead
    #: of the corrected ``C_i/T_i``.
    literal_case2: bool = False

    schedulers = frozenset({SchedulerKind.EDF_FKF, SchedulerKind.EDF_NF})

    @property
    def name(self) -> str:
        suffix = "" if (self.strict_condition2 and not self.literal_case2) else "*"
        return f"GN2{suffix}"

    # -- per-task search ------------------------------------------------------

    @staticmethod
    def lam_scale(task_k) -> Real:
        """``max(1, T_k/D_k)`` — the λ → λ_k conversion factor."""
        t_over_d = exact_div(task_k.period, task_k.deadline)
        return t_over_d if t_over_d > 1 else 1

    @staticmethod
    def lam_slack(lam: Real, lam_scale: Real) -> Real:
        """``1 - λ_k`` with ``λ_k = λ · max(1, T_k/D_k)``."""
        lam_k = lam * lam_scale
        return 1 - lam_k

    @staticmethod
    def pair_terms(task_i, beta: Real, one_minus: Real) -> tuple:
        """The two clamped addends of Theorem 3's conditions for one
        interfering task: ``A_i·min(β, 1-λ_k)`` and ``A_i·min(β, 1)``.

        Shared by :meth:`find_witness` (computed fresh per candidate) and
        the incremental analyzer (cached per ``(k, λ)`` row) — the same
        product in the same form, so replayed sums are bit-equal.
        """
        area = task_i.area
        return (
            area * (beta if beta < one_minus else one_minus),
            area * (beta if beta < 1 else 1),
        )

    def check_lambda(
        self, one_minus: Real, abnd: Real, amin: Real, terms
    ) -> Optional[int]:
        """Evaluate Theorem 3's two conditions for one λ candidate.

        ``terms`` supplies the :meth:`pair_terms` pairs in task order; the
        left-to-right accumulation is identical for the scalar and the
        incremental caller, so verdicts are bit-equal.  Returns the
        certifying condition number (1 or 2) or ``None``.
        """
        lhs1: Real = 0
        lhs2: Real = 0
        for term1, term2 in terms:
            lhs1 += term1
            lhs2 += term2
        if lhs1 < abnd * one_minus:
            return 1
        rhs2 = (abnd - amin) * one_minus + amin
        if (lhs2 < rhs2) or (not self.strict_condition2 and lhs2 == rhs2):
            return 2
        return None

    def find_witness(
        self, taskset: TaskSet, fpga: Fpga, k: int
    ) -> Optional[LambdaWitness]:
        """Search the λ candidates for one certifying task ``k``.

        Returns the first (smallest-λ) witness, or ``None`` if every
        candidate fails both conditions.
        """
        task_k = taskset[k]
        abnd = fpga.capacity - taskset.max_area + 1
        amin = taskset.min_area
        lam_scale = self.lam_scale(task_k)
        literal = self.literal_case2
        for lam in gn2_lambda_candidates(taskset, task_k):
            one_minus = self.lam_slack(lam, lam_scale)
            terms = [
                self.pair_terms(
                    task_i,
                    gn2_beta(task_i, task_k, lam, literal_case2=literal),
                    one_minus,
                )
                for task_i in taskset
            ]
            condition = self.check_lambda(one_minus, abnd, amin, terms)
            if condition is not None:
                return LambdaWitness(lam, condition)
        return None

    def __call__(self, taskset: TaskSet, fpga: Fpga) -> TestResult:
        nec = necessary_conditions(taskset, fpga)
        if not nec.accepted:
            return TestResult(self.name, False, self.schedulers, nec.per_task, nec.reason)
        verdicts: List[PerTaskVerdict] = []
        accepted = True
        for k, task_k in enumerate(taskset):
            witness = self.find_witness(taskset, fpga, k)
            ok = witness is not None
            accepted &= ok
            verdicts.append(PerTaskVerdict(task_k.name, ok, detail=witness_detail(witness)))
        return TestResult(self.name, accepted, self.schedulers, tuple(verdicts))


#: Default GN2 (strict condition 2, corrected Lemma 7 case 2).
gn2_test = Gn2Test()

#: Literal-text GN2 for ablation: printed `<=` and printed case-2 value.
gn2_test_literal = Gn2Test(strict_condition2=False, literal_case2=True)
