"""Sensitivity analysis on top of the schedulability bounds.

Two questions a designer asks once a bound accepts (or rejects) a
workload:

* :func:`critical_scaling` — by how much can execution times grow before
  the test starts rejecting (acceptance margin), or how much must they
  shrink for it to accept (infeasibility gap)?  This is the classic
  critical-scaling-factor metric.
* :func:`minimum_width` — the narrowest device the test certifies
  (FPGA dimensioning; see ``examples/fpga_dimensioning.py``).

Both rely on monotonicity properties that the test-suite verifies for
DP/GN1/GN2: scaling all WCETs down, or widening the device, never turns
an acceptance into a rejection.
"""

from __future__ import annotations

from fractions import Fraction
from numbers import Real
from typing import Callable, Optional

from repro.fpga.device import Fpga
from repro.model.task import TaskSet

#: Any accept/reject predicate over (taskset, fpga).
Test = Callable[[TaskSet, Fpga], object]


def critical_scaling(
    taskset: TaskSet,
    fpga: Fpga,
    test: Test,
    precision: Real = Fraction(1, 1000),
    upper_limit: Real = 16,
) -> Optional[Real]:
    """Largest WCET scale factor ``s`` (within ``precision``) such that the
    scaled taskset is still accepted by ``test``.

    Returns ``None`` when even scaling toward zero is rejected (the test
    rejects on structural grounds, e.g. a task wider than the device).
    ``s >= 1`` means the workload has margin; ``s < 1`` quantifies how
    far it is from acceptance.  Exact-rational tasksets keep the search
    exact (the returned factor is a Fraction).
    """
    if precision <= 0:
        raise ValueError("precision must be > 0")
    if upper_limit <= 0:
        raise ValueError("upper_limit must be > 0")

    def accepted(factor: Real) -> bool:
        scaled = taskset.scaled(time_factor=factor)
        if any(t.wcet > t.period or t.wcet > t.deadline for t in scaled):
            return False  # scaling made the set structurally infeasible
        return bool(test(scaled, fpga))

    lo = Fraction(precision)  # smallest factor worth reporting
    if not accepted(lo):
        return None
    hi = Fraction(upper_limit)
    if accepted(hi):
        return hi
    # invariant: accepted(lo), not accepted(hi)
    while hi - lo > precision:
        mid = (lo + hi) / 2
        if accepted(mid):
            lo = mid
        else:
            hi = mid
    return lo


def minimum_width(
    taskset: TaskSet,
    fpga_max_width: int,
    test: Test,
) -> Optional[int]:
    """Smallest device width ``test`` accepts (binary search; monotone).

    Returns ``None`` if even ``fpga_max_width`` is rejected.
    """
    if fpga_max_width < 1:
        raise ValueError("fpga_max_width must be >= 1")
    lo = max(1, int(taskset.max_area))
    hi = fpga_max_width
    if lo > hi or not test(taskset, Fpga(width=hi)):
        return None
    while lo < hi:
        mid = (lo + hi) // 2
        if test(taskset, Fpga(width=mid)):
            hi = mid
        else:
            lo = mid + 1
    return lo


def acceptance_margin(
    taskset: TaskSet, fpga: Fpga, test: Test, precision: Real = Fraction(1, 1000)
) -> Optional[Real]:
    """``critical_scaling - 1``: positive = headroom, negative = deficit."""
    s = critical_scaling(taskset, fpga, test, precision)
    return None if s is None else s - 1
