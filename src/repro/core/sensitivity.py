"""Sensitivity analysis on top of the schedulability bounds.

Two questions a designer asks once a bound accepts (or rejects) a
workload:

* :func:`critical_scaling` — by how much can execution times grow before
  the test starts rejecting (acceptance margin), or how much must they
  shrink for it to accept (infeasibility gap)?  This is the classic
  critical-scaling-factor metric.
* :func:`minimum_width` — the narrowest device the test certifies
  (FPGA dimensioning; see ``examples/fpga_dimensioning.py``).

Both rely on monotonicity properties that the test-suite verifies for
DP/GN1/GN2: scaling all WCETs down, or widening the device, never turns
an acceptance into a rejection.
"""

from __future__ import annotations

from fractions import Fraction
from numbers import Real
from typing import Callable, Dict, Optional, Tuple

from repro.core.interfaces import SchedulerKind
from repro.fpga.device import Fpga
from repro.model.task import Task, TaskSet

#: Any accept/reject predicate over (taskset, fpga).
Test = Callable[[TaskSet, Fpga], object]


def critical_scaling(
    taskset: TaskSet,
    fpga: Fpga,
    test: Test,
    precision: Real = Fraction(1, 1000),
    upper_limit: Real = 16,
) -> Optional[Real]:
    """Largest WCET scale factor ``s`` (within ``precision``) such that the
    scaled taskset is still accepted by ``test``.

    Returns ``None`` when even scaling toward zero is rejected (the test
    rejects on structural grounds, e.g. a task wider than the device).
    ``s >= 1`` means the workload has margin; ``s < 1`` quantifies how
    far it is from acceptance.  Exact-rational tasksets keep the search
    exact (the returned factor is a Fraction).
    """
    if precision <= 0:
        raise ValueError("precision must be > 0")
    if upper_limit <= 0:
        raise ValueError("upper_limit must be > 0")

    def accepted(factor: Real) -> bool:
        scaled = taskset.scaled(time_factor=factor)
        if any(t.wcet > t.period or t.wcet > t.deadline for t in scaled):
            return False  # scaling made the set structurally infeasible
        return bool(test(scaled, fpga))

    lo = Fraction(precision)  # smallest factor worth reporting
    if not accepted(lo):
        return None
    hi = Fraction(upper_limit)
    if accepted(hi):
        return hi
    # invariant: accepted(lo), not accepted(hi)
    while hi - lo > precision:
        mid = (lo + hi) / 2
        if accepted(mid):
            lo = mid
        else:
            hi = mid
    return lo


def minimum_width(
    taskset: TaskSet,
    fpga_max_width: int,
    test: Test,
) -> Optional[int]:
    """Smallest device width ``test`` accepts (binary search; monotone).

    Returns ``None`` if even ``fpga_max_width`` is rejected.
    """
    if fpga_max_width < 1:
        raise ValueError("fpga_max_width must be >= 1")
    lo = max(1, int(taskset.max_area))
    hi = fpga_max_width
    if lo > hi or not test(taskset, Fpga(width=hi)):
        return None
    while lo < hi:
        mid = (lo + hi) // 2
        if test(taskset, Fpga(width=mid)):
            hi = mid
        else:
            lo = mid + 1
    return lo


def acceptance_margin(
    taskset: TaskSet, fpga: Fpga, test: Test, precision: Real = Fraction(1, 1000)
) -> Optional[Real]:
    """``critical_scaling - 1``: positive = headroom, negative = deficit."""
    s = critical_scaling(taskset, fpga, test, precision)
    return None if s is None else s - 1


class DeltaCertifier:
    """O(1) delta-certificates: "still portfolio-schedulable after this Δ?"

    An admission controller rarely needs a fresh verdict — most churn
    operations leave obvious slack.  The certifier caches the current
    exact portfolio verdict (from an
    :class:`~repro.incremental.state.AdmissionState`, whose verdicts are
    bit-identical to the scalar tests) plus DP's acceptance slack
    ``min_k (RHS_k - US(Γ))``, and answers each ``certify_*`` query in
    O(1) **only when monotonicity makes the answer provable**:

    * ``certify_remove`` — DP and GN1 acceptances are preserved under task
      removal (``US`` and every GN1 interference sum only shrink; the
      busy bounds only grow), so an accept *via DP or GN1* survives any
      departure.  GN2's bound moves both ways (``Amin`` may grow), so a
      GN2-only accept is never certified.
    * ``certify_add`` — a DP acceptance survives an arrival whose area
      keeps ``Amax`` (hence ``Abnd``) unchanged and whose system
      utilization fits inside the cached slack; the newcomer's own
      inequality and the necessary conditions are checked directly.
      Certified adds *consume* the cached slack, so a burst of arrivals
      self-limits and falls back to the exact test when margin runs out.
    * ``certify_update`` — remove + add composed, charging only the
      utilization **delta** against the slack.

    Every other case returns ``None`` = "don't know, rerun the exact
    test".  ``True``/``False`` are *certificates*: for int/Fraction
    parameters the reasoning is exact; with floats each comparison must
    additionally clear a relative guard band (``rel_eps``) that dominates
    the re-association error of the restructured sums, and knife-edge
    cases inside the band return ``None`` instead of guessing.

    The certifier is deliberately **not** in ``AdmissionState``'s verdict
    path (which stays bit-identical to the scalar tests); callers opt in,
    as ``examples/admission_control.py`` does, and should call
    :meth:`refresh` after every exact verdict.
    """

    def __init__(self, rel_eps: float = 1e-9):
        if rel_eps < 0:
            raise ValueError("rel_eps must be >= 0")
        self.rel_eps = rel_eps
        self.stats: Dict[str, int] = {"certified": 0, "unknown": 0}
        self._valid = False

    # -- cache maintenance -----------------------------------------------------

    def refresh(self, state, scheduler: SchedulerKind = SchedulerKind.EDF_NF) -> None:
        """Rebuild the cache from ``state``'s current *exact* verdict
        (``state`` is an :class:`~repro.incremental.state.AdmissionState`;
        O(N) on top of the verdict itself)."""
        result = state.portfolio_result(scheduler)
        via = result.reason.removeprefix("accepted by member ")
        if result.accepted and via.startswith("GN1"):
            member = "GN1"
        elif result.accepted and via.startswith("GN2"):
            member = "GN2"
        elif result.accepted:
            member = "DP"
        else:
            member = ""
        self.seed(state, result.accepted, member)

    def seed(self, state, accepted: bool, via: str) -> None:
        """Rebuild the cache from an externally established verdict.

        The batched admission pipeline (:mod:`repro.service`) learns the
        current resident set's portfolio verdict from a grouped vector
        kernel sweep; re-running the exact portfolio just to warm this
        cache would throw that amortization away.  ``seed`` accepts the
        verdict — ``accepted`` plus the first accepting member ``via`` in
        the composite's DP → GN1 → GN2 order (``""`` on rejection) — and
        rebuilds the O(N) arithmetic cache directly from ``state``'s
        resident tasks.  Soundness is the caller's contract: the verdict
        must be the true portfolio verdict of ``state``'s *current*
        resident set, on the same float64 terms the certificates assume.
        :meth:`refresh` is exactly ``seed`` fed from the exact
        incremental verdict.
        """
        if via not in ("", "DP", "GN1", "GN2"):
            raise ValueError(f"via must be '', 'DP', 'GN1' or 'GN2', got {via!r}")
        self._accepted = bool(accepted)
        self._via = via if accepted else ""
        dp = state.analyzers["DP"].test
        tasks = list(state.tasks)
        self._cap = state.fpga.capacity
        self._us_by_name = {t.name: t.system_utilization for t in tasks}
        self._area_by_name = {t.name: t.area for t in tasks}
        self._has_float = any(
            isinstance(v, float)
            for t in tasks
            for v in (t.wcet, t.period, t.deadline, t.area)
        )
        if tasks:
            self._amax = max(self._area_by_name.values())
            self._abnd = dp.busy_bound(self._cap, self._amax)
            us_total: Real = 0
            for t in tasks:
                us_total = us_total + self._us_by_name[t.name]
            self._us = us_total
            self._min_slack = min(
                self._abnd * (1 - t.time_utilization)
                + self._us_by_name[t.name]
                - us_total
                for t in tasks
            )
        else:
            self._amax = None
            self._abnd = None
            self._us = 0
            self._min_slack = None
        self._busy_bound = dp.busy_bound
        self._valid = True

    def _leq(self, lhs: Real, rhs: Real, floaty: bool) -> bool:
        """``lhs <= rhs`` with a relative guard band when floats are involved."""
        if not (floaty or self._has_float):
            return lhs <= rhs
        scale = max(1.0, abs(float(lhs)), abs(float(rhs)))
        return float(lhs) <= float(rhs) - self.rel_eps * scale

    @staticmethod
    def _floaty(task: Task) -> bool:
        return any(
            isinstance(v, float) for v in (task.wcet, task.period, task.deadline, task.area)
        )

    def _answer(self, verdict: Optional[bool]) -> Optional[bool]:
        self.stats["unknown" if verdict is None else "certified"] += 1
        return verdict

    # -- certificates ----------------------------------------------------------

    def certify_remove(self, name: str) -> Optional[bool]:
        """Still accepted after retiring ``name``?  (``None`` = rerun.)"""
        if not self._valid or not self._accepted or self._via not in ("DP", "GN1"):
            return self._answer(None)
        if name not in self._us_by_name:
            return self._answer(None)
        # Consume: US shrinks; cached min_slack stays a valid lower bound.
        self._us = self._us - self._us_by_name.pop(name)
        area = self._area_by_name.pop(name)
        if self._area_by_name and area == self._amax:
            self._amax = max(self._area_by_name.values())
            self._abnd = self._busy_bound(self._cap, self._amax)
        elif not self._area_by_name:
            self._amax = self._abnd = self._min_slack = None
        return self._answer(True)

    def _check_add(self, task: Task) -> Optional[Tuple[Real, Real]]:
        """The O(1) reasoning shared by :meth:`certify_add` and
        :meth:`certify_trial`: ``(us_j, own_rhs)`` when the DP acceptance
        provably survives admitting ``task``, ``None`` otherwise."""
        if (
            not self._valid
            or not self._accepted
            or self._via != "DP"
            or self._amax is None
            or task.name in self._us_by_name
        ):
            return None
        floaty = self._floaty(task)
        if task.wcet > task.deadline or task.wcet > task.period or task.area > self._cap:
            return None  # necessary conditions: let the exact path reject
        if task.area > self._amax:
            return None  # Abnd would shrink: no O(1) reasoning
        us_j = task.system_utilization
        ut_j = task.time_utilization
        own_rhs = self._abnd * (1 - ut_j)
        if not (
            self._leq(us_j, self._min_slack, floaty)  # every resident inequality holds
            and self._leq(self._us, own_rhs, floaty)  # the newcomer's own inequality
            and self._leq(self._us + us_j, self._cap, floaty)  # necessary: US' <= A(H)
        ):
            return None
        return us_j, own_rhs

    def certify_add(self, task: Task) -> Optional[bool]:
        """Still accepted after admitting ``task``?  (``None`` = rerun.)"""
        checked = self._check_add(task)
        if checked is None:
            return self._answer(None)
        us_j, own_rhs = checked
        # Consume the slack the newcomer used up.
        self._us_by_name[task.name] = us_j
        self._area_by_name[task.name] = task.area
        self._us = self._us + us_j
        self._min_slack = min(self._min_slack - us_j, own_rhs + us_j - self._us)
        self._has_float = self._has_float or self._floaty(task)
        return self._answer(True)

    def certify_trial(self, task: Task) -> Optional[bool]:
        """*Would* the portfolio still accept with ``task`` admitted?

        The non-consuming twin of :meth:`certify_add` for trial queries
        (verdict wanted, no admission): the same O(1) certificate, but
        the cached slack is left untouched because the resident set does
        not change.  ``None`` = not provable in O(1), rerun exactly.
        """
        return self._answer(True if self._check_add(task) is not None else None)

    def certify_update(self, name: str, task: Task) -> Optional[bool]:
        """Still accepted after replacing ``name`` with ``task``?"""
        if (
            not self._valid
            or not self._accepted
            or self._via != "DP"
            or name not in self._us_by_name
            or (task.name != name and task.name in self._us_by_name)
        ):
            return self._answer(None)
        floaty = self._floaty(task)
        if task.wcet > task.deadline or task.wcet > task.period or task.area > self._cap:
            return self._answer(None)
        if task.area > self._amax:
            return self._answer(None)
        us_old = self._us_by_name[name]
        us_j = task.system_utilization
        ut_j = task.time_utilization
        delta_us = us_j - us_old
        own_rhs = self._abnd * (1 - ut_j)
        if not (
            self._leq(delta_us, self._min_slack, floaty)
            and self._leq(self._us - us_old, own_rhs, floaty)
            and self._leq(self._us + delta_us, self._cap, floaty)
        ):
            return self._answer(None)
        del self._us_by_name[name]
        area_old = self._area_by_name.pop(name)
        self._us_by_name[task.name] = us_j
        self._area_by_name[task.name] = task.area
        self._us = self._us + delta_us
        new_slack = own_rhs + us_j - self._us
        self._min_slack = min(self._min_slack - delta_us, new_slack)
        if area_old == self._amax and task.area < area_old:
            self._amax = max(self._area_by_name.values())
            self._abnd = self._busy_bound(self._cap, self._amax)
        self._has_float = self._has_float or floaty
        return self._answer(True)

    @property
    def hit_rate(self) -> float:
        """Fraction of queries answered without an exact rerun."""
        total = self.stats["certified"] + self.stats["unknown"]
        return self.stats["certified"] / total if total else 0.0
