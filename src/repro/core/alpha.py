"""Work-conserving occupancy factors for FPGA EDF (paper §3).

Multiprocessor global EDF is work-conserving: no processor idles while
work is queued.  On an FPGA, free area can idle because no queued job fits
in it, so the paper quantifies *how much* area is guaranteed busy:

* **Lemma 1** — EDF-FkF is *global-α-work-conserving*: whenever the ready
  queue is non-empty, at least ``A(H) - (Amax - 1)`` columns are busy,
  i.e. ``α = 1 - (Amax - 1)/A(H)``.  (If ``Amax - 1`` columns are free the
  widest job may still not fit; if ``Amax`` were free, it would.)
* **Lemma 2** — EDF-NF is *interval-α-work-conserving*: while a job of
  ``tau_k`` waits in the queue, at least ``A(H) - (A_k - 1)`` columns are
  busy — NF skips blocked wide jobs and fills the gap with narrower ones,
  so only ``tau_k``'s *own* width matters.

Danne & Platzner's original analysis treats areas as reals and uses
``α = 1 - Amax/A(H)``; the paper argues areas are integral numbers of
columns, gaining one column of guaranteed occupancy.  Both are provided —
the difference is the `ablation-alpha` experiment.
"""

from __future__ import annotations

from numbers import Real

from repro.util.mathutil import exact_div


def _check(area_max: Real, total_area: Real) -> None:
    if total_area <= 0:
        raise ValueError(f"total area must be > 0, got {total_area}")
    if area_max < 1:
        raise ValueError(f"max task area must be >= 1, got {area_max}")
    if area_max > total_area:
        raise ValueError(
            f"max task area {area_max} exceeds device area {total_area}: infeasible"
        )


def global_alpha_fkf(area_max: Real, total_area: Real) -> Real:
    """Lemma 1: ``α = 1 - (Amax - 1)/A(H)`` for EDF-FkF, integer areas."""
    _check(area_max, total_area)
    return 1 - exact_div(area_max - 1, total_area)


def global_alpha_fkf_real_areas(area_max: Real, total_area: Real) -> Real:
    """Danne & Platzner's original ``α = 1 - Amax/A(H)`` (real-valued areas)."""
    _check(area_max, total_area)
    return 1 - exact_div(area_max, total_area)


def interval_alpha_nf(area_k: Real, total_area: Real) -> Real:
    """Lemma 2: ``α = 1 - (A_k - 1)/A(H)`` for EDF-NF while ``J_k`` waits."""
    _check(area_k, total_area)
    return 1 - exact_div(area_k - 1, total_area)


def guaranteed_busy_area_fkf(area_max: Real, total_area: Real) -> Real:
    """Columns guaranteed busy under EDF-FkF overload: ``A(H) - Amax + 1``.

    This is the paper's ``Abnd`` used throughout Theorem 3.
    """
    _check(area_max, total_area)
    return total_area - area_max + 1


def guaranteed_busy_area_nf(area_k: Real, total_area: Real) -> Real:
    """Columns guaranteed busy while a job of ``tau_k`` waits under EDF-NF:
    ``A(H) - A_k + 1`` (used by Lemma 3 / Theorem 2)."""
    _check(area_k, total_area)
    return total_area - area_k + 1
