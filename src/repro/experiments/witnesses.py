"""Witness search and empirical incomparability statistics.

Tables 1–3 exist because the three bounds are pairwise incomparable —
for each test there are tasksets only it accepts.  This module automates
finding such witnesses (presumably how the authors built the tables) and
measures how often each acceptance pattern occurs on random workloads —
a statistical generalization of the three tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.dp import dp_test
from repro.core.gn1 import gn1_test
from repro.core.gn2 import gn2_test
from repro.fpga.device import Fpga
from repro.gen.profiles import GenerationProfile
from repro.gen.random_tasksets import generate_taskset
from repro.model.task import TaskSet

TESTS = (("DP", dp_test), ("GN1", gn1_test), ("GN2", gn2_test))

#: Acceptance pattern: (DP, GN1, GN2) verdicts.
Pattern = Tuple[bool, bool, bool]

#: The three exclusive patterns the paper's tables exhibit.
TABLE_PATTERNS: Dict[str, Pattern] = {
    "table1-like (DP only)": (True, False, False),
    "table2-like (GN1 only)": (False, True, False),
    "table3-like (GN2 only)": (False, False, True),
}


def acceptance_pattern(taskset: TaskSet, fpga: Fpga) -> Pattern:
    """(DP, GN1, GN2) verdicts for one taskset."""
    return tuple(test(taskset, fpga).accepted for _, test in TESTS)  # type: ignore[return-value]


def find_witness(
    pattern: Pattern,
    rng: np.random.Generator,
    fpga: Optional[Fpga] = None,
    profile: Optional[GenerationProfile] = None,
    max_tries: int = 100_000,
) -> Optional[TaskSet]:
    """Search random tasksets for one matching the acceptance ``pattern``.

    When no ``profile`` is given, the generation parameters (task count,
    area floor, utilization range) are re-drawn every attempt: some
    patterns live in skewed corners of the workload space that no single
    uniform profile reaches.  Notably, **DP-only** acceptance — the
    paper's Table 1 pattern — appears to have measure zero for 2-task
    sets (Table 1 itself sits exactly on DP's and GN2's decision
    boundaries) and only materializes for >= 3 tasks with a high area
    floor; see EXPERIMENTS.md.  Returns ``None`` when the budget runs
    out — evidence of rarity, not an impossibility proof.
    """
    fpga = fpga or Fpga(width=10)
    for _ in range(max_tries):
        if profile is not None:
            p = profile
        else:
            n = int(rng.integers(2, 6))
            area_min = int(rng.integers(1, max(2, fpga.capacity - 2)))
            p = GenerationProfile(
                n_tasks=n,
                area_min=area_min,
                area_max=fpga.capacity,
                period_min=3,
                period_max=20,
                util_min=0.02,
                util_max=0.9,
                name="witness-search",
            )
        ts = generate_taskset(p, rng)
        if acceptance_pattern(ts, fpga) == pattern:
            return ts
    return None


@dataclass(frozen=True)
class IncomparabilityCensus:
    """Counts of every acceptance pattern over a random sample."""

    counts: Dict[Pattern, int]
    total: int

    def fraction(self, pattern: Pattern) -> float:
        return self.counts.get(pattern, 0) / self.total if self.total else 0.0

    @property
    def exclusive_witnesses_found(self) -> Dict[str, int]:
        """How many tasksets realize each of the paper's table patterns."""
        return {
            name: self.counts.get(pat, 0) for name, pat in TABLE_PATTERNS.items()
        }

    def render(self) -> str:
        label = lambda p: "+".join(
            n for (n, _), bit in zip(TESTS, p) if bit
        ) or "(none)"
        lines = [f"{'pattern':<14} {'count':>8} {'fraction':>9}"]
        for pattern in sorted(self.counts, reverse=True):
            lines.append(
                f"{label(pattern):<14} {self.counts[pattern]:>8} "
                f"{self.fraction(pattern):>9.4f}"
            )
        return "\n".join(lines)


def incomparability_census(
    samples: int,
    rng: np.random.Generator,
    fpga: Optional[Fpga] = None,
    profile: Optional[GenerationProfile] = None,
) -> IncomparabilityCensus:
    """Acceptance-pattern census over ``samples`` random tasksets."""
    if samples < 1:
        raise ValueError("samples must be >= 1")
    fpga = fpga or Fpga(width=10)
    profile = profile or GenerationProfile(
        n_tasks=2,
        area_min=1,
        area_max=fpga.capacity,
        period_min=4,
        period_max=10,
        util_min=0.05,
        util_max=0.95,
        name="census",
    )
    counts: Dict[Pattern, int] = {}
    for _ in range(samples):
        ts = generate_taskset(profile, rng)
        pat = acceptance_pattern(ts, fpga)
        counts[pat] = counts.get(pat, 0) + 1
    return IncomparabilityCensus(counts=counts, total=samples)
