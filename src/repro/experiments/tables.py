"""Tables 1-3: the pairwise-incomparability examples (paper §6).

Each table is one two-task taskset on a 10-column device, accepted by
exactly one of DP / GN1 / GN2 and rejected by the other two.  The module
re-evaluates all nine verdicts and the §6 worked numbers, producing a
report suitable for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction as F
from typing import Dict, Tuple

from repro.core.dp import dp_test
from repro.core.gn1 import gn1_test
from repro.core.gn2 import gn2_test
from repro.fpga.device import Fpga
from repro.model.task import Task, TaskSet

#: The paper's three example tasksets, in exact rational arithmetic.
TABLE_TASKSETS: Dict[str, TaskSet] = {
    "table1": TaskSet(
        [
            Task(wcet=F("1.26"), period=7, deadline=7, area=9, name="tau1"),
            Task(wcet=F("0.95"), period=5, deadline=5, area=6, name="tau2"),
        ]
    ),
    "table2": TaskSet(
        [
            Task(wcet=F("4.50"), period=8, deadline=8, area=3, name="tau1"),
            Task(wcet=F("8.00"), period=9, deadline=9, area=5, name="tau2"),
        ]
    ),
    "table3": TaskSet(
        [
            Task(wcet=F("2.10"), period=5, deadline=5, area=7, name="tau1"),
            Task(wcet=F("2.00"), period=7, deadline=7, area=7, name="tau2"),
        ]
    ),
}

#: The paper's claimed accept/reject matrix: (DP, GN1, GN2) per table.
PAPER_VERDICTS: Dict[str, Tuple[bool, bool, bool]] = {
    "table1": (True, False, False),
    "table2": (False, True, False),
    "table3": (False, False, True),
}


@dataclass(frozen=True)
class TableOutcome:
    """Measured verdicts for one table, with the paper's expectation."""

    table: str
    dp: bool
    gn1: bool
    gn2: bool
    expected: Tuple[bool, bool, bool]

    @property
    def verdicts(self) -> Tuple[bool, bool, bool]:
        return (self.dp, self.gn1, self.gn2)

    @property
    def matches_paper(self) -> bool:
        return self.verdicts == self.expected


def run_tables(device_width: int = 10) -> Dict[str, TableOutcome]:
    """Evaluate DP/GN1/GN2 on all three tables; compare with the paper."""
    fpga = Fpga(width=device_width)
    out = {}
    for name, ts in TABLE_TASKSETS.items():
        out[name] = TableOutcome(
            table=name,
            dp=dp_test(ts, fpga).accepted,
            gn1=gn1_test(ts, fpga).accepted,
            gn2=gn2_test(ts, fpga).accepted,
            expected=PAPER_VERDICTS[name],
        )
    return out


def render_tables(outcomes: Dict[str, TableOutcome]) -> str:
    """Markdown rendering of the accept/reject matrix."""
    lines = [
        "| taskset | DP | GN1 | GN2 | matches paper |",
        "|---------|----|-----|-----|---------------|",
    ]
    fmt = lambda b: "accept" if b else "reject"
    for name, o in sorted(outcomes.items()):
        lines.append(
            f"| {name} | {fmt(o.dp)} | {fmt(o.gn1)} | {fmt(o.gn2)} | "
            f"{'yes' if o.matches_paper else 'NO'} |"
        )
    return "\n".join(lines)
