"""The acceptance-ratio experiment engine (paper §6 methodology).

For each total-system-utilization bucket, generate many tasksets from a
profile, rescaled so ``US(Γ)`` hits the bucket exactly, then record the
fraction accepted by each schedulability test and by simulation.  Tests
run vectorized over the whole batch; simulation (the expensive part) runs
on a configurable subsample, optionally across worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fpga.device import Fpga
from repro.gen.profiles import GenerationProfile
from repro.sched.edf_fkf import EdfFkf
from repro.sched.edf_nf import EdfNf
from repro.util.parallel import parallel_map
from repro.util.rngutil import rng_from_seed, spawn_rngs
from repro.vector.batch import TaskSetBatch, generate_batch
from repro.vector.dp_vec import dp_accepts
from repro.vector.gn1_vec import gn1_accepts
from repro.vector.gn2_vec import gn2_accepts

#: Vectorized analytical tests available to the engine.
TEST_FUNCS = {
    "DP": lambda batch, cap: dp_accepts(batch, cap),
    "DP-real": lambda batch, cap: dp_accepts(batch, cap, integer_areas=False),
    "GN1": lambda batch, cap: gn1_accepts(batch, cap),
    "GN2": lambda batch, cap: gn2_accepts(batch, cap),
    "ANY": lambda batch, cap: (
        dp_accepts(batch, cap) | gn1_accepts(batch, cap) | gn2_accepts(batch, cap)
    ),
}

_SCHEDULERS = {"EDF-NF": EdfNf, "EDF-FkF": EdfFkf}


@dataclass(frozen=True)
class AcceptanceSeries:
    """One curve: acceptance ratio per utilization bucket."""

    label: str
    utilizations: Tuple[float, ...]
    ratios: Tuple[float, ...]

    def at(self, utilization: float) -> float:
        """Ratio at an exact bucket value (KeyError if absent)."""
        for u, r in zip(self.utilizations, self.ratios):
            if u == utilization:
                return r
        raise KeyError(utilization)


@dataclass(frozen=True)
class AcceptanceCurves:
    """A full experiment: several series over the same buckets."""

    name: str
    capacity: int
    samples_per_point: int
    sim_samples_per_point: int
    series: Tuple[AcceptanceSeries, ...]

    def __getitem__(self, label: str) -> AcceptanceSeries:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(s.label for s in self.series)

    def rows(self) -> List[Tuple[float, ...]]:
        """(utilization, ratio_1, ratio_2, ...) rows for tabular output."""
        buckets = self.series[0].utilizations
        out = []
        for idx, u in enumerate(buckets):
            out.append((u,) + tuple(s.ratios[idx] for s in self.series))
        return out


def feasible_batch_at(
    profile: GenerationProfile,
    us_target: float,
    count: int,
    rng: np.random.Generator,
    max_rounds: int = 60,
) -> TaskSetBatch:
    """``count`` tasksets from ``profile`` rescaled to ``US == us_target``.

    Vectorized analogue of :func:`repro.gen.sweep.generate_at_system_utilization`:
    infeasible rescales (some task's utilization would exceed 1) are
    discarded and redrawn.  Raises :class:`RuntimeError` when the target
    is unreachable for the profile.
    """
    if us_target <= 0:
        raise ValueError("us_target must be > 0")
    if count < 1:
        raise ValueError("count must be >= 1")
    kept: List[TaskSetBatch] = []
    have = 0
    for _ in range(max_rounds):
        draw = generate_batch(profile, count, rng)
        scaled = draw.scaled_to_system_utilization(np.full(count, us_target))
        mask = scaled.feasible_mask
        if mask.any():
            kept.append(
                TaskSetBatch(
                    scaled.wcet[mask],
                    scaled.period[mask],
                    scaled.deadline[mask],
                    scaled.area[mask],
                )
            )
            have += int(mask.sum())
        if have >= count:
            break
    if have < count:
        raise RuntimeError(
            f"profile {profile.name!r} cannot reach US={us_target}: "
            f"only {have}/{count} feasible samples in {max_rounds} rounds"
        )
    merged = TaskSetBatch(
        np.concatenate([b.wcet for b in kept])[:count],
        np.concatenate([b.period for b in kept])[:count],
        np.concatenate([b.deadline for b in kept])[:count],
        np.concatenate([b.area for b in kept])[:count],
    )
    return merged


def binned_batch_at(
    profile: GenerationProfile,
    us_target: float,
    tolerance: float,
    count: int,
    rng: np.random.Generator,
    max_rounds: int = 30,
    chunk: int = 50_000,
) -> Optional[TaskSetBatch]:
    """Up to ``count`` *raw* draws whose ``US`` lands within ``tolerance``
    of ``us_target`` (no rescaling — the paper's §6 binning methodology).

    Unlike :func:`feasible_batch_at`, the drawn tasksets keep the
    profile's joint distribution exactly (crucial for Figure 4(b), where
    rescaling would destroy the "temporally heavy" property — DESIGN.md
    §4.8).  Returns ``None`` when the bucket is unreachable; a short batch
    when only some samples landed.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if tolerance <= 0:
        raise ValueError("tolerance must be > 0")
    kept: List[TaskSetBatch] = []
    have = 0
    for _ in range(max_rounds):
        draw = generate_batch(profile, chunk, rng)
        mask = np.abs(draw.system_utilization - us_target) <= tolerance
        if mask.any():
            kept.append(
                TaskSetBatch(
                    draw.wcet[mask], draw.period[mask],
                    draw.deadline[mask], draw.area[mask],
                )
            )
            have += int(mask.sum())
        if have >= count:
            break
    if have == 0:
        return None
    return TaskSetBatch(
        np.concatenate([b.wcet for b in kept])[:count],
        np.concatenate([b.period for b in kept])[:count],
        np.concatenate([b.deadline for b in kept])[:count],
        np.concatenate([b.area for b in kept])[:count],
    )


def _simulate_one(args) -> bool:
    """Worker: one taskset, one scheduler (picklable for process pools)."""
    taskset, capacity, scheduler_name, horizon_factor = args
    from repro.sim.simulator import default_horizon, simulate

    scheduler = _SCHEDULERS[scheduler_name]()
    horizon = default_horizon(taskset, factor=horizon_factor)
    return simulate(taskset, Fpga(width=capacity), scheduler, horizon).schedulable


def acceptance_experiment(
    profile: GenerationProfile,
    fpga: Fpga,
    us_grid: Sequence[float],
    samples_per_point: int,
    seed: int,
    *,
    tests: Sequence[str] = ("DP", "GN1", "GN2"),
    sim_schedulers: Sequence[str] = ("EDF-NF",),
    sim_samples_per_point: Optional[int] = None,
    horizon_factor: int = 20,
    workers: int = 1,
    name: Optional[str] = None,
    sampling: str = "rescale",
) -> AcceptanceCurves:
    """Run the full §6 experiment for one workload profile.

    ``tests`` picks analytical curves from :data:`TEST_FUNCS`;
    ``sim_schedulers`` adds simulation curves (labelled ``sim:<name>``)
    computed on ``sim_samples_per_point`` (default: min(samples, 200))
    tasksets per bucket.  ``workers > 1`` parallelizes the simulations.

    ``sampling`` selects how buckets are filled: ``"rescale"`` draws from
    the profile and rescales WCETs to the exact target (fast, exact
    buckets); ``"bin"`` keeps raw draws whose ``US`` falls near the target
    (the paper's methodology — preserves the profile's joint shape, see
    Figure 4(b)).  Binned buckets that attract no samples yield ``nan``.
    """
    if sampling not in ("rescale", "bin"):
        raise ValueError(f"unknown sampling mode {sampling!r}")
    unknown = set(tests) - set(TEST_FUNCS)
    if unknown:
        raise ValueError(f"unknown tests: {sorted(unknown)}")
    unknown = set(sim_schedulers) - set(_SCHEDULERS)
    if unknown:
        raise ValueError(f"unknown schedulers: {sorted(unknown)}")
    if samples_per_point < 1:
        raise ValueError("samples_per_point must be >= 1")
    sim_n = (
        min(samples_per_point, 200)
        if sim_samples_per_point is None
        else min(sim_samples_per_point, samples_per_point)
    )
    capacity = fpga.capacity

    ratios: Dict[str, List[float]] = {t: [] for t in tests}
    for s in sim_schedulers:
        ratios[f"sim:{s}"] = []

    grid_list = [float(u) for u in us_grid]
    spacing = (
        min(b - a for a, b in zip(grid_list, grid_list[1:]))
        if len(grid_list) > 1
        else max(grid_list[0] * 0.1, 1.0)
    )
    rngs = spawn_rngs(seed, len(us_grid))
    for bucket_idx, us_target in enumerate(grid_list):
        if sampling == "rescale":
            batch = feasible_batch_at(
                profile, us_target, samples_per_point, rngs[bucket_idx]
            )
        else:
            batch = binned_batch_at(
                profile, us_target, spacing / 2, samples_per_point, rngs[bucket_idx]
            )
        if batch is None:
            for test in tests:
                ratios[test].append(float("nan"))
            for sched in sim_schedulers:
                ratios[f"sim:{sched}"].append(float("nan"))
            continue
        for test in tests:
            mask = TEST_FUNCS[test](batch, capacity)
            ratios[test].append(float(mask.mean()))
        if sim_schedulers and sim_n > 0:
            tasksets = [batch.taskset(i) for i in range(min(sim_n, batch.count))]
            for sched in sim_schedulers:
                args = [(ts, capacity, sched, horizon_factor) for ts in tasksets]
                outcomes = parallel_map(_simulate_one, args, workers=workers)
                ratios[f"sim:{sched}"].append(sum(outcomes) / len(outcomes))

    buckets = tuple(float(u) for u in us_grid)
    series = tuple(
        AcceptanceSeries(label, buckets, tuple(vals)) for label, vals in ratios.items()
    )
    return AcceptanceCurves(
        name=name or profile.name,
        capacity=capacity,
        samples_per_point=samples_per_point,
        sim_samples_per_point=sim_n,
        series=series,
    )
