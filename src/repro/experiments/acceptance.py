"""The acceptance-ratio experiment engine (paper §6 methodology).

For each total-system-utilization bucket, generate many tasksets from a
profile, rescaled so ``US(Γ)`` hits the bucket exactly, then record the
fraction accepted by each schedulability test and by simulation.  Tests
run vectorized over the whole batch; simulation runs either on the whole
batch as well (``sim_backend="vector"`` — the default, via
:func:`repro.vector.sim_vec.simulate_batch`, in any
:class:`~repro.sim.simulator.MigrationMode`) or one taskset at a time on
a subsample, optionally across worker processes
(``sim_backend="scalar"``).  Both backends produce bit-identical
verdicts per configuration; tasksets whose event loop blows the
``max_events`` budget are recorded as not-schedulable-within-budget and
counted in :attr:`AcceptanceCurves.sim_budget_exceeded` instead of
aborting the sweep.

Bucket sizes are either flat (``samples_per_point`` tasksets each) or
adaptive (``ci_target``): a pilot draw per bucket estimates each series'
acceptance probability and the bucket is extended only as far as needed
for a 95% confidence-interval half-width of ``ci_target``, with
``samples_per_point`` as the cap — saturated buckets (ratios near 0/1)
get cheap, knife-edge buckets get the full budget.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fpga.device import Fpga
from repro.fpga.placement import PlacementPolicy
from repro.gen.profiles import GenerationProfile
from repro.sched.edf_fkf import EdfFkf
from repro.sched.edf_nf import EdfNf
from repro.sim.simulator import MigrationMode
from repro.util.parallel import parallel_map
from repro.util.rngutil import rng_from_seed, spawn_rngs
from repro.vector import xp
from repro.vector.batch import TaskSetBatch, generate_batch
from repro.vector.dp_vec import dp_accepts
from repro.vector.gn1_vec import gn1_accepts
from repro.vector.gn2_vec import gn2_accepts
from repro.vector.sim_vec import (
    default_horizon_batch,
    sample_release_times_batch,
    simulate_batch,
)

#: 95% two-sided normal quantile for the ``ci_target`` bucket sizing.
_CI_Z = 1.96
#: Smallest pilot draw the adaptive mode will take per bucket.
_CI_PILOT_MIN = 32

#: Vectorized analytical tests available to the engine.
TEST_FUNCS = {
    "DP": lambda batch, cap: dp_accepts(batch, cap),
    "DP-real": lambda batch, cap: dp_accepts(batch, cap, integer_areas=False),
    "GN1": lambda batch, cap: gn1_accepts(batch, cap),
    "GN2": lambda batch, cap: gn2_accepts(batch, cap),
    "ANY": lambda batch, cap: (
        dp_accepts(batch, cap) | gn1_accepts(batch, cap) | gn2_accepts(batch, cap)
    ),
}

_SCHEDULERS = {"EDF-NF": EdfNf, "EDF-FkF": EdfFkf}


@dataclass(frozen=True)
class AcceptanceSeries:
    """One curve: acceptance ratio per utilization bucket."""

    label: str
    utilizations: Tuple[float, ...]
    ratios: Tuple[float, ...]

    def at(self, utilization: float, rel_tol: float = 1e-9) -> float:
        """Ratio at a bucket value (KeyError if absent).

        Buckets are matched tolerantly (``math.isclose`` with ``rel_tol``
        and a matching absolute floor): computed grids such as
        ``np.linspace`` values differ from the "same" literal by a few
        ulps, and an exact ``==`` would silently miss them.
        """
        for u, r in zip(self.utilizations, self.ratios):
            if math.isclose(u, utilization, rel_tol=rel_tol, abs_tol=rel_tol):
                return r
        raise KeyError(utilization)


@dataclass(frozen=True)
class AcceptanceCurves:
    """A full experiment: several series over the same buckets."""

    name: str
    capacity: int
    samples_per_point: int
    sim_samples_per_point: int
    series: Tuple[AcceptanceSeries, ...]
    #: Simulations that blew the ``max_events`` budget and were recorded
    #: as not schedulable (0 on healthy sweeps).
    sim_budget_exceeded: int = 0
    #: Actual tasksets drawn per bucket when adaptive (``ci_target``)
    #: sizing ran; ``None`` for flat ``samples_per_point`` sweeps.
    bucket_samples: Optional[Tuple[int, ...]] = None

    def __getitem__(self, label: str) -> AcceptanceSeries:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(s.label for s in self.series)

    def rows(self) -> List[Tuple[float, ...]]:
        """(utilization, ratio_1, ratio_2, ...) rows for tabular output."""
        buckets = self.series[0].utilizations
        out = []
        for idx, u in enumerate(buckets):
            out.append((u,) + tuple(s.ratios[idx] for s in self.series))
        return out


def feasible_batch_at(
    profile: GenerationProfile,
    us_target: float,
    count: int,
    rng: np.random.Generator,
    max_rounds: int = 60,
) -> TaskSetBatch:
    """``count`` tasksets from ``profile`` rescaled to ``US == us_target``.

    Vectorized analogue of :func:`repro.gen.sweep.generate_at_system_utilization`:
    infeasible rescales (some task's utilization would exceed 1) are
    discarded and redrawn.  Raises :class:`RuntimeError` when the target
    is unreachable for the profile.
    """
    if us_target <= 0:
        raise ValueError("us_target must be > 0")
    if count < 1:
        raise ValueError("count must be >= 1")
    kept: List[TaskSetBatch] = []
    have = 0
    for _ in range(max_rounds):
        draw = generate_batch(profile, count, rng)
        scaled = draw.scaled_to_system_utilization(np.full(count, us_target))
        mask = scaled.feasible_mask
        if mask.any():
            kept.append(
                TaskSetBatch(
                    scaled.wcet[mask],
                    scaled.period[mask],
                    scaled.deadline[mask],
                    scaled.area[mask],
                )
            )
            have += int(mask.sum())
        if have >= count:
            break
    if have < count:
        raise RuntimeError(
            f"profile {profile.name!r} cannot reach US={us_target}: "
            f"only {have}/{count} feasible samples in {max_rounds} rounds"
        )
    merged = TaskSetBatch(
        np.concatenate([b.wcet for b in kept])[:count],
        np.concatenate([b.period for b in kept])[:count],
        np.concatenate([b.deadline for b in kept])[:count],
        np.concatenate([b.area for b in kept])[:count],
    )
    return merged


def binned_batch_at(
    profile: GenerationProfile,
    us_target: float,
    tolerance: float,
    count: int,
    rng: np.random.Generator,
    max_rounds: int = 30,
    chunk: int = 50_000,
) -> Optional[TaskSetBatch]:
    """Up to ``count`` *raw* draws whose ``US`` lands within ``tolerance``
    of ``us_target`` (no rescaling — the paper's §6 binning methodology).

    Unlike :func:`feasible_batch_at`, the drawn tasksets keep the
    profile's joint distribution exactly (crucial for Figure 4(b), where
    rescaling would destroy the "temporally heavy" property — DESIGN.md
    §4.8).  Returns ``None`` when the bucket is unreachable; a short batch
    when only some samples landed.

    Round sizes adapt to the request: the first round draws a few times
    ``count`` (instead of a flat ``chunk`` regardless of how few samples
    were asked for), and later rounds extrapolate from the observed hit
    rate.  ``chunk`` caps any single round's draw.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if tolerance <= 0:
        raise ValueError("tolerance must be > 0")
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    kept: List[TaskSetBatch] = []
    have = 0
    drawn = 0
    draw_size = min(chunk, max(2048, 4 * count))
    for _ in range(max_rounds):
        draw = generate_batch(profile, draw_size, rng)
        drawn += draw_size
        mask = np.abs(draw.system_utilization - us_target) <= tolerance
        if mask.any():
            kept.append(
                TaskSetBatch(
                    draw.wcet[mask], draw.period[mask],
                    draw.deadline[mask], draw.area[mask],
                )
            )
            have += int(mask.sum())
        if have >= count:
            break
        if have > 0:
            # Draw what the observed hit rate suggests (x1.5 headroom).
            need = count - have
            draw_size = int(min(chunk, max(1024, math.ceil(1.5 * need * drawn / have))))
        else:
            draw_size = min(chunk, draw_size * 4)
    if have == 0:
        return None
    return TaskSetBatch(
        np.concatenate([b.wcet for b in kept])[:count],
        np.concatenate([b.period for b in kept])[:count],
        np.concatenate([b.deadline for b in kept])[:count],
        np.concatenate([b.area for b in kept])[:count],
    )


def _simulate_one(args) -> Tuple[bool, bool]:
    """Worker: one taskset, one scheduler (picklable for process pools).

    Returns ``(schedulable, budget_exceeded)``.  A ``SimulationError``
    (event budget blown) is caught here so one pathological taskset
    cannot abort a whole sweep — the set counts as not schedulable
    within budget.
    """
    taskset, fpga, scheduler_name, mode, policy, horizon_factor, max_events = args
    from repro.sim.simulator import SimulationError, default_horizon, simulate

    scheduler = _SCHEDULERS[scheduler_name]()
    horizon = default_horizon(taskset, factor=horizon_factor)
    try:
        result = simulate(
            taskset, fpga, scheduler, horizon,
            mode=mode, placement_policy=policy,
            max_events=max_events,
        )
    except SimulationError:
        return False, True
    return result.schedulable, False


def _ci_required_samples(counts: Dict[str, List[int]], ci_target: float) -> int:
    """Samples needed so every series' 95% CI half-width <= ``ci_target``.

    Uses the worst (largest-variance) add-one-smoothed estimate across
    the series, so a pilot that saw only 0s or 1s still carries a small
    non-degenerate variance instead of claiming certainty.
    """
    worst = 0.0
    for hits, n in counts.values():
        if n == 0:
            continue
        p = (hits + 1) / (n + 2)
        worst = max(worst, p * (1 - p))
    return math.ceil(_CI_Z * _CI_Z * worst / (ci_target * ci_target))


def acceptance_experiment(
    profile: GenerationProfile,
    fpga: Fpga,
    us_grid: Sequence[float],
    samples_per_point: int,
    seed: int,
    *,
    tests: Sequence[str] = ("DP", "GN1", "GN2"),
    sim_schedulers: Sequence[str] = ("EDF-NF",),
    sim_samples_per_point: Optional[int] = None,
    sim_backend: str = "vector",
    sim_array_backend: Optional[str] = None,
    sim_mode: MigrationMode = MigrationMode.FREE,
    sim_policy: PlacementPolicy = PlacementPolicy.FIRST_FIT,
    sim_release: str = "periodic",
    sim_jitter: float = 0.5,
    horizon_factor: int = 20,
    max_events: int = 1_000_000,
    workers: int = 1,
    sim_workers: Optional[int] = None,
    name: Optional[str] = None,
    sampling: str = "rescale",
    bin_tolerance: Optional[float] = None,
    ci_target: Optional[float] = None,
) -> AcceptanceCurves:
    """Run the full §6 experiment for one workload profile.

    ``tests`` picks analytical curves from :data:`TEST_FUNCS`;
    ``sim_schedulers`` adds simulation curves (labelled ``sim:<name>``),
    simulated under ``sim_mode``/``sim_policy`` (the paper's FREE
    migration by default; RELOCATABLE/PINNED quantify the §7 placement
    cost, honouring ``fpga``'s static regions on both backends).

    ``sim_release`` selects the release pattern of the sim curves:
    ``"periodic"`` (the paper's synchronous pattern) or ``"sporadic"``
    (one jittered schedule per taskset, gaps
    ``T_i * (1 + U(0, sim_jitter))``, sampled from a per-bucket stream
    derived from ``seed``).  Sporadic release patterns are generated and
    replayed through the batched simulator, so they require
    ``sim_backend="vector"``; every scheduler in a bucket sees the same
    sampled schedules (paired comparisons).

    ``sim_backend`` selects how those curves are computed:

    - ``"vector"`` (default): the batched simulator
      (:func:`repro.vector.sim_vec.simulate_batch`) runs the *whole*
      bucket — ``sim_samples_per_point`` defaults to
      ``samples_per_point``, so the sim curve sees every taskset the
      analytical curves see;
    - ``"scalar"``: the per-taskset event simulator, subsampled to
      ``sim_samples_per_point`` (default: min(samples, 200)) tasksets
      per bucket; ``workers > 1`` parallelizes it over processes.

    ``sim_array_backend`` picks the :mod:`repro.vector.xp` array
    namespace the batched simulator computes on (``"numpy"``,
    ``"torch"``, ``"cupy"``, ...); ``None`` follows the process
    override / ``REPRO_ARRAY_BACKEND`` / numpy precedence.  Host/device
    transfer is confined to batch boundaries, and the seeded sporadic
    sampler stays host-side whatever the backend (its draw order is
    pinned to the scalar reference).  When a *device* backend is active
    (cupy, torch:cuda) and ``workers > 1``, the engine forces
    ``parallel_map`` back to serial chunking with a one-line
    ``RuntimeWarning`` — forked workers must not share a GPU context.

    Both backends yield bit-identical verdicts per taskset.  Simulations
    exceeding ``max_events`` are recorded as not schedulable and counted
    in :attr:`AcceptanceCurves.sim_budget_exceeded` rather than aborting
    the sweep.

    ``sim_workers`` shards each vector-sim bucket's batch dimension over
    a process pool inside :func:`simulate_batch` (verdicts bit-identical
    to serial; ``None`` defers to the ``REPRO_SIM_WORKERS`` environment
    variable, then 1).  It is independent of ``workers``, which
    parallelizes over *tasksets* on the scalar backend; the device-serial
    rule applies to both.

    ``sampling`` selects how buckets are filled: ``"rescale"`` draws from
    the profile and rescales WCETs to the exact target (fast, exact
    buckets); ``"bin"`` keeps raw draws whose ``US`` falls near the target
    (the paper's methodology — preserves the profile's joint shape, see
    Figure 4(b)).  The bin half-width is ``bin_tolerance`` when given
    (must be > 0), else half the smallest grid spacing; a single-bucket
    grid has no spacing to derive it from, so ``"bin"`` then *requires*
    an explicit ``bin_tolerance``.  Binned buckets that attract no
    samples yield ``nan``.

    ``ci_target`` switches per-bucket sizing from flat to adaptive: each
    bucket starts with a pilot draw (a tenth of the budget, at least
    ``_CI_PILOT_MIN``) and is extended only until every series' 95%
    confidence-interval half-width falls below ``ci_target``, capped at
    ``samples_per_point``.  The per-bucket draw counts are recorded in
    :attr:`AcceptanceCurves.bucket_samples`.  Adaptive sizing needs every
    series to cover the full bucket, so it requires the vector sim
    backend (or no sim curves) and rejects an explicit sim subsample.
    """
    if sampling not in ("rescale", "bin"):
        raise ValueError(f"unknown sampling mode {sampling!r}")
    if sim_backend not in ("vector", "scalar"):
        raise ValueError(f"unknown sim_backend {sim_backend!r}")
    # Resolve eagerly: a bad/uninstalled backend fails here, not after
    # the first bucket's taskset generation.
    array_backend = xp.get_backend(sim_array_backend)
    if array_backend.is_device and workers > 1:
        warnings.warn(
            f"array backend {array_backend.name!r} is device-resident; "
            f"forcing parallel_map to serial chunking (workers {workers} "
            f"-> 1): forked workers must not share a GPU context",
            RuntimeWarning,
            stacklevel=2,
        )
        workers = 1
    if not isinstance(sim_mode, MigrationMode):
        raise ValueError(f"sim_mode must be a MigrationMode, got {sim_mode!r}")
    if not isinstance(sim_policy, PlacementPolicy):
        raise ValueError(f"sim_policy must be a PlacementPolicy, got {sim_policy!r}")
    if sim_release not in ("periodic", "sporadic"):
        raise ValueError(f"unknown sim_release {sim_release!r}")
    if sim_jitter < 0:
        raise ValueError("sim_jitter must be >= 0")
    if sim_release == "sporadic" and sim_schedulers and sim_backend != "vector":
        raise ValueError(
            "sim_release='sporadic' requires sim_backend='vector' (the "
            "scalar backend has no batched schedule replay)"
        )
    unknown = set(tests) - set(TEST_FUNCS)
    if unknown:
        raise ValueError(f"unknown tests: {sorted(unknown)}")
    unknown = set(sim_schedulers) - set(_SCHEDULERS)
    if unknown:
        raise ValueError(f"unknown schedulers: {sorted(unknown)}")
    if samples_per_point < 1:
        raise ValueError("samples_per_point must be >= 1")
    if bin_tolerance is not None and bin_tolerance <= 0:
        raise ValueError("bin_tolerance must be > 0")
    if ci_target is not None:
        if not (0 < ci_target < 0.5):
            raise ValueError("ci_target must be in (0, 0.5)")
        if sim_schedulers:
            if sim_backend != "vector":
                raise ValueError(
                    "ci_target sizing requires sim_backend='vector' "
                    "(every series must cover the full bucket)"
                )
            if sim_samples_per_point is not None and sim_samples_per_point > 0:
                raise ValueError(
                    "ci_target sizing simulates full buckets; drop "
                    "sim_samples_per_point (or set it to 0 to disable sim)"
                )
    if sim_samples_per_point is None:
        sim_n = (
            samples_per_point
            if sim_backend == "vector"
            else min(samples_per_point, 200)
        )
    else:
        sim_n = min(sim_samples_per_point, samples_per_point)
    capacity = fpga.capacity

    sim_labels = [f"sim:{s}" for s in sim_schedulers]
    labels = list(tests) + sim_labels
    ratios: Dict[str, List[float]] = {label: [] for label in labels}
    bucket_samples: List[int] = []

    grid_list = [float(u) for u in us_grid]
    if bin_tolerance is not None:
        tolerance = bin_tolerance
    elif len(grid_list) > 1:
        tolerance = min(b - a for a, b in zip(grid_list, grid_list[1:])) / 2
    elif sampling == "bin":
        raise ValueError(
            "'bin' sampling with a single-bucket grid needs an explicit "
            "bin_tolerance (no grid spacing to derive one from)"
        )
    else:
        tolerance = None  # rescale mode never bins
    budget_exceeded = 0
    rngs = spawn_rngs(seed, len(us_grid))
    for bucket_idx, us_target in enumerate(grid_list):
        rng = rngs[bucket_idx]
        # One sporadic-pattern stream per bucket, consumed sequentially
        # across the pilot/extension draws — identical settings replay
        # identical schedules.
        release_rng = (
            rng_from_seed(seed * 1_000_003 + bucket_idx)
            if sim_release == "sporadic"
            else None
        )

        def draw(n: int) -> Optional[TaskSetBatch]:
            if sampling == "rescale":
                return feasible_batch_at(profile, us_target, n, rng)
            return binned_batch_at(profile, us_target, tolerance, n, rng)

        #: per-series (hits, denominator) over this bucket's draws.
        counts: Dict[str, List[int]] = {label: [0, 0] for label in labels}

        def accumulate(batch: TaskSetBatch) -> None:
            nonlocal budget_exceeded
            for test in tests:
                mask = TEST_FUNCS[test](batch, capacity)
                counts[test][0] += int(mask.sum())
                counts[test][1] += batch.count
            if not sim_schedulers or sim_n <= 0:
                return
            k = batch.count if ci_target is not None else min(sim_n, batch.count)
            if sim_backend == "vector":
                sub = TaskSetBatch(
                    batch.wcet[:k], batch.period[:k],
                    batch.deadline[:k], batch.area[:k],
                )
                if release_rng is not None:
                    # Sample once per batch so every scheduler's curve
                    # sees the same sporadic patterns (paired).
                    release_kwargs = dict(
                        release="sporadic",
                        release_times=sample_release_times_batch(
                            sub,
                            default_horizon_batch(sub, factor=horizon_factor),
                            release_rng,
                            sim_jitter,
                        ),
                    )
                else:
                    release_kwargs = {}
                for sched in sim_schedulers:
                    res = simulate_batch(
                        sub, fpga, sched,
                        mode=sim_mode, placement_policy=sim_policy,
                        horizon_factor=horizon_factor, max_events=max_events,
                        array_backend=sim_array_backend,
                        sim_workers=sim_workers,
                        **release_kwargs,
                    )
                    counts[f"sim:{sched}"][0] += int(res.schedulable.sum())
                    counts[f"sim:{sched}"][1] += k
                    budget_exceeded += int(res.budget_exceeded.sum())
            else:
                tasksets = [batch.taskset(i) for i in range(k)]
                for sched in sim_schedulers:
                    args = [
                        (ts, fpga, sched, sim_mode, sim_policy,
                         horizon_factor, max_events)
                        for ts in tasksets
                    ]
                    outcomes = parallel_map(_simulate_one, args, workers=workers)
                    counts[f"sim:{sched}"][0] += sum(ok for ok, _ in outcomes)
                    counts[f"sim:{sched}"][1] += len(outcomes)
                    budget_exceeded += sum(ex for _, ex in outcomes)

        if ci_target is None:
            first_n = samples_per_point
        else:
            first_n = min(
                samples_per_point,
                max(_CI_PILOT_MIN, math.ceil(samples_per_point / 10)),
            )
        batch = draw(first_n)
        if batch is None:
            for label in labels:
                ratios[label].append(float("nan"))
            bucket_samples.append(0)
            continue
        accumulate(batch)
        drawn = batch.count
        if ci_target is not None:
            needed = min(samples_per_point, _ci_required_samples(counts, ci_target))
            if needed > drawn:
                extra = draw(needed - drawn)
                if extra is not None:
                    accumulate(extra)
                    drawn += extra.count
        bucket_samples.append(drawn)
        for label in labels:
            hits, n = counts[label]
            ratios[label].append(hits / n if n else float("nan"))

    buckets = tuple(float(u) for u in us_grid)
    series = tuple(
        AcceptanceSeries(label, buckets, tuple(ratios[label])) for label in labels
    )
    return AcceptanceCurves(
        name=name or profile.name,
        capacity=capacity,
        samples_per_point=samples_per_point,
        sim_samples_per_point=sim_n,
        series=series,
        sim_budget_exceeded=budget_exceeded,
        bucket_samples=tuple(bucket_samples) if ci_target is not None else None,
    )
