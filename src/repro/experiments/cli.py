"""``repro-experiments`` — regenerate the paper's tables and figures.

Examples::

    repro-experiments list
    repro-experiments tables
    repro-experiments run fig3a --samples 10000 --workers 8 --format csv
    repro-experiments run ablation-alpha --out results/alpha.csv
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.report import render, sparkline
from repro.experiments.tables import render_tables, run_tables


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce Guan et al. IPDPS'07 tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    tables = sub.add_parser("tables", help="evaluate Tables 1-3")
    tables.add_argument("--width", type=int, default=10, help="device columns")

    run = sub.add_parser("run", help="run a figure or ablation experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS), metavar="experiment")
    run.add_argument("--samples", type=int, default=None,
                     help="tasksets per utilization bucket (default: per-experiment)")
    run.add_argument("--seed", type=int, default=2007)
    run.add_argument("--workers", type=int, default=1,
                     help="process pool size for scalar-backend simulations")
    run.add_argument("--sim-workers", type=int, default=None,
                     dest="sim_workers", metavar="W",
                     help="shard each vector-sim batch over W processes "
                          "(verdicts bit-identical to serial; device "
                          "array backends force 1). Unset, the "
                          "REPRO_SIM_WORKERS environment variable is "
                          "consulted, then 1")
    run.add_argument("--sim-backend", choices=("vector", "scalar"),
                     default="vector", dest="sim_backend",
                     help="simulation backend: 'vector' runs the batched "
                          "simulator (all migration modes) over full "
                          "buckets, 'scalar' the per-taskset event loop "
                          "on a subsample")
    run.add_argument("--array-backend",
                     choices=("numpy", "cupy", "torch", "torch:cuda"),
                     default=None, dest="array_backend",
                     help="array namespace for the vectorized kernels "
                          "(repro.vector.xp): numpy is the default; cupy/"
                          "torch are optional installs resolved lazily. "
                          "Unset, the REPRO_ARRAY_BACKEND environment "
                          "variable is consulted, then numpy")
    run.add_argument("--sim-mode", choices=("free", "relocatable", "pinned"),
                     default="free", dest="sim_mode",
                     help="migration model for the figure-style sim curves: "
                          "'free' is the paper's unrestricted migration; "
                          "'relocatable'/'pinned' are the §7 placement-aware "
                          "modes (contiguous columns required)")
    run.add_argument("--sim-policy",
                     choices=("first-fit", "best-fit", "worst-fit"),
                     default="first-fit", dest="sim_policy",
                     help="hole-selection policy for placement-aware "
                          "--sim-mode runs")
    run.add_argument("--sim-release", choices=("periodic", "sporadic"),
                     default="periodic", dest="sim_release",
                     help="release pattern for the figure-style sim curves: "
                          "'periodic' is the paper's synchronous pattern, "
                          "'sporadic' draws one jittered schedule per "
                          "taskset (vector backend only)")
    run.add_argument("--sim-jitter", type=float, default=0.5,
                     dest="sim_jitter", metavar="FACTOR",
                     help="max inter-arrival jitter for --sim-release "
                          "sporadic: gaps are T * (1 + U(0, FACTOR))")
    run.add_argument("--sim-search", choices=("uniform", "adaptive"),
                     default="uniform", dest="sim_search",
                     help="release-pattern search for the offset/sporadic "
                          "ablations: 'uniform' draws patterns "
                          "independently; 'adaptive' spends the same "
                          "per-taskset budget through the repro.search "
                          "cross-entropy importance sampler (proposals "
                          "refit on the lowest-slack patterns each round "
                          "— more counterexamples per pattern, verdicts "
                          "still intersected with the synchronous "
                          "baseline)")
    run.add_argument("--search-rounds", type=int, default=4,
                     dest="search_rounds", metavar="N",
                     help="adaptive-search rounds the pattern budget is "
                          "split across (round 1 explores uniformly)")
    run.add_argument("--elite-frac", type=float, default=0.25,
                     dest="elite_frac", metavar="FRAC",
                     help="fraction of lowest-slack patterns that refit "
                          "the adaptive-search proposals each round")
    run.add_argument("--ci-target", type=float, default=None, dest="ci_target",
                     metavar="HALF_WIDTH",
                     help="adaptive bucket sizing: draw per-bucket samples "
                          "until every series' 95%% CI half-width is below "
                          "this (capped at --samples); applies to the "
                          "acceptance-engine experiments")
    run.add_argument("--format", choices=("text", "csv", "markdown"), default="text")
    run.add_argument("--out", type=Path, default=None, help="write to file")
    run.add_argument("--plot", action="store_true",
                     help="append unicode sparklines per series")
    run.add_argument("--svg", type=Path, default=None,
                     help="additionally write the figure as an SVG image")

    census = sub.add_parser(
        "census",
        help="acceptance-pattern census: how often each DP/GN1/GN2 "
             "combination accepts (generalizes Tables 1-3)",
    )
    census.add_argument("--samples", type=int, default=5000)
    census.add_argument("--seed", type=int, default=2007)
    census.add_argument("--width", type=int, default=10, help="device columns")

    explain = sub.add_parser(
        "explain", help="show the §6-style bound derivations for a taskset"
    )
    explain.add_argument("taskset", type=Path, help="taskset JSON file")
    explain.add_argument("--width", type=int, default=100, help="device columns")

    simulate = sub.add_parser(
        "simulate", help="simulate a taskset JSON file and show the schedule"
    )
    simulate.add_argument("taskset", type=Path, help="taskset JSON file")
    simulate.add_argument("--width", type=int, default=100, help="device columns")
    simulate.add_argument("--scheduler", choices=("nf", "fkf"), default="nf")
    simulate.add_argument("--horizon", type=float, default=None,
                          help="simulation horizon (default: D_max + 20 T_max)")
    simulate.add_argument("--gantt", action="store_true",
                          help="render an ASCII occupancy chart")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        for eid, exp in sorted(EXPERIMENTS.items()):
            print(f"{eid:20} {exp.description} (default samples: {exp.default_samples})")
        return 0

    if args.command == "tables":
        outcomes = run_tables(device_width=args.width)
        print(render_tables(outcomes))
        return 0 if all(o.matches_paper for o in outcomes.values()) else 1

    if args.command == "census":
        from repro.experiments.witnesses import incomparability_census
        from repro.fpga.device import Fpga
        from repro.util.rngutil import rng_from_seed

        census = incomparability_census(
            args.samples,
            rng_from_seed(args.seed),
            fpga=Fpga(width=args.width),
        )
        print(census.render())
        return 0

    if args.command == "explain":
        from repro.core.explain import explain as explain_taskset
        from repro.fpga.device import Fpga
        from repro.model.io import load_taskset

        taskset = load_taskset(args.taskset)
        print(explain_taskset(taskset, Fpga(width=args.width)))
        return 0

    if args.command == "simulate":
        from repro.fpga.device import Fpga
        from repro.model.io import load_taskset
        from repro.sched.edf_fkf import EdfFkf
        from repro.sched.edf_nf import EdfNf
        from repro.sim.gantt import render_gantt
        from repro.sim.simulator import default_horizon, simulate as run_sim

        taskset = load_taskset(args.taskset)
        fpga = Fpga(width=args.width)
        scheduler = EdfNf() if args.scheduler == "nf" else EdfFkf()
        horizon = (
            args.horizon if args.horizon is not None else default_horizon(taskset)
        )
        result = run_sim(
            taskset, fpga, scheduler, horizon, record_trace=args.gantt
        )
        print(f"scheduler: {scheduler.name}, horizon: {float(horizon):g}")
        if result.schedulable:
            print("no deadline misses")
        else:
            m = result.misses[0]
            print(f"MISS: {m.task}#{m.job_index} at t={float(m.deadline):g} "
                  f"(remaining {float(m.remaining):g})")
        met = result.metrics
        print(f"released {met.jobs_released}, completed {met.jobs_completed}, "
              f"preemptions {met.preemptions}, "
              f"avg occupancy {met.average_occupancy(fpga.capacity):.1%}")
        for name, resp in sorted(met.worst_response.items()):
            print(f"  worst response {name}: {float(resp):g}")
        if args.gantt and result.trace is not None:
            print()
            print(render_gantt(result.trace))
        return 0 if result.schedulable else 1

    from repro.fpga.placement import PlacementPolicy
    from repro.sim.simulator import MigrationMode

    if args.array_backend is not None:
        # Process-wide so the analytical kernels (DP/GN1/GN2 curves)
        # follow the selection too; the explicit sim_array_backend kwarg
        # below covers the simulator even without the override.
        from repro.vector import xp as array_xp

        array_xp.set_backend(args.array_backend)
    exp = get_experiment(args.experiment)
    samples = args.samples if args.samples is not None else exp.default_samples
    curves = exp.runner(samples, args.seed, args.workers,
                        sim_backend=args.sim_backend,
                        sim_array_backend=args.array_backend,
                        ci_target=args.ci_target,
                        sim_mode=MigrationMode(args.sim_mode),
                        sim_policy=PlacementPolicy(args.sim_policy),
                        sim_release=args.sim_release,
                        sim_jitter=args.sim_jitter,
                        sim_workers=args.sim_workers,
                        sim_search=args.sim_search,
                        sim_search_rounds=args.search_rounds,
                        sim_elite_frac=args.elite_frac)
    output = render(curves, args.format)
    if args.plot:
        lines = [output, ""]
        for label in curves.labels:
            lines.append(sparkline(curves, label))
        output = "\n".join(lines)
    if args.svg is not None:
        from repro.experiments.svgplot import save_svg

        save_svg(curves, args.svg)
        print(f"wrote {args.svg}")
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(output)
        print(f"wrote {args.out}")
    else:
        print(output)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
