"""Experiment runners regenerating every table and figure of the paper.

* :mod:`repro.experiments.tables` — Tables 1-3 (accept/reject matrix and
  the §6 worked numbers);
* :mod:`repro.experiments.figures` — Figures 3(a,b) and 4(a,b)
  (acceptance ratio vs total system utilization, tests + simulation);
* :mod:`repro.experiments.ablations` — the DESIGN.md ablation studies
  (integer vs real α, EDF-NF vs EDF-FkF, placement modes, offset search);
* :mod:`repro.experiments.acceptance` — the shared acceptance-ratio
  engine (vectorized tests, simulation subsampling, parallel workers);
* :mod:`repro.experiments.churn` — online admission under an
  arrival/departure stream, scored through :mod:`repro.incremental`;
* :mod:`repro.experiments.report` — text/CSV/markdown rendering;
* :mod:`repro.experiments.cli` — ``repro-experiments`` command line.
"""

from repro.experiments.acceptance import (
    AcceptanceCurves,
    AcceptanceSeries,
    acceptance_experiment,
    feasible_batch_at,
)
from repro.experiments.churn import churn_experiment
from repro.experiments.claims import check_figure
from repro.experiments.figures import FIGURES, FigureSpec, run_figure
from repro.experiments.tables import TABLE_TASKSETS, run_tables
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.witnesses import (
    acceptance_pattern,
    find_witness,
    incomparability_census,
)

__all__ = [
    "AcceptanceCurves",
    "AcceptanceSeries",
    "acceptance_experiment",
    "feasible_batch_at",
    "FIGURES",
    "FigureSpec",
    "run_figure",
    "TABLE_TASKSETS",
    "run_tables",
    "EXPERIMENTS",
    "get_experiment",
    "check_figure",
    "churn_experiment",
    "acceptance_pattern",
    "find_witness",
    "incomparability_census",
]
