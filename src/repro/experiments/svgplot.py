"""Dependency-free SVG line charts for the acceptance-ratio figures.

matplotlib is not available in minimal environments, and the paper's
figures are simple multi-series line plots — so this module writes them
directly as SVG: one polyline per series, axes, ticks, grid and a legend.
`repro-experiments run figX --svg out.svg` regenerates a figure *image*
comparable to the paper's.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.experiments.acceptance import AcceptanceCurves

#: Color cycle (colorblind-safe-ish) for up to eight series.
PALETTE = [
    "#0072b2",  # blue
    "#d55e00",  # vermillion
    "#009e73",  # green
    "#cc79a7",  # magenta
    "#e69f00",  # orange
    "#56b4e9",  # sky
    "#f0e442",  # yellow
    "#000000",  # black
]

_DASHES = ["none", "6,3", "2,2", "8,3,2,3", "none", "6,3", "2,2", "8,3,2,3"]


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def render_svg(
    curves: AcceptanceCurves,
    width: int = 640,
    height: int = 420,
    normalize_x: bool = False,
    title: Optional[str] = None,
) -> str:
    """Render the curves as a standalone SVG document (string)."""
    if width < 200 or height < 150:
        raise ValueError("canvas too small to be legible (min 200x150)")
    margin_l, margin_r, margin_t, margin_b = 56, 16, 36, 44
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b

    xs_raw = list(curves.series[0].utilizations)
    if normalize_x:
        xs_raw = [u / curves.capacity for u in xs_raw]
    x_min, x_max = min(xs_raw), max(xs_raw)
    if x_max == x_min:
        x_max = x_min + 1.0

    def sx(x: float) -> float:
        return margin_l + (x - x_min) / (x_max - x_min) * plot_w

    def sy(y: float) -> float:
        return margin_t + (1.0 - y) * plot_h

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]

    # grid + y ticks at 0, .25, .5, .75, 1
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        y = sy(frac)
        parts.append(
            f'<line x1="{margin_l}" y1="{y:.1f}" x2="{margin_l + plot_w}" '
            f'y2="{y:.1f}" stroke="#dddddd" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{margin_l - 6}" y="{y + 4:.1f}" text-anchor="end" '
            f'font-size="11" font-family="sans-serif">{frac:g}</text>'
        )
    # x ticks: ~6 round values
    n_ticks = 6
    for i in range(n_ticks):
        x_val = x_min + (x_max - x_min) * i / (n_ticks - 1)
        x = sx(x_val)
        parts.append(
            f'<line x1="{x:.1f}" y1="{margin_t + plot_h}" x2="{x:.1f}" '
            f'y2="{margin_t + plot_h + 4}" stroke="#333333"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{margin_t + plot_h + 17}" text-anchor="middle" '
            f'font-size="11" font-family="sans-serif">{x_val:.2g}</text>'
        )

    # axes
    parts.append(
        f'<rect x="{margin_l}" y="{margin_t}" width="{plot_w}" height="{plot_h}" '
        f'fill="none" stroke="#333333" stroke-width="1"/>'
    )
    # axis labels + title
    x_label = "US(Γ) / A(H)" if normalize_x else "total system utilization US(Γ)"
    parts.append(
        f'<text x="{margin_l + plot_w / 2:.0f}" y="{height - 8}" '
        f'text-anchor="middle" font-size="12" font-family="sans-serif">'
        f"{_escape(x_label)}</text>"
    )
    parts.append(
        f'<text x="14" y="{margin_t + plot_h / 2:.0f}" text-anchor="middle" '
        f'font-size="12" font-family="sans-serif" '
        f'transform="rotate(-90 14 {margin_t + plot_h / 2:.0f})">'
        f"acceptance ratio</text>"
    )
    parts.append(
        f'<text x="{margin_l + plot_w / 2:.0f}" y="20" text-anchor="middle" '
        f'font-size="13" font-weight="bold" font-family="sans-serif">'
        f"{_escape(title or curves.name)}</text>"
    )

    # series
    for idx, series in enumerate(curves.series):
        color = PALETTE[idx % len(PALETTE)]
        dash = _DASHES[idx % len(_DASHES)]
        points: List[Tuple[float, float]] = [
            (sx(x), sy(max(0.0, min(1.0, r))))
            for x, r in zip(xs_raw, series.ratios)
            if not math.isnan(r)
        ]
        if not points:
            continue
        path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        dash_attr = "" if dash == "none" else f' stroke-dasharray="{dash}"'
        parts.append(
            f'<polyline points="{path}" fill="none" stroke="{color}" '
            f'stroke-width="1.8"{dash_attr}/>'
        )
        for x, y in points:
            parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="2.2" fill="{color}"/>')

    # legend (top-right inside plot)
    legend_x = margin_l + plot_w - 150
    legend_y = margin_t + 10
    for idx, series in enumerate(curves.series):
        color = PALETTE[idx % len(PALETTE)]
        y = legend_y + idx * 16
        parts.append(
            f'<line x1="{legend_x}" y1="{y}" x2="{legend_x + 22}" y2="{y}" '
            f'stroke="{color}" stroke-width="2"/>'
        )
        parts.append(
            f'<text x="{legend_x + 28}" y="{y + 4}" font-size="11" '
            f'font-family="sans-serif">{_escape(series.label)}</text>'
        )

    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(curves: AcceptanceCurves, path, **kwargs) -> None:
    """Write :func:`render_svg` output to a file (parents created)."""
    from pathlib import Path

    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(render_svg(curves, **kwargs))
