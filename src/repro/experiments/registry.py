"""Experiment registry: id -> runner, for the CLI and the benchmarks.

Every table/figure/ablation in DESIGN.md's experiment index is reachable
from here, so ``repro-experiments run <id>`` regenerates any artifact of
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.experiments import ablations
from repro.experiments.acceptance import AcceptanceCurves
from repro.experiments.figures import FIGURES, run_figure


@dataclass(frozen=True)
class Experiment:
    """A runnable experiment with scalable sample counts."""

    experiment_id: str
    description: str
    #: (samples, seed, workers, sim_backend="vector") -> AcceptanceCurves
    runner: Callable[..., AcceptanceCurves]
    default_samples: int


def _figure_runner(figure_id: str):
    def run(
        samples: int, seed: int, workers: int, sim_backend: str = "vector"
    ) -> AcceptanceCurves:
        # The vector backend simulates the whole bucket; the scalar one
        # keeps the historical 1-in-10 subsample to stay affordable.
        sim_samples = None if sim_backend == "vector" else max(1, samples // 10)
        return run_figure(
            figure_id,
            samples=samples,
            seed=seed,
            sim_samples=sim_samples,
            sim_backend=sim_backend,
            workers=workers,
        )

    return run


EXPERIMENTS: Dict[str, Experiment] = {
    **{
        fid: Experiment(
            fid,
            spec.title,
            _figure_runner(fid),
            default_samples=1000,
        )
        for fid, spec in FIGURES.items()
    },
    "ablation-alpha": Experiment(
        "ablation-alpha",
        "DP with integer-area alpha vs Danne's real-area alpha",
        lambda samples, seed, workers, sim_backend="vector": ablations.alpha_ablation(
            samples=samples, seed=seed
        ),
        default_samples=2000,
    ),
    "ablation-nf-fkf": Experiment(
        "ablation-nf-fkf",
        "Simulated acceptance of EDF-NF vs EDF-FkF",
        lambda samples, seed, workers, sim_backend="vector": ablations.nf_vs_fkf_ablation(
            samples=samples, seed=seed, workers=workers, sim_backend=sim_backend
        ),
        default_samples=60,
    ),
    # Placement-aware and offset-searched ablations stay on the scalar
    # simulator: they exercise modes the vector backend does not cover.
    "ablation-placement": Experiment(
        "ablation-placement",
        "Free migration vs contiguous placement (fragmentation cost)",
        lambda samples, seed, workers, sim_backend="vector": ablations.placement_ablation(
            samples=samples, seed=seed
        ),
        default_samples=40,
    ),
    "ablation-offsets": Experiment(
        "ablation-offsets",
        "Synchronous-release simulation vs offset-searched upper bound",
        lambda samples, seed, workers, sim_backend="vector": ablations.offset_ablation(
            samples=samples, seed=seed
        ),
        default_samples=40,
    ),
}


def get_experiment(experiment_id: str) -> Experiment:
    """Look an experiment up by id (KeyError lists the known ids)."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
