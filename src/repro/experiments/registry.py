"""Experiment registry: id -> runner, for the CLI and the benchmarks.

Every table/figure/ablation in DESIGN.md's experiment index is reachable
from here, so ``repro-experiments run <id>`` regenerates any artifact of
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.experiments import ablations, churn
from repro.experiments.acceptance import AcceptanceCurves
from repro.experiments.figures import FIGURES, run_figure
from repro.fpga.placement import PlacementPolicy
from repro.sim.simulator import MigrationMode


@dataclass(frozen=True)
class Experiment:
    """A runnable experiment with scalable sample counts."""

    experiment_id: str
    description: str
    #: (samples, seed, workers, sim_backend="vector",
    #: sim_array_backend=None, ci_target=None, sim_mode=...,
    #: sim_policy=..., sim_release=..., sim_jitter=..., sim_workers=...,
    #: sim_search=..., sim_search_rounds=..., sim_elite_frac=...)
    #: -> AcceptanceCurves.  Runners that cannot honour a knob (e.g.
    #: ci_target on the offset search, the sim_* sweeps on ablations
    #: that sweep those axes themselves, or sim_search on experiments
    #: without a pattern search) accept and ignore it.
    runner: Callable[..., AcceptanceCurves]
    default_samples: int


def _figure_runner(figure_id: str):
    def run(
        samples: int,
        seed: int,
        workers: int,
        sim_backend: str = "vector",
        sim_array_backend: Optional[str] = None,
        ci_target: Optional[float] = None,
        sim_mode: MigrationMode = MigrationMode.FREE,
        sim_policy: PlacementPolicy = PlacementPolicy.FIRST_FIT,
        sim_release: str = "periodic",
        sim_jitter: float = 0.5,
        sim_workers: Optional[int] = None,
        **_sim_kw,  # sim_search etc.: no pattern search on figure curves
    ) -> AcceptanceCurves:
        # The vector backend simulates the whole bucket; the scalar one
        # keeps the historical 1-in-10 subsample to stay affordable.
        sim_samples = None if sim_backend == "vector" else max(1, samples // 10)
        return run_figure(
            figure_id,
            samples=samples,
            seed=seed,
            sim_samples=sim_samples,
            sim_backend=sim_backend,
            sim_array_backend=sim_array_backend,
            sim_mode=sim_mode,
            sim_policy=sim_policy,
            sim_release=sim_release,
            sim_jitter=sim_jitter,
            workers=workers,
            sim_workers=sim_workers,
            ci_target=ci_target,
        )

    return run


EXPERIMENTS: Dict[str, Experiment] = {
    **{
        fid: Experiment(
            fid,
            spec.title,
            _figure_runner(fid),
            default_samples=1000,
        )
        for fid, spec in FIGURES.items()
    },
    "ablation-alpha": Experiment(
        "ablation-alpha",
        "DP with integer-area alpha vs Danne's real-area alpha",
        lambda samples, seed, workers, sim_backend="vector", ci_target=None,
        **_sim_kw:
            ablations.alpha_ablation(
                samples=samples, seed=seed, ci_target=ci_target
            ),
        default_samples=2000,
    ),
    "ablation-nf-fkf": Experiment(
        "ablation-nf-fkf",
        "Simulated acceptance of EDF-NF vs EDF-FkF",
        lambda samples, seed, workers, sim_backend="vector",
        sim_array_backend=None, ci_target=None, **_sim_kw:
            ablations.nf_vs_fkf_ablation(
                samples=samples, seed=seed, workers=workers,
                sim_backend=sim_backend,
                sim_array_backend=sim_array_backend, ci_target=ci_target,
            ),
        default_samples=60,
    ),
    # Every simulation-backed ablation runs on the batched vector
    # simulator by default (the scalar event loop is kept behind
    # sim_backend="scalar" for cross-checks) — including the
    # release-pattern searches, which fan their pattern axis into the
    # batch dimension and take the sim_search axis ("uniform" draws,
    # "adaptive" = the repro.search cross-entropy importance sampler
    # with sim_search_rounds / sim_elite_frac knobs).
    "ablation-placement": Experiment(
        "ablation-placement",
        "Free migration vs contiguous placement (fragmentation cost)",
        lambda samples, seed, workers, sim_backend="vector",
        sim_array_backend=None, ci_target=None, **_sim_kw:
            ablations.placement_ablation(
                samples=samples, seed=seed, sim_backend=sim_backend,
                array_backend=sim_array_backend,
            ),
        default_samples=400,
    ),
    "ablation-offsets": Experiment(
        "ablation-offsets",
        "Synchronous-release simulation vs offset-searched upper bound",
        lambda samples, seed, workers, sim_backend="vector",
        sim_array_backend=None, ci_target=None, sim_search="uniform",
        sim_search_rounds=4, sim_elite_frac=0.25, **_sim_kw:
            ablations.offset_ablation(
                samples=samples, seed=seed, sim_backend=sim_backend,
                array_backend=sim_array_backend, search=sim_search,
                search_rounds=sim_search_rounds, elite_frac=sim_elite_frac,
            ),
        default_samples=200,
    ),
    "churn": Experiment(
        "churn",
        "Online admission under arrival/departure churn (incremental engine)",
        churn.churn_runner,
        default_samples=400,
    ),
    "ablation-sporadic": Experiment(
        "ablation-sporadic",
        "Periodic-release simulation vs sporadic-searched upper bound",
        lambda samples, seed, workers, sim_backend="vector",
        sim_array_backend=None, ci_target=None, sim_jitter=0.5,
        sim_search="uniform", sim_search_rounds=4, sim_elite_frac=0.25,
        **_sim_kw:
            ablations.sporadic_ablation(
                samples=samples, seed=seed, sim_backend=sim_backend,
                jitter=sim_jitter, array_backend=sim_array_backend,
                search=sim_search, search_rounds=sim_search_rounds,
                elite_frac=sim_elite_frac,
            ),
        default_samples=200,
    ),
}


def get_experiment(experiment_id: str) -> Experiment:
    """Look an experiment up by id (KeyError lists the known ids)."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
