"""Experiment registry: id -> runner, for the CLI and the benchmarks.

Every table/figure/ablation in DESIGN.md's experiment index is reachable
from here, so ``repro-experiments run <id>`` regenerates any artifact of
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.experiments import ablations
from repro.experiments.acceptance import AcceptanceCurves
from repro.experiments.figures import FIGURES, run_figure


@dataclass(frozen=True)
class Experiment:
    """A runnable experiment with scalable sample counts."""

    experiment_id: str
    description: str
    #: (samples, seed, workers, sim_backend="vector", ci_target=None)
    #: -> AcceptanceCurves.  Runners that cannot honour a knob (e.g.
    #: ci_target on the offset search) accept and ignore it.
    runner: Callable[..., AcceptanceCurves]
    default_samples: int


def _figure_runner(figure_id: str):
    def run(
        samples: int,
        seed: int,
        workers: int,
        sim_backend: str = "vector",
        ci_target: Optional[float] = None,
    ) -> AcceptanceCurves:
        # The vector backend simulates the whole bucket; the scalar one
        # keeps the historical 1-in-10 subsample to stay affordable.
        sim_samples = None if sim_backend == "vector" else max(1, samples // 10)
        return run_figure(
            figure_id,
            samples=samples,
            seed=seed,
            sim_samples=sim_samples,
            sim_backend=sim_backend,
            workers=workers,
            ci_target=ci_target,
        )

    return run


EXPERIMENTS: Dict[str, Experiment] = {
    **{
        fid: Experiment(
            fid,
            spec.title,
            _figure_runner(fid),
            default_samples=1000,
        )
        for fid, spec in FIGURES.items()
    },
    "ablation-alpha": Experiment(
        "ablation-alpha",
        "DP with integer-area alpha vs Danne's real-area alpha",
        lambda samples, seed, workers, sim_backend="vector", ci_target=None:
            ablations.alpha_ablation(
                samples=samples, seed=seed, ci_target=ci_target
            ),
        default_samples=2000,
    ),
    "ablation-nf-fkf": Experiment(
        "ablation-nf-fkf",
        "Simulated acceptance of EDF-NF vs EDF-FkF",
        lambda samples, seed, workers, sim_backend="vector", ci_target=None:
            ablations.nf_vs_fkf_ablation(
                samples=samples, seed=seed, workers=workers,
                sim_backend=sim_backend, ci_target=ci_target,
            ),
        default_samples=60,
    ),
    # The placement ablation runs on the vectorized array free-list by
    # default (scalar kept for cross-checks); only the offset search
    # still needs the scalar event loop, which the vector backend does
    # not replicate (batched offsets are a ROADMAP item).
    "ablation-placement": Experiment(
        "ablation-placement",
        "Free migration vs contiguous placement (fragmentation cost)",
        lambda samples, seed, workers, sim_backend="vector", ci_target=None:
            ablations.placement_ablation(
                samples=samples, seed=seed, sim_backend=sim_backend
            ),
        default_samples=400,
    ),
    "ablation-offsets": Experiment(
        "ablation-offsets",
        "Synchronous-release simulation vs offset-searched upper bound",
        lambda samples, seed, workers, sim_backend="vector", ci_target=None:
            ablations.offset_ablation(
                samples=samples, seed=seed
            ),
        default_samples=40,
    ),
}


def get_experiment(experiment_id: str) -> Experiment:
    """Look an experiment up by id (KeyError lists the known ids)."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
