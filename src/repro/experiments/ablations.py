"""Ablation studies for the design choices DESIGN.md calls out.

* :func:`alpha_ablation` — the paper's §3 integer-area correction
  (``Abnd = A(H)-Amax+1``) vs Danne & Platzner's real-area original:
  how much acceptance the one extra guaranteed-busy column buys.
* :func:`nf_vs_fkf_ablation` — simulated acceptance of EDF-NF vs EDF-FkF
  (the §1 dominance claim, quantified).
* :func:`placement_ablation` — §7 future work: how much schedulability
  the free-migration assumption is worth (FREE vs RELOCATABLE vs PINNED,
  by placement policy).
* :func:`offset_ablation` — §6's "simulation is only an upper bound":
  how much the synchronous-release acceptance drops when random release
  offsets are searched for counterexamples.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.experiments.acceptance import (
    AcceptanceCurves,
    AcceptanceSeries,
    acceptance_experiment,
    feasible_batch_at,
)
from repro.fpga.device import Fpga
from repro.fpga.placement import PlacementPolicy
from repro.gen.profiles import GenerationProfile, paper_unconstrained
from repro.sched.edf_nf import EdfNf
from repro.sim.offsets import simulate_with_offsets
from repro.sim.simulator import MigrationMode, default_horizon, simulate
from repro.util.rngutil import rng_from_seed, spawn_rngs
from repro.vector.sim_vec import simulate_batch


def alpha_ablation(
    profile: GenerationProfile = None,
    us_grid: Sequence[float] = tuple(range(10, 100, 10)),
    samples: int = 2000,
    seed: int = 31,
    ci_target: Optional[float] = None,
) -> AcceptanceCurves:
    """DP with integer-area α vs Danne's real-area α (no simulation)."""
    profile = profile or paper_unconstrained(10)
    return acceptance_experiment(
        profile,
        Fpga(width=100),
        us_grid,
        samples_per_point=samples,
        seed=seed,
        tests=("DP", "DP-real"),
        sim_schedulers=(),
        name="ablation: integer vs real alpha",
        ci_target=ci_target,
    )


def nf_vs_fkf_ablation(
    profile: GenerationProfile = None,
    us_grid: Sequence[float] = tuple(range(20, 100, 10)),
    samples: int = 60,
    seed: int = 37,
    workers: int = 1,
    sim_backend: str = "vector",
    ci_target: Optional[float] = None,
) -> AcceptanceCurves:
    """Simulated acceptance of the two global EDF variants."""
    profile = profile or paper_unconstrained(10)
    return acceptance_experiment(
        profile,
        Fpga(width=100),
        us_grid,
        samples_per_point=samples,
        seed=seed,
        tests=(),
        sim_schedulers=("EDF-NF", "EDF-FkF"),
        sim_samples_per_point=None if ci_target is not None else samples,
        sim_backend=sim_backend,
        workers=workers,
        name="ablation: EDF-NF vs EDF-FkF (simulation)",
        ci_target=ci_target,
    )


def placement_ablation(
    profile: GenerationProfile = None,
    us_grid: Sequence[float] = tuple(range(20, 100, 10)),
    samples: int = 40,
    seed: int = 41,
    policies: Sequence[PlacementPolicy] = (PlacementPolicy.FIRST_FIT,),
    horizon_factor: int = 10,
    sim_backend: str = "vector",
    fpga: Optional[Fpga] = None,
) -> AcceptanceCurves:
    """Simulated acceptance: free migration vs contiguous placement modes.

    Quantifies the cost of dropping the paper's unrestricted-migration
    assumption — the gap between ``FREE`` and ``RELOCATABLE`` is pure
    fragmentation loss; ``PINNED`` additionally loses relocation.  Pass
    an ``fpga`` with static regions to study pre-fragmented devices.

    Every mode/policy curve shares the same per-bucket batches, so the
    gaps are paired comparisons.  ``sim_backend="vector"`` (default)
    runs each curve through the batched simulator's array free-list and
    makes full paper-scale buckets affordable; ``"scalar"`` walks the
    per-taskset event loop (bit-identical verdicts, for cross-checks).
    """
    profile = profile or paper_unconstrained(10)
    if sim_backend not in ("vector", "scalar"):
        raise ValueError(f"unknown sim_backend {sim_backend!r}")
    fpga = fpga or Fpga(width=100)
    rngs = spawn_rngs(seed, len(us_grid))
    configs = [("sim:FREE", MigrationMode.FREE, PlacementPolicy.FIRST_FIT)]
    configs += [
        (f"sim:RELOC/{p.value}", MigrationMode.RELOCATABLE, p) for p in policies
    ]
    configs += [("sim:PINNED", MigrationMode.PINNED, PlacementPolicy.FIRST_FIT)]
    ratios: Dict[str, list] = {label: [] for label, _, _ in configs}
    for i, us in enumerate(us_grid):
        batch = feasible_batch_at(profile, float(us), samples, rngs[i])
        if sim_backend == "vector":
            for label, mode, policy in configs:
                res = simulate_batch(
                    batch, fpga, "EDF-NF",
                    mode=mode, placement_policy=policy,
                    horizon_factor=horizon_factor,
                )
                ratios[label].append(res.acceptance_ratio)
        else:
            tasksets = batch.to_tasksets()
            outcomes: Dict[str, int] = {label: 0 for label, _, _ in configs}
            for ts in tasksets:
                horizon = default_horizon(ts, factor=horizon_factor)
                for label, mode, policy in configs:
                    outcomes[label] += simulate(
                        ts, fpga, EdfNf(), horizon,
                        mode=mode, placement_policy=policy,
                    ).schedulable
            for label, _, _ in configs:
                ratios[label].append(outcomes[label] / len(tasksets))
    buckets = tuple(float(u) for u in us_grid)
    return AcceptanceCurves(
        name="ablation: placement modes",
        capacity=fpga.capacity,
        samples_per_point=samples,
        sim_samples_per_point=samples,
        series=tuple(
            AcceptanceSeries(label, buckets, tuple(vals))
            for label, vals in ratios.items()
        ),
    )


def offset_ablation(
    profile: GenerationProfile = None,
    us_grid: Sequence[float] = tuple(range(30, 100, 10)),
    samples: int = 40,
    offset_samples: int = 10,
    seed: int = 43,
    horizon_factor: int = 10,
) -> AcceptanceCurves:
    """Synchronous-release acceptance vs offset-searched acceptance."""
    profile = profile or paper_unconstrained(10)
    fpga = Fpga(width=100)
    rngs = spawn_rngs(seed, len(us_grid))
    sync_ratios, offset_ratios = [], []
    for i, us in enumerate(us_grid):
        batch = feasible_batch_at(profile, float(us), samples, rngs[i])
        offset_rng = rng_from_seed(seed * 1000 + i)
        sync_ok = 0
        offset_ok = 0
        for ts in batch.to_tasksets():
            horizon = default_horizon(ts, factor=horizon_factor)
            if simulate(ts, fpga, EdfNf(), horizon).schedulable:
                sync_ok += 1
                if simulate_with_offsets(
                    ts, fpga, EdfNf(), horizon, offset_rng,
                    samples=offset_samples, include_synchronous=False,
                ).schedulable:
                    offset_ok += 1
        sync_ratios.append(sync_ok / samples)
        offset_ratios.append(offset_ok / samples)
    buckets = tuple(float(u) for u in us_grid)
    return AcceptanceCurves(
        name="ablation: synchronous vs offset-searched simulation",
        capacity=fpga.capacity,
        samples_per_point=samples,
        sim_samples_per_point=samples,
        series=(
            AcceptanceSeries("sim:synchronous", buckets, tuple(sync_ratios)),
            AcceptanceSeries("sim:offset-search", buckets, tuple(offset_ratios)),
        ),
    )
