"""Ablation studies for the design choices DESIGN.md calls out.

* :func:`alpha_ablation` — the paper's §3 integer-area correction
  (``Abnd = A(H)-Amax+1``) vs Danne & Platzner's real-area original:
  how much acceptance the one extra guaranteed-busy column buys.
* :func:`nf_vs_fkf_ablation` — simulated acceptance of EDF-NF vs EDF-FkF
  (the §1 dominance claim, quantified).
* :func:`placement_ablation` — §7 future work: how much schedulability
  the free-migration assumption is worth (FREE vs RELOCATABLE vs PINNED,
  by placement policy).
* :func:`offset_ablation` — §6's "simulation is only an upper bound":
  how much the synchronous-release acceptance drops when random release
  offsets are searched for counterexamples.
* :func:`sporadic_ablation` — the sporadic sibling: how much acceptance
  drops when jittered inter-arrival patterns are searched as well.

Both release-pattern searches fan their pattern axis into the *batch*
dimension of :func:`repro.vector.sim_vec.simulate_batch` (via the
:mod:`repro.search` drivers): a bucket's ``B`` tasksets are repeated
``P`` times (``B x P`` rows, one pattern per repeat), simulated in one
sweep, and reduced per taskset with "any failing pattern ⇒
unschedulable".  The searched verdict is always *intersected* with the
synchronous/periodic one, so the searched curve is pointwise <= the
baseline curve by construction (a pattern search can only remove
acceptances, never add them).

Both searches take a ``search`` axis: ``"uniform"`` draws patterns
independently (the historical behaviour, still the default), and
``"adaptive"`` spends the *same* per-taskset pattern budget through the
cross-entropy importance sampler of :mod:`repro.search` — per-task
proposals refit on the lowest-``min_slack`` (near-miss) patterns each
round, with a uniform-mixture exploration floor.  Every adaptive sample
is still a legal pattern and the intersection invariant is unchanged,
so adaptivity can only *lower* the searched curve toward the true
acceptance — more counterexamples found per simulated pattern.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.experiments.acceptance import (
    AcceptanceCurves,
    AcceptanceSeries,
    acceptance_experiment,
    feasible_batch_at,
)
from repro.fpga.device import Fpga
from repro.fpga.placement import PlacementPolicy
from repro.gen.profiles import GenerationProfile, paper_unconstrained
from repro.sched.edf_nf import EdfNf
from repro.search.drivers import (
    adaptive_offset_search_batch,
    adaptive_sporadic_search_batch,
    uniform_offset_search_batch,
    uniform_sporadic_search_batch,
)
from repro.search.proposal import SearchConfig
from repro.sim.offsets import (
    adaptive_offset_search,
    sample_offsets,
    simulate_with_offsets,
)
from repro.sim.simulator import MigrationMode, default_horizon, simulate
from repro.sim.sporadic import (
    adaptive_sporadic_search,
    sample_release_schedule,
    simulate_release_schedule,
)
from repro.util.rngutil import rng_from_seed, spawn_rngs
from repro.vector.batch import TaskSetBatch
from repro.vector.sim_vec import simulate_batch


def _batch_rows(batch: TaskSetBatch, idx: "np.ndarray") -> TaskSetBatch:
    return TaskSetBatch(
        batch.wcet[idx], batch.period[idx], batch.deadline[idx], batch.area[idx]
    )


def _search_config(search: str, search_rounds: int, elite_frac: float) -> SearchConfig:
    """Validate the search axis shared by both release-pattern ablations."""
    if search not in ("uniform", "adaptive"):
        raise ValueError(f"unknown search {search!r} (uniform or adaptive)")
    return SearchConfig(rounds=search_rounds, elite_frac=elite_frac)


def alpha_ablation(
    profile: GenerationProfile = None,
    us_grid: Sequence[float] = tuple(range(10, 100, 10)),
    samples: int = 2000,
    seed: int = 31,
    ci_target: Optional[float] = None,
) -> AcceptanceCurves:
    """DP with integer-area α vs Danne's real-area α (no simulation)."""
    profile = profile or paper_unconstrained(10)
    return acceptance_experiment(
        profile,
        Fpga(width=100),
        us_grid,
        samples_per_point=samples,
        seed=seed,
        tests=("DP", "DP-real"),
        sim_schedulers=(),
        name="ablation: integer vs real alpha",
        ci_target=ci_target,
    )


def nf_vs_fkf_ablation(
    profile: GenerationProfile = None,
    us_grid: Sequence[float] = tuple(range(20, 100, 10)),
    samples: int = 60,
    seed: int = 37,
    workers: int = 1,
    sim_backend: str = "vector",
    sim_array_backend: Optional[str] = None,
    ci_target: Optional[float] = None,
) -> AcceptanceCurves:
    """Simulated acceptance of the two global EDF variants."""
    profile = profile or paper_unconstrained(10)
    return acceptance_experiment(
        profile,
        Fpga(width=100),
        us_grid,
        samples_per_point=samples,
        seed=seed,
        tests=(),
        sim_schedulers=("EDF-NF", "EDF-FkF"),
        sim_samples_per_point=None if ci_target is not None else samples,
        sim_backend=sim_backend,
        sim_array_backend=sim_array_backend,
        workers=workers,
        name="ablation: EDF-NF vs EDF-FkF (simulation)",
        ci_target=ci_target,
    )


def placement_ablation(
    profile: GenerationProfile = None,
    us_grid: Sequence[float] = tuple(range(20, 100, 10)),
    samples: int = 40,
    seed: int = 41,
    policies: Sequence[PlacementPolicy] = (PlacementPolicy.FIRST_FIT,),
    horizon_factor: int = 10,
    sim_backend: str = "vector",
    array_backend: Optional[str] = None,
    fpga: Optional[Fpga] = None,
) -> AcceptanceCurves:
    """Simulated acceptance: free migration vs contiguous placement modes.

    Quantifies the cost of dropping the paper's unrestricted-migration
    assumption — the gap between ``FREE`` and ``RELOCATABLE`` is pure
    fragmentation loss; ``PINNED`` additionally loses relocation.  Pass
    an ``fpga`` with static regions to study pre-fragmented devices.

    Every mode/policy curve shares the same per-bucket batches, so the
    gaps are paired comparisons.  ``sim_backend="vector"`` (default)
    runs each curve through the batched simulator's array free-list and
    makes full paper-scale buckets affordable; ``"scalar"`` walks the
    per-taskset event loop (bit-identical verdicts, for cross-checks).
    ``array_backend`` selects the :mod:`repro.vector.xp` namespace the
    batched simulator computes on (``None`` = ambient precedence).
    """
    profile = profile or paper_unconstrained(10)
    if sim_backend not in ("vector", "scalar"):
        raise ValueError(f"unknown sim_backend {sim_backend!r}")
    fpga = fpga or Fpga(width=100)
    rngs = spawn_rngs(seed, len(us_grid))
    configs = [("sim:FREE", MigrationMode.FREE, PlacementPolicy.FIRST_FIT)]
    configs += [
        (f"sim:RELOC/{p.value}", MigrationMode.RELOCATABLE, p) for p in policies
    ]
    configs += [("sim:PINNED", MigrationMode.PINNED, PlacementPolicy.FIRST_FIT)]
    ratios: Dict[str, list] = {label: [] for label, _, _ in configs}
    for i, us in enumerate(us_grid):
        batch = feasible_batch_at(profile, float(us), samples, rngs[i])
        if sim_backend == "vector":
            for label, mode, policy in configs:
                res = simulate_batch(
                    batch, fpga, "EDF-NF",
                    mode=mode, placement_policy=policy,
                    horizon_factor=horizon_factor,
                    array_backend=array_backend,
                )
                ratios[label].append(res.acceptance_ratio)
        else:
            tasksets = batch.to_tasksets()
            outcomes: Dict[str, int] = {label: 0 for label, _, _ in configs}
            for ts in tasksets:
                horizon = default_horizon(ts, factor=horizon_factor)
                for label, mode, policy in configs:
                    outcomes[label] += simulate(
                        ts, fpga, EdfNf(), horizon,
                        mode=mode, placement_policy=policy,
                    ).schedulable
            for label, _, _ in configs:
                ratios[label].append(outcomes[label] / len(tasksets))
    buckets = tuple(float(u) for u in us_grid)
    return AcceptanceCurves(
        name="ablation: placement modes",
        capacity=fpga.capacity,
        samples_per_point=samples,
        sim_samples_per_point=samples,
        series=tuple(
            AcceptanceSeries(label, buckets, tuple(vals))
            for label, vals in ratios.items()
        ),
    )


def offset_ablation(
    profile: GenerationProfile = None,
    us_grid: Sequence[float] = tuple(range(30, 100, 10)),
    samples: int = 40,
    offset_samples: int = 10,
    seed: int = 43,
    horizon_factor: int = 10,
    sim_backend: str = "vector",
    array_backend: Optional[str] = None,
    search: str = "uniform",
    search_rounds: int = 4,
    elite_frac: float = 0.25,
) -> AcceptanceCurves:
    """Synchronous-release acceptance vs offset-searched acceptance.

    ``sim_backend="vector"`` (default) fans the ``offset_samples``
    pattern axis into the batch dimension — ``samples x offset_samples``
    rows per bucket, one :func:`simulate_batch` sweep — which makes
    full-bucket searches affordable; ``"scalar"`` walks the per-taskset
    event loop through :func:`repro.sim.offsets.simulate_with_offsets`
    (bit-identical verdicts and identical offset draws, for
    cross-checks).

    ``search`` picks how the per-taskset budget of ``offset_samples``
    patterns is spent: ``"uniform"`` (default) draws assignments
    independently; ``"adaptive"`` runs the cross-entropy importance
    sampler of :mod:`repro.search` (``search_rounds`` rounds,
    ``elite_frac`` refit fraction) seeded per taskset, so low-slack
    regions of offset space get the budget.  Both searches support both
    backends with bit-identical curves (per-taskset streams under
    adaptive, a shared taskset-major stream under uniform).

    Soundness invariants (both searches, both backends):

    * every sampled offset lies in ``[0, T_i)`` — a legal pattern — and
      every pattern's window is extended by its largest offset (the
      horizon-extension rule — see :mod:`repro.sim.offsets`), so offset
      tasks never see fewer simulated jobs than the synchronous run;
    * the searched verdict is the *intersection* of the synchronous
      verdict and all sampled patterns, so the offset-searched curve is
      pointwise <= the synchronous curve.
    """
    profile = profile or paper_unconstrained(10)
    if sim_backend not in ("vector", "scalar"):
        raise ValueError(f"unknown sim_backend {sim_backend!r}")
    if offset_samples < 0:
        raise ValueError("offset_samples must be >= 0")
    config = _search_config(search, search_rounds, elite_frac)
    fpga = Fpga(width=100)
    rngs = spawn_rngs(seed, len(us_grid))
    sync_ratios, offset_ratios = [], []
    for i, us in enumerate(us_grid):
        batch = feasible_batch_at(profile, float(us), samples, rngs[i])
        # Uniform search shares one taskset-major stream per bucket; the
        # adaptive search gives every taskset its own child stream (rows
        # stop independently, so a shared stream would desynchronize).
        offset_rng = rng_from_seed(seed * 1000 + i)
        pattern_rngs = spawn_rngs(seed * 1000 + i, batch.count)
        if sim_backend == "vector":
            sync = simulate_batch(
                batch, fpga, "EDF-NF", horizon_factor=horizon_factor,
                array_backend=array_backend,
            ).schedulable
            searched = sync.copy()
            if offset_samples:
                if search == "uniform":
                    outcome = uniform_offset_search_batch(
                        batch, fpga, "EDF-NF",
                        patterns=offset_samples, rng=offset_rng,
                        horizon_factor=horizon_factor,
                        array_backend=array_backend,
                    )
                    searched &= ~outcome.found
                else:
                    # Only sync-survivors: a sync-failing row's searched
                    # verdict is already False, and per-row streams make
                    # skipping safe (mirrors the scalar branch below).
                    live = np.nonzero(sync)[0]
                    if live.size:
                        outcome = adaptive_offset_search_batch(
                            _batch_rows(batch, live), fpga, "EDF-NF",
                            budget=offset_samples,
                            rngs=[pattern_rngs[b] for b in live],
                            config=config, horizon_factor=horizon_factor,
                            array_backend=array_backend,
                        )
                        searched[live] &= ~outcome.found
            sync_ok = int(sync.sum())
            offset_ok = int(searched.sum())
        else:
            sync_ok = offset_ok = 0
            for b, ts in enumerate(batch.to_tasksets()):
                horizon = default_horizon(ts, factor=horizon_factor)
                sync_passes = simulate(ts, fpga, EdfNf(), horizon).schedulable
                sync_ok += sync_passes
                if search == "adaptive":
                    # Per-taskset streams: sync-failing sets need no
                    # search (their searched verdict is already False)
                    # and skipping them cannot desynchronize the others.
                    searched_passes = sync_passes
                    if searched_passes and offset_samples:
                        searched_passes = adaptive_offset_search(
                            ts, fpga, EdfNf(), horizon, pattern_rngs[b],
                            budget=offset_samples, config=config,
                            include_synchronous=False,
                        ).schedulable
                    offset_ok += searched_passes
                elif sync_passes:
                    searched_passes = simulate_with_offsets(
                        ts, fpga, EdfNf(), horizon, offset_rng,
                        samples=offset_samples, include_synchronous=False,
                    ).schedulable if offset_samples else True
                    offset_ok += searched_passes
                else:
                    # The searched verdict is already False; draw (and
                    # discard) the assignments anyway so the offset
                    # stream stays aligned with the vector backend.
                    for _ in range(offset_samples):
                        sample_offsets(ts, offset_rng)
        sync_ratios.append(sync_ok / samples)
        offset_ratios.append(offset_ok / samples)
    buckets = tuple(float(u) for u in us_grid)
    return AcceptanceCurves(
        name=f"ablation: synchronous vs offset-searched ({search}) simulation",
        capacity=fpga.capacity,
        samples_per_point=samples,
        sim_samples_per_point=samples,
        series=(
            AcceptanceSeries("sim:synchronous", buckets, tuple(sync_ratios)),
            AcceptanceSeries("sim:offset-search", buckets, tuple(offset_ratios)),
        ),
    )


def sporadic_ablation(
    profile: GenerationProfile = None,
    us_grid: Sequence[float] = tuple(range(30, 100, 10)),
    samples: int = 40,
    sporadic_samples: int = 10,
    jitter: float = 0.5,
    seed: int = 47,
    horizon_factor: int = 10,
    sim_backend: str = "vector",
    array_backend: Optional[str] = None,
    search: str = "uniform",
    search_rounds: int = 4,
    elite_frac: float = 0.25,
) -> AcceptanceCurves:
    """Periodic-release acceptance vs sporadic-searched acceptance.

    The paper's task model is sporadic (``T`` is a *minimum*
    inter-arrival time) but its simulation releases strictly
    periodically; this ablation searches ``sporadic_samples`` jittered
    patterns per taskset (gaps ``>= T_i`` always) for counterexamples,
    the release-pattern sibling of :func:`offset_ablation`.  The
    searched verdict is the intersection of the periodic verdict and
    every sampled pattern, so the sporadic curve is pointwise <= the
    periodic curve.

    ``search="uniform"`` (default) draws per-gap jitter independently
    (gaps ``T_i * (1 + U(0, jitter))``); ``"adaptive"`` spends the same
    budget through the cross-entropy sampler of :mod:`repro.search`
    over constant-per-task gap factors (``search_rounds`` rounds,
    ``elite_frac`` refit fraction) — tasks drift against each other at
    fitted rates, steering toward near-miss phase alignments.

    ``sim_backend="vector"`` (default) fans the pattern axis into the
    batch dimension of :func:`simulate_batch`; ``"scalar"`` replays the
    same sampled schedules through
    :func:`repro.sim.sporadic.simulate_release_schedule` (bit-identical
    verdicts on the shared stream, for cross-checks) — under
    ``"adaptive"`` each taskset replays its own child stream through
    :func:`repro.sim.sporadic.adaptive_sporadic_search`.
    """
    profile = profile or paper_unconstrained(10)
    if sim_backend not in ("vector", "scalar"):
        raise ValueError(f"unknown sim_backend {sim_backend!r}")
    if sporadic_samples < 0:
        raise ValueError("sporadic_samples must be >= 0")
    config = _search_config(search, search_rounds, elite_frac)
    fpga = Fpga(width=100)
    rngs = spawn_rngs(seed, len(us_grid))
    periodic_ratios, sporadic_ratios = [], []
    for i, us in enumerate(us_grid):
        batch = feasible_batch_at(profile, float(us), samples, rngs[i])
        pattern_rng = rng_from_seed(seed * 1000 + i)
        pattern_rngs = spawn_rngs(seed * 1000 + i, batch.count)
        if sim_backend == "vector":
            periodic = simulate_batch(
                batch, fpga, "EDF-NF", horizon_factor=horizon_factor,
                array_backend=array_backend,
            ).schedulable
            searched = periodic.copy()
            if sporadic_samples:
                if search == "uniform":
                    outcome = uniform_sporadic_search_batch(
                        batch, fpga, "EDF-NF",
                        patterns=sporadic_samples, rng=pattern_rng,
                        max_jitter_factor=jitter,
                        horizon_factor=horizon_factor,
                        array_backend=array_backend,
                    )
                    searched &= ~outcome.found
                else:
                    # Only periodic-survivors (see offset_ablation).
                    live = np.nonzero(periodic)[0]
                    if live.size:
                        outcome = adaptive_sporadic_search_batch(
                            _batch_rows(batch, live), fpga, "EDF-NF",
                            budget=sporadic_samples,
                            rngs=[pattern_rngs[b] for b in live],
                            max_jitter_factor=jitter, config=config,
                            horizon_factor=horizon_factor,
                            array_backend=array_backend,
                        )
                        searched[live] &= ~outcome.found
            periodic_ok = int(periodic.sum())
            sporadic_ok = int(searched.sum())
        else:
            periodic_ok = sporadic_ok = 0
            for b, ts in enumerate(batch.to_tasksets()):
                horizon = default_horizon(ts, factor=horizon_factor)
                periodic_passes = simulate(
                    ts, fpga, EdfNf(), horizon
                ).schedulable
                periodic_ok += periodic_passes
                if search == "adaptive":
                    # Per-taskset streams (see offset_ablation).
                    all_pass = periodic_passes
                    if all_pass and sporadic_samples:
                        all_pass = adaptive_sporadic_search(
                            ts, fpga, EdfNf(), horizon, pattern_rngs[b],
                            budget=sporadic_samples,
                            max_jitter_factor=jitter, config=config,
                            include_periodic=False,
                        ).schedulable
                else:
                    all_pass = periodic_passes
                    for _ in range(sporadic_samples):
                        # Always sample (stream stays aligned with the
                        # vector backend); only simulate while still
                        # undefeated.
                        schedule = sample_release_schedule(
                            ts, horizon, pattern_rng, jitter
                        )
                        if all_pass:
                            all_pass = simulate_release_schedule(
                                ts, fpga, EdfNf(), horizon, schedule
                            ).schedulable
                sporadic_ok += all_pass
        periodic_ratios.append(periodic_ok / samples)
        sporadic_ratios.append(sporadic_ok / samples)
    buckets = tuple(float(u) for u in us_grid)
    return AcceptanceCurves(
        name=f"ablation: periodic vs sporadic-searched ({search}) simulation",
        capacity=fpga.capacity,
        samples_per_point=samples,
        sim_samples_per_point=samples,
        series=(
            AcceptanceSeries("sim:periodic", buckets, tuple(periodic_ratios)),
            AcceptanceSeries(
                "sim:sporadic-search", buckets, tuple(sporadic_ratios)
            ),
        ),
    )
