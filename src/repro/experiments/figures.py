"""Figures 3 and 4: acceptance ratio vs total system utilization.

Paper setup (§6): device of 100 columns; areas uniform {1..100}; periods
uniform (5,20); implicit deadlines; WCET = period × uniform factor; at
least 10,000 tasksets per experiment group.

* Fig 3(a): 4 tasks, unconstrained distributions;
* Fig 3(b): 10 tasks, unconstrained distributions;
* Fig 4(a): 10 spatially-heavy, temporally-light tasks;
* Fig 4(b): 10 spatially-light, temporally-heavy tasks.

Each figure compares DP, GN1, GN2 and simulation.  Reproduction targets
the *shape* claims: all tests pessimistic vs simulation; DP best for many
tasks, GN1 best for few; all poor when spatially heavy; GN1 best / DP
worst when temporally heavy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.acceptance import AcceptanceCurves, acceptance_experiment
from repro.fpga.device import Fpga
from repro.fpga.placement import PlacementPolicy
from repro.sim.simulator import MigrationMode
from repro.gen.profiles import (
    GenerationProfile,
    paper_unconstrained,
    spatially_heavy_temporally_light,
    spatially_light_temporally_heavy,
)
from repro.gen.sweep import utilization_grid


@dataclass(frozen=True)
class FigureSpec:
    """Declarative description of one paper figure."""

    figure_id: str
    title: str
    profile: GenerationProfile
    capacity: int = 100
    us_min: float = 5.0
    us_max: float = 95.0
    points: int = 19
    #: "rescale" hits buckets exactly by scaling WCETs; "bin" keeps raw
    #: draws near the bucket (paper methodology).  Fig 4(b) *needs* "bin":
    #: rescaling to low US would push the per-task utilizations out of the
    #: temporally-heavy regime and erase the claimed GN1-vs-DP ordering.
    sampling: str = "rescale"

    def grid(self) -> Sequence[float]:
        return utilization_grid(self.us_min, self.us_max, self.points)


FIGURES = {
    "fig3a": FigureSpec(
        "fig3a",
        "Fig 3(a): 4 tasks, unconstrained C and A",
        paper_unconstrained(4),
    ),
    "fig3b": FigureSpec(
        "fig3b",
        "Fig 3(b): 10 tasks, unconstrained C and A",
        paper_unconstrained(10),
    ),
    "fig4a": FigureSpec(
        "fig4a",
        "Fig 4(a): 10 spatially heavy, temporally light tasks",
        spatially_heavy_temporally_light(10),
        # wide tasks cannot reach very low/very high US targets reliably
        us_min=10.0,
        us_max=90.0,
        points=17,
    ),
    "fig4b": FigureSpec(
        "fig4b",
        "Fig 4(b): 10 spatially light, temporally heavy tasks",
        spatially_light_temporally_heavy(10),
        # raw draws concentrate around US ~ 115; buckets below ~40 are
        # unreachable without rescaling (which would break the profile)
        us_min=40.0,
        us_max=95.0,
        points=12,
        sampling="bin",
    ),
}


def run_figure(
    figure_id: str,
    samples: int = 1000,
    seed: int = 2007,
    sim_samples: Optional[int] = 100,
    sim_schedulers: Sequence[str] = ("EDF-NF",),
    sim_backend: str = "vector",
    sim_array_backend: Optional[str] = None,
    sim_mode: MigrationMode = MigrationMode.FREE,
    sim_policy: PlacementPolicy = PlacementPolicy.FIRST_FIT,
    sim_release: str = "periodic",
    sim_jitter: float = 0.5,
    workers: int = 1,
    sim_workers: Optional[int] = None,
    horizon_factor: int = 20,
    ci_target: Optional[float] = None,
) -> AcceptanceCurves:
    """Regenerate one of the paper's figures as an acceptance-curve table.

    Paper-fidelity runs want ``samples >= 10_000`` (the paper's group
    size); the default is sized for interactive use.  ``sim_samples=None``
    simulates the full bucket on the (default) vector backend and a
    200-set subsample on the scalar one; 0 disables the simulation curve
    (and keeps the label out as well).

    ``sim_mode``/``sim_policy`` re-simulate the figure's sim curve under
    the §7 placement-aware migration models, and ``sim_release``/
    ``sim_jitter`` under sporadic release patterns — so any figure-style
    curve can be regenerated for the non-paper workload families too
    (see :func:`~repro.experiments.acceptance.acceptance_experiment`).
    ``sim_array_backend`` selects the :mod:`repro.vector.xp` array
    namespace the batched simulator computes on (``None`` = process
    override, then ``REPRO_ARRAY_BACKEND``, then numpy), and
    ``sim_workers`` shards each vector-sim batch over processes
    (``None`` = ``REPRO_SIM_WORKERS``, then 1; verdicts bit-identical
    to serial).

    ``ci_target`` switches bucket sizing from flat ``samples`` to
    adaptive: each bucket draws only as many tasksets as its series need
    for a 95% CI half-width of ``ci_target``, with ``samples`` as the
    cap (see :func:`~repro.experiments.acceptance.acceptance_experiment`).
    """
    spec = FIGURES[figure_id]
    sim_enabled = sim_samples is None or sim_samples > 0
    if ci_target is not None and sim_enabled:
        sim_samples = None  # adaptive sizing simulates the full bucket
    return acceptance_experiment(
        spec.profile,
        Fpga(width=spec.capacity),
        spec.grid(),
        samples_per_point=samples,
        seed=seed,
        tests=("DP", "GN1", "GN2"),
        sim_schedulers=sim_schedulers if sim_enabled else (),
        sim_samples_per_point=sim_samples,
        sim_backend=sim_backend,
        sim_array_backend=sim_array_backend,
        sim_mode=sim_mode,
        sim_policy=sim_policy,
        sim_release=sim_release,
        sim_jitter=sim_jitter,
        workers=workers,
        sim_workers=sim_workers,
        horizon_factor=horizon_factor,
        name=spec.title,
        sampling=spec.sampling,
        ci_target=ci_target,
    )
