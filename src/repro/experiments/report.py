"""Rendering acceptance curves as text, CSV and markdown."""

from __future__ import annotations

import io
from typing import Optional

from repro.experiments.acceptance import AcceptanceCurves


def as_text(curves: AcceptanceCurves, normalize: bool = False) -> str:
    """Fixed-width table; ``normalize`` divides US by the device capacity."""
    header = ["US/A(H)" if normalize else "US"] + list(curves.labels)
    widths = [max(10, len(h) + 2) for h in header]
    buf = io.StringIO()
    buf.write(f"# {curves.name}\n")
    buf.write(
        f"# capacity={curves.capacity} samples/point={curves.samples_per_point} "
        f"sim-samples/point={curves.sim_samples_per_point}\n"
    )
    buf.write("".join(h.ljust(w) for h, w in zip(header, widths)).rstrip() + "\n")
    for row in curves.rows():
        u = row[0] / curves.capacity if normalize else row[0]
        cells = [f"{u:.3f}"] + [f"{r:.3f}" for r in row[1:]]
        buf.write("".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip() + "\n")
    return buf.getvalue()


def as_csv(curves: AcceptanceCurves) -> str:
    header = ",".join(["us"] + [label.replace(",", ";") for label in curves.labels])
    lines = [header]
    for row in curves.rows():
        lines.append(",".join(f"{v:.6g}" for v in row))
    return "\n".join(lines) + "\n"


def as_markdown(curves: AcceptanceCurves) -> str:
    header = "| US | " + " | ".join(curves.labels) + " |"
    sep = "|" + "----|" * (len(curves.labels) + 1)
    lines = [f"**{curves.name}**", "", header, sep]
    for row in curves.rows():
        lines.append(
            "| " + f"{row[0]:.0f}" + " | " + " | ".join(f"{r:.3f}" for r in row[1:]) + " |"
        )
    return "\n".join(lines)


def sparkline(curves: AcceptanceCurves, label: str, width: int = 40) -> str:
    """A quick unicode plot of one series (for terminal eyeballing)."""
    blocks = " ▁▂▃▄▅▆▇█"
    series = curves[label]
    cells = []
    for r in series.ratios:
        idx = min(int(r * (len(blocks) - 1) + 0.5), len(blocks) - 1)
        cells.append(blocks[idx])
    return f"{label:>12} |{''.join(cells)}|"


def render(curves: AcceptanceCurves, fmt: str = "text") -> str:
    """Dispatch on output format name ('text', 'csv', 'markdown')."""
    if fmt == "text":
        return as_text(curves)
    if fmt == "csv":
        return as_csv(curves)
    if fmt == "markdown":
        return as_markdown(curves)
    raise ValueError(f"unknown format {fmt!r}")
