"""Machine-checkable versions of the paper's figure-level claims.

Each checker takes the regenerated :class:`AcceptanceCurves` for a figure
and returns the list of violated claims (empty = full reproduction).
Both the benchmark harness and the test-suite call these, so the
qualitative reproduction criteria live in exactly one place.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List

from repro.experiments.acceptance import AcceptanceCurves, AcceptanceSeries

#: Sampling-noise allowance when comparing an analytic curve (full batch)
#: against the simulation curve (subsample of the batch).
NOISE = 0.02


def _auc(series: AcceptanceSeries) -> float:
    vals = [r for r in series.ratios if not math.isnan(r)]
    return sum(vals) / len(vals) if vals else 0.0


def _tail(series: AcceptanceSeries) -> float:
    """Acceptance mass in the upper-utilization half of the curve."""
    n = len(series.ratios)
    vals = [r for r in series.ratios[n // 2 :] if not math.isnan(r)]
    return sum(vals)


def _tests_pessimistic(curves: AcceptanceCurves, violations: List[str]) -> None:
    sim = curves["sim:EDF-NF"]
    for label in ("DP", "GN1", "GN2"):
        if _auc(curves[label]) > _auc(sim) + NOISE:
            violations.append(
                f"{label} not pessimistic vs simulation "
                f"({_auc(curves[label]):.3f} > {_auc(sim):.3f})"
            )


def check_fig3a(curves: AcceptanceCurves) -> List[str]:
    """4 tasks, unconstrained: tests pessimistic; GN1 best in the tail."""
    violations: List[str] = []
    _tests_pessimistic(curves, violations)
    gn1_tail = _tail(curves["GN1"])
    for other in ("DP", "GN2"):
        if gn1_tail < _tail(curves[other]):
            violations.append(
                f"GN1 tail ({gn1_tail:.3f}) not best for few tasks "
                f"(vs {other}: {_tail(curves[other]):.3f})"
            )
    for label in ("DP", "GN1", "GN2"):
        s = curves[label]
        if not s.ratios[0] > s.ratios[-1]:
            violations.append(f"{label} does not decay with utilization")
    return violations


def check_fig3b(curves: AcceptanceCurves) -> List[str]:
    """10 tasks, unconstrained: tests pessimistic; DP best overall."""
    violations: List[str] = []
    _tests_pessimistic(curves, violations)
    dp = _auc(curves["DP"])
    if dp < _auc(curves["GN1"]):
        violations.append("DP not better than GN1 for many tasks")
    if dp < _auc(curves["GN2"]) - 0.01:
        violations.append("DP materially worse than GN2 for many tasks")
    return violations


def check_fig4a(curves: AcceptanceCurves) -> List[str]:
    """Spatially heavy: all three tests poor, simulation far ahead."""
    violations: List[str] = []
    sim = curves["sim:EDF-NF"]
    for label in ("DP", "GN1", "GN2"):
        if _auc(curves[label]) > 0.10:
            violations.append(f"{label} not poor on spatially-heavy sets")
        if _auc(curves[label]) > 0.25 * _auc(sim):
            violations.append(f"{label} too close to simulation")
    return violations


def check_fig4b(curves: AcceptanceCurves) -> List[str]:
    """Temporally heavy: GN1 best, DP worst."""
    violations: List[str] = []
    gn1, gn2, dp = _auc(curves["GN1"]), _auc(curves["GN2"]), _auc(curves["DP"])
    if not gn1 > gn2:
        violations.append(f"GN1 ({gn1:.3f}) not above GN2 ({gn2:.3f})")
    if not gn2 > dp:
        violations.append(f"GN2 ({gn2:.3f}) not above DP ({dp:.3f})")
    if dp > 0.01:
        violations.append(f"DP unexpectedly accepts temporally-heavy sets ({dp:.3f})")
    if _auc(curves["GN1"]) > _auc(curves["sim:EDF-NF"]) + NOISE:
        violations.append("GN1 not pessimistic vs simulation")
    return violations


CHECKERS: Dict[str, Callable[[AcceptanceCurves], List[str]]] = {
    "fig3a": check_fig3a,
    "fig3b": check_fig3b,
    "fig4a": check_fig4a,
    "fig4b": check_fig4b,
}


def check_figure(figure_id: str, curves: AcceptanceCurves) -> List[str]:
    """Dispatch to the figure's claim checker."""
    try:
        checker = CHECKERS[figure_id]
    except KeyError:
        raise KeyError(f"no claim checker for {figure_id!r}") from None
    return checker(curves)
