"""The churn scenario: admission control under a task arrival/departure stream.

The paper's §6 experiments score tests on *independently drawn* tasksets;
a deployed admission controller instead faces **churn** — a long-lived
resident set hit by a stream of service arrivals and departures, with
every decision made online.  This experiment replays seeded churn streams
at increasing per-task load and records, per analytical test, the
fraction of arrivals it admits — the online analogue of the acceptance
curves, produced entirely by the :mod:`repro.incremental` engine.

Residency is governed by the portfolio ("ANY"), the paper's §6
recommendation: an arrival joins the resident set iff *some* bound
accepts the union, and every bound is scored against that same shared
stream so the curves are comparable.  Departures retire a uniformly
random resident task.

``cross_check=True`` reruns every decision through the scalar
DP/GN1/GN2/portfolio on the equivalent :class:`~repro.model.task.TaskSet`
and asserts **bit-identical** results — the experiment then doubles as an
end-to-end incremental-parity audit (slower; used by the test-suite).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence, Tuple

from repro.core.composite import paper_portfolio
from repro.core.interfaces import SchedulerKind
from repro.experiments.acceptance import AcceptanceCurves, AcceptanceSeries
from repro.fpga.device import Fpga
from repro.gen.profiles import GenerationProfile
from repro.gen.random_tasksets import generate_taskset
from repro.incremental import AdmissionState
from repro.model.task import TaskSet
from repro.util.rngutil import spawn_rngs

#: Default per-arrival time-utilization buckets (the x-axis): the center
#: of the uniform factor window each bucket draws WCETs from.
DEFAULT_UTIL_BUCKETS: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6)

#: Default service-request shape (mirrors examples/admission_control.py).
DEFAULT_PROFILE = GenerationProfile(
    n_tasks=1,
    area_min=5,
    area_max=45,
    period_min=5,
    period_max=20,
    name="churn-arrivals",
)

_SERIES = ("DP", "GN1", "GN2", "ANY")


def churn_experiment(
    events: int = 400,
    seed: int = 0,
    *,
    capacity: int = 100,
    util_buckets: Sequence[float] = DEFAULT_UTIL_BUCKETS,
    util_halfwidth: float = 0.05,
    profile: GenerationProfile = DEFAULT_PROFILE,
    departure_prob: float = 0.3,
    scheduler: SchedulerKind = SchedulerKind.EDF_NF,
    cross_check: bool = False,
) -> AcceptanceCurves:
    """Run one churn stream per utilization bucket and score the tests.

    ``events`` counts stream steps per bucket (arrival or departure);
    each bucket's arrivals draw their utilization factor uniformly from
    ``bucket ± util_halfwidth`` (clamped to [0, 1]).  Returns standard
    :class:`AcceptanceCurves` so the CLI/plotting pipeline applies as-is.
    """
    if events < 1:
        raise ValueError("events must be >= 1")
    fpga = Fpga(width=capacity)
    accepted: Dict[str, list] = {label: [] for label in _SERIES}
    rngs = spawn_rngs(seed, len(util_buckets))
    for bucket, rng in zip(util_buckets, rngs):
        lo = max(0.0, bucket - util_halfwidth)
        hi = min(1.0, bucket + util_halfwidth)
        bucket_profile = replace(profile, util_min=lo, util_max=hi)
        counts = {label: 0 for label in _SERIES}
        offered = 0
        state = AdmissionState(fpga)
        for step in range(events):
            if len(state) and rng.random() < departure_prob:
                names = [t.name for t in state]
                state.remove(names[int(rng.integers(len(names)))])
                _maybe_cross_check(state, fpga, scheduler, cross_check)
                continue
            task = generate_taskset(bucket_profile, rng, name_prefix=f"e{step}_")[0]
            state.add(task)
            offered += 1
            verdicts = {name: state.accepts(name) for name in ("DP", "GN1", "GN2")}
            if scheduler not in state.analyzers["GN1"].test.schedulers:
                verdicts["GN1"] = False  # not applicable to this scheduler
            portfolio_ok = state.portfolio_accepts(scheduler)
            _maybe_cross_check(state, fpga, scheduler, cross_check)
            for name in ("DP", "GN1", "GN2"):
                counts[name] += verdicts[name]
            counts["ANY"] += portfolio_ok
            if not portfolio_ok:
                state.remove(task.name)
        for label in _SERIES:
            accepted[label].append(counts[label] / offered if offered else 1.0)
    return AcceptanceCurves(
        name="churn",
        capacity=capacity,
        samples_per_point=events,
        sim_samples_per_point=0,
        series=tuple(
            AcceptanceSeries(label, tuple(util_buckets), tuple(accepted[label]))
            for label in _SERIES
        ),
    )


def _maybe_cross_check(
    state: AdmissionState,
    fpga: Fpga,
    scheduler: SchedulerKind,
    enabled: bool,
) -> None:
    """Assert the incremental verdicts equal the scalar ones, bit-for-bit."""
    if not enabled or len(state) == 0:
        return
    taskset = TaskSet(state.tasks)
    for name in ("DP", "GN1", "GN2"):
        scalar = state.analyzers[name].test(taskset, fpga)
        incremental = state.result(name)
        if incremental != scalar:
            raise AssertionError(
                f"incremental {name} diverged from scalar on {len(taskset)} tasks:"
                f"\n  incremental: {incremental}\n  scalar:      {scalar}"
            )
    scalar_portfolio = paper_portfolio(scheduler)(taskset, fpga)
    if state.portfolio_result(scheduler) != scalar_portfolio:
        raise AssertionError("incremental portfolio diverged from scalar")


def churn_runner(
    samples: int,
    seed: int,
    workers: int,
    sim_backend: str = "vector",
    sim_array_backend: Optional[str] = None,
    ci_target: Optional[float] = None,
    **_sim_kw,
) -> AcceptanceCurves:
    """Registry adapter: ``samples`` = churn events per bucket; the sim_*
    knobs don't apply (the churn stream is analytical-only)."""
    return churn_experiment(events=samples, seed=seed)
