"""Validation for task and taskset parameters.

The model accepts any :class:`numbers.Real` (``int``, ``float``,
``fractions.Fraction``) so the schedulability tests can be evaluated in
exact rational arithmetic — the paper's Table 1 / GN2 comparison is an
exact knife-edge that floats cannot certify (see DESIGN.md §4.4).
"""

from __future__ import annotations

from numbers import Real
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.model.task import Task, TaskSet


class ModelError(ValueError):
    """Base class for model-validation failures."""


class TaskParameterError(ModelError):
    """A single task has invalid parameters (e.g. C <= 0 or A < 1)."""


class TaskSetError(ModelError):
    """A taskset is structurally invalid (e.g. duplicate task names)."""


def _require_real(value: object, name: str, task_name: str) -> None:
    if isinstance(value, bool) or not isinstance(value, Real):
        raise TaskParameterError(
            f"task {task_name!r}: {name} must be a real number, got {value!r}"
        )


def validate_task(task: "Task") -> None:
    """Raise :class:`TaskParameterError` unless ``task`` is well formed.

    Requirements (paper §2):

    * ``wcet`` (C) > 0, ``period`` (T) > 0, ``deadline`` (D) > 0;
    * ``area`` (A) >= 1 — the number of contiguous columns occupied.
      The paper argues areas are integers (§3); we accept any real >= 1
      so the Danne-original real-valued variant remains expressible, and
      expose :attr:`Task.has_integral_area` for callers that care.

    Note ``wcet > deadline`` is *not* rejected here: such a task is
    trivially unschedulable and every test must reject it, which the test
    implementations (and :func:`repro.core.interfaces.necessary_conditions`)
    handle explicitly.
    """
    for attr in ("wcet", "deadline", "period", "area"):
        _require_real(getattr(task, attr), attr, task.name)
    if task.wcet <= 0:
        raise TaskParameterError(f"task {task.name!r}: wcet must be > 0, got {task.wcet}")
    if task.period <= 0:
        raise TaskParameterError(f"task {task.name!r}: period must be > 0, got {task.period}")
    if task.deadline <= 0:
        raise TaskParameterError(
            f"task {task.name!r}: deadline must be > 0, got {task.deadline}"
        )
    if task.area < 1:
        raise TaskParameterError(f"task {task.name!r}: area must be >= 1, got {task.area}")


def validate_taskset(taskset: "TaskSet") -> None:
    """Raise :class:`TaskSetError` unless ``taskset`` is well formed.

    Tasks are validated individually; additionally task names must be
    unique so simulator traces and per-task test reports are unambiguous.
    """
    if len(taskset) == 0:
        raise TaskSetError("taskset must contain at least one task")
    seen: set[str] = set()
    for task in taskset:
        validate_task(task)
        if task.name in seen:
            raise TaskSetError(f"duplicate task name {task.name!r}")
        seen.add(task.name)
