"""Runtime job instances ``J_k^j`` of a task (paper §2).

A :class:`Job` is one invocation of a :class:`~repro.model.task.Task`: it
is released at ``release``, must finish ``task.wcet`` units of work by
``release + task.deadline``, and occupies ``task.area`` columns whenever it
executes.  Jobs are mutable simulation state (remaining work, placement);
the immutable parameters live on the task.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from numbers import Real
from typing import Optional

from repro.model.task import Task


@dataclass
class Job:
    """One released instance of a task.

    Ordering follows the EDF queue discipline of the paper (§1, Defs 1-2):
    non-decreasing absolute deadline, ties broken by release time, then by
    task name for full determinism.
    """

    task: Task
    release: Real
    index: int = 0  # j-th job of its task, 0-based
    remaining: Real = field(default=None)  # type: ignore[assignment]
    #: Leftmost column of the current placement, when a placement-aware
    #: simulation mode is active; ``None`` while unplaced / migratable.
    position: Optional[int] = None

    def __post_init__(self) -> None:
        if self.remaining is None:
            self.remaining = self.task.wcet

    # -- derived quantities ---------------------------------------------------

    @property
    def absolute_deadline(self) -> Real:
        """``d_k^j = r_k^j + D_k``."""
        return self.release + self.task.deadline

    @property
    def area(self) -> Real:
        """Columns occupied while executing (``A_k``)."""
        return self.task.area

    @property
    def completed(self) -> bool:
        return self.remaining <= 0

    @property
    def executed(self) -> Real:
        """Work done so far (``C_k -`` remaining)."""
        return self.task.wcet - self.remaining

    def laxity_at(self, now: Real) -> Real:
        """Dynamic laxity ``(d - now) - remaining`` at time ``now``.

        Negative laxity means the deadline can no longer be met even with
        continuous execution from ``now`` on.
        """
        return (self.absolute_deadline - now) - self.remaining

    # -- EDF ordering -----------------------------------------------------------

    @property
    def sort_key(self):
        """Queue key: (absolute deadline, release, task name, index)."""
        return (self.absolute_deadline, self.release, self.task.name, self.index)

    def __lt__(self, other: "Job") -> bool:
        return self.sort_key < other.sort_key

    def __repr__(self) -> str:
        return (
            f"Job({self.task.name}#{self.index}, r={self.release}, "
            f"d={self.absolute_deadline}, rem={self.remaining}, A={self.area})"
        )
