"""JSON (de)serialization of tasksets and devices.

Experiment pipelines need durable workload artifacts: a taskset drawn
today must be re-loadable bit-exactly next week.  Numbers serialize
loss-lessly: ints as ints, Fractions as ``"p/q"`` strings, floats via
``float.hex`` round-trip (decimal repr would silently perturb knife-edge
cases like the paper's Table 1).
"""

from __future__ import annotations

import json
from fractions import Fraction
from numbers import Real
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Union

from repro.model.task import Task, TaskSet

if TYPE_CHECKING:  # repro.model sits below repro.fpga (RL007); the
    from repro.fpga.device import Fpga  # device (de)serializers import
    # it lazily at call time instead of at module scope.

FORMAT_VERSION = 1


def _encode_number(x: Real) -> Union[int, str, Dict[str, str]]:
    if isinstance(x, bool):  # pragma: no cover - validation rejects bools
        raise TypeError("bool is not a task parameter")
    if isinstance(x, int):
        return x
    if isinstance(x, Fraction):
        return f"{x.numerator}/{x.denominator}"
    if isinstance(x, float):
        return {"float": x.hex()}
    raise TypeError(f"cannot serialize number of type {type(x).__name__}")


def _decode_number(obj: Any) -> Real:
    if isinstance(obj, bool):
        raise ValueError("bool is not a valid task parameter")
    if isinstance(obj, int):
        return obj
    if isinstance(obj, str):
        num, _, den = obj.partition("/")
        return Fraction(int(num), int(den or "1"))
    if isinstance(obj, dict) and "float" in obj:
        return float.fromhex(obj["float"])
    raise ValueError(f"cannot decode number from {obj!r}")


def task_to_dict(task: Task) -> Dict[str, Any]:
    """JSON-ready dict for one task (numbers encoded losslessly)."""
    return {
        "name": task.name,
        "wcet": _encode_number(task.wcet),
        "period": _encode_number(task.period),
        "deadline": _encode_number(task.deadline),
        "area": _encode_number(task.area),
    }


def task_from_dict(data: Dict[str, Any]) -> Task:
    """Inverse of :func:`task_to_dict`."""
    return Task(
        wcet=_decode_number(data["wcet"]),
        period=_decode_number(data["period"]),
        deadline=_decode_number(data["deadline"]),
        area=_decode_number(data["area"]),
        name=str(data["name"]),
    )


def taskset_to_dict(taskset: TaskSet) -> Dict[str, Any]:
    """JSON-ready dict for a whole taskset (versioned)."""
    return {
        "format": FORMAT_VERSION,
        "tasks": [task_to_dict(t) for t in taskset],
    }


def taskset_from_dict(data: Dict[str, Any]) -> TaskSet:
    """Inverse of :func:`taskset_to_dict` (validates the format version)."""
    version = data.get("format", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported taskset format version {version}")
    return TaskSet(task_from_dict(d) for d in data["tasks"])


def fpga_to_dict(fpga: "Fpga") -> Dict[str, Any]:
    """JSON-ready dict for a device (width + static regions)."""
    return {
        "format": FORMAT_VERSION,
        "width": fpga.width,
        "static_regions": [
            {"start": r.start, "width": r.width} for r in fpga.static_regions
        ],
    }


def fpga_from_dict(data: Dict[str, Any]) -> "Fpga":
    """Inverse of :func:`fpga_to_dict`."""
    from repro.fpga.device import Fpga, StaticRegion

    return Fpga(
        width=int(data["width"]),
        static_regions=tuple(
            StaticRegion(int(r["start"]), int(r["width"]))
            for r in data.get("static_regions", [])
        ),
    )


def save_taskset(taskset: TaskSet, path: Union[str, Path]) -> None:
    """Write a taskset to a JSON file (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(taskset_to_dict(taskset), indent=2))


def load_taskset(path: Union[str, Path]) -> TaskSet:
    """Read a taskset previously written by :func:`save_taskset`."""
    return taskset_from_dict(json.loads(Path(path).read_text()))
