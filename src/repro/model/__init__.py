"""Hardware task model: tasks, tasksets and runtime jobs."""

from repro.model.task import Task, TaskSet
from repro.model.job import Job
from repro.model.io import load_taskset, save_taskset, taskset_from_dict, taskset_to_dict
from repro.model.validation import (
    ModelError,
    TaskParameterError,
    TaskSetError,
    validate_task,
    validate_taskset,
)

__all__ = [
    "Task",
    "TaskSet",
    "Job",
    "load_taskset",
    "save_taskset",
    "taskset_from_dict",
    "taskset_to_dict",
    "ModelError",
    "TaskParameterError",
    "TaskSetError",
    "validate_task",
    "validate_taskset",
]
