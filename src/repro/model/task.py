"""Sporadic/periodic hardware tasks and tasksets (paper §2).

A hardware task on a 1D reconfigurable FPGA is characterized by
``tau_k = (C_k, D_k, T_k, A_k)``:

* ``C`` — worst-case execution time (:attr:`Task.wcet`);
* ``D`` — relative deadline (:attr:`Task.deadline`);
* ``T`` — period / minimum inter-arrival time (:attr:`Task.period`);
* ``A`` — area, the number of contiguous FPGA columns it occupies
  (:attr:`Task.area`).

Two utilization notions exist because a task occupies area *and* time
(paper §2):

* time utilization   ``UT(tau) = C/T``,   ``UT(Gamma) = sum C_i/T_i``;
* system utilization ``US(tau) = C*A/T``, ``US(Gamma) = sum C_i*A_i/T_i``.

All arithmetic is pure Python so parameters may be ``int``, ``float`` or
``fractions.Fraction`` — the worked-example regression tests rely on exact
rationals.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from fractions import Fraction
from numbers import Real
from typing import Callable, Iterable, Iterator, Sequence, overload

_name_counter = itertools.count(1)


def _default_name() -> str:
    return f"tau{next(_name_counter)}"


@dataclass(frozen=True)
class Task:
    """One sporadic/periodic hardware task ``(C, D, T, A)``.

    ``deadline`` defaults to ``period`` (implicit deadline), matching the
    paper's experimental setup (§6: "each task's deadline is equal to its
    period").

    Instances are immutable and hashable; derive modified copies with
    :meth:`scaled` / :meth:`with_area` / ``dataclasses.replace``.
    """

    wcet: Real
    period: Real
    deadline: Real = None  # type: ignore[assignment]  # defaulted to period in __post_init__
    area: Real = 1
    name: str = field(default_factory=_default_name)

    def __post_init__(self) -> None:
        if self.deadline is None:
            object.__setattr__(self, "deadline", self.period)
        # Import here to avoid a module cycle (validation type-hints Task).
        from repro.model.validation import validate_task

        validate_task(self)

    # -- utilization / density -------------------------------------------------

    @property
    def time_utilization(self) -> Real:
        """``UT(tau) = C/T`` — fraction of time the task needs."""
        return _div(self.wcet, self.period)

    @property
    def system_utilization(self) -> Real:
        """``US(tau) = C*A/T`` — area-weighted utilization."""
        return _div(self.wcet * self.area, self.period)

    @property
    def density(self) -> Real:
        """``C/D`` — demand density over the deadline window."""
        return _div(self.wcet, self.deadline)

    @property
    def laxity(self) -> Real:
        """``D - C`` — slack available for interference."""
        return self.deadline - self.wcet

    # -- structural predicates ---------------------------------------------------

    @property
    def implicit_deadline(self) -> bool:
        """True when ``D == T``."""
        return self.deadline == self.period

    @property
    def constrained_deadline(self) -> bool:
        """True when ``D <= T``."""
        return self.deadline <= self.period

    @property
    def has_integral_area(self) -> bool:
        """True when the area is a whole number of columns (paper §3)."""
        return self.area == int(self.area)

    @property
    def feasible_alone(self) -> bool:
        """True when the task could meet its deadline running unimpeded."""
        return self.wcet <= self.deadline

    # -- derivation helpers --------------------------------------------------

    def scaled(self, time_factor: Real = 1, area_factor: Real = 1) -> "Task":
        """Return a copy with ``wcet`` scaled by ``time_factor`` and
        ``area`` scaled by ``area_factor`` (deadline/period unchanged)."""
        return replace(self, wcet=self.wcet * time_factor, area=self.area * area_factor)

    def with_area(self, area: Real) -> "Task":
        """Return a copy with a different area."""
        return replace(self, area=area)

    def with_wcet(self, wcet: Real) -> "Task":
        """Return a copy with a different worst-case execution time."""
        return replace(self, wcet=wcet)

    def as_fractions(self, max_denominator: int | None = None) -> "Task":
        """Return a copy with all parameters converted to exact
        :class:`fractions.Fraction` values (floats via ``Fraction(str(x))``
        style limiting when ``max_denominator`` is given)."""

        def conv(x: Real) -> Fraction:
            f = Fraction(x)
            if max_denominator is not None:
                f = f.limit_denominator(max_denominator)
            return f

        return replace(
            self,
            wcet=conv(self.wcet),
            period=conv(self.period),
            deadline=conv(self.deadline),
            area=conv(self.area),
        )

    def __repr__(self) -> str:  # compact, paper-style
        return (
            f"Task(C={self.wcet}, D={self.deadline}, T={self.period}, "
            f"A={self.area}, name={self.name!r})"
        )


def _div(num: Real, den: Real):
    """Division that preserves exactness for int/Fraction operands."""
    if isinstance(num, float) or isinstance(den, float):
        return num / den
    return Fraction(num) / Fraction(den)


class TaskSet(Sequence[Task]):
    """An immutable ordered collection of :class:`Task`.

    Provides the aggregate quantities used throughout the paper:
    ``UT(Gamma)``, ``US(Gamma)``, ``Amax``, ``Amin``.
    """

    __slots__ = ("_tasks",)

    def __init__(self, tasks: Iterable[Task]):
        self._tasks: tuple[Task, ...] = tuple(tasks)
        from repro.model.validation import validate_taskset

        validate_taskset(self)

    # -- Sequence protocol --------------------------------------------------

    @overload
    def __getitem__(self, index: int) -> Task: ...

    @overload
    def __getitem__(self, index: slice) -> "TaskSet": ...

    def __getitem__(self, index):
        if isinstance(index, slice):
            return TaskSet(self._tasks[index])
        return self._tasks[index]

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskSet):
            return NotImplemented
        return self._tasks == other._tasks

    def __hash__(self) -> int:
        return hash(self._tasks)

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self._tasks)
        return f"TaskSet([{inner}])"

    # -- aggregates (paper §2) ------------------------------------------------

    @property
    def time_utilization(self) -> Real:
        """``UT(Gamma) = sum_i C_i/T_i``."""
        return sum(t.time_utilization for t in self._tasks)

    @property
    def system_utilization(self) -> Real:
        """``US(Gamma) = sum_i C_i*A_i/T_i``."""
        return sum(t.system_utilization for t in self._tasks)

    @property
    def max_area(self) -> Real:
        """``Amax`` — the largest area of any task in the set."""
        return max(t.area for t in self._tasks)

    @property
    def min_area(self) -> Real:
        """``Amin`` — the smallest area of any task in the set."""
        return min(t.area for t in self._tasks)

    @property
    def max_wcet(self) -> Real:
        return max(t.wcet for t in self._tasks)

    @property
    def max_period(self) -> Real:
        return max(t.period for t in self._tasks)

    @property
    def max_deadline(self) -> Real:
        return max(t.deadline for t in self._tasks)

    @property
    def all_implicit_deadline(self) -> bool:
        return all(t.implicit_deadline for t in self._tasks)

    @property
    def all_constrained_deadline(self) -> bool:
        return all(t.constrained_deadline for t in self._tasks)

    @property
    def all_integral_area(self) -> bool:
        return all(t.has_integral_area for t in self._tasks)

    @property
    def all_feasible_alone(self) -> bool:
        """True when every task satisfies ``C <= D``."""
        return all(t.feasible_alone for t in self._tasks)

    # -- derivation helpers ----------------------------------------------------

    def map(self, fn: Callable[[Task], Task]) -> "TaskSet":
        """Return a new taskset with ``fn`` applied to every task."""
        return TaskSet(fn(t) for t in self._tasks)

    def scaled(self, time_factor: Real = 1, area_factor: Real = 1) -> "TaskSet":
        """Scale every task's wcet (and optionally area) by a factor."""
        return self.map(lambda t: t.scaled(time_factor, area_factor))

    def scaled_to_system_utilization(self, target: Real) -> "TaskSet":
        """Rescale all execution times so ``US(Gamma) == target``.

        Used by the figure experiments to hit utilization buckets exactly.
        Raises :class:`ValueError` if the current utilization is zero.
        """
        current = self.system_utilization
        if current == 0:
            raise ValueError("cannot rescale a zero-utilization taskset")
        return self.scaled(time_factor=_div(target, current))

    def without(self, index: int) -> "TaskSet":
        """Return a copy with the task at ``index`` removed."""
        if not 0 <= index < len(self._tasks):
            raise IndexError(index)
        return TaskSet(self._tasks[:index] + self._tasks[index + 1 :])

    def extended(self, tasks: Iterable[Task]) -> "TaskSet":
        """Return a copy with ``tasks`` appended."""
        return TaskSet(self._tasks + tuple(tasks))

    def as_fractions(self, max_denominator: int | None = None) -> "TaskSet":
        """Exact-rational copy of the whole set (see :meth:`Task.as_fractions`)."""
        return self.map(lambda t: t.as_fractions(max_denominator))

    def by_name(self, name: str) -> Task:
        """Look a task up by name (raises :class:`KeyError` if absent)."""
        for t in self._tasks:
            if t.name == name:
                return t
        raise KeyError(name)

    def sorted_by(self, key: Callable[[Task], Real], reverse: bool = False) -> "TaskSet":
        """Return a copy sorted by ``key`` (stable)."""
        return TaskSet(sorted(self._tasks, key=key, reverse=reverse))
