"""Processor-demand analysis (PDA) — exact uniprocessor EDF test.

A constrained/arbitrary-deadline sporadic taskset is EDF-schedulable on a
preemptive uniprocessor iff ``h(t) = Σ dbf_i(t) <= t`` for all ``t > 0``.
Only finitely many ``t`` need checking: the absolute-deadline points up to
an analysis bound ``L``.

We use the classic ``La`` bound: for ``UT < 1``::

    La = max( max_i D_i,  max_i (D_i - T_i),  Σ_i (T_i - D_i) u_i / (1 - UT) )

(for implicit deadlines the third term vanishes and the busy period is
finite anyway).  ``UT > 1`` is immediately unschedulable; ``UT == 1`` with
all-implicit deadlines is schedulable, otherwise we fall back to one
hyperperiod for rational parameters.
"""

from __future__ import annotations

from fractions import Fraction
from numbers import Real

from repro.core.interfaces import PerTaskVerdict, SchedulerKind, TestResult
from repro.model.task import TaskSet
from repro.uni.dbf import demand_points, taskset_demand
from repro.util.mathutil import lcm_many


def pda_analysis_bound(taskset: TaskSet) -> Real:
    """The largest ``t`` PDA must check (the ``La`` bound, see module docs)."""
    ut = taskset.time_utilization
    if ut > 1:
        raise ValueError("UT > 1: unschedulable, no finite bound needed")
    if ut < 1:
        num = sum((t.period - t.deadline) * t.time_utilization for t in taskset)
        la = num / (1 - ut) if num > 0 else 0
        return max(taskset.max_deadline, la)
    # UT == 1: fall back to one hyperperiod (requires rational periods).
    try:
        hp = lcm_many([Fraction(t.period) for t in taskset] +
                      [Fraction(t.deadline) for t in taskset])
    except TypeError as exc:
        raise ValueError(
            "UT == 1 with float periods: PDA bound undefined, use rationals"
        ) from exc
    return hp


def processor_demand_test(taskset: TaskSet) -> TestResult:
    """Exact EDF test: ``h(t) <= t`` at every deadline point up to ``L``."""
    scheds = frozenset(SchedulerKind)
    if any(not t.feasible_alone for t in taskset):
        bad = [t.name for t in taskset if not t.feasible_alone]
        return TestResult("PDA", False, scheds, reason=f"C > D for {', '.join(bad)}")
    ut = taskset.time_utilization
    if ut > 1:
        return TestResult(
            "PDA", False, scheds,
            per_task=(PerTaskVerdict("*", False, ut, 1, "UT > 1"),),
        )
    limit = pda_analysis_bound(taskset)
    for point in demand_points(taskset, limit):
        demand = taskset_demand(taskset, point)
        if demand > point:
            return TestResult(
                "PDA", False, scheds,
                per_task=(
                    PerTaskVerdict("*", False, demand, point, f"h({point}) > {point}"),
                ),
            )
    return TestResult(
        "PDA", True, scheds,
        per_task=(PerTaskVerdict("*", True, detail=f"h(t) <= t for all t <= {limit}"),),
    )
