"""The classic uniprocessor EDF utilization test (Liu & Layland).

For implicit-deadline periodic/sporadic tasks, preemptive EDF on one
processor is schedulable iff ``UT(Γ) <= 1``.  For constrained deadlines
this is only necessary; use :mod:`repro.uni.pda` / :mod:`repro.uni.qpa`
for an exact test there.
"""

from __future__ import annotations

from repro.core.interfaces import PerTaskVerdict, SchedulerKind, TestResult
from repro.model.task import TaskSet


def edf_utilization_test(taskset: TaskSet) -> TestResult:
    """``UT(Γ) <= 1`` — exact iff all deadlines are implicit.

    The result carries a per-task record only when some task has a
    constrained deadline (flagged as inexact in the detail string).
    """
    ut = taskset.time_utilization
    exact = taskset.all_implicit_deadline
    accepted = ut <= 1 and all(t.feasible_alone for t in taskset)
    detail = "UT <= 1 (exact for implicit deadlines)" if exact else (
        "UT <= 1 is only necessary for constrained deadlines; use PDA/QPA"
    )
    return TestResult(
        test_name="EDF-U",
        accepted=accepted,
        schedulers=frozenset(SchedulerKind),
        per_task=(PerTaskVerdict("*", accepted, ut, 1, detail),),
    )
