"""Uniprocessor EDF schedulability analysis.

Substrate for partitioned FPGA scheduling (Danne & Platzner RAW'06, cited
as [10] by the paper): once tasks are assigned to a fixed partition,
execution inside the partition is serialized, so each partition is a
uniprocessor EDF instance.

* :func:`edf_utilization_test` — exact for implicit deadlines (U <= 1);
* :func:`processor_demand_test` — exact PDA for constrained/arbitrary
  deadlines via the demand-bound function;
* :func:`qpa_test` — Zhang & Burns' Quick Processor-demand Analysis,
  an equivalent but much faster backward search.
"""

from repro.uni.dbf import demand_bound, demand_points
from repro.uni.utilization import edf_utilization_test
from repro.uni.pda import processor_demand_test, pda_analysis_bound
from repro.uni.qpa import qpa_test

__all__ = [
    "demand_bound",
    "demand_points",
    "edf_utilization_test",
    "processor_demand_test",
    "pda_analysis_bound",
    "qpa_test",
]
