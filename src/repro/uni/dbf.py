"""Demand-bound function for sporadic tasks (Baruah/Mok/Rosier).

``dbf_i(t) = max(0, floor((t - D_i)/T_i) + 1) * C_i`` — the maximum
execution demand of jobs of ``tau_i`` with both release and deadline
inside any interval of length ``t``.  EDF feasibility on a preemptive
uniprocessor is exactly ``forall t > 0: sum_i dbf_i(t) <= t``.
"""

from __future__ import annotations

from numbers import Real
from typing import Iterator, List

from repro.model.task import Task, TaskSet
from repro.util.mathutil import float_floor_div


def demand_bound(task: Task, t: Real) -> Real:
    """``dbf(task, t)`` — demand of ``task`` in any window of length ``t``."""
    if t < task.deadline:
        return 0
    n = float_floor_div(t - task.deadline, task.period) + 1
    if n <= 0:
        return 0
    return n * task.wcet


def taskset_demand(taskset: TaskSet, t: Real) -> Real:
    """``h(t) = sum_i dbf_i(t)`` — total demand in a window of length ``t``."""
    return sum(demand_bound(task, t) for task in taskset)


def demand_points(taskset: TaskSet, limit: Real) -> List[Real]:
    """All absolute deadlines ``k*T_i + D_i <= limit``, sorted ascending.

    These are the only points where ``h`` jumps, hence the only candidates
    a processor-demand test needs to check.
    """
    points: set[Real] = set()
    for task in taskset:
        d = task.deadline
        while d <= limit:
            points.add(d)
            d = d + task.period
    return sorted(points)


def last_demand_point_before(taskset: TaskSet, t: Real) -> Real | None:
    """The largest absolute deadline strictly below ``t`` (QPA's step)."""
    best: Real | None = None
    for task in taskset:
        if task.deadline >= t:
            continue
        # largest k with k*T + D < t
        k = float_floor_div(t - task.deadline, task.period)
        cand = k * task.period + task.deadline
        if cand >= t:  # guard float rounding at the boundary
            cand -= task.period
        if cand >= task.deadline and (best is None or cand > best):
            best = cand
    return best
