"""QPA — Quick Processor-demand Analysis (Zhang & Burns, 2009).

Equivalent verdict to full PDA but typically orders of magnitude fewer
demand evaluations: instead of scanning all deadline points upward, QPA
walks *backward* from the last deadline before the analysis bound::

    t := max{ d : d < L }
    while h(t) <= t and h(t) > Dmin:
        t := h(t)            if h(t) < t
        t := max{ d : d < t} otherwise
    schedulable iff h(t) <= Dmin

The test suite asserts QPA's verdict always equals PDA's.
"""

from __future__ import annotations

from repro.core.interfaces import PerTaskVerdict, SchedulerKind, TestResult
from repro.model.task import TaskSet
from repro.uni.dbf import last_demand_point_before, taskset_demand
from repro.uni.pda import pda_analysis_bound


def qpa_test(taskset: TaskSet) -> TestResult:
    """Exact uniprocessor EDF test via backward demand iteration."""
    scheds = frozenset(SchedulerKind)
    if any(not t.feasible_alone for t in taskset):
        bad = [t.name for t in taskset if not t.feasible_alone]
        return TestResult("QPA", False, scheds, reason=f"C > D for {', '.join(bad)}")
    ut = taskset.time_utilization
    if ut > 1:
        return TestResult(
            "QPA", False, scheds,
            per_task=(PerTaskVerdict("*", False, ut, 1, "UT > 1"),),
        )
    limit = pda_analysis_bound(taskset)
    d_min = min(t.deadline for t in taskset)
    # One past the bound so a deadline exactly at `limit` is included
    # (h(limit) <= limit must hold there too).
    t = last_demand_point_before(taskset, limit + d_min)
    if t is None:
        return TestResult(
            "QPA", True, scheds,
            per_task=(PerTaskVerdict("*", True, detail="no demand points below bound"),),
        )
    iterations = 0
    while True:
        iterations += 1
        h = taskset_demand(taskset, t)
        if h > t:
            return TestResult(
                "QPA", False, scheds,
                per_task=(PerTaskVerdict("*", False, h, t, f"h({t}) > {t}"),),
            )
        if h <= d_min:
            return TestResult(
                "QPA", True, scheds,
                per_task=(
                    PerTaskVerdict("*", True, detail=f"converged in {iterations} steps"),
                ),
            )
        if h < t:
            t = h
        else:  # h == t: step to the previous deadline point
            prev = last_demand_point_before(taskset, t)
            if prev is None:
                return TestResult(
                    "QPA", True, scheds,
                    per_task=(
                        PerTaskVerdict(
                            "*", True, detail=f"exhausted points in {iterations} steps"
                        ),
                    ),
                )
            t = prev
