"""2D-reconfigurable FPGA extension (paper §7 future work).

"For future work, we plan to relax some of the assumptions ... to handle
2D reconfigurable FPGAs ... Especially for 2D reconfiguration, task
placement strategy has a large effect on FPGA fragmentation, and we
cannot assume that a task can fit on the FPGA as long as there is enough
free area, even with free task migrations."

This package provides exactly that study:

* :class:`Fpga2D` / :class:`Task2D` — the 2D device and task model
  (tasks occupy ``w x h`` rectangles);
* :class:`BottomLeftPacker` — online rectangle placement with the
  classic bottom-left heuristic (plus invariant checking);
* :func:`simulate_2d` — event-driven EDF-NF/FkF simulation under either
  the optimistic total-area fit rule or true rectangle packing — the gap
  between the two is the §7 fragmentation effect, now measurable;
* :func:`shelf_test` — a *sound* sufficient schedulability test obtained
  by slicing the device into independent full-width shelves and applying
  the paper's 1D bounds per shelf.
"""

from repro.fpga2d.device import Fpga2D
from repro.fpga2d.model import Task2D, TaskSet2D
from repro.fpga2d.packing import BottomLeftPacker, PlacedRect
from repro.fpga2d.sim2d import FitRule, Simulation2DResult, simulate_2d
from repro.fpga2d.bounds import necessary_conditions_2d, shelf_test
from repro.fpga2d.gen2d import (
    GenerationProfile2D,
    generate_taskset_2d,
    generate_tasksets_2d,
)

__all__ = [
    "Fpga2D",
    "Task2D",
    "TaskSet2D",
    "BottomLeftPacker",
    "PlacedRect",
    "FitRule",
    "Simulation2DResult",
    "simulate_2d",
    "necessary_conditions_2d",
    "shelf_test",
    "GenerationProfile2D",
    "generate_taskset_2d",
    "generate_tasksets_2d",
]
