"""The 2D reconfigurable device: a ``width x height`` CLB grid."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Fpga2D:
    """A rectangular grid of CLBs, ``width`` columns by ``height`` rows.

    The 1D model of the paper is the special case ``height == 1`` with
    task heights 1 (or equivalently full-height tasks on any grid).
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        for name in ("width", "height"):
            v = getattr(self, name)
            if not isinstance(v, int) or isinstance(v, bool):
                raise TypeError(f"{name} must be an int, got {v!r}")
            if v < 1:
                raise ValueError(f"{name} must be >= 1, got {v}")

    @property
    def area(self) -> int:
        """Total CLB count ``width * height``."""
        return self.width * self.height
