"""Online 2D rectangle placement with the bottom-left heuristic.

The §7 problem in its purest form: given already-placed rectangles, find
a position for a new ``w x h`` rectangle, or report that fragmentation
blocks it even though total free area would suffice.

Bottom-left (BL) placement: among all feasible positions, choose the one
with the lowest y, breaking ties by lowest x.  Candidate positions are
restricted — classically and without loss for BL — to the origin and the
top-left / bottom-right corners of placed rectangles.  Placement cost is
O(n^2) per request with n concurrent rectangles, which is ample for
taskset-sized n.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.fpga2d.device import Fpga2D


@dataclass(frozen=True)
class PlacedRect:
    """A placed rectangle: origin (x, y), size (w, h), bound to ``key``."""

    key: object
    x: int
    y: int
    w: int
    h: int

    @property
    def x2(self) -> int:
        return self.x + self.w

    @property
    def y2(self) -> int:
        return self.y + self.h

    def overlaps(self, other: "PlacedRect") -> bool:
        return not (
            self.x2 <= other.x
            or other.x2 <= self.x
            or self.y2 <= other.y
            or other.y2 <= self.y
        )


class PackingError(RuntimeError):
    """Raised on misuse (double-place, unknown key, overlap)."""


class BottomLeftPacker:
    """Mutable placement state for one 2D device."""

    def __init__(self, fpga: Fpga2D):
        self._fpga = fpga
        self._placed: Dict[object, PlacedRect] = {}

    # -- queries ---------------------------------------------------------------

    @property
    def placed(self) -> List[PlacedRect]:
        return list(self._placed.values())

    @property
    def used_area(self) -> int:
        return sum(r.w * r.h for r in self._placed.values())

    @property
    def free_area(self) -> int:
        return self._fpga.area - self.used_area

    def rect_of(self, key: object) -> Optional[PlacedRect]:
        return self._placed.get(key)

    def fits_at(self, x: int, y: int, w: int, h: int) -> bool:
        """Feasibility of placing a ``w x h`` rect with origin (x, y)."""
        if x < 0 or y < 0 or x + w > self._fpga.width or y + h > self._fpga.height:
            return False
        probe = PlacedRect(None, x, y, w, h)
        return not any(probe.overlaps(r) for r in self._placed.values())

    def find_position(self, w: int, h: int) -> Optional[Tuple[int, int]]:
        """Bottom-left position for a ``w x h`` rectangle, or ``None``."""
        if w < 1 or h < 1:
            raise PackingError(f"rectangle dimensions must be >= 1, got {w}x{h}")
        candidates = {(0, 0)}
        for r in self._placed.values():
            candidates.add((r.x2, r.y))  # right of r
            candidates.add((r.x, r.y2))  # on top of r
        best: Optional[Tuple[int, int]] = None
        for x, y in sorted(candidates, key=lambda p: (p[1], p[0])):
            if self.fits_at(x, y, w, h):
                best = (x, y)
                break
        return best

    # -- mutations ---------------------------------------------------------

    def place(self, key: object, w: int, h: int) -> Optional[PlacedRect]:
        """Place via bottom-left; returns ``None`` when nothing fits."""
        if key in self._placed:
            raise PackingError(f"key {key!r} already placed")
        pos = self.find_position(w, h)
        if pos is None:
            return None
        return self.place_at(key, pos[0], pos[1], w, h)

    def place_at(self, key: object, x: int, y: int, w: int, h: int) -> PlacedRect:
        """Place at an explicit origin (raises unless feasible)."""
        if key in self._placed:
            raise PackingError(f"key {key!r} already placed")
        if not self.fits_at(x, y, w, h):
            raise PackingError(f"cannot place {w}x{h} at ({x},{y})")
        rect = PlacedRect(key, x, y, w, h)
        self._placed[key] = rect
        return rect

    def release(self, key: object) -> None:
        if key not in self._placed:
            raise PackingError(f"no placement for key {key!r}")
        del self._placed[key]

    def clear(self) -> None:
        self._placed.clear()

    def check_invariants(self) -> None:
        """No overlap; everything in bounds."""
        rects = list(self._placed.values())
        for r in rects:
            assert 0 <= r.x and 0 <= r.y, f"{r} has negative origin"
            assert r.x2 <= self._fpga.width and r.y2 <= self._fpga.height, (
                f"{r} exceeds device bounds"
            )
        for i, a in enumerate(rects):
            for b in rects[i + 1 :]:
                assert not a.overlaps(b), f"{a} overlaps {b}"
