"""2D hardware tasks: ``(C, D, T, w, h)``.

A 2D task occupies a ``w x h`` rectangle of CLBs while executing.  The
timing model is unchanged from the 1D paper (§2); only the spatial
demand gains a dimension.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from numbers import Real
from typing import Iterable, Iterator, Sequence

from repro.util.mathutil import exact_div

_name_counter = itertools.count(1)


@dataclass(frozen=True)
class Task2D:
    """One sporadic/periodic task occupying a ``width x height`` rectangle."""

    wcet: Real
    period: Real
    deadline: Real = None  # type: ignore[assignment]
    width: int = 1
    height: int = 1
    name: str = field(default_factory=lambda: f"tau2d{next(_name_counter)}")

    def __post_init__(self) -> None:
        if self.deadline is None:
            object.__setattr__(self, "deadline", self.period)
        if self.wcet <= 0 or self.period <= 0 or self.deadline <= 0:
            raise ValueError(f"task {self.name!r}: C, T, D must be > 0")
        for dim in ("width", "height"):
            v = getattr(self, dim)
            if not isinstance(v, int) or isinstance(v, bool) or v < 1:
                raise ValueError(f"task {self.name!r}: {dim} must be an int >= 1")

    @property
    def footprint(self) -> int:
        """CLBs occupied: ``w * h``."""
        return self.width * self.height

    @property
    def time_utilization(self) -> Real:
        return exact_div(self.wcet, self.period)

    @property
    def system_utilization(self) -> Real:
        """``C * w * h / T`` — the 2D analogue of the paper's ``US``."""
        return exact_div(self.wcet * self.footprint, self.period)

    @property
    def feasible_alone(self) -> bool:
        return self.wcet <= self.deadline


class TaskSet2D(Sequence[Task2D]):
    """Immutable ordered collection of :class:`Task2D`."""

    __slots__ = ("_tasks",)

    def __init__(self, tasks: Iterable[Task2D]):
        self._tasks = tuple(tasks)
        if not self._tasks:
            raise ValueError("taskset must contain at least one task")
        names = [t.name for t in self._tasks]
        if len(set(names)) != len(names):
            raise ValueError("duplicate task names in 2D taskset")

    def __getitem__(self, index):
        if isinstance(index, slice):
            return TaskSet2D(self._tasks[index])
        return self._tasks[index]

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task2D]:
        return iter(self._tasks)

    def __eq__(self, other) -> bool:
        if not isinstance(other, TaskSet2D):
            return NotImplemented
        return self._tasks == other._tasks

    def __hash__(self) -> int:
        return hash(self._tasks)

    @property
    def system_utilization(self) -> Real:
        return sum(t.system_utilization for t in self._tasks)

    @property
    def max_height(self) -> int:
        return max(t.height for t in self._tasks)

    @property
    def max_width(self) -> int:
        return max(t.width for t in self._tasks)
