"""Sound schedulability analysis for the 2D device via shelf decomposition.

No published utilization bound exists for true 2D PRTR scheduling (the
paper lists it as future work).  What CAN be done soundly: slice the
device into ``floor(H / h_shelf)`` independent full-width shelves of
height ``h_shelf >= max task height``.  A task placed on a shelf occupies
``width`` contiguous columns of that shelf — exactly the paper's 1D model
with ``A(H) = device width``.  Partition the tasks across shelves such
that every shelf's sub-taskset passes a 1D bound (DP/GN1/GN2/portfolio):
then every shelf is schedulable in isolation, hence the whole system is.

This is conservative twice over (vertical slack above ``h_shelf`` is
wasted, and the partition is first-fit), but it is a *proof*, and it
reduces to the paper's own global test when all heights equal the device
height (one shelf).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.composite import paper_portfolio
from repro.core.interfaces import PerTaskVerdict, SchedulerKind, TestResult
from repro.fpga.device import Fpga
from repro.fpga2d.device import Fpga2D
from repro.fpga2d.model import Task2D, TaskSet2D
from repro.model.task import Task, TaskSet

#: 1D test applied per shelf.
ShelfTest = Callable[[TaskSet, Fpga], TestResult]


def necessary_conditions_2d(taskset: TaskSet2D, fpga: Fpga2D) -> TestResult:
    """Obvious necessary conditions for any 2D scheduler."""
    violations = []
    for t in taskset:
        if t.width > fpga.width or t.height > fpga.height:
            violations.append(
                PerTaskVerdict(t.name, False, detail="rectangle exceeds device")
            )
        if not t.feasible_alone:
            violations.append(PerTaskVerdict(t.name, False, detail="C > D"))
    us = taskset.system_utilization
    if us > fpga.area:
        violations.append(
            PerTaskVerdict("*", False, us, fpga.area, "US exceeds total CLB area")
        )
    return TestResult(
        "necessary-2d",
        not violations,
        frozenset(SchedulerKind),
        tuple(violations),
    )


def _as_1d(task: Task2D) -> Task:
    """A shelf-resident 2D task behaves as a 1D task of area ``width``."""
    return Task(
        wcet=task.wcet,
        period=task.period,
        deadline=task.deadline,
        area=task.width,
        name=task.name,
    )


def shelf_test(
    taskset: TaskSet2D,
    fpga: Fpga2D,
    shelf_height: Optional[int] = None,
    test_1d: Optional[ShelfTest] = None,
) -> TestResult:
    """Sufficient 2D schedulability via shelf decomposition (module docs).

    ``shelf_height`` defaults to the tallest task (the minimum that fits
    everything); ``test_1d`` defaults to the paper's EDF-NF portfolio.
    Returns acceptance iff a first-fit partition of the tasks over the
    shelves exists in which every shelf passes the 1D test.
    """
    nec = necessary_conditions_2d(taskset, fpga)
    if not nec.accepted:
        return TestResult("shelf", False, nec.schedulers, nec.per_task,
                          "necessary conditions failed")
    h_shelf = shelf_height if shelf_height is not None else taskset.max_height
    if h_shelf < taskset.max_height:
        return TestResult(
            "shelf", False, frozenset(SchedulerKind),
            reason=f"shelf height {h_shelf} below tallest task "
                   f"({taskset.max_height})",
        )
    n_shelves = fpga.height // h_shelf
    if n_shelves < 1:
        return TestResult(
            "shelf", False, frozenset(SchedulerKind),
            reason=f"no shelf of height {h_shelf} fits in device height "
                   f"{fpga.height}",
        )
    test = test_1d if test_1d is not None else paper_portfolio(SchedulerKind.EDF_NF)
    shelf_fpga = Fpga(width=fpga.width)

    shelves: List[List[Task]] = [[] for _ in range(n_shelves)]
    # First-fit decreasing by system utilization: heavy tasks seed shelves.
    order = sorted(taskset, key=lambda t: (-t.system_utilization, t.name))
    for task in order:
        placed = False
        for shelf in shelves:
            candidate = TaskSet(shelf + [_as_1d(task)])
            if test(candidate, shelf_fpga).accepted:
                shelf.append(_as_1d(task))
                placed = True
                break
        if not placed:
            return TestResult(
                "shelf", False, frozenset(SchedulerKind),
                per_task=(PerTaskVerdict(task.name, False,
                                         detail="no shelf accepts this task"),),
                reason="shelf partition failed",
            )
    verdicts: Tuple[PerTaskVerdict, ...] = tuple(
        PerTaskVerdict(
            f"shelf{idx}",
            True,
            detail=", ".join(t.name for t in shelf) or "(empty)",
        )
        for idx, shelf in enumerate(shelves)
    )
    return TestResult("shelf", True, frozenset(SchedulerKind), verdicts)
