"""Event-driven simulation of EDF scheduling on a 2D device.

Mirrors :mod:`repro.sim.simulator` with rectangle placement instead of
contiguous columns.  Two fit rules expose the §7 fragmentation question:

* :attr:`FitRule.AREA` — optimistic: a job fits iff total free CLB area
  suffices (the naive generalization of the paper's 1D free-migration
  assumption — NOT sound for 2D, as the paper itself warns);
* :attr:`FitRule.PACKED` — realistic: a job needs an actual rectangle,
  found by bottom-left packing (jobs keep their rectangle while running,
  re-pack when dispatched).

Measured acceptance under AREA minus acceptance under PACKED == the 2D
fragmentation effect the paper plans to study.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from numbers import Real
from typing import Dict, List, Optional, Tuple

from repro.fpga2d.device import Fpga2D
from repro.fpga2d.model import Task2D, TaskSet2D
from repro.fpga2d.packing import BottomLeftPacker
from repro.util.mathutil import TIME_EPS


class FitRule(enum.Enum):
    """How the dispatcher decides whether a job fits (see module docs)."""

    AREA = "area"
    PACKED = "packed"


@dataclass
class _Job2D:
    task: Task2D
    release: Real
    index: int
    remaining: Real

    @property
    def absolute_deadline(self) -> Real:
        return self.release + self.task.deadline

    @property
    def jid(self) -> str:
        return f"{self.task.name}#{self.index}"

    @property
    def sort_key(self):
        return (self.absolute_deadline, self.release, self.task.name, self.index)


@dataclass(frozen=True)
class Miss2D:
    task: str
    job_index: int
    deadline: Real


@dataclass
class Simulation2DResult:
    schedulable: bool
    misses: List[Miss2D]
    jobs_released: int
    jobs_completed: int
    busy_area_time: Real
    #: jobs that changed rectangle between dispatches (PACKED rule only)
    migrations: int

    def __bool__(self) -> bool:
        return self.schedulable


def simulate_2d(
    taskset: TaskSet2D,
    fpga: Fpga2D,
    horizon: Real,
    *,
    fit_rule: FitRule = FitRule.PACKED,
    skip_blocked: bool = True,
    stop_at_first_miss: bool = True,
    max_events: int = 1_000_000,
    eps: float = TIME_EPS,
) -> Simulation2DResult:
    """Simulate synchronous periodic EDF on a 2D device over ``[0, horizon)``.

    ``skip_blocked=True`` is EDF-NF-2D (greedy over the deadline-ordered
    queue); ``False`` is EDF-FkF-2D (prefix rule).
    """
    if horizon <= 0:
        raise ValueError("horizon must be > 0")
    for t in taskset:
        if t.width > fpga.width or t.height > fpga.height:
            # never placeable: certain miss at its first deadline
            pass

    next_release: Dict[str, Real] = {t.name: 0 for t in taskset}
    counters: Dict[str, int] = {t.name: 0 for t in taskset}
    active: List[_Job2D] = []
    missed: set[str] = set()
    last_rect: Dict[str, Tuple[int, int]] = {}
    misses: List[Miss2D] = []
    released = completed = migrations = 0
    busy: Real = 0
    now: Real = 0

    def release_due(now: Real) -> None:
        nonlocal released
        for t in taskset:
            while next_release[t.name] <= now + eps and next_release[t.name] < horizon:
                active.append(
                    _Job2D(t, next_release[t.name], counters[t.name], t.wcet)
                )
                counters[t.name] += 1
                released += 1
                next_release[t.name] = next_release[t.name] + t.period

    def select(now: Real) -> List[_Job2D]:
        nonlocal migrations
        ordered = sorted(active, key=lambda j: j.sort_key)
        running: List[_Job2D] = []
        if fit_rule is FitRule.AREA:
            used = 0
            for job in ordered:
                if used + job.task.footprint <= fpga.area:
                    running.append(job)
                    used += job.task.footprint
                elif not skip_blocked:
                    break
            return running
        packer = BottomLeftPacker(fpga)
        for job in ordered:
            w, h = job.task.width, job.task.height
            placed = False
            prev = last_rect.get(job.jid)
            if prev is not None and packer.fits_at(prev[0], prev[1], w, h):
                packer.place_at(job.jid, prev[0], prev[1], w, h)
                placed = True
                pos = prev
            else:
                rect = packer.place(job.jid, w, h)
                if rect is not None:
                    placed = True
                    pos = (rect.x, rect.y)
                    if prev is not None and prev != pos:
                        migrations += 1
            if placed:
                running.append(job)
                last_rect[job.jid] = pos
            elif not skip_blocked:
                break
        return running

    release_due(now)
    events = 0
    while True:
        events += 1
        if events > max_events:
            raise RuntimeError(f"2D simulation exceeded {max_events} events at t={now}")
        running = select(now)

        t_next: Real = horizon
        pending = [r for r in next_release.values() if r < horizon]
        if pending:
            t_next = min(t_next, min(pending))
        for job in running:
            completion = now + job.remaining
            if completion < t_next:
                t_next = completion
        for job in active:
            if job.jid in missed:
                continue
            d = job.absolute_deadline
            if now + eps < d < t_next:
                t_next = d

        dt = t_next - now
        if dt > 0:
            for job in running:
                job.remaining = job.remaining - dt
            busy = busy + sum(j.task.footprint for j in running) * dt
        now = t_next

        for job in [j for j in running if j.remaining <= eps]:
            active.remove(job)
            completed += 1
            last_rect.pop(job.jid, None)
        for job in active:
            if job.jid in missed:
                continue
            if job.absolute_deadline <= now + eps and job.remaining > eps:
                missed.add(job.jid)
                misses.append(Miss2D(job.task.name, job.index, job.absolute_deadline))
        if misses and stop_at_first_miss:
            break
        if now >= horizon - eps:
            break
        release_due(now)

    return Simulation2DResult(
        schedulable=not misses,
        misses=misses,
        jobs_released=released,
        jobs_completed=completed,
        busy_area_time=busy,
        migrations=migrations,
    )
