"""Random rectangle-taskset generation for the 2D experiments.

The 2D analogue of :mod:`repro.gen`: a declarative profile of rectangle
and timing distributions, and a sampler.  The default profile is the
"fragmentation-stress" shape used by the 2D example and bench: rectangles
large enough relative to the device that geometry matters, constrained
deadlines so blocked time is unforgiving.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fpga2d.model import Task2D, TaskSet2D


@dataclass(frozen=True)
class GenerationProfile2D:
    """Parameter box for random 2D taskset generation."""

    n_tasks_min: int = 4
    n_tasks_max: int = 7
    side_min: int = 3
    side_max: int = 8
    period_min: float = 6.0
    period_max: float = 14.0
    #: deadline = period * U(deadline_factor_min, deadline_factor_max)
    deadline_factor_min: float = 0.5
    deadline_factor_max: float = 1.0
    wcet_min: float = 2.0
    wcet_max: float = 5.0
    name: str = "fragmentation-stress"

    def __post_init__(self) -> None:
        if not 1 <= self.n_tasks_min <= self.n_tasks_max:
            raise ValueError("need 1 <= n_tasks_min <= n_tasks_max")
        if not 1 <= self.side_min <= self.side_max:
            raise ValueError("need 1 <= side_min <= side_max")
        if not 0 < self.period_min <= self.period_max:
            raise ValueError("need 0 < period_min <= period_max")
        if not 0 < self.deadline_factor_min <= self.deadline_factor_max <= 1:
            raise ValueError("need 0 < df_min <= df_max <= 1")
        if not 0 < self.wcet_min <= self.wcet_max:
            raise ValueError("need 0 < wcet_min <= wcet_max")


def generate_taskset_2d(
    profile: GenerationProfile2D, rng: np.random.Generator
) -> TaskSet2D:
    """One random rectangle taskset from ``profile``.

    WCETs are clamped to the drawn deadline so every task is feasible in
    isolation (the interesting failures are geometric, not per-task).
    """
    n = int(rng.integers(profile.n_tasks_min, profile.n_tasks_max + 1))
    tasks = []
    for i in range(n):
        period = float(rng.uniform(profile.period_min, profile.period_max))
        deadline = period * float(
            rng.uniform(profile.deadline_factor_min, profile.deadline_factor_max)
        )
        wcet = min(deadline, float(rng.uniform(profile.wcet_min, profile.wcet_max)))
        tasks.append(
            Task2D(
                wcet=wcet,
                period=period,
                deadline=deadline,
                width=int(rng.integers(profile.side_min, profile.side_max + 1)),
                height=int(rng.integers(profile.side_min, profile.side_max + 1)),
                name=f"t{i}",
            )
        )
    return TaskSet2D(tasks)


def generate_tasksets_2d(
    profile: GenerationProfile2D, count: int, rng: np.random.Generator
) -> list[TaskSet2D]:
    """``count`` independent rectangle tasksets."""
    if count < 0:
        raise ValueError("count must be >= 0")
    return [generate_taskset_2d(profile, rng) for _ in range(count)]
