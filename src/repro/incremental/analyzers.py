"""Per-test incremental analyzers (the cache layer under ``AdmissionState``).

Design rules that make the verdicts **bit-identical** to the scalar tests
(not merely numerically close — full :class:`~repro.core.interfaces.TestResult`
dataclass equality, float or exact):

* Caches hold only *per-name values* produced by the same shared helpers
  the scalar tests call (:meth:`~repro.core.gn1.Gn1Test.pair_term`,
  :func:`~repro.core.workload.gn2_beta`,
  :meth:`~repro.core.dp.DpTest.task_verdict`, ...), never partial sums.
* Sums are *replayed at query time* in the current task order — the same
  left-to-right ``lhs += term`` accumulation the scalar tests perform —
  so float rounding sequences match exactly and cache application order
  is irrelevant.
* Synchronization is by diff: each analyzer remembers the exact
  :class:`~repro.model.task.Task` objects its caches reflect and, on
  :meth:`refresh`, drops/recomputes only the changed names
  (``O(changed · N)`` pair terms); when more than about half the resident
  set changed it rebuilds outright, which is what the scalar test costs
  anyway.

Analyzers are lazy: churn operations on the state cost nothing here until
a verdict is actually requested, so a portfolio's DP short-circuit never
pays GN1/GN2 cache maintenance.
"""

from __future__ import annotations

from bisect import bisect_left
from numbers import Real
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.dp import DpTest
from repro.core.gn1 import GN1_DETAIL, Gn1Test
from repro.core.gn2 import Gn2Test, LambdaWitness, witness_detail
from repro.core.interfaces import (
    PerTaskVerdict,
    TestResult,
    empty_taskset_result,
    necessary_conditions,
)
from repro.core.workload import gn2_beta, lambda_candidate_values
from repro.fpga.device import Fpga
from repro.model.task import Task, TaskSet

#: β-cache key: the λ value *and* its concrete type.  Equal-valued float
#: and Fraction candidates (``0.5`` vs ``Fraction(1, 2)``) hash equal but
#: produce different downstream arithmetic; keying by type keeps a cached
#: exact β from ever answering for a float candidate (or vice versa).
_LamKey = Tuple[str, Real]


def _lam_key(lam: Real) -> _LamKey:
    return (type(lam).__name__, lam)


class _AnalyzerBase:
    """Shared sync-by-diff skeleton; subclasses implement the cache ops."""

    def __init__(self, test: Any, fpga: Fpga) -> None:
        self.test = test
        self.fpga = fpga
        self._tasks: List[Task] = []
        self._applied: Dict[str, Task] = {}
        self._result: Optional[TestResult] = None

    # -- subclass cache hooks ------------------------------------------------

    def _drop(self, name: str) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _add(self, task: Task, tasks: Sequence[Task]) -> None:  # pragma: no cover
        raise NotImplementedError

    def _rebuild(self, tasks: Sequence[Task]) -> None:
        """Default rebuild: clear and re-add (subclasses may override)."""
        self._clear()
        for t in tasks:
            self._add(t, tasks)

    def _clear(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _compute(self, tasks: Sequence[Task]) -> TestResult:  # pragma: no cover
        raise NotImplementedError

    # -- IncrementalAnalyzer protocol ----------------------------------------

    def refresh(self, tasks: Sequence[Task]) -> None:
        """Synchronize caches with ``tasks`` (the current resident list).

        Identity-diffs against the tasks the caches were built from; churn
        that cancels out between verdicts (add then remove of the same
        task object set) costs nothing.
        """
        current = {t.name: t for t in tasks}
        changed = [n for n, t in current.items() if self._applied.get(n) is not t]
        removed = [n for n in self._applied if n not in current]
        self._tasks = list(tasks)
        if not changed and not removed:
            return
        self._result = None
        if len(changed) + len(removed) >= max(2, (len(current) + 1) // 2):
            self._rebuild(self._tasks)
        else:
            for name in removed:
                self._drop(name)
            for name in changed:
                if name in self._applied:
                    self._drop(name)
            for name in changed:
                self._add(current[name], self._tasks)
        self._applied = current

    def result(self, taskset: Optional[TaskSet] = None) -> TestResult:
        """Current verdict (memoized until the next effective refresh).

        ``taskset`` may supply an already-validated :class:`TaskSet` of
        the refreshed tasks (``AdmissionState`` shares its version-cached
        one across all three analyzers to skip re-validation).
        """
        if self._result is None:
            if not self._tasks:
                self._result = empty_taskset_result(self.test.name, self.test.schedulers)
            else:
                self._result = self._guarded_compute(self._tasks, taskset)
        return self._result

    def _guarded_compute(
        self, tasks: Sequence[Task], taskset: Optional[TaskSet]
    ) -> TestResult:
        """Necessary-conditions gate shared by all three tests, then the
        test-specific cached computation (mirrors each scalar ``__call__``)."""
        if taskset is None:
            taskset = TaskSet(tasks)
        nec = necessary_conditions(taskset, self.fpga)
        if not nec.accepted:
            return TestResult(
                self.test.name, False, self.test.schedulers, nec.per_task, nec.reason
            )
        return self._compute(tasks)


class DpAnalyzer(_AnalyzerBase):
    """Theorem 1 with cached per-task utilizations.

    DP's aggregates (``US(Γ)``, ``Amax``) are O(N) anyway; the cache saves
    the per-task ``C·A/T`` divisions (the expensive part under Fraction
    arithmetic) and re-sums them in task order at query time.
    """

    def __init__(self, test: DpTest, fpga: Fpga) -> None:
        super().__init__(test, fpga)
        self._ut: Dict[str, Real] = {}
        self._us: Dict[str, Real] = {}

    def _clear(self) -> None:
        self._ut.clear()
        self._us.clear()

    def _drop(self, name: str) -> None:
        self._ut.pop(name, None)
        self._us.pop(name, None)

    def _add(self, task: Task, tasks: Sequence[Task]) -> None:
        self._ut[task.name] = task.time_utilization
        self._us[task.name] = task.system_utilization

    def _compute(self, tasks: Sequence[Task]) -> TestResult:
        test: DpTest = self.test
        abnd = test.busy_bound(self.fpga.capacity, max(t.area for t in tasks))
        us_total: Real = 0
        for t in tasks:  # same left-to-right order as TaskSet.system_utilization
            us_total = us_total + self._us[t.name]
        verdicts = []
        accepted = True
        for t in tasks:
            v = test.task_verdict(
                t, abnd, us_total, ut=self._ut[t.name], us=self._us[t.name]
            )
            accepted &= v.passed
            verdicts.append(v)
        return TestResult(test.name, accepted, test.schedulers, tuple(verdicts))


class Gn1Analyzer(_AnalyzerBase):
    """Theorem 2 with a name-keyed (i, k) pair-term matrix.

    ``_terms[k][i]`` is the cached addend ``A_i·min(β_i, 1-C_k/D_k)`` from
    :meth:`~repro.core.gn1.Gn1Test.pair_term`.  Changing one task touches
    one row plus one column — ``O(N)`` β evaluations instead of the scalar
    test's ``O(N²)``.  Query-time verdicts re-sum each row in task order.
    """

    def __init__(self, test: Gn1Test, fpga: Fpga) -> None:
        super().__init__(test, fpga)
        self._slack: Dict[str, Real] = {}
        self._rhs: Dict[str, Real] = {}
        self._terms: Dict[str, Dict[str, Real]] = {}

    def _clear(self) -> None:
        self._slack.clear()
        self._rhs.clear()
        self._terms.clear()

    def _drop(self, name: str) -> None:
        self._slack.pop(name, None)
        self._rhs.pop(name, None)
        self._terms.pop(name, None)
        for row in self._terms.values():
            row.pop(name, None)

    def _add(self, task: Task, tasks: Sequence[Task]) -> None:
        test: Gn1Test = self.test
        j = task.name
        slack = test.slack_rate(task)
        self._slack[j] = slack
        self._rhs[j] = test.task_rhs(task, self.fpga.capacity, slack)
        # Row j: every other resident task interfering with the new task.
        row: Dict[str, Real] = {}
        for t in tasks:
            if t.name != j:
                row[t.name] = test.pair_term(t, task, slack)[1]
        self._terms[j] = row
        # Column j: the new task interfering with every existing row.  Rows
        # of names still pending their own _add are absent and get their
        # full row (including j) when their turn comes.
        for t in tasks:
            if t.name == j:
                continue
            krow = self._terms.get(t.name)
            if krow is not None:
                krow[j] = test.pair_term(task, t, self._slack[t.name])[1]

    def _rebuild(self, tasks: Sequence[Task]) -> None:
        # Direct O(N²) fill (the incremental _add would touch each pair twice).
        test: Gn1Test = self.test
        self._clear()
        cap = self.fpga.capacity
        for t in tasks:
            slack = test.slack_rate(t)
            self._slack[t.name] = slack
            self._rhs[t.name] = test.task_rhs(t, cap, slack)
        for task_k in tasks:
            slack = self._slack[task_k.name]
            self._terms[task_k.name] = {
                task_i.name: test.pair_term(task_i, task_k, slack)[1]
                for task_i in tasks
                if task_i.name != task_k.name
            }

    def _compute(self, tasks: Sequence[Task]) -> TestResult:
        test: Gn1Test = self.test
        verdicts = []
        accepted = True
        for task_k in tasks:
            row = self._terms[task_k.name]
            lhs: Real = 0
            for task_i in tasks:  # scalar check_task's accumulation order
                if task_i.name != task_k.name:
                    lhs += row[task_i.name]
            rhs = self._rhs[task_k.name]
            ok = lhs < rhs
            accepted &= ok
            verdicts.append(PerTaskVerdict(task_k.name, ok, lhs, rhs, GN1_DETAIL))
        return TestResult(test.name, accepted, test.schedulers, tuple(verdicts))


class Gn2Analyzer(_AnalyzerBase):
    """Theorem 3 with a lazily-filled per-(k, λ, i) term cache.

    Eager β maintenance would defeat :meth:`~repro.core.gn2.Gn2Test.
    find_witness`'s first-witness short-circuit (most λ candidates are
    never visited), so β values are computed on first need during the
    candidate walk — by the same :func:`~repro.core.workload.gn2_beta`
    call, in the same order — and reused on later queries.  λ candidate
    lists are rebuilt per query from cached per-task contributions
    (:func:`~repro.core.workload.lambda_candidate_values`), which keeps
    the scalar test's set-dedup representative (and hence the witness
    detail string) identical.
    """

    def __init__(self, test: Gn2Test, fpga: Fpga) -> None:
        super().__init__(test, fpga)
        self._u: Dict[str, Real] = {}  # time utilization (λ minimum point)
        self._pool: Dict[str, List[Real]] = {}  # candidate contributions
        self._scale: Dict[str, Real] = {}  # max(1, T_k/D_k)
        self._terms: Dict[str, Dict[_LamKey, Dict[str, Tuple[Real, Real]]]] = {}

    def _clear(self) -> None:
        self._u.clear()
        self._pool.clear()
        self._scale.clear()
        self._terms.clear()

    def _drop(self, name: str) -> None:
        dropped_pool = self._pool.pop(name, ())
        self._u.pop(name, None)
        self._scale.pop(name, None)
        self._terms.pop(name, None)
        # Purge the departed task from every surviving row, and prune λ
        # keys it (likely alone) contributed so the cache cannot grow with
        # churn history.  Over-pruning an equal λ another task also
        # contributes merely costs a lazy recompute.
        dropped_keys = [_lam_key(v) for v in dropped_pool]
        for rows in self._terms.values():
            for key in dropped_keys:
                rows.pop(key, None)
            for lam_row in rows.values():
                lam_row.pop(name, None)

    def _add(self, task: Task, tasks: Sequence[Task]) -> None:
        j = task.name
        self._u[j] = task.time_utilization
        self._pool[j] = lambda_candidate_values(task)
        self._scale[j] = Gn2Test.lam_scale(task)
        self._terms[j] = {}  # filled lazily during candidate walks

    def _compute(self, tasks: Sequence[Task]) -> TestResult:
        test: Gn2Test = self.test
        abnd = self.fpga.capacity - max(t.area for t in tasks) + 1
        amin = min(t.area for t in tasks)
        # Dedup/sort the candidate pool ONCE per query; each task's list is
        # then a bisect slice.  Dedup in pool order keeps the same equal-value
        # representative the scalar per-task set construction keeps, so the
        # witness λ objects (and detail strings) stay identical.
        seen = set()
        pool: List[Real] = []
        for t in tasks:  # same pooling order as gn2_lambda_candidates
            for v in self._pool[t.name]:
                if v not in seen:
                    seen.add(v)
                    pool.append(v)
        pool.sort()
        verdicts = []
        accepted = True
        for task_k in tasks:
            witness = self._find_witness(task_k, tasks, pool, abnd, amin)
            ok = witness is not None
            accepted &= ok
            verdicts.append(
                PerTaskVerdict(task_k.name, ok, detail=witness_detail(witness))
            )
        return TestResult(test.name, accepted, test.schedulers, tuple(verdicts))

    def _find_witness(
        self,
        task_k: Task,
        tasks: Sequence[Task],
        sorted_pool: List[Real],
        abnd: Real,
        amin: Real,
    ) -> Optional[LambdaWitness]:
        test: Gn2Test = self.test
        rows = self._terms[task_k.name]
        lam_scale = self._scale[task_k.name]
        lam_min = self._u[task_k.name]
        # sorted({lam_min} | {v >= lam_min}) with lam_min as the
        # representative of its own value — gn2_lambda_candidates' result.
        cut = bisect_left(sorted_pool, lam_min)
        if cut < len(sorted_pool) and sorted_pool[cut] == lam_min:
            cut += 1
        candidates = [lam_min]
        candidates.extend(sorted_pool[cut:])
        literal = test.literal_case2
        for lam in candidates:
            lam_row = rows.setdefault(_lam_key(lam), {})
            one_minus = test.lam_slack(lam, lam_scale)
            row_get = lam_row.get
            terms = [row_get(t.name) for t in tasks]
            for i, pair in enumerate(terms):
                if pair is None:
                    task_i = tasks[i]
                    pair = test.pair_terms(
                        task_i,
                        gn2_beta(task_i, task_k, lam, literal_case2=literal),
                        one_minus,
                    )
                    lam_row[task_i.name] = pair
                    terms[i] = pair
            condition = test.check_lambda(one_minus, abnd, amin, terms)
            if condition is not None:
                return LambdaWitness(lam, condition)
        return None
