"""Batched re-verdicting of many admission states at once.

When one event (a device-wide reconfiguration, a fleet-level parameter
sweep, a shared task updated everywhere) touches *k* states, querying
each state's scalar analyzers serially wastes the batch parallelism the
:mod:`repro.vector` kernels already have.  :func:`reverdict` applies the
per-state deltas, groups the affected states by ``(taskset size,
capacity)`` and fans each group into **one** vectorized kernel call per
requested test — backend-neutral via :mod:`repro.vector.xp` (numpy /
cupy / torch).

Contract: the vector kernels compute in float64 (states' task parameters
are cast on packing), so verdict parity with the scalar analyzers holds
on the same terms as the acceptance engine's vector path — exact for
float-representable parameters, verdict-level for exact rationals whose
knife edges fall below float resolution.  The states' own incremental
analyzers are untouched and remain the bit-identical reference.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.incremental.state import AdmissionState, Delta
from repro.model.task import TaskSet
from repro.vector.batch import TaskSetBatch
from repro.vector.dp_vec import dp_accepts
from repro.vector.gn1_vec import gn1_accepts
from repro.vector.gn2_vec import gn2_accepts
from repro.vector.xp import host as hnp

#: Tests reverdict can answer; ``"ANY"`` is the §6 portfolio disjunction.
TESTS = ("DP", "GN1", "GN2", "ANY")


def accept_masks(
    tasksets: Sequence[TaskSet],
    capacity: int,
    *,
    tests: Sequence[str] = ("DP", "GN1", "GN2"),
    backend: Optional[str] = None,
) -> Dict[str, "hnp.ndarray"]:
    """One vectorized kernel call per member test over same-length
    ``tasksets`` against a ``capacity``-column device.

    The shared primitive under :func:`reverdict` and the admission
    service's micro-batcher (:mod:`repro.service.engine`): callers group
    candidate tasksets by ``(len, capacity)`` and fan each group through
    here, paying one kernel launch per test for the whole group instead
    of one scalar rerun per candidate.  Returns ``{test: (B,) bool host
    mask}`` for exactly the requested ``tests`` (``"ANY"`` is the
    member disjunction — equal to the §6 EDF-NF portfolio verdict, since
    DP, GN1 and GN2 all apply to EDF-NF).
    """
    unknown = [t for t in tests if t not in TESTS]
    if unknown:
        raise ValueError(f"unknown tests: {unknown!r} (choose from {TESTS})")
    batch = TaskSetBatch.from_tasksets(tasksets)
    need = set(tests) | ({"DP", "GN1", "GN2"} if "ANY" in tests else set())
    masks: Dict[str, "hnp.ndarray"] = {}
    if "DP" in need:
        masks["DP"] = dp_accepts(batch, capacity, backend=backend)
    if "GN1" in need:
        masks["GN1"] = gn1_accepts(batch, capacity, backend=backend)
    if "GN2" in need:
        masks["GN2"] = gn2_accepts(batch, capacity, backend=backend)
    if "ANY" in tests:
        masks["ANY"] = masks["DP"] | masks["GN1"] | masks["GN2"]
    return {t: masks[t] for t in tests}


def reverdict(
    states: Sequence[AdmissionState],
    deltas: Optional[Sequence[Optional[Delta]]] = None,
    *,
    tests: Sequence[str] = ("DP", "GN1", "GN2"),
    backend: Optional[str] = None,
) -> List[Dict[str, bool]]:
    """Apply ``deltas`` (one per state, ``None`` = untouched), then return
    each state's accept verdicts as ``{test: bool}`` in one vectorized
    sweep per ``(n_tasks, capacity)`` group.

    Empty states verdict ``True`` for every test (vacuous acceptance,
    matching :func:`repro.core.interfaces.empty_taskset_result`).
    """
    unknown = [t for t in tests if t not in TESTS]
    if unknown:
        raise ValueError(f"unknown tests: {unknown!r} (choose from {TESTS})")
    if deltas is not None:
        if len(deltas) != len(states):
            raise ValueError("need exactly one delta (or None) per state")
        for state, delta in zip(states, deltas):
            if delta is not None:
                state.apply(delta)

    out: List[Dict[str, bool]] = [{} for _ in states]
    groups: Dict[Tuple[int, int], List[int]] = {}
    for idx, state in enumerate(states):
        if len(state) == 0:
            out[idx] = {t: True for t in tests}
        else:
            groups.setdefault((len(state), state.fpga.capacity), []).append(idx)

    for (_, capacity), idxs in groups.items():
        masks = accept_masks(
            [states[i].taskset for i in idxs], capacity, tests=tests, backend=backend
        )
        for pos, idx in enumerate(idxs):
            out[idx] = {t: bool(masks[t][pos]) for t in tests}
    return out
