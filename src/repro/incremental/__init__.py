"""Incremental schedulability analysis under taskset churn.

At service scale the workload is "admitted taskset ± 1 task", not fresh
tasksets: an admission controller answers the same DP/GN1/GN2 questions
over and over against a resident set that changes by one task at a time.
Recomputing each test from scratch redoes the O(N²) (GN1) / O(N³) (GN2)
interference sums on every decision; this package keeps them cached.

* :class:`~repro.incremental.state.AdmissionState` — one stateful
  analyzer bundle per (taskset, device): ``add`` / ``remove`` /
  ``update`` churn operations invalidate only the touched slices of each
  test's cache (``O(changed task · N)`` recomputed pair terms instead of
  ``O(N²)``/``O(N³)`` from scratch), while every verdict stays
  **bit-identical** to running the scalar tests on the equivalent
  :class:`~repro.model.task.TaskSet` — asserted at every step by the
  churn-parity suite, not assumed.
* :class:`~repro.incremental.state.Delta` — one churn operation, the
  unit the batched APIs and the churn experiment speak.
* :func:`~repro.incremental.reverdict.reverdict` — fan the k states an
  event actually touched into one vectorized call per taskset-size group
  on the :mod:`repro.vector` kernels (backend-neutral via
  :mod:`repro.vector.xp`).

The delta-certificate fast path ("still schedulable after this Δ"
without any rerun) lives in :class:`repro.core.sensitivity.DeltaCertifier`.
"""

from repro.incremental.analyzers import DpAnalyzer, Gn1Analyzer, Gn2Analyzer
from repro.incremental.reverdict import reverdict
from repro.incremental.state import AdmissionState, Delta

__all__ = [
    "AdmissionState",
    "Delta",
    "DpAnalyzer",
    "Gn1Analyzer",
    "Gn2Analyzer",
    "reverdict",
]
