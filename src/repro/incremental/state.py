"""Stateful admission analysis for one (taskset, device) pair.

:class:`AdmissionState` owns the resident task list and one
:class:`~repro.core.interfaces.IncrementalAnalyzer` per paper test.  Churn
operations (:meth:`~AdmissionState.add`, :meth:`~AdmissionState.remove`,
:meth:`~AdmissionState.update`) are O(1) bookkeeping; analyzer caches sync
lazily when a verdict is requested, each paying ``O(changed · N)`` pair
recomputation instead of a from-scratch ``O(N²)``/``O(N³)`` pass.

Verdicts are bit-identical to the scalar tests on the equivalent
:class:`~repro.model.task.TaskSet` — including the portfolio, whose
:meth:`~AdmissionState.portfolio_result` replicates
:class:`~repro.core.composite.CompositeTest`'s member short-circuit and
result construction exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.dp import DpTest, dp_test
from repro.core.gn1 import Gn1Test, gn1_test
from repro.core.gn2 import Gn2Test, gn2_test
from repro.core.interfaces import SchedulerKind, TestResult
from repro.fpga.device import Fpga
from repro.incremental.analyzers import DpAnalyzer, Gn1Analyzer, Gn2Analyzer
from repro.model.task import Task, TaskSet


@dataclass(frozen=True)
class Delta:
    """One churn operation against an :class:`AdmissionState`.

    The unit :func:`repro.incremental.reverdict.reverdict` and the churn
    experiment speak; build instances with the class-method constructors.
    """

    kind: str  # "add" | "remove" | "update"
    name: str
    task: Optional[Task] = None

    @classmethod
    def add(cls, task: Task) -> "Delta":
        return cls("add", task.name, task)

    @classmethod
    def remove(cls, name: str) -> "Delta":
        return cls("remove", name)

    @classmethod
    def update(cls, name: str, task: Task) -> "Delta":
        return cls("update", name, task)


class AdmissionState:
    """Resident taskset + incremental DP/GN1/GN2 analyzers for one device.

    Task names are the churn identity and must stay unique (the same
    invariant :class:`~repro.model.task.TaskSet` validates).  Relative
    task order is admission order: ``add`` appends, ``remove`` closes the
    gap, ``update`` replaces in place — so the equivalent scalar
    ``TaskSet`` is always well-defined and verdict parity is exact.
    """

    def __init__(
        self,
        fpga: Fpga,
        tasks: Iterable[Task] = (),
        *,
        dp: DpTest = dp_test,
        gn1: Gn1Test = gn1_test,
        gn2: Gn2Test = gn2_test,
    ) -> None:
        self.fpga = fpga
        self._tasks: List[Task] = []
        self._index: Dict[str, int] = {}
        self._version = 0
        self._taskset: Optional[TaskSet] = None
        self.analyzers = {
            "DP": DpAnalyzer(dp, fpga),
            "GN1": Gn1Analyzer(gn1, fpga),
            "GN2": Gn2Analyzer(gn2, fpga),
        }
        for t in tasks:
            self.add(t)

    # -- resident-set introspection ------------------------------------------

    @property
    def version(self) -> int:
        """Monotone counter bumped by every effective churn operation."""
        return self._version

    @property
    def tasks(self) -> Tuple[Task, ...]:
        return tuple(self._tasks)

    @property
    def taskset(self) -> Optional[TaskSet]:
        """The equivalent scalar :class:`TaskSet` (``None`` when empty —
        ``TaskSet`` itself rejects empty sets)."""
        if self._taskset is None and self._tasks:
            self._taskset = TaskSet(self._tasks)
        return self._taskset

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __getitem__(self, name: str) -> Task:
        return self._tasks[self._index[name]]

    # -- churn operations ------------------------------------------------------

    def _bump(self) -> None:
        self._version += 1
        self._taskset = None

    def add(self, task: Task) -> None:
        """Admit ``task`` (appended; its name must be free)."""
        if task.name in self._index:
            raise KeyError(f"task name already resident: {task.name!r}")
        self._index[task.name] = len(self._tasks)
        self._tasks.append(task)
        self._bump()

    def remove(self, name: str) -> Task:
        """Retire the task called ``name`` and return it."""
        idx = self._index.pop(name)
        task = self._tasks.pop(idx)
        for later in self._tasks[idx:]:
            self._index[later.name] -= 1
        self._bump()
        return task

    def update(self, name: str, task: Task) -> Task:
        """Replace the task called ``name`` in place; returns the old task.

        The replacement may be renamed as long as the new name is free.
        """
        idx = self._index[name]
        if task.name != name:
            if task.name in self._index:
                raise KeyError(f"task name already resident: {task.name!r}")
            del self._index[name]
            self._index[task.name] = idx
        old = self._tasks[idx]
        self._tasks[idx] = task
        self._bump()
        return old

    def apply(self, delta: Delta) -> None:
        """Apply one :class:`Delta`."""
        if delta.kind == "add":
            assert delta.task is not None
            self.add(delta.task)
        elif delta.kind == "remove":
            self.remove(delta.name)
        elif delta.kind == "update":
            assert delta.task is not None
            self.update(delta.name, delta.task)
        else:
            raise ValueError(f"unknown delta kind: {delta.kind!r}")

    # -- verdicts --------------------------------------------------------------

    def result(self, test: str) -> TestResult:
        """Verdict of one member test (``"DP"``, ``"GN1"`` or ``"GN2"``),
        bit-identical to ``member(TaskSet(tasks), fpga)``."""
        analyzer = self.analyzers[test]
        analyzer.refresh(self._tasks)
        return analyzer.result(self.taskset)

    def results(self) -> Dict[str, TestResult]:
        """All three member verdicts."""
        return {name: self.result(name) for name in self.analyzers}

    def accepts(self, test: str) -> bool:
        return self.result(test).accepted

    def portfolio_result(
        self, scheduler: SchedulerKind = SchedulerKind.EDF_NF
    ) -> TestResult:
        """The §6 portfolio verdict, bit-identical to
        ``paper_portfolio(scheduler)(TaskSet(tasks), fpga)``.

        Members run in DP → GN1 → GN2 order with the composite's
        short-circuit, so a DP acceptance never pays GN1/GN2 cache sync.
        On the empty resident set every member vacuously accepts, so the
        portfolio accepts via its first applicable member.
        """
        portfolio_name = f"portfolio[{scheduler.value}]"  # CompositeTest naming
        rejected: List[TestResult] = []
        for name in ("DP", "GN1", "GN2"):
            member_test = self.analyzers[name].test
            if scheduler not in member_test.schedulers:
                continue
            res = self.result(name)
            if res.accepted:
                return TestResult(
                    test_name=f"{portfolio_name}({res.test_name})",
                    accepted=True,
                    schedulers=frozenset({scheduler}),
                    per_task=res.per_task,
                    reason=f"accepted by member {res.test_name}",
                )
            rejected.append(res)
        rejected_by = ", ".join(r.test_name for r in rejected) or "(no applicable member)"
        return TestResult(
            test_name=portfolio_name,
            accepted=False,
            schedulers=frozenset({scheduler}),
            reason=f"rejected by all members: {rejected_by}",
        )

    def portfolio_accepts(self, scheduler: SchedulerKind = SchedulerKind.EDF_NF) -> bool:
        return self.portfolio_result(scheduler).accepted

    # -- admission control -----------------------------------------------------

    def admit(
        self, task: Task, scheduler: SchedulerKind = SchedulerKind.EDF_NF
    ) -> bool:
        """Trial-admit ``task``: keep it if the portfolio still accepts,
        roll it back (and return ``False``) otherwise."""
        self.add(task)
        if self.portfolio_accepts(scheduler):
            return True
        self.remove(task.name)
        return False
