"""Synthetic taskset generation (paper §6).

The paper evaluates the bounds on randomly generated tasksets: device of
100 columns, areas uniform in {1..100}, periods uniform in (5,20),
implicit deadlines, execution time = period x random factor.  Figure 4
constrains the distributions to spatially/temporally heavy/light mixes.

* :mod:`repro.gen.profiles` — declarative generation profiles, including
  the four named by the paper's figures.
* :mod:`repro.gen.random_tasksets` — draw tasksets from a profile.
* :mod:`repro.gen.uunifast` — the UUniFast / UUniFast-discard utilization
  partitioners (standard in this literature) as an alternative to the
  paper's independent-factor recipe.
* :mod:`repro.gen.sweep` — hit exact system-utilization targets for
  acceptance-ratio curves.
"""

from repro.gen.profiles import (
    GenerationProfile,
    paper_unconstrained,
    spatially_heavy_temporally_light,
    spatially_light_temporally_heavy,
)
from repro.gen.random_tasksets import generate_taskset, generate_tasksets
from repro.gen.randfixedsum import randfixedsum
from repro.gen.sweep import generate_at_system_utilization, utilization_grid
from repro.gen.uunifast import uunifast, uunifast_discard

__all__ = [
    "GenerationProfile",
    "paper_unconstrained",
    "spatially_heavy_temporally_light",
    "spatially_light_temporally_heavy",
    "generate_taskset",
    "generate_tasksets",
    "generate_at_system_utilization",
    "utilization_grid",
    "randfixedsum",
    "uunifast",
    "uunifast_discard",
]
