"""Draw random tasksets from a :class:`~repro.gen.profiles.GenerationProfile`.

Implements the paper's §6 recipe.  WCETs are guaranteed positive (the
utilization factor is resampled away from exact zero) so every generated
task is model-valid.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.gen.profiles import GenerationProfile
from repro.model.task import Task, TaskSet

#: Smallest admissible utilization factor — avoids degenerate zero-WCET
#: tasks when a profile allows ``util_min = 0``.
_MIN_FACTOR = 1e-9


def generate_taskset(
    profile: GenerationProfile, rng: np.random.Generator, name_prefix: str = "tau"
) -> TaskSet:
    """One random taskset drawn from ``profile``.

    Periods are uniform reals in ``(period_min, period_max)`` (or uniform
    integers when ``profile.integer_periods``); areas uniform integers in
    ``[area_min, area_max]``; WCET = period × factor with factor uniform in
    ``(util_min, util_max]``.
    """
    n = profile.n_tasks
    if profile.integer_periods:
        lo = int(np.ceil(profile.period_min))
        hi = int(np.floor(profile.period_max))
        if lo > hi:
            raise ValueError(
                f"no integers in period range ({profile.period_min}, {profile.period_max})"
            )
        periods = rng.integers(lo, hi + 1, size=n).astype(float)
    else:
        periods = rng.uniform(profile.period_min, profile.period_max, size=n)
    factors = rng.uniform(profile.util_min, profile.util_max, size=n)
    factors = np.maximum(factors, _MIN_FACTOR)
    areas = rng.integers(profile.area_min, profile.area_max + 1, size=n)
    tasks = [
        Task(
            wcet=float(periods[i] * factors[i]),
            period=float(periods[i]),
            deadline=float(periods[i]),
            area=int(areas[i]),
            name=f"{name_prefix}{i + 1}",
        )
        for i in range(n)
    ]
    return TaskSet(tasks)


def generate_tasksets(
    profile: GenerationProfile, count: int, rng: np.random.Generator
) -> List[TaskSet]:
    """``count`` independent tasksets from one generator stream."""
    if count < 0:
        raise ValueError("count must be >= 0")
    return [generate_taskset(profile, rng) for _ in range(count)]
