"""Stafford's RandFixedSum: uniform utilization vectors with a fixed sum.

UUniFast-discard gets painfully slow when the target sum approaches
``n * cap`` (almost every sample has an over-cap component).  Stafford's
RandFixedSum draws uniformly from the simplex slice
``{u in [0, cap]^n : sum(u) = s}`` directly, with no rejection — the
generator of choice in the modern multiprocessor-schedulability
literature (Emberson et al., WATERS'10).

This is a numpy port of Roger Stafford's MATLAB ``randfixedsum`` (single
sample per call), restricted to equal per-component caps.
"""

from __future__ import annotations

from typing import List

import numpy as np


def randfixedsum(
    n: int, u_total: float, rng: np.random.Generator, u_cap: float = 1.0
) -> List[float]:
    """One vector of ``n`` utilizations in ``[0, u_cap]`` summing to
    ``u_total``, uniformly distributed over that simplex slice."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if u_cap <= 0:
        raise ValueError("u_cap must be > 0")
    if not 0 < u_total <= n * u_cap:
        raise ValueError(f"u_total must be in (0, {n * u_cap}]")
    if n == 1:
        return [u_total]
    s = u_total / u_cap

    # Build the probability table w (simplex volumes) and transition t.
    k = int(np.floor(s))
    k = max(min(k, n - 1), 0)
    s = max(min(s, float(n)), 0.0)
    s1 = s - np.arange(k, k - n, -1.0)
    s2 = np.arange(k + n, k, -1.0) - s

    tiny = np.finfo(float).tiny
    huge = np.finfo(float).max
    w = np.zeros((n, n + 1))
    w[0, 1] = huge
    t = np.zeros((n - 1, n))
    for i in range(2, n + 1):
        tmp1 = w[i - 2, 1 : i + 1] * s1[:i] / i
        tmp2 = w[i - 2, 0:i] * s2[n - i : n] / i
        w[i - 1, 1 : i + 1] = tmp1 + tmp2
        tmp3 = w[i - 1, 1 : i + 1] + tiny
        tmp4 = s2[n - i : n] > s1[:i]
        t[i - 2, 0:i] = (tmp2 / tmp3) * tmp4 + (1.0 - tmp1 / tmp3) * (~tmp4)

    # Walk the table once to draw one point uniformly from the slice.
    x = np.zeros(n)
    rt = rng.random(n - 1)  # which simplex region
    rs = rng.random(n - 1)  # position within the region
    j = k + 1
    remaining = s
    sm = 0.0
    pr = 1.0
    for i in range(n - 1, 0, -1):
        e = 1.0 if rt[n - i - 1] <= t[i - 1, j - 1] else 0.0
        sx = rs[n - i - 1] ** (1.0 / i)
        sm += (1.0 - sx) * pr * remaining / (i + 1)
        pr *= sx
        x[n - i - 1] = sm + pr * e
        remaining -= e
        j -= int(e)
    x[n - 1] = sm + pr * remaining

    rng.shuffle(x)  # the walk is ordered; permute for exchangeability
    return [float(v * u_cap) for v in x]
