"""Targeted system-utilization sampling for acceptance-ratio curves.

The paper plots acceptance ratio against total system utilization
``US(Γ)``.  To get clean curves we generate tasksets from a profile and
rescale every WCET so ``US`` hits the bucket target exactly, discarding
samples the rescale makes infeasible (some task's factor would exceed 1).
This keeps the joint shape of the profile's distributions while
controlling the x-axis exactly — the standard methodology for such plots.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.gen.profiles import GenerationProfile
from repro.gen.random_tasksets import generate_taskset
from repro.model.task import TaskSet


def utilization_grid(
    lo: float, hi: float, steps: int
) -> List[float]:
    """Evenly spaced utilization targets in ``[lo, hi]`` (inclusive)."""
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if not (0 < lo <= hi):
        raise ValueError("need 0 < lo <= hi")
    if steps == 1:
        return [lo]
    return list(np.linspace(lo, hi, steps))


def generate_at_system_utilization(
    profile: GenerationProfile,
    us_target: float,
    rng: np.random.Generator,
    max_tries: int = 1000,
) -> TaskSet:
    """One taskset from ``profile`` rescaled to ``US(Γ) == us_target``.

    The rescale multiplies every WCET by ``us_target / US``; a sample is
    discarded when that would push some task's time utilization above 1
    (``C > T``, unbounded backlog) — mirroring UUniFast-discard.

    Raises :class:`RuntimeError` if no feasible sample is found, which
    indicates the target is out of the profile's reachable range (e.g.
    asking 10 narrow light tasks for US = 90).
    """
    if us_target <= 0:
        raise ValueError("us_target must be > 0")
    for _ in range(max_tries):
        ts = generate_taskset(profile, rng)
        factor = us_target / float(ts.system_utilization)
        scaled = ts.scaled(time_factor=factor)
        if all(t.time_utilization <= 1 for t in scaled):
            return scaled
    raise RuntimeError(
        f"no feasible sample at US={us_target} from profile {profile.name!r} "
        f"in {max_tries} tries"
    )
