"""Declarative taskset-generation profiles.

A :class:`GenerationProfile` captures the §6 recipe parameters:

* ``n_tasks`` tasks, each with
* area uniform over integers ``[area_min, area_max]``,
* period uniform over the real interval ``(period_min, period_max)``,
* implicit deadline (``D = T``),
* WCET = period × factor, factor uniform over ``(util_min, util_max)``.

The paper names four distribution classes for Figure 4 but not their
numeric cutoffs; the values below are our documented choices
(DESIGN.md §4.8) and are trivially overridable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class GenerationProfile:
    """Parameter box for random taskset generation (see module docs)."""

    n_tasks: int
    area_min: int = 1
    area_max: int = 100
    period_min: float = 5.0
    period_max: float = 20.0
    util_min: float = 0.0
    util_max: float = 1.0
    #: Draw integer periods from [ceil(period_min), floor(period_max)] —
    #: enables exact hyperperiod simulation (not used by the paper's
    #: figures, which draw real periods).
    integer_periods: bool = False
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.n_tasks < 1:
            raise ValueError("n_tasks must be >= 1")
        if not (1 <= self.area_min <= self.area_max):
            raise ValueError("need 1 <= area_min <= area_max")
        if not (0 < self.period_min <= self.period_max):
            raise ValueError("need 0 < period_min <= period_max")
        if not (0 <= self.util_min <= self.util_max <= 1):
            raise ValueError("need 0 <= util_min <= util_max <= 1")

    def with_tasks(self, n_tasks: int) -> "GenerationProfile":
        return replace(self, n_tasks=n_tasks)

    @property
    def max_system_utilization_per_task(self) -> float:
        """Upper bound on one task's ``C*A/T`` under this profile."""
        return self.util_max * self.area_max


def paper_unconstrained(n_tasks: int) -> GenerationProfile:
    """Figure 3's recipe: unconstrained execution-time and area factors."""
    return GenerationProfile(n_tasks=n_tasks, name=f"unconstrained-{n_tasks}")


def spatially_heavy_temporally_light(n_tasks: int = 10) -> GenerationProfile:
    """Figure 4(a): wide tasks (A ~ U{50..100}) with low time utilization
    (factor ~ U(0, 0.3))."""
    return GenerationProfile(
        n_tasks=n_tasks,
        area_min=50,
        area_max=100,
        util_min=0.0,
        util_max=0.3,
        name=f"spatial-heavy-{n_tasks}",
    )


def spatially_light_temporally_heavy(n_tasks: int = 10) -> GenerationProfile:
    """Figure 4(b): narrow tasks (A ~ U{1..30}) with high time utilization
    (factor ~ U(0.5, 1))."""
    return GenerationProfile(
        n_tasks=n_tasks,
        area_min=1,
        area_max=30,
        util_min=0.5,
        util_max=1.0,
        name=f"spatial-light-{n_tasks}",
    )
