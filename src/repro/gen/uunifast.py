"""UUniFast and UUniFast-discard utilization partitioning.

Bini & Buttazzo's UUniFast draws a vector of ``n`` task utilizations
summing exactly to ``u_total``, uniformly over the simplex.  For
``u_total > 1`` individual samples can exceed 1 (infeasible for a single
task); UUniFast-discard resamples until all components are <= ``u_cap``.

These are the standard generators in the multiprocessor-EDF literature the
paper builds on (GFB/BCL/BAK experiments); we provide them both for the
multiprocessor baselines and as an alternative to the paper's
independent-factor recipe.
"""

from __future__ import annotations

from typing import List

import numpy as np


def uunifast(n: int, u_total: float, rng: np.random.Generator) -> List[float]:
    """Utilization vector of length ``n`` summing to ``u_total``.

    Classic recurrence: ``sum_i = u_total``; repeatedly split off one task
    with ``next = sum * U^(1/(n-1))``.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if u_total <= 0:
        raise ValueError("u_total must be > 0")
    utils: List[float] = []
    remaining = float(u_total)
    for i in range(n - 1):
        next_sum = remaining * rng.random() ** (1.0 / (n - 1 - i))
        utils.append(remaining - next_sum)
        remaining = next_sum
    utils.append(remaining)
    return utils


def uunifast_discard(
    n: int,
    u_total: float,
    rng: np.random.Generator,
    u_cap: float = 1.0,
    max_tries: int = 10_000,
) -> List[float]:
    """UUniFast resampled until every component is ``<= u_cap``.

    Raises :class:`RuntimeError` when the target is unreachable within
    ``max_tries`` (e.g. ``u_total > n * u_cap``).
    """
    if u_total > n * u_cap:
        raise ValueError(f"u_total={u_total} unreachable with n={n}, cap={u_cap}")
    for _ in range(max_tries):
        utils = uunifast(n, u_total, rng)
        if all(u <= u_cap for u in utils):
            return utils
    raise RuntimeError(
        f"uunifast_discard: no feasible sample in {max_tries} tries "
        f"(n={n}, u_total={u_total}, cap={u_cap})"
    )
