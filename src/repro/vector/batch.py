"""Struct-of-arrays batches of same-size tasksets.

A :class:`TaskSetBatch` holds ``B`` tasksets of ``N`` tasks each as four
``(B, N)`` float arrays — the layout the vectorized tests want (and the
cache-friendly one: each bound touches whole columns of parameters).
Conversion to/from the object model is provided for cross-validation and
for feeding individual sets to the simulator.

The arrays may belong to any :mod:`repro.vector.xp` backend: generation
and object-model conversion are host-side (the rngs are numpy
generators), but every aggregate dispatches on the arrays' own namespace
(:func:`repro.vector.xp.namespace_of`), so a batch moved onto a device
backend with :meth:`TaskSetBatch.with_backend` keeps its math on the
device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

from repro.gen.profiles import GenerationProfile
from repro.gen.random_tasksets import _MIN_FACTOR
from repro.model.task import Task, TaskSet
from repro.vector import xp
from repro.vector.xp import host as hnp


def sequential_sum(arr, axis: int = -1):
    """Left-to-right summation along ``axis``.

    ``np.sum`` switches to pairwise summation above 8 elements, which
    re-associates floating-point adds and can flip strict-inequality
    verdicts at knife-edge tasksets relative to the scalar reference
    (which accumulates left-to-right).  The vectorized tests use this so
    their verdicts are bit-identical to :mod:`repro.core`.  The
    accumulation runs in the array's own namespace (host arrays stay
    host, device arrays stay on device).
    """
    ns = xp.namespace_of(arr)
    arr = ns.moveaxis(arr, axis, -1)
    out = ns.copy(arr[..., 0])
    for j in range(1, arr.shape[-1]):
        out += arr[..., j]
    return out


@dataclass(frozen=True)
class TaskSetBatch:
    """``B`` tasksets x ``N`` tasks in struct-of-arrays form."""

    wcet: "hnp.ndarray"  # (B, N) float64
    period: "hnp.ndarray"  # (B, N) float64
    deadline: "hnp.ndarray"  # (B, N) float64
    area: "hnp.ndarray"  # (B, N) float64 (integral values)

    def __post_init__(self) -> None:
        shape = self.wcet.shape
        if len(shape) != 2:
            raise ValueError(f"expected (B, N) arrays, got shape {shape}")
        for name in ("period", "deadline", "area"):
            arr = getattr(self, name)
            if arr.shape != shape:
                raise ValueError(
                    f"{name} shape {arr.shape} does not match wcet shape {shape}"
                )

    # -- shape ------------------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of tasksets ``B``."""
        return int(self.wcet.shape[0])

    @property
    def n_tasks(self) -> int:
        """Tasks per set ``N``."""
        return int(self.wcet.shape[1])

    def __len__(self) -> int:
        return self.count

    # -- aggregates ---------------------------------------------------------------

    @property
    def time_utilization(self):
        """``UT`` per taskset, shape ``(B,)``."""
        return sequential_sum(self.wcet / self.period, axis=1)

    @property
    def system_utilization(self):
        """``US`` per taskset, shape ``(B,)``."""
        return sequential_sum(self.wcet * self.area / self.period, axis=1)

    @property
    def max_area(self):
        return xp.namespace_of(self.area).max(self.area, axis=1)

    @property
    def min_area(self):
        return xp.namespace_of(self.area).min(self.area, axis=1)

    # -- conversions -------------------------------------------------------------

    @classmethod
    def from_tasksets(cls, tasksets: Sequence[TaskSet]) -> "TaskSetBatch":
        """Pack same-length tasksets into a batch (floats)."""
        if not tasksets:
            raise ValueError("need at least one taskset")
        n = len(tasksets[0])
        if any(len(ts) != n for ts in tasksets):
            raise ValueError("all tasksets in a batch must have the same size")
        b = len(tasksets)
        wcet = hnp.empty((b, n))
        period = hnp.empty((b, n))
        deadline = hnp.empty((b, n))
        area = hnp.empty((b, n))
        for bi, ts in enumerate(tasksets):
            for ni, t in enumerate(ts):
                wcet[bi, ni] = float(t.wcet)
                period[bi, ni] = float(t.period)
                deadline[bi, ni] = float(t.deadline)
                area[bi, ni] = float(t.area)
        return cls(wcet, period, deadline, area)

    def taskset(self, index: int) -> TaskSet:
        """Materialize one row as a :class:`TaskSet`."""
        return TaskSet(
            Task(
                wcet=float(self.wcet[index, i]),
                period=float(self.period[index, i]),
                deadline=float(self.deadline[index, i]),
                area=int(self.area[index, i]),
                name=f"tau{i + 1}",
            )
            for i in range(self.n_tasks)
        )

    def to_tasksets(self) -> List[TaskSet]:
        return [self.taskset(i) for i in range(self.count)]

    def rows(self, sl: slice) -> "TaskSetBatch":
        """A contiguous row-slice view of the batch (shared storage).

        Rows are independent in every vector kernel, so slicing the
        batch axis is the sharding primitive of
        ``simulate_batch(..., sim_workers=...)``: results computed on
        ``rows(a:b)`` slices concatenate to the full-batch result
        bit-for-bit.
        """
        return TaskSetBatch(
            self.wcet[sl], self.period[sl], self.deadline[sl], self.area[sl]
        )

    def with_backend(
        self, backend: Union[None, str, "xp.ArrayBackend"] = None
    ) -> "TaskSetBatch":
        """The same batch with arrays on the given array backend.

        ``backend`` follows the :func:`repro.vector.xp.get_backend`
        precedence (``None`` means the active selection).  This is the
        one host->device transfer point for batch data; dtypes are
        preserved.
        """
        ns = xp.get_backend(backend)
        return TaskSetBatch(
            ns.asarray(xp.asnumpy(self.wcet)),
            ns.asarray(xp.asnumpy(self.period)),
            ns.asarray(xp.asnumpy(self.deadline)),
            ns.asarray(xp.asnumpy(self.area)),
        )

    def to_host(self) -> "TaskSetBatch":
        """The same batch with host (numpy) arrays."""
        return TaskSetBatch(
            xp.asnumpy(self.wcet),
            xp.asnumpy(self.period),
            xp.asnumpy(self.deadline),
            xp.asnumpy(self.area),
        )

    def scaled_to_system_utilization(self, targets) -> "TaskSetBatch":
        """Rescale every set's WCETs to hit per-set ``US`` targets.

        Vectorized analogue of
        :meth:`repro.model.task.TaskSet.scaled_to_system_utilization`.
        """
        ns = xp.namespace_of(self.wcet)
        targets = ns.asarray(targets, dtype=ns.float64)
        if tuple(targets.shape) != (self.count,):
            raise ValueError(f"targets must have shape ({self.count},)")
        factor = targets / self.system_utilization
        return TaskSetBatch(
            self.wcet * factor[:, None], self.period, self.deadline, self.area
        )

    @property
    def feasible_mask(self):
        """Per-set mask: every task has ``C <= min(D, T)`` (``(B,)`` bool)."""
        ok = (self.wcet <= self.deadline) & (self.wcet <= self.period)
        return xp.namespace_of(self.wcet).all(ok, axis=1)


def generate_batch(
    profile: GenerationProfile, count: int, rng: "hnp.random.Generator"
) -> TaskSetBatch:
    """Draw ``count`` tasksets from ``profile`` directly into arrays.

    Identical distributions to
    :func:`repro.gen.random_tasksets.generate_taskset`, but one vectorized
    draw instead of ``count * N`` Python-object constructions.  Always
    host-side (the generator is a numpy one and the draw order is pinned
    to the scalar reference); move the result with
    :meth:`TaskSetBatch.with_backend` when a device batch is wanted.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    n = profile.n_tasks
    if profile.integer_periods:
        lo = int(hnp.ceil(profile.period_min))
        hi = int(hnp.floor(profile.period_max))
        if lo > hi:
            raise ValueError("no integers in period range")
        period = rng.integers(lo, hi + 1, size=(count, n)).astype(hnp.float64)
    else:
        period = rng.uniform(profile.period_min, profile.period_max, size=(count, n))
    factor = hnp.maximum(
        rng.uniform(profile.util_min, profile.util_max, size=(count, n)), _MIN_FACTOR
    )
    area = rng.integers(profile.area_min, profile.area_max + 1, size=(count, n)).astype(
        hnp.float64
    )
    wcet = period * factor
    return TaskSetBatch(wcet=wcet, period=period, deadline=period.copy(), area=area)
