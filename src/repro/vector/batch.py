"""Struct-of-arrays batches of same-size tasksets.

A :class:`TaskSetBatch` holds ``B`` tasksets of ``N`` tasks each as four
``(B, N)`` float arrays — the layout the vectorized tests want (and the
cache-friendly one: each bound touches whole columns of parameters).
Conversion to/from the object model is provided for cross-validation and
for feeding individual sets to the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.gen.profiles import GenerationProfile
from repro.gen.random_tasksets import _MIN_FACTOR
from repro.model.task import Task, TaskSet


def sequential_sum(arr: np.ndarray, axis: int = -1) -> np.ndarray:
    """Left-to-right summation along ``axis``.

    ``np.sum`` switches to pairwise summation above 8 elements, which
    re-associates floating-point adds and can flip strict-inequality
    verdicts at knife-edge tasksets relative to the scalar reference
    (which accumulates left-to-right).  The vectorized tests use this so
    their verdicts are bit-identical to :mod:`repro.core`.
    """
    arr = np.moveaxis(arr, axis, -1)
    out = arr[..., 0].copy()
    for j in range(1, arr.shape[-1]):
        out += arr[..., j]
    return out


@dataclass(frozen=True)
class TaskSetBatch:
    """``B`` tasksets x ``N`` tasks in struct-of-arrays form."""

    wcet: np.ndarray  # (B, N) float64
    period: np.ndarray  # (B, N) float64
    deadline: np.ndarray  # (B, N) float64
    area: np.ndarray  # (B, N) float64 (integral values)

    def __post_init__(self) -> None:
        shape = self.wcet.shape
        if len(shape) != 2:
            raise ValueError(f"expected (B, N) arrays, got shape {shape}")
        for name in ("period", "deadline", "area"):
            arr = getattr(self, name)
            if arr.shape != shape:
                raise ValueError(
                    f"{name} shape {arr.shape} does not match wcet shape {shape}"
                )

    # -- shape ------------------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of tasksets ``B``."""
        return self.wcet.shape[0]

    @property
    def n_tasks(self) -> int:
        """Tasks per set ``N``."""
        return self.wcet.shape[1]

    def __len__(self) -> int:
        return self.count

    # -- aggregates ---------------------------------------------------------------

    @property
    def time_utilization(self) -> np.ndarray:
        """``UT`` per taskset, shape ``(B,)``."""
        return sequential_sum(self.wcet / self.period, axis=1)

    @property
    def system_utilization(self) -> np.ndarray:
        """``US`` per taskset, shape ``(B,)``."""
        return sequential_sum(self.wcet * self.area / self.period, axis=1)

    @property
    def max_area(self) -> np.ndarray:
        return self.area.max(axis=1)

    @property
    def min_area(self) -> np.ndarray:
        return self.area.min(axis=1)

    # -- conversions -------------------------------------------------------------

    @classmethod
    def from_tasksets(cls, tasksets: Sequence[TaskSet]) -> "TaskSetBatch":
        """Pack same-length tasksets into a batch (floats)."""
        if not tasksets:
            raise ValueError("need at least one taskset")
        n = len(tasksets[0])
        if any(len(ts) != n for ts in tasksets):
            raise ValueError("all tasksets in a batch must have the same size")
        b = len(tasksets)
        wcet = np.empty((b, n))
        period = np.empty((b, n))
        deadline = np.empty((b, n))
        area = np.empty((b, n))
        for bi, ts in enumerate(tasksets):
            for ni, t in enumerate(ts):
                wcet[bi, ni] = float(t.wcet)
                period[bi, ni] = float(t.period)
                deadline[bi, ni] = float(t.deadline)
                area[bi, ni] = float(t.area)
        return cls(wcet, period, deadline, area)

    def taskset(self, index: int) -> TaskSet:
        """Materialize one row as a :class:`TaskSet`."""
        return TaskSet(
            Task(
                wcet=float(self.wcet[index, i]),
                period=float(self.period[index, i]),
                deadline=float(self.deadline[index, i]),
                area=int(self.area[index, i]),
                name=f"tau{i + 1}",
            )
            for i in range(self.n_tasks)
        )

    def to_tasksets(self) -> List[TaskSet]:
        return [self.taskset(i) for i in range(self.count)]

    def scaled_to_system_utilization(self, targets: np.ndarray) -> "TaskSetBatch":
        """Rescale every set's WCETs to hit per-set ``US`` targets.

        Vectorized analogue of
        :meth:`repro.model.task.TaskSet.scaled_to_system_utilization`.
        """
        targets = np.asarray(targets, dtype=float)
        if targets.shape != (self.count,):
            raise ValueError(f"targets must have shape ({self.count},)")
        factor = targets / self.system_utilization
        return TaskSetBatch(
            self.wcet * factor[:, None], self.period, self.deadline, self.area
        )

    @property
    def feasible_mask(self) -> np.ndarray:
        """Per-set mask: every task has ``C <= min(D, T)`` (``(B,)`` bool)."""
        ok = (self.wcet <= self.deadline) & (self.wcet <= self.period)
        return ok.all(axis=1)


def generate_batch(
    profile: GenerationProfile, count: int, rng: np.random.Generator
) -> TaskSetBatch:
    """Draw ``count`` tasksets from ``profile`` directly into arrays.

    Identical distributions to
    :func:`repro.gen.random_tasksets.generate_taskset`, but one vectorized
    draw instead of ``count * N`` Python-object constructions.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    n = profile.n_tasks
    if profile.integer_periods:
        lo = int(np.ceil(profile.period_min))
        hi = int(np.floor(profile.period_max))
        if lo > hi:
            raise ValueError("no integers in period range")
        period = rng.integers(lo, hi + 1, size=(count, n)).astype(float)
    else:
        period = rng.uniform(profile.period_min, profile.period_max, size=(count, n))
    factor = np.maximum(
        rng.uniform(profile.util_min, profile.util_max, size=(count, n)), _MIN_FACTOR
    )
    area = rng.integers(profile.area_min, profile.area_max + 1, size=(count, n)).astype(
        float
    )
    wcet = period * factor
    return TaskSetBatch(wcet=wcet, period=period, deadline=period.copy(), area=area)
