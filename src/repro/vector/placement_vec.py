"""Batched struct-of-arrays free-list over per-row column bitmaps.

One :class:`BatchFreeList` tracks the free/occupied columns of ``B``
independent copies of the same device as a ``(B, ceil(W/64))`` array of
64-bit bitmap words — bit ``c % 64`` of word ``c // 64`` set iff column
``c`` of that row is free.  Static regions pre-fragment every row
identically: the seed words are encoded from
:meth:`repro.fpga.device.Fpga.free_spans` through
:func:`repro.fpga.intervals.spans_to_words`, the same source of truth the
scalar :class:`repro.fpga.freelist.FreeList` consumes as interval lists.

The kernels replicate the scalar reference *exactly*:

* :meth:`BatchFreeList.is_free` — ``FreeList.is_free`` (span entirely
  inside one hole), evaluated with word masks, no unpacking;
* :meth:`BatchFreeList.choose` — ``choose_interval`` for every row at
  once: maximal holes are extracted from the unpacked bitmap (a suffix
  scan gives each free column the distance to the next occupied one) and
  the first/best/worst-fit winners are picked with integer keys encoding
  the scalar tie-breaks (best fit: smallest hole then leftmost; worst
  fit: largest hole then leftmost).

All geometry is integer arithmetic, so agreement with the scalar path is
bit-exact by construction — and property-tested against ``FreeList`` and
``choose_interval`` under random place/free sequences in
``tests/test_fpga_intervals.py``.

Backend-neutral: every kernel dispatches on the bitmap array's own
:mod:`repro.vector.xp` namespace (or an explicit ``ns``), so the same
code runs on numpy uint64 words, cupy uint64 words, or torch int64
words (torch has no uint64 arithmetic; the int64 reinterpretation is
bit-identical for ``& | ~`` and equality under two's complement — see
:meth:`repro.vector.xp.ArrayBackend.bitmap_from_host`).
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.fpga.device import Fpga
from repro.fpga.intervals import (
    Interval,
    WORD_BITS,
    spans_to_words,
    word_count,
    words_to_spans,
)
from repro.fpga.placement import PlacementPolicy
from repro.vector import xp


def range_masks(starts, ends, n_words: int, ns=None):
    """Per-row word masks with bits ``[start, end)`` set.

    ``starts``/``ends`` are ``(R,)`` int arrays (``0 <= start <= end <=
    64 * n_words``); returns ``(R, n_words)`` words in the backend's
    bitmap dtype.
    """
    ns = ns if ns is not None else xp.namespace_of(starts)
    base = ns.arange(n_words, dtype=ns.int64) * WORD_BITS
    # Manual min/max instead of np.clip: this sits on the simulator's
    # per-decision hot path and clip's dtype plumbing costs ~5x the ufuncs.
    lo = ns.minimum(ns.maximum(starts[:, None] - base, 0), WORD_BITS)
    hi = ns.minimum(ns.maximum(ends[:, None] - base, 0), WORD_BITS)
    low_bits = ns.low_bits()
    return low_bits[hi] & ~low_bits[lo]


def span_free(words, starts, widths, width: int, n_words: int, ns=None):
    """Per-row "is ``[start, start+width)`` entirely free" on word bitmaps.

    The single implementation behind :meth:`BatchFreeList.is_free` and
    the simulator's resume-in-place checks.  Rows with ``start < 0`` (no
    recorded position), non-positive widths, or spans past the device
    edge report ``False``; their (clamped, garbage) masks are vetoed by
    the validity term, so no sanitizing pass is needed.
    """
    ns = ns if ns is not None else xp.namespace_of(words)
    valid = (starts >= 0) & (widths > 0) & (starts + widths <= width)
    masks = range_masks(starts, starts + widths, n_words, ns=ns)
    return ns.all((words & masks) == masks, axis=1) & valid


def clear_spans(words, rows, starts, widths, n_words: int, ns=None):
    """Occupy (clear) ``[start, start+width)`` in each given row of ``words``."""
    ns = ns if ns is not None else xp.namespace_of(words)
    masks = range_masks(starts, starts + widths, n_words, ns=ns)
    words[rows] &= ~masks
    return words


def set_spans(words, rows, starts, widths, n_words: int, ns=None):
    """Release (set) ``[start, start+width)`` in each given row of ``words``."""
    ns = ns if ns is not None else xp.namespace_of(words)
    masks = range_masks(starts, starts + widths, n_words, ns=ns)
    words[rows] |= masks
    return words


def unpack_words(words, width: int, ns=None):
    """Unpack ``(R, n_words)`` bitmap words to ``(R, width)`` uint8 0/1."""
    ns = ns if ns is not None else xp.namespace_of(words)
    return ns.unpack_bitmap(words, width)


def hole_ends_and_lengths(free, ns=None):
    """Maximal-hole geometry of ``(R, W)`` uint8 0/1 free maps.

    Returns ``(start_of, hole_len)``: ``start_of[r, c]`` is the start of
    the free run ending at ``c`` (meaningful where ``free``), and
    ``hole_len[r, c]`` is the width of the maximal hole *ending* at ``c``
    (0 unless ``c`` is a hole end).  Holes enumerated by their end
    column are exactly the candidate list
    :func:`repro.fpga.placement.choose_interval` enumerates by start —
    one entry per maximal hole, in left-to-right order.

    Everything is a forward scan over contiguous narrow-dtype rows (one
    ``maximum.accumulate``), which profiles several times faster than
    the reversed-suffix-min formulation on float/int64.
    """
    ns = ns if ns is not None else xp.namespace_of(free)
    W = int(free.shape[1])
    idx1 = ns.col_index(W)  # column index + 1, so 0 can mean "no occupied yet"
    zero = ns.zeros((), dtype=idx1.dtype)
    # start_of[c]: (last occupied column <= c) + 1 == start of the free
    # run ending at c (free cols), or c + 1 (occupied cols).
    start_of = ns.maximum_accumulate(ns.where(free, zero, idx1), axis=1)
    ends = ns.copy(free)
    ends[:, :-1] &= free[:, 1:] ^ 1
    # Hole ending at c has width c - start + 1 == idx1 - start_of.
    hole_len = ns.where(ends, idx1 - start_of, zero)
    return start_of, hole_len


def choose_batch(words, widths, device_width: int, policy: PlacementPolicy, ns=None):
    """Vectorized :func:`repro.fpga.placement.choose_interval` over rows.

    ``words`` is ``(R, n_words)`` bitmap words, ``widths`` ``(R,)``
    positive ints.  Returns ``(R,)`` int64 start columns, ``-1`` where no
    hole is wide enough.  Tie-breaks are bit-identical to the scalar
    chooser.
    """
    ns = ns if ns is not None else xp.namespace_of(words)
    free = unpack_words(words, device_width, ns=ns)
    start_of, hole_len = hole_ends_and_lengths(free, ns=ns)
    W = device_width
    # Clamp before narrowing: a request wider than the device can never
    # fit (hole_len <= W < W + 1), and the raw width could wrap in the
    # narrow hole_len dtype (e.g. 300 -> 44 in uint8) and falsely place.
    need = ns.astype(ns.minimum(widths, W + 1)[:, None], hole_len.dtype)
    fits = hole_len >= need
    rows = ns.arange(words.shape[0])
    if policy is PlacementPolicy.FIRST_FIT:
        # Leftmost fitting hole == leftmost fitting hole end.
        pick = ns.argmax(fits, axis=1)
    elif policy is PlacementPolicy.BEST_FIT:
        # min (length, start): encode as length * (W + 1) + start.
        key = ns.where(
            fits,
            ns.astype(hole_len, ns.int32) * (W + 1) + start_of,
            ns.full((), (W + 1) * (W + 1), dtype=ns.int32),
        )
        pick = ns.argmin(key, axis=1)
    elif policy is PlacementPolicy.WORST_FIT:
        # max (length, -start): encode as length * (W + 1) + (W - start).
        key = ns.where(
            fits,
            ns.astype(hole_len, ns.int32) * (W + 1) + (W - start_of),
            ns.full((), -1, dtype=ns.int32),
        )
        pick = ns.argmax(key, axis=1)
    else:  # pragma: no cover
        raise AssertionError(f"unhandled policy {policy!r}")
    # fits[rows, pick] doubles as the "any hole fits" flag (cheaper than
    # a separate any-reduction).
    return ns.where(
        fits[rows, pick], ns.astype(start_of[rows, pick], ns.int64), -1
    )


class BatchFreeList:
    """``B`` parallel free-lists for one device geometry.

    Mutations are in-place and vectorized over an arbitrary subset of
    rows; :meth:`reset` rewinds every row to the device's pristine free
    spans (the simulator re-places the running set from scratch at each
    decision point, mirroring the scalar path's fresh ``FreeList``).
    ``backend`` selects the :mod:`repro.vector.xp` namespace the bitmap
    words live on (``None`` = the active selection).
    """

    def __init__(
        self,
        fpga: Fpga,
        count: int,
        backend: Union[None, str, "xp.ArrayBackend"] = None,
    ):
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self.fpga = fpga
        self.width = fpga.width
        self.n_words = word_count(fpga.width)
        self.ns = xp.get_backend(backend)
        self.device_words = self.ns.bitmap_from_host(
            spans_to_words(fpga.free_spans(), fpga.width)
        )
        self.words = self.ns.tile(self.device_words, (count, 1))

    @property
    def count(self) -> int:
        return int(self.words.shape[0])

    def reset(self, count: Optional[int] = None) -> None:
        """Free every row (optionally resizing to ``count`` rows)."""
        n = self.count if count is None else count
        if count is not None and self.words.shape[0] != count:
            self.words = self.ns.tile(self.device_words, (n, 1))
        else:
            self.words[:] = self.device_words

    # -- queries ---------------------------------------------------------

    def free_spans_of(self, row: int) -> List[Interval]:
        """Row ``row``'s sorted maximal free intervals (for tests/tools)."""
        return words_to_spans(self.ns.asnumpy(self.words[row]), self.width)

    def total_free(self):
        """Free columns per row, ``(B,)`` int64."""
        unpacked = unpack_words(self.words, self.width, ns=self.ns)
        return self.ns.sum(self.ns.astype(unpacked, self.ns.int64), axis=1)

    def largest_hole(self):
        """Widest hole per row, ``(B,)`` int64."""
        free = unpack_words(self.words, self.width, ns=self.ns)
        _, hole_len = hole_ends_and_lengths(free, ns=self.ns)
        return self.ns.astype(self.ns.max(hole_len, axis=1), self.ns.int64)

    def is_free(self, starts, widths):
        """Per-row ``FreeList.is_free(start, width)`` — ``(B,)`` bool.

        Rows with ``start < 0`` (no recorded position) report ``False``.
        """
        starts = self.ns.asarray(starts, dtype=self.ns.int64)
        widths = self.ns.asarray(widths, dtype=self.ns.int64)
        return span_free(
            self.words, starts, widths, self.width, self.n_words, ns=self.ns
        )

    def choose(self, widths, policy: PlacementPolicy, rows=None):
        """Vectorized ``choose_interval`` (``-1`` where no hole fits).

        With ``rows`` given, only that subset is evaluated (and the
        result aligns with ``rows``); otherwise all rows.
        """
        widths = self.ns.asarray(widths, dtype=self.ns.int64)
        words = self.words if rows is None else self.words[rows]
        return choose_batch(words, widths, self.width, policy, ns=self.ns)

    # -- mutations -------------------------------------------------------

    def occupy(self, rows, starts, widths) -> None:
        """Clear (allocate) ``[start, start+width)`` in each given row."""
        starts = self.ns.asarray(starts, dtype=self.ns.int64)
        widths = self.ns.asarray(widths, dtype=self.ns.int64)
        clear_spans(self.words, rows, starts, widths, self.n_words, ns=self.ns)

    def vacate(self, rows, starts, widths) -> None:
        """Set (release) ``[start, start+width)`` in each given row."""
        starts = self.ns.asarray(starts, dtype=self.ns.int64)
        widths = self.ns.asarray(widths, dtype=self.ns.int64)
        set_spans(self.words, rows, starts, widths, self.n_words, ns=self.ns)
