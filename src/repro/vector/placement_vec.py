"""Batched struct-of-arrays free-list over per-row column bitmaps.

One :class:`BatchFreeList` tracks the free/occupied columns of ``B``
independent copies of the same device as a ``(B, ceil(W/64))`` array of
``uint64`` words — bit ``c % 64`` of word ``c // 64`` set iff column
``c`` of that row is free.  Static regions pre-fragment every row
identically: the seed words are encoded from
:meth:`repro.fpga.device.Fpga.free_spans` through
:func:`repro.fpga.intervals.spans_to_words`, the same source of truth the
scalar :class:`repro.fpga.freelist.FreeList` consumes as interval lists.

The kernels replicate the scalar reference *exactly*:

* :meth:`BatchFreeList.is_free` — ``FreeList.is_free`` (span entirely
  inside one hole), evaluated with word masks, no unpacking;
* :meth:`BatchFreeList.choose` — ``choose_interval`` for every row at
  once: maximal holes are extracted from the unpacked bitmap (a suffix
  scan gives each free column the distance to the next occupied one) and
  the first/best/worst-fit winners are picked with integer keys encoding
  the scalar tie-breaks (best fit: smallest hole then leftmost; worst
  fit: largest hole then leftmost).

All geometry is integer arithmetic, so agreement with the scalar path is
bit-exact by construction — and property-tested against ``FreeList`` and
``choose_interval`` under random place/free sequences in
``tests/test_fpga_intervals.py``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.fpga.device import Fpga
from repro.fpga.intervals import (
    Interval,
    WORD_BITS,
    spans_to_words,
    word_count,
    words_to_spans,
)
from repro.fpga.placement import PlacementPolicy

#: ``_LOW_BITS[j]`` has the low ``j`` bits set (``j`` in 0..64).
_LOW_BITS = np.array([(1 << j) - 1 for j in range(WORD_BITS + 1)], dtype=np.uint64)
_SHIFTS = np.arange(WORD_BITS, dtype=np.uint64)
_ONE = np.uint64(1)


def range_masks(starts: np.ndarray, ends: np.ndarray, n_words: int) -> np.ndarray:
    """Per-row word masks with bits ``[start, end)`` set.

    ``starts``/``ends`` are ``(R,)`` int arrays (``0 <= start <= end <=
    64 * n_words``); returns ``(R, n_words)`` uint64.
    """
    base = np.arange(n_words, dtype=np.int64) * WORD_BITS
    # Manual min/max instead of np.clip: this sits on the simulator's
    # per-decision hot path and clip's dtype plumbing costs ~5x the ufuncs.
    lo = np.minimum(np.maximum(starts[:, None] - base, 0), WORD_BITS)
    hi = np.minimum(np.maximum(ends[:, None] - base, 0), WORD_BITS)
    return _LOW_BITS[hi] & ~_LOW_BITS[lo]


def span_free(
    words: np.ndarray,
    starts: np.ndarray,
    widths: np.ndarray,
    width: int,
    n_words: int,
) -> np.ndarray:
    """Per-row "is ``[start, start+width)`` entirely free" on word bitmaps.

    The single implementation behind :meth:`BatchFreeList.is_free` and
    the simulator's resume-in-place checks.  Rows with ``start < 0`` (no
    recorded position), non-positive widths, or spans past the device
    edge report ``False``; their (clamped, garbage) masks are vetoed by
    the validity term, so no sanitizing pass is needed.
    """
    valid = (starts >= 0) & (widths > 0) & (starts + widths <= width)
    masks = range_masks(starts, starts + widths, n_words)
    return ((words & masks) == masks).all(axis=1) & valid


def clear_spans(
    words: np.ndarray, rows: np.ndarray, starts: np.ndarray, widths: np.ndarray,
    n_words: int,
) -> np.ndarray:
    """Occupy (clear) ``[start, start+width)`` in each given row of ``words``."""
    masks = range_masks(starts, starts + widths, n_words)
    words[rows] &= ~masks
    return words


def set_spans(
    words: np.ndarray, rows: np.ndarray, starts: np.ndarray, widths: np.ndarray,
    n_words: int,
) -> np.ndarray:
    """Release (set) ``[start, start+width)`` in each given row of ``words``."""
    masks = range_masks(starts, starts + widths, n_words)
    words[rows] |= masks
    return words


def unpack_words(words: np.ndarray, width: int) -> np.ndarray:
    """Unpack ``(R, n_words)`` uint64 bitmaps to ``(R, width)`` uint8 0/1.

    Little-endian byte order is assumed (bit ``c % 64`` of word
    ``c // 64`` lands at flat position ``c``), which holds on every
    platform this repo targets.
    """
    flat = np.unpackbits(
        np.ascontiguousarray(words).view(np.uint8), axis=1, bitorder="little"
    )
    return flat[:, :width]


#: int16 column indices are plenty (devices are O(100) columns) and halve
#: the bandwidth of the accumulate on the chooser's hot path.
_MAX_WIDTH = np.iinfo(np.int16).max // 2
_IDX_CACHE: dict = {}


def _col_index(width: int):
    """Cached ``arange(1, width + 1)`` in the narrowest dtype that fits.

    Indices are biased by +1 so the maximum-accumulate that computes
    hole starts can run in uint8 for the (typical) narrow devices —
    half the bandwidth of int16 on the chooser's hottest loop.
    """
    cached = _IDX_CACHE.get(width)
    if cached is None:
        if width > _MAX_WIDTH:
            raise ValueError(f"device width {width} exceeds {_MAX_WIDTH}")
        dtype = np.uint8 if width < 255 else np.int16
        cached = _IDX_CACHE[width] = np.arange(1, width + 1, dtype=dtype)
    return cached


def hole_ends_and_lengths(free: np.ndarray):
    """Maximal-hole geometry of ``(R, W)`` uint8 0/1 free maps.

    Returns ``(start_of, hole_len)``: ``start_of[r, c]`` is the start of
    the free run ending at ``c`` (meaningful where ``free``), and
    ``hole_len[r, c]`` is the width of the maximal hole *ending* at ``c``
    (0 unless ``c`` is a hole end).  Holes enumerated by their end
    column are exactly the candidate list
    :func:`repro.fpga.placement.choose_interval` enumerates by start —
    one entry per maximal hole, in left-to-right order.

    Everything is a forward scan over contiguous narrow-dtype rows (one
    ``maximum.accumulate``), which profiles several times faster than
    the reversed-suffix-min formulation on float/int64.
    """
    R, W = free.shape
    idx1 = _col_index(W)  # column index + 1, so 0 can mean "no occupied yet"
    # start_of[c]: (last occupied column <= c) + 1 == start of the free
    # run ending at c (free cols), or c + 1 (occupied cols).
    start_of = np.maximum.accumulate(np.where(free, idx1.dtype.type(0), idx1), axis=1)
    ends = free.copy()
    ends[:, :-1] &= free[:, 1:] ^ 1
    # Hole ending at c has width c - start + 1 == idx1 - start_of.
    hole_len = np.where(ends, idx1 - start_of, idx1.dtype.type(0))
    return start_of, hole_len


def choose_batch(
    words: np.ndarray, widths: np.ndarray, device_width: int, policy: PlacementPolicy
) -> np.ndarray:
    """Vectorized :func:`repro.fpga.placement.choose_interval` over rows.

    ``words`` is ``(R, n_words)`` uint64, ``widths`` ``(R,)`` positive
    ints.  Returns ``(R,)`` int64 start columns, ``-1`` where no hole is
    wide enough.  Tie-breaks are bit-identical to the scalar chooser.
    """
    free = unpack_words(words, device_width)
    start_of, hole_len = hole_ends_and_lengths(free)
    W = device_width
    # Clamp before narrowing: a request wider than the device can never
    # fit (hole_len <= W < W + 1), and the raw width could wrap in the
    # narrow hole_len dtype (e.g. 300 -> 44 in uint8) and falsely place.
    need = np.minimum(widths, W + 1)[:, None].astype(hole_len.dtype)
    fits = hole_len >= need
    rows = np.arange(words.shape[0])
    if policy is PlacementPolicy.FIRST_FIT:
        # Leftmost fitting hole == leftmost fitting hole end.
        pick = np.argmax(fits, axis=1)
    elif policy is PlacementPolicy.BEST_FIT:
        # min (length, start): encode as length * (W + 1) + start.
        key = np.where(
            fits,
            hole_len.astype(np.int32) * (W + 1) + start_of,
            np.int32((W + 1) * (W + 1)),
        )
        pick = np.argmin(key, axis=1)
    elif policy is PlacementPolicy.WORST_FIT:
        # max (length, -start): encode as length * (W + 1) + (W - start).
        key = np.where(
            fits,
            hole_len.astype(np.int32) * (W + 1) + (W - start_of),
            np.int32(-1),
        )
        pick = np.argmax(key, axis=1)
    else:  # pragma: no cover
        raise AssertionError(f"unhandled policy {policy!r}")
    # fits[rows, pick] doubles as the "any hole fits" flag (cheaper than
    # a separate any-reduction).
    return np.where(fits[rows, pick], start_of[rows, pick].astype(np.int64), -1)


class BatchFreeList:
    """``B`` parallel free-lists for one device geometry.

    Mutations are in-place and vectorized over an arbitrary subset of
    rows; :meth:`reset` rewinds every row to the device's pristine free
    spans (the simulator re-places the running set from scratch at each
    decision point, mirroring the scalar path's fresh ``FreeList``).
    """

    def __init__(self, fpga: Fpga, count: int):
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self.fpga = fpga
        self.width = fpga.width
        self.n_words = word_count(fpga.width)
        self.device_words = spans_to_words(fpga.free_spans(), fpga.width)
        self.words = np.tile(self.device_words, (count, 1))

    @property
    def count(self) -> int:
        return self.words.shape[0]

    def reset(self, count: Optional[int] = None) -> None:
        """Free every row (optionally resizing to ``count`` rows)."""
        n = self.count if count is None else count
        if count is not None and self.words.shape[0] != count:
            self.words = np.tile(self.device_words, (n, 1))
        else:
            self.words[:] = self.device_words

    # -- queries ---------------------------------------------------------

    def free_spans_of(self, row: int) -> List[Interval]:
        """Row ``row``'s sorted maximal free intervals (for tests/tools)."""
        return words_to_spans(self.words[row], self.width)

    def total_free(self) -> np.ndarray:
        """Free columns per row, ``(B,)`` int64."""
        return unpack_words(self.words, self.width).sum(axis=1, dtype=np.int64)

    def largest_hole(self) -> np.ndarray:
        """Widest hole per row, ``(B,)`` int64."""
        free = unpack_words(self.words, self.width)
        _, hole_len = hole_ends_and_lengths(free)
        return hole_len.max(axis=1).astype(np.int64)

    def is_free(self, starts: np.ndarray, widths: np.ndarray) -> np.ndarray:
        """Per-row ``FreeList.is_free(start, width)`` — ``(B,)`` bool.

        Rows with ``start < 0`` (no recorded position) report ``False``.
        """
        starts = np.asarray(starts, dtype=np.int64)
        widths = np.asarray(widths, dtype=np.int64)
        return span_free(self.words, starts, widths, self.width, self.n_words)

    def choose(
        self,
        widths: np.ndarray,
        policy: PlacementPolicy,
        rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Vectorized ``choose_interval`` (``-1`` where no hole fits).

        With ``rows`` given, only that subset is evaluated (and the
        result aligns with ``rows``); otherwise all rows.
        """
        widths = np.asarray(widths, dtype=np.int64)
        words = self.words if rows is None else self.words[rows]
        return choose_batch(words, widths, self.width, policy)

    # -- mutations -------------------------------------------------------

    def occupy(self, rows: np.ndarray, starts: np.ndarray, widths: np.ndarray) -> None:
        """Clear (allocate) ``[start, start+width)`` in each given row."""
        starts = np.asarray(starts, dtype=np.int64)
        widths = np.asarray(widths, dtype=np.int64)
        clear_spans(self.words, rows, starts, widths, self.n_words)

    def vacate(self, rows: np.ndarray, starts: np.ndarray, widths: np.ndarray) -> None:
        """Set (release) ``[start, start+width)`` in each given row."""
        starts = np.asarray(starts, dtype=np.int64)
        widths = np.asarray(widths, dtype=np.int64)
        set_spans(self.words, rows, starts, widths, self.n_words)
