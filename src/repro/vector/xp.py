"""Pluggable array namespace for the vector kernels (numpy / cupy / torch).

Every kernel in :mod:`repro.vector` computes through an
:class:`ArrayBackend` — a numpy-compatible namespace plus the handful of
divergence shims the kernels need (:meth:`~ArrayBackend.lexsort`,
:meth:`~ArrayBackend.take_along_axis`, :meth:`~ArrayBackend.astype`,
:meth:`~ArrayBackend.maximum_accumulate`, the uint64 bitmap helpers) —
instead of importing numpy directly.  This module is the *only* place
that resolves which concrete array library backs that namespace:

* ``numpy`` — the eager default, imported unconditionally; with it
  active every kernel performs the exact same operations as before the
  backends existed, so verdicts stay bit-identical to the scalar
  reference implementations.
* ``cupy`` / ``torch`` / ``torch:cuda`` — resolved lazily behind
  optional imports.  Neither library is required at import time;
  requesting an uninstalled backend raises :class:`BackendUnavailable`
  with an actionable message.  ``torch`` runs on CPU tensors (float64,
  sequential reductions — the bit-exact parity contract holds there
  too); ``torch:cuda``/``cupy`` are *device* backends
  (:attr:`ArrayBackend.is_device`), where parallel reductions may
  re-associate float adds, so parity is verdict-level, not guaranteed
  bit-for-bit.

Selection precedence (first match wins):

1. an explicit ``backend``/``array_backend`` argument at a call site
   (e.g. ``simulate_batch(..., array_backend="torch")``);
2. a process-wide override installed with :func:`set_backend` — the CLI
   ``--array-backend`` flag uses this;
3. the ``REPRO_ARRAY_BACKEND`` environment variable;
4. ``numpy``.

Host/device discipline: samplers and anything feeding the object model
stay on the host — :data:`host` is the guaranteed-host numpy namespace
for them — and kernels move data onto the active backend once per batch
(:meth:`ArrayBackend.asarray`) and back once per result
(:func:`asnumpy`), so transfers sit at batch boundaries only.

The uint64 bitmaps of :mod:`repro.vector.placement_vec` need one real
representation shim: torch has no uint64 arithmetic, so the torch
backend reinterprets the bitmap words as int64 (two's complement makes
``& | ^ ~`` and equality bit-identical; see
:meth:`ArrayBackend.bitmap_from_host`).
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy

#: The guaranteed-host namespace (plain numpy) for the pieces that are
#: deliberately not backend-pluggable: the seeded samplers (their draw
#: order is pinned to the scalar reference for bit-exact parity), batch
#: generation, and the host side of every boundary transfer.
host = numpy

#: Environment variable consulted when no explicit backend is given and
#: no process-wide override is installed.
BACKEND_ENV = "REPRO_ARRAY_BACKEND"

#: Backend names this module knows how to resolve.
KNOWN_BACKENDS = ("numpy", "cupy", "torch", "torch:cuda")


class BackendUnavailable(ImportError):
    """A known array backend was requested but cannot be imported/used."""


def _normalize(name: str) -> str:
    name = name.strip().lower()
    if name == "torch-cuda":  # tolerated spelling
        name = "torch:cuda"
    if name not in KNOWN_BACKENDS:
        known = ", ".join(KNOWN_BACKENDS)
        raise ValueError(f"unknown array backend {name!r}; known: {known}")
    return name


class ArrayBackend:
    """One concrete array library behind a numpy-compatible namespace.

    Attribute access falls through to the underlying module (``xp.where``
    -> ``numpy.where`` on the numpy backend), with resolved attributes
    cached on the instance so the hot path pays one dict lookup.  The
    named methods below are the divergence shims: places where the
    libraries disagree on API or dtype behaviour, defined so every
    backend matches *numpy's* semantics for the kernel call sites.
    """

    #: resolution-name of this backend ("numpy", "cupy", "torch", ...)
    name: str = "abstract"
    #: True when arrays live off-host (cupy, torch:cuda) — the engine
    #: must not fork workers sharing the device context, and
    #: bit-identical float reduction order is not guaranteed.
    is_device: bool = False

    def __init__(self, mod: Any) -> None:
        self._mod = mod
        self._low_bits_cache: Any = None
        self._col_index_cache: Dict[int, Any] = {}

    def __getattr__(self, attr: str) -> Any:
        value = getattr(self._mod, attr)
        # Cache on the instance so subsequent lookups skip __getattr__.
        setattr(self, attr, value)
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ArrayBackend {self.name}>"

    # -- boundary transfers -------------------------------------------------

    def asnumpy(self, a: Any) -> "numpy.ndarray":
        """Materialize ``a`` as a host numpy array (identity on numpy)."""
        return numpy.asarray(a)

    def bitmap_from_host(self, words: "numpy.ndarray") -> Any:
        """Move a host uint64 bitmap into this backend's bitmap dtype."""
        return self.asarray(words)

    def synchronize(self) -> None:
        """Block until all queued device work is done (no-op on host).

        Benchmarks must call this before reading the clock: device
        backends enqueue kernels asynchronously, so without a sync a
        timing loop measures launch latency, not execution.  Host
        backends execute eagerly and return immediately."""

    # -- dtype shims --------------------------------------------------------

    #: dtype of placement bitmap words on this backend.
    @property
    def bitmap_dtype(self) -> Any:
        return self._mod.uint64

    def astype(self, a: Any, dtype: Any) -> Any:
        """``ndarray.astype`` as a function (may avoid copying when the
        dtype already matches — no kernel call site mutates the result
        of a same-dtype astype)."""
        return a.astype(dtype)

    def copy(self, a: Any) -> Any:
        return a.copy()

    # -- numpy-API divergence shims ----------------------------------------

    def maximum_accumulate(self, a: Any, axis: int) -> Any:
        """``numpy.maximum.accumulate`` (running maximum along ``axis``)."""
        return self._mod.maximum.accumulate(a, axis=axis)

    def unpack_bitmap(self, words: Any, width: int) -> Any:
        """Unpack ``(R, n_words)`` bitmap words to ``(R, width)`` uint8 0/1.

        Bit ``c % 64`` of word ``c // 64`` lands at flat position ``c``
        (little-endian byte order, which holds on every platform this
        repo targets).
        """
        xp = self._mod
        rows = words.shape[0]
        flat = xp.unpackbits(
            xp.ascontiguousarray(words).view(xp.uint8).reshape(-1),
            bitorder="little",
        ).reshape(rows, words.shape[1] * 64)
        return flat[:, :width]

    # -- cached small tables ------------------------------------------------

    def low_bits(self) -> Any:
        """``low_bits()[j]`` has the low ``j`` bits set (``j`` in 0..64),
        in this backend's bitmap dtype."""
        if self._low_bits_cache is None:
            table = numpy.array(
                [(1 << j) - 1 for j in range(65)], dtype=numpy.uint64
            )
            self._low_bits_cache = self.bitmap_from_host(table)
        return self._low_bits_cache

    def col_index(self, width: int) -> Any:
        """Cached ``arange(1, width + 1)`` in the narrowest dtype that fits.

        Indices are biased by +1 so the maximum-accumulate that computes
        hole starts can run in uint8 for the (typical) narrow devices —
        half the bandwidth of int16 on the chooser's hottest loop.
        """
        cached = self._col_index_cache.get(width)
        if cached is None:
            max_width = int(numpy.iinfo(numpy.int16).max) // 2
            if width > max_width:
                raise ValueError(f"device width {width} exceeds {max_width}")
            dtype = self.uint8 if width < 255 else self.int16
            cached = self.arange(1, width + 1, dtype=dtype)
            self._col_index_cache[width] = cached
        return cached


class NumpyBackend(ArrayBackend):
    """The eager default: plain numpy, zero behavioural delta."""

    name = "numpy"
    is_device = False

    def __init__(self) -> None:
        super().__init__(numpy)


class CupyBackend(ArrayBackend):
    """CuPy: numpy-compatible API on CUDA arrays (device-resident)."""

    name = "cupy"
    is_device = True

    def __init__(self, mod: Any) -> None:
        super().__init__(mod)

    def asnumpy(self, a: Any) -> "numpy.ndarray":
        return self._mod.asnumpy(a)

    def synchronize(self) -> None:  # pragma: no cover - needs CUDA
        self._mod.cuda.get_current_stream().synchronize()

    def lexsort(self, keys: Sequence[Any], axis: int = -1) -> Any:
        """``numpy.lexsort`` semantics (last key primary, tuple of keys,
        ``axis`` keyword) — cupy.lexsort only takes a stacked array and
        no axis, so build the order from stable argsorts instead (cupy's
        ``kind=None`` argsort is stable)."""
        if len(keys) == 0:
            raise ValueError("need at least one key")
        cp = self._mod
        order = cp.argsort(keys[0], axis=axis)
        for key in keys[1:]:
            reordered = cp.take_along_axis(key, order, axis=axis)
            refine = cp.argsort(reordered, axis=axis)
            order = cp.take_along_axis(order, refine, axis=axis)
        return order

    def maximum_accumulate(self, a: Any, axis: int) -> Any:
        try:
            return self._mod.maximum.accumulate(a, axis=axis)
        except (AttributeError, NotImplementedError):
            # Generic fallback: a column-at-a-time running maximum.
            out = a.copy()
            moved = self._mod.moveaxis(out, axis, -1)
            for j in range(1, moved.shape[-1]):
                moved[..., j] = self._mod.maximum(moved[..., j - 1], moved[..., j])
            return out


class TorchBackend(ArrayBackend):
    """PyTorch behind numpy-compatible wrappers.

    Every wrapper matches the numpy semantics the kernels rely on:
    ``axis`` keywords, value-only reductions (no ``(values, indices)``
    namedtuples), stable sorts, python-scalar operands adopting the
    tensor operand's dtype (the kernels pass exact values — 0, -1, inf —
    so the adoption is lossless), and int64-reinterpreted uint64
    bitmaps (bitwise ops and equality are bit-identical under two's
    complement).
    """

    is_device = False  # overridden for torch:cuda in __init__

    def __init__(self, mod: Any, device: str = "cpu") -> None:
        super().__init__(mod)
        self._device = device
        self.name = "torch" if device == "cpu" else f"torch:{device}"
        self.is_device = device != "cpu"
        # dtype attributes, set eagerly so __getattr__ never guesses.
        self.float64 = mod.float64
        self.float32 = mod.float32  # repro-lint: disable=RL004 -- the namespace must expose float32 so the batch-boundary pins can detect and widen f32 inputs
        self.int64 = mod.int64
        self.int32 = mod.int32
        self.int16 = mod.int16
        self.uint8 = mod.uint8
        self.bool_ = mod.bool
        self.inf = math.inf
        self.nan = math.nan

    @property
    def bitmap_dtype(self) -> Any:
        return self._mod.int64  # uint64 reinterpreted (no torch uint64 ops)

    # -- boundary transfers -------------------------------------------------

    def asnumpy(self, a: Any) -> "numpy.ndarray":
        if self._mod.is_tensor(a):
            return a.detach().cpu().numpy()
        return numpy.asarray(a)

    def synchronize(self) -> None:
        if self.is_device:  # pragma: no cover - needs CUDA
            self._mod.cuda.synchronize(self._device)

    def bitmap_from_host(self, words: "numpy.ndarray") -> Any:
        as_i64 = numpy.ascontiguousarray(words).view(numpy.int64).copy()
        return self._mod.from_numpy(as_i64).to(self._device)

    # -- construction / conversion -----------------------------------------

    def asarray(self, a: Any, dtype: Any = None) -> Any:
        return self._mod.as_tensor(a, dtype=dtype, device=self._device)

    def astype(self, a: Any, dtype: Any) -> Any:
        return a.to(dtype)

    def copy(self, a: Any) -> Any:
        return a.clone()

    def zeros(self, shape: Any, dtype: Any = None) -> Any:
        return self._mod.zeros(self._shape(shape), dtype=dtype, device=self._device)

    def ones(self, shape: Any, dtype: Any = None) -> Any:
        return self._mod.ones(self._shape(shape), dtype=dtype, device=self._device)

    def empty(self, shape: Any, dtype: Any = None) -> Any:
        return self._mod.empty(self._shape(shape), dtype=dtype, device=self._device)

    def full(self, shape: Any, fill: Any, dtype: Any = None) -> Any:
        if dtype is None:
            # Match numpy: a python-float fill yields a float64 array.
            dtype = self.float64 if isinstance(fill, float) else self.int64
        return self._mod.full(
            self._shape(shape), fill, dtype=dtype, device=self._device
        )

    def ones_like(self, a: Any, dtype: Any = None) -> Any:
        return self._mod.ones_like(a, dtype=dtype)

    def zeros_like(self, a: Any, dtype: Any = None) -> Any:
        return self._mod.zeros_like(a, dtype=dtype)

    def arange(self, *args: Any, dtype: Any = None) -> Any:
        return self._mod.arange(*args, dtype=dtype, device=self._device)

    @staticmethod
    def _shape(shape: Any) -> Any:
        return (shape,) if isinstance(shape, int) else tuple(shape)

    # -- elementwise with numpy scalar semantics ----------------------------

    def _pair(self, a: Any, b: Any) -> Tuple[Any, Any]:
        """Promote a python scalar operand to the tensor operand's dtype."""
        torch = self._mod
        if torch.is_tensor(a) and not torch.is_tensor(b):
            b = torch.as_tensor(b, dtype=a.dtype, device=a.device)
        elif torch.is_tensor(b) and not torch.is_tensor(a):
            a = torch.as_tensor(a, dtype=b.dtype, device=b.device)
        return a, b

    def where(self, cond: Any, x: Any, y: Any) -> Any:
        if cond.dtype is not self._mod.bool:
            cond = cond.bool()
        x, y = self._pair(x, y)
        return self._mod.where(cond, x, y)

    def minimum(self, a: Any, b: Any) -> Any:
        return self._mod.minimum(*self._pair(a, b))

    def maximum(self, a: Any, b: Any) -> Any:
        return self._mod.maximum(*self._pair(a, b))

    # -- reductions (value-only, numpy axis semantics) ----------------------

    def sum(self, a: Any, axis: Any = None, dtype: Any = None) -> Any:
        if axis is None:
            return self._mod.sum(a, dtype=dtype)
        return self._mod.sum(a, dim=axis, dtype=dtype)

    def max(self, a: Any, axis: Any = None) -> Any:
        return a.max() if axis is None else self._mod.amax(a, dim=axis)

    def min(self, a: Any, axis: Any = None) -> Any:
        return a.min() if axis is None else self._mod.amin(a, dim=axis)

    def any(self, a: Any, axis: Any = None) -> Any:
        return self._mod.any(a) if axis is None else self._mod.any(a, dim=axis)

    def all(self, a: Any, axis: Any = None) -> Any:
        return self._mod.all(a) if axis is None else self._mod.all(a, dim=axis)

    def argmax(self, a: Any, axis: Any = None) -> Any:
        if a.dtype is self._mod.bool:
            a = a.to(self._mod.uint8)
        return self._mod.argmax(a, dim=axis)

    def argmin(self, a: Any, axis: Any = None) -> Any:
        if a.dtype is self._mod.bool:
            a = a.to(self._mod.uint8)
        return self._mod.argmin(a, dim=axis)

    def cumsum(self, a: Any, axis: int) -> Any:
        return self._mod.cumsum(a, dim=axis)

    def maximum_accumulate(self, a: Any, axis: int) -> Any:
        if a.dtype is self._mod.uint8:
            # cummax dtype coverage is spotty for uint8; int16 is exact
            # for the < 255 column indices that ride in uint8.
            return self._mod.cummax(a.to(self._mod.int16), dim=axis).values.to(
                self._mod.uint8
            )
        return self._mod.cummax(a, dim=axis).values

    # -- sorting / indexing -------------------------------------------------

    def argsort(self, a: Any, axis: int = -1, kind: Any = None) -> Any:
        # Always stable: a superset of what numpy guarantees by default,
        # and exactly what the kernels' tie-breaks rely on.
        return self._mod.argsort(a, dim=axis, stable=True)

    def lexsort(self, keys: Sequence[Any], axis: int = -1) -> Any:
        """``numpy.lexsort``: last key is primary, earlier keys break ties."""
        if len(keys) == 0:
            raise ValueError("need at least one key")
        torch = self._mod
        order = torch.argsort(keys[0], dim=axis, stable=True)
        for key in keys[1:]:
            reordered = torch.take_along_dim(key, order, dim=axis)
            refine = torch.argsort(reordered, dim=axis, stable=True)
            order = torch.take_along_dim(order, refine, dim=axis)
        return order

    def take_along_axis(self, a: Any, indices: Any, axis: int) -> Any:
        return self._mod.take_along_dim(a, indices, dim=axis)

    def nonzero(self, a: Any) -> Tuple[Any, ...]:
        return self._mod.nonzero(a, as_tuple=True)

    # -- misc ---------------------------------------------------------------

    def concatenate(self, arrays: Sequence[Any], axis: int = 0) -> Any:
        return self._mod.cat(list(arrays), dim=axis)

    def unpack_bitmap(self, words: Any, width: int) -> Any:
        torch = self._mod
        shifts = torch.arange(64, dtype=torch.int64, device=words.device)
        # Arithmetic >> fills with the sign bit; the & 1 keeps only the
        # selected bit, so bit 63 of "negative" (reinterpreted-uint64)
        # words is extracted correctly too.
        bits = (words.unsqueeze(-1) >> shifts) & 1
        flat = bits.reshape(words.shape[0], words.shape[1] * 64)
        return flat[:, :width].to(torch.uint8)


# ---------------------------------------------------------------------------
# resolution


_INSTANCES: Dict[str, ArrayBackend] = {}
_IMPORT_ERRORS: Dict[str, str] = {}
#: process-wide override installed by set_backend() (None = no override).
_OVERRIDE: Optional[str] = None


def _make_backend(name: str) -> ArrayBackend:
    if name == "numpy":
        return NumpyBackend()
    if name == "cupy":
        try:
            import cupy  # noqa: F401  (optional dependency)
        except Exception as exc:  # ImportError or CUDA init failure
            raise BackendUnavailable(
                f"array backend 'cupy' requested but cupy is not usable "
                f"({exc!r}); install cupy (pip install cupy-cuda12x) or "
                f"pick another backend"
            ) from exc
        return CupyBackend(cupy)
    if name in ("torch", "torch:cuda"):
        try:
            import torch  # noqa: F401  (optional dependency)
        except Exception as exc:
            raise BackendUnavailable(
                f"array backend {name!r} requested but torch is not "
                f"importable ({exc!r}); install the CPU wheel "
                f"(pip install torch --index-url "
                f"https://download.pytorch.org/whl/cpu) or pick another "
                f"backend"
            ) from exc
        if name == "torch:cuda":
            if not torch.cuda.is_available():
                raise BackendUnavailable(
                    "array backend 'torch:cuda' requested but "
                    "torch.cuda.is_available() is False; use 'torch' for "
                    "CPU tensors"
                )
            return TorchBackend(torch, device="cuda")
        return TorchBackend(torch, device="cpu")
    raise AssertionError(name)  # pragma: no cover - _normalize guards


def get_backend(name: "Optional[str | ArrayBackend]" = None) -> ArrayBackend:
    """Resolve an :class:`ArrayBackend` by precedence.

    ``name`` (when given) wins; otherwise the :func:`set_backend`
    override, then the ``REPRO_ARRAY_BACKEND`` environment variable,
    then ``numpy``.  Unknown names raise :class:`ValueError`; known but
    uninstalled backends raise :class:`BackendUnavailable` (numpy is
    always available).
    """
    if name is None:
        name = _OVERRIDE if _OVERRIDE is not None else os.environ.get(BACKEND_ENV)
        if not name:
            name = "numpy"
    elif isinstance(name, ArrayBackend):
        return name
    name = _normalize(name)
    backend = _INSTANCES.get(name)
    if backend is None:
        backend = _INSTANCES[name] = _make_backend(name)
    return backend


def set_backend(name: Optional[str]) -> Optional[str]:
    """Install (or with ``None`` clear) the process-wide backend override.

    Returns the previous override so callers can restore it.  The name
    is resolved eagerly, so a bad selection fails here, not at first
    kernel use.
    """
    global _OVERRIDE
    previous = _OVERRIDE
    if name is not None:
        get_backend(name)  # validate + build eagerly
        name = _normalize(name)
    _OVERRIDE = name
    return previous


@contextmanager
def backend(name: Optional[str]) -> Iterator[ArrayBackend]:
    """Context manager form of :func:`set_backend`."""
    previous = set_backend(name)
    try:
        yield get_backend()
    finally:
        set_backend(previous)


def backend_available(name: str) -> bool:
    """True when ``name`` resolves without error (cached per process)."""
    name = _normalize(name)
    if name in _INSTANCES:
        return True
    if name in _IMPORT_ERRORS:
        return False
    try:
        get_backend(name)
        return True
    except BackendUnavailable as exc:
        _IMPORT_ERRORS[name] = str(exc)
        return False


def available_backends() -> Tuple[str, ...]:
    """The subset of :data:`KNOWN_BACKENDS` importable in this process."""
    return tuple(n for n in KNOWN_BACKENDS if backend_available(n))


def backend_skip_reason(name: str) -> Optional[str]:
    """``None`` when ``name`` is usable; else why it is not.

    The shared helper behind every test/bench parametrization over
    backends: the reason is the :class:`BackendUnavailable` message
    itself, so a skipped ``torch:cuda`` leg reads "cuda unavailable",
    not "not installed", when torch is present but GPU-less.
    """
    name = _normalize(name)
    if backend_available(name):
        return None
    return _IMPORT_ERRORS.get(name, f"array backend {name!r} unavailable")


def namespace_of(arr: Any) -> ArrayBackend:
    """The backend an array belongs to (host numpy for anything host).

    This is the array-API-style dispatch used by the type-generic
    helpers (:func:`repro.vector.batch.sequential_sum`, the
    :class:`~repro.vector.batch.TaskSetBatch` aggregates, the placement
    bit-kernels): host inputs stay host, device inputs stay on device.
    """
    mod = type(arr).__module__.split(".")[0]
    if mod == "torch":
        dev = arr.device
        return get_backend("torch" if dev.type == "cpu" else f"torch:{dev.type}")
    if mod == "cupy":
        return get_backend("cupy")
    return get_backend("numpy")


def asnumpy(arr: Any) -> "numpy.ndarray":
    """Materialize any backend's array on the host (identity for numpy)."""
    return namespace_of(arr).asnumpy(arr)


def __getattr__(attr: str) -> Any:
    """Module-level passthrough: ``xp.<name>`` resolves on the *active*
    backend (``get_backend(None)``), so ``from repro.vector import xp``
    behaves as a pluggable numpy-compatible namespace."""
    if attr.startswith("__"):
        raise AttributeError(attr)
    return getattr(get_backend(), attr)
