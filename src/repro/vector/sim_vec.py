"""Batched, event-synchronized EDF simulation over :class:`TaskSetBatch`.

The acceptance-ratio experiments need a *simulation* curve as the
ground-truth envelope above the analytical tests (paper §6) — but the
scalar :func:`repro.sim.simulator.simulate` walks one taskset at a time
through a Python event loop, which forced the engine to subsample sim to
a few hundred sets per bucket.  This module simulates a *whole batch at
once* in every migration mode of the scalar simulator:

* ``MigrationMode.FREE`` — the paper's model: a job runs iff total free
  area suffices, so each scheduling decision is a per-row deadline sort
  plus a left-to-right area accumulation;
* ``MigrationMode.RELOCATABLE`` / ``MigrationMode.PINNED`` — the §7
  placement-aware modes: each decision re-places the priority-ordered
  jobs into *contiguous* holes of a per-row bitmap free-list
  (:class:`repro.vector.placement_vec.BatchFreeList`, seeded from the
  device's static-region-fragmented free spans), preferring a job's
  previous columns, with first/best/worst-fit fallback (RELOCATABLE) or
  no fallback at all once pinned (PINNED).

Release patterns (the §6 upper-bound refinement axis):

* synchronous-periodic (the paper's pattern, default): every task's
  first job at ``t = 0``, then strictly every ``T_i``;
* **per-row offsets** — ``offsets`` is a ``(B, N)`` array of first
  release times, jobs at ``O_i + k T_i`` with absolute deadlines
  ``O_i + k T_i + D_i`` (Baker's exhaustive-offsets refinement: any
  pattern that misses certifies unschedulability);
* **sporadic** — ``release="sporadic"`` draws one jittered schedule per
  row (gaps ``T_i * (1 + U(0, jitter))``, first release 0, matching
  :func:`repro.sim.sporadic.sample_release_schedule` draw for draw on a
  shared seed), or replays explicit ``release_times``.

Offset-search callers fan release patterns into the *batch axis*: tile a
bucket's ``B`` tasksets ``P`` times (``B x P`` rows), attach one offset
assignment / sporadic schedule per tile, simulate once, and reduce per
original set with "any failing pattern ⇒ unschedulable" (see
:func:`repro.experiments.ablations.offset_ablation`).

Horizon-extension rule: a job released at offset ``O_i`` sees
``floor((H - O_i) / T_i)`` jobs before ``H`` — *fewer* than the
synchronous run — so with nonzero offsets the default horizon is
extended by the row's largest offset (``default_horizon_batch(...,
offsets=...)``; the scalar twin is ``default_horizon(...,
offsets=...)``).  Without the extension the offset "refinement" would
silently simulate fewer jobs per task than the synchronous pattern and
weaken the upper bound it claims to tighten.

Scope (exactly the configuration the acceptance engine uses):

* zero reconfiguration overhead;
* ``stop_at_first_miss`` semantics — the verdict is the product;
* constrained deadlines (``D <= T``), so at most one job per task is
  live at any decision point (a predecessor either completed or missed,
  and a miss ends the row);
* placement-aware modes additionally require integral task areas, like
  the scalar simulator.

State is struct-of-arrays over ``(B, N)`` — ``remaining``,
``next_release``, absolute deadlines, per-task positions/pins, a per-row
event clock — and each step advances every live row to its *own* next
event (rows are not synchronized to a global clock).  Decided rows are
compacted out, so the per-step cost tracks the number of still-undecided
sets.

Array backends: the state arrays live on the namespace resolved through
:mod:`repro.vector.xp` (``array_backend`` kwarg > process override >
``REPRO_ARRAY_BACKEND`` env var > numpy).  Validation, samplers and the
returned :class:`SimBatchResult` are host-side; data crosses the
host/device boundary exactly once per batch in each direction.  Inputs
are pinned to float64 at that boundary (float32 state would silently
change knife-edge verdicts on every backend).

Bit-exactness discipline: the float operations (release accumulation,
``now + remaining`` completion times, ``remaining - dt`` advances, area
prefix sums) are performed in the same order and with the same operands
as the scalar reference, and all placement geometry is integer
arithmetic on the shared interval representation
(:mod:`repro.fpga.intervals`), so verdicts are bit-identical to
``simulate(batch.taskset(i), offsets=...)`` /
``simulate_release_schedule(...)`` — the same contract
:func:`repro.vector.batch.sequential_sum` gives the analytical tests.
(On the numpy and torch-CPU backends this holds bit-for-bit; the device
backends keep the same operand order per element but may re-associate
reductions, so their contract is verdict-level.)  The EDF tie-break
replicates the scalar queue exactly, including the *lexicographic*
task-name ordering of ``batch.taskset`` names (``tau10`` sorts before
``tau2``) — and, in sporadic mode, the pseudo-task names ``tau{i}@{j}``
that the scalar :func:`repro.sim.sporadic.simulate_release_schedule`
encodes schedules with (``tau10@...`` sorts before ``tau1@...`` because
``'0' < '@'``).
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Optional, Union

from repro.fpga.device import Fpga
from repro.fpga.intervals import spans_to_words
from repro.fpga.placement import PlacementPolicy
from repro.sched.base import Scheduler
from repro.sim.simulator import MigrationMode
from repro.util.mathutil import TIME_EPS
from repro.util.parallel import parallel_map
from repro.vector import xp
from repro.vector.batch import TaskSetBatch
from repro.vector.placement_vec import choose_batch, clear_spans, span_free
from repro.vector.xp import host as hnp

#: scheduler name -> skip_blocked (EDF-NF skips a job that does not fit,
#: EDF-FkF stops at the first one — see repro.sched.base.Scheduler).
_SKIP_BLOCKED = {"EDF-NF": True, "EDF-FkF": False}

#: environment variable consulted when ``sim_workers`` is not given
#: explicitly (kwarg > CLI flag, which passes the kwarg > env > 1).
SIM_WORKERS_ENV = "REPRO_SIM_WORKERS"


def resolve_sim_workers(sim_workers: Optional[int] = None) -> int:
    """Resolve the batch-sharding worker count.

    Precedence: explicit argument (the CLI's ``--sim-workers`` arrives
    here as a kwarg) > the ``REPRO_SIM_WORKERS`` environment variable >
    serial (1).  Raises on non-integer or < 1 values from either source.
    """
    if sim_workers is None:
        raw = os.environ.get(SIM_WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            sim_workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{SIM_WORKERS_ENV} must be an integer, got {raw!r}"
            )
    workers = int(sim_workers)
    if workers < 1:
        raise ValueError(f"sim_workers must be >= 1, got {sim_workers!r}")
    return workers


@dataclass(frozen=True)
class SimBatchResult:
    """Per-row outcome of one :func:`simulate_batch` run.

    ``schedulable`` is ``True`` iff the row saw no deadline miss before
    its horizon *and* stayed within the event budget; rows that ran out
    of budget are additionally flagged in ``budget_exceeded`` (the
    scalar simulator raises ``SimulationError`` there — the batch runner
    records the row as not-schedulable-within-budget and keeps going).
    All fields are host numpy arrays whichever array backend ran the
    simulation.  ``mode``/``policy`` record the migration model the
    batch ran under (``policy`` is ``None`` in FREE mode, where
    placement is moot); ``release`` records the release pattern
    (``"periodic"`` covers both synchronous and offset runs,
    ``"sporadic"`` the jittered schedules).

    ``min_slack`` is the row's near-miss metric: the minimum over every
    decided job of ``deadline - completion_time`` (completions) and
    ``-remaining`` (deadline misses), i.e. how close the row came to a
    miss — ``+inf`` when no job was decided, negative iff the row
    missed.  It is the scoring channel of the adaptive release-pattern
    search (:mod:`repro.search`) and matches the scalar
    :attr:`repro.sim.simulator.SimulationResult.min_slack` bit-exactly
    (same operands, same order) on the numpy and torch-CPU backends.

    ``kernel_passes``/``event_steps`` instrument the fused stepper:
    ``event_steps`` counts inner event-loop iterations actually executed
    and ``kernel_passes`` the host-synchronized outer passes (scatter +
    compaction points).  Unfused (``fuse=1``) the two are equal; at
    ``fuse=K`` the ratio approaches ``K`` — the measured, not assumed,
    fusion factor.  Sharded runs sum the counters over their shards.
    """

    schedulable: "hnp.ndarray"  # (B,) bool
    budget_exceeded: "hnp.ndarray"  # (B,) bool
    events: "hnp.ndarray"  # (B,) int64 — event-loop iterations per row
    horizon: "hnp.ndarray"  # (B,) float64
    min_slack: "hnp.ndarray"  # (B,) float64 — see below
    mode: MigrationMode = MigrationMode.FREE
    policy: Optional[PlacementPolicy] = None
    release: str = "periodic"
    kernel_passes: int = 0
    event_steps: int = 0

    @property
    def count(self) -> int:
        return int(self.schedulable.shape[0])

    @property
    def acceptance_ratio(self) -> float:
        """Fraction of rows with no deadline miss (nan for empty batches)."""
        if self.count == 0:
            return float("nan")
        return float(self.schedulable.mean())

    @property
    def fusion_factor(self) -> float:
        """Measured event steps per kernel pass (nan when none ran)."""
        if self.kernel_passes == 0:
            return float("nan")
        return self.event_steps / self.kernel_passes


def _resolve_skip_blocked(scheduler: Union[str, Scheduler]) -> bool:
    if isinstance(scheduler, str):
        try:
            return _SKIP_BLOCKED[scheduler]
        except KeyError:
            known = ", ".join(sorted(_SKIP_BLOCKED))
            raise ValueError(f"unknown scheduler {scheduler!r}; known: {known}")
    if isinstance(scheduler, Scheduler):
        # Only the plain EDF queue order is replicated here; schedulers
        # with a different priority order must use the scalar simulator.
        name = getattr(scheduler, "name", "")
        if name not in _SKIP_BLOCKED:
            raise ValueError(
                f"simulate_batch replicates EDF-NF/EDF-FkF only, got {name!r}"
            )
        return bool(scheduler.skip_blocked)
    raise TypeError(f"scheduler must be a name or Scheduler, got {scheduler!r}")


def _name_ranks(n_tasks: int, sporadic: bool = False) -> "hnp.ndarray":
    """Rank of each task index under the scalar tie-break.

    ``batch.taskset`` names tasks ``tau1 .. tauN`` and the scalar EDF
    queue breaks (deadline, release) ties by *string* comparison of
    those names — so ``tau10`` beats ``tau2``.  Returns ``rank[i]`` =
    position of ``tau{i+1}`` in lexicographic order.

    ``sporadic`` ranks by the pseudo-task names
    ``simulate_release_schedule`` compares instead (``tau{i}@{j}``).  At
    most one job per task is live at a time (constrained deadlines, gaps
    >= T), so the job index ``j`` never decides a comparison and the
    order is fully captured by the ``tau{i}@`` prefix — which *reverses*
    prefix pairs: ``'0' < '@'``, so ``tau10@...`` sorts before
    ``tau1@...`` although ``tau1`` sorts before ``tau10``.
    """
    suffix = "@" if sporadic else ""
    order = sorted(range(n_tasks), key=lambda i: f"tau{i + 1}{suffix}")
    ranks = hnp.empty(n_tasks, dtype=hnp.int64)
    for pos, i in enumerate(order):
        ranks[i] = pos
    return ranks


def default_horizon_batch(
    batch: TaskSetBatch,
    factor: int = 20,
    offsets=None,
):
    """Per-row ``max D + factor * max T [+ max offset]`` — the scalar
    :func:`repro.sim.simulator.default_horizon`, vectorized (identical
    float operations, so the horizons match the scalar path bit-exactly).

    With ``offsets`` the window is extended by each row's largest offset:
    a task first released at ``O_i`` sees ``floor((H - O_i) / T_i)`` jobs
    before ``H``, so an unextended window would simulate *fewer* jobs
    than the synchronous run and silently weaken the upper bound the
    offset search claims to refine.  Runs in the batch arrays' own
    namespace (host batches yield host horizons).
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    ns = xp.namespace_of(batch.deadline)
    if batch.n_tasks == 0:
        # Mirror of the scalar empty-taskset guard in
        # :func:`repro.sim.offsets.simulate_with_offsets`: an empty row
        # releases no jobs, so any window (trivially 0) verifies it —
        # the max() reductions below would raise on the empty task axis.
        return ns.zeros((batch.count,), dtype=ns.float64)
    deadline = ns.asarray(batch.deadline, dtype=ns.float64)  # pin: float32
    period = ns.asarray(batch.period, dtype=ns.float64)  # inputs upcast exactly
    base = ns.max(deadline, axis=1) + factor * ns.max(period, axis=1)
    if offsets is None:
        return base
    off = ns.broadcast_to(
        ns.asarray(offsets, dtype=ns.float64), (batch.count, batch.n_tasks)
    )
    return base + ns.max(off, axis=1)


def sample_offsets_batch(batch: TaskSetBatch, rng) -> "hnp.ndarray":
    """One random offset assignment per row: uniform in ``[0, T_i)``.

    Draw-for-draw identical to calling
    :func:`repro.sim.offsets.sample_offsets` on each ``batch.taskset(i)``
    in row order with the same generator (one C-order ``uniform`` fill
    consumes the stream exactly like the scalar per-task draws).
    Deliberately host-side: the numpy generator pins the draw order to
    the scalar reference whichever array backend simulates the result.
    """
    # repro-lint: disable=RL003 -- documented host-side seeded sampler; draw order pinned to the scalar reference (ROADMAP "Array backends")
    return rng.uniform(0.0, xp.asnumpy(batch.period))


def sample_release_times_batch(
    batch: TaskSetBatch,
    horizon,
    rng,
    max_jitter_factor: float = 0.5,
) -> "hnp.ndarray":
    """One legal sporadic release schedule per row, as a padded array.

    Returns ``(B, N, K+1)`` release times — ascending, first release 0,
    every gap ``T_i * (1 + U(0, max_jitter_factor))``, all ``< horizon``
    — right-padded with ``+inf`` (at least one sentinel column, so a
    pointer one past a task's last release always reads ``inf``); the
    padding is pinned float64 so no backend re-derives the dtype from
    promotion rules.

    The draw discipline is row-major, task-order, one gap at a time
    *including the final overshooting draw*, so the sampled values are
    bit-identical to calling
    :func:`repro.sim.sporadic.sample_release_schedule` on each
    ``batch.taskset(i)`` in row order with the same shared generator.
    (Sampling stays on the host for exactly that scalar parity — only
    the simulation itself is backend-vectorized.)

    Per cell the per-draw Python loop is replaced by *certified block
    draws*: gaps are bounded by ``T * (1 + jitter)``, so up to
    ``k = floor(span / (T * (1 + jitter)))`` gaps provably land before
    the horizon and can be drawn in one ``rng.uniform(size=k)`` call —
    which consumes the generator stream draw-for-draw identically to
    ``k`` scalar calls — with ``cumsum`` (sequential left-to-right adds,
    bit-identical to the scalar accumulation) turning gaps into release
    times.  Blocks repeat on the remaining span; only the final few
    draws near the horizon (where the next stop is data-dependent) fall
    back to single draws, including the overshooting one.
    """
    if max_jitter_factor < 0:
        raise ValueError("max_jitter_factor must be >= 0")
    period_h = xp.asnumpy(batch.period)
    hz = hnp.broadcast_to(
        hnp.asarray(xp.asnumpy(horizon), dtype=hnp.float64), (batch.count,)
    )
    if hnp.any(hz <= 0):
        raise ValueError("horizon must be > 0")
    B, N = batch.count, batch.n_tasks
    # Certification safety margin: block releases are bounded by
    # k * T * (1 + jitter) up to float rounding; the relative shave is
    # orders of magnitude above any accumulated cumsum error.
    _MARGIN = 1.0 - 1e-9
    gap_max = 1.0 + max_jitter_factor
    cells: list = []  # per-(b, n) release arrays, cell order
    lengths = hnp.zeros((B, N), dtype=hnp.int64)
    for b in range(B):
        horizon_b = float(hz[b])
        for n in range(N):
            period = float(period_h[b, n])
            parts = [hnp.zeros(1)]  # first release at t = 0
            last = 0.0
            count = 1
            while True:
                # How many further gaps certainly stay below the horizon
                # even if every draw hits the jitter ceiling.
                k = int((horizon_b - last) / (period * gap_max) * _MARGIN)
                if k < 4:
                    break
                # repro-lint: disable=RL003 -- host-side seeded sampler block draw, stream-identical to the scalar single draws
                gaps = period * (1.0 + rng.uniform(0.0, max_jitter_factor, size=k))
                # cumsum accumulates strictly left-to-right, so seeding
                # it with ``last`` reproduces the scalar's sequential
                # ``releases[-1] + gap`` adds bit-for-bit.
                block = hnp.cumsum(hnp.concatenate([hnp.asarray([last]), gaps]))[1:]
                if block[-1] >= horizon_b:  # pragma: no cover - certified
                    raise RuntimeError(
                        "internal error: certified sporadic block "
                        "overshot the horizon"
                    )
                parts.append(block)
                last = float(block[-1])
                count += k
            while True:  # data-dependent tail: single draws, scalar-style
                # repro-lint: disable=RL003 -- host-side seeded sampler tail draw, consumes the stream exactly like the scalar reference
                gap = period * (1.0 + float(rng.uniform(0.0, max_jitter_factor)))
                nxt = last + gap
                if nxt >= horizon_b:
                    break  # the overshooting draw is consumed, like the scalar
                parts.append(hnp.asarray([nxt]))
                last = nxt
                count += 1
            cells.append(parts[0] if count == 1 else hnp.concatenate(parts))
            lengths[b, n] = count
    longest = int(lengths.max()) if cells else 0
    out = hnp.full((B, N, longest + 1), hnp.inf, dtype=hnp.float64)
    if cells:
        # Vectorized inf-padding scatter: one boolean mask assignment in
        # cell order instead of a per-cell Python slice loop.
        mask = hnp.arange(longest + 1) < lengths[:, :, None]
        out[mask] = hnp.concatenate(cells)
    return out


def _nf_running_greedy(ns, area_s, capacity):
    """EDF-NF FREE-mode selection, reference implementation.

    The scalar rule verbatim: walk priority positions left to right,
    take a job iff the areas taken so far plus its own fit, skipping
    (not stopping at) blocked jobs.  One Python iteration — several
    kernel launches — per task slot; kept as the bit-parity reference
    the batched fixpoint below is tested (and benchmarked) against.
    """
    M, N = area_s.shape
    run_s = ns.empty((M, N), dtype=ns.bool_)
    used = ns.zeros((M,), dtype=ns.float64)
    for j in range(N):
        a_j = area_s[:, j]
        take = used + a_j <= capacity
        used += ns.where(take, a_j, 0.0)
        run_s[:, j] = take
    return run_s


def _nf_running_batched(ns, area_s, capacity):
    """EDF-NF FREE-mode selection without the per-task Python loop.

    Fixpoint formulation of the same greedy rule: start from every
    active job as a candidate, and repeatedly un-admit — per row — the
    *first* candidate whose left-to-right prefix sum overflows the
    capacity, until no candidate overflows.  The loop runs at most
    ``N`` times; rounds past the first touch only the rows that still
    overflow.

    Bit-exactness: ``cumsum`` accumulates left to right over exactly the
    operands the greedy reference adds — admitted areas, ``0.0`` for
    skipped/inactive slots (the reference adds ``where(take, a, 0.0)``
    too, and ``x + 0.0 == x`` exactly for finite ``x``) — so the prefix
    sums, and therefore the ``<= capacity`` decisions, match
    :func:`_nf_running_greedy` bit-for-bit.  Induction on priority
    position shows the surviving candidate set *is* the greedy take set:
    ahead of the first pruned position both scans agree, and pruning
    only ever removes the leftmost overflow, which the greedy scan
    skips at the same prefix sum.

    Each pruning round blocks exactly one job per overflowing row, so
    the round count is the *maximum* skip count over the rows — and
    rows are independent, so converged rows must not pay for the
    straggler's rounds.  After the first full-width round the fixpoint
    therefore compresses onto the still-overflowing rows (the same
    gather/scatter trick as :func:`_select_placement`), shrinking the
    re-``cumsum`` work every round.
    """
    finite = ns.isfinite(area_s)
    csum = ns.cumsum(ns.where(finite, area_s, 0.0), axis=1)
    overflow = finite & (csum > capacity)
    rows = ns.nonzero(ns.any(overflow, axis=1))[0]
    if not rows.shape[0]:
        return finite
    admitted = ns.copy(finite)
    idx = rows  # absolute row ids still in play
    sub_adm = admitted[idx]
    sub_area = area_s[idx]
    sub_over = overflow[idx]
    while True:
        # Every surviving row has >= 1 overflow: un-admit the first.
        first = ns.argmax(sub_over, axis=1)
        sub_adm[ns.arange(idx.shape[0]), first] = False
        csum = ns.cumsum(ns.where(sub_adm, sub_area, 0.0), axis=1)
        sub_over = sub_adm & (csum > capacity)
        still = ns.any(sub_over, axis=1)
        if not ns.any(still):
            admitted[idx] = sub_adm
            return admitted
        settled = ~still
        admitted[idx[settled]] = sub_adm[settled]
        idx = idx[still]
        sub_adm = sub_adm[still]
        sub_area = sub_area[still]
        sub_over = sub_over[still]


def _select_placement(
    ns,
    order,
    area_m,
    area_i,
    pos,
    pin,
    device_words,
    device_width: int,
    policy: PlacementPolicy,
    skip_blocked: bool,
):
    """One placement-aware scheduling decision for every live row.

    Replicates the scalar ``select_running`` exactly: walk the jobs in
    EDF priority order; a PINNED job with a recorded pin may only resume
    on those exact columns; otherwise a job prefers its previous columns
    and falls back to the placement policy; EDF-FkF stops a row's scan
    at its first blocked job, EDF-NF skips it.  ``pos``/``pin`` are
    updated in place; returns the ``(M, N)`` running mask.
    """
    M, N = order.shape
    n_words = int(device_words.shape[0])
    words = ns.tile(device_words, (M, 1))
    running = ns.zeros((M, N), dtype=ns.bool_)
    stopped = ns.zeros((M,), dtype=ns.bool_) if not skip_blocked else None
    # Per row, active jobs sort ahead of inactive slots, so priority
    # position j holds an active job iff the row has > j active jobs.
    # Each step compresses to the rows that still have a candidate —
    # late priority positions involve few rows, and all per-step work
    # scales with that count.
    n_act = ns.sum(ns.isfinite(area_m), axis=1)
    for j in range(int(ns.max(n_act)) if M else 0):
        act = n_act > j
        if stopped is not None:
            act = act & ~stopped
        ar = ns.nonzero(act)[0]
        if ar.shape[0] == 0:
            break
        slot = order[ar, j]
        w = area_i[ar, slot]
        wsub = words[ar]
        placed_at = ns.full((int(ar.shape[0]),), -1, dtype=ns.int64)
        if pin is not None:
            p = pin[ar, slot]
            # A pinned job may only resume on its recorded columns — no
            # fallback; rows without a pin fall through to prev/choose.
            ok = span_free(wsub, p, w, device_width, n_words, ns=ns)
            placed_at[ok] = p[ok]
            rest = p < 0
            prev = ns.where(rest, pos[ar, slot], -1)
        else:
            rest = None
            prev = pos[ar, slot]
        okp = span_free(wsub, prev, w, device_width, n_words, ns=ns)
        placed_at[okp] = prev[okp]
        need = placed_at < 0
        if rest is not None:
            need = need & rest
        nr = ns.nonzero(need)[0]
        if nr.shape[0]:
            placed_at[nr] = choose_batch(
                wsub[nr], w[nr], device_width, policy, ns=ns
            )
        placed = placed_at >= 0
        pr = ns.nonzero(placed)[0]
        if pr.shape[0]:
            rp, sp, st, wp = ar[pr], slot[pr], placed_at[pr], w[pr]
            clear_spans(words, rp, st, wp, n_words, ns=ns)
            running[rp, sp] = True
            pos[rp, sp] = st
            if pin is not None:
                fresh = ns.nonzero(p[pr] < 0)[0]
                if fresh.shape[0]:
                    pin[rp[fresh], sp[fresh]] = st[fresh]
        if stopped is not None:
            stopped[ar[~placed]] = True
    return running


def simulate_batch(
    batch: TaskSetBatch,
    capacity: Union[float, Fpga],
    scheduler: Union[str, Scheduler] = "EDF-NF",
    *,
    mode: MigrationMode = MigrationMode.FREE,
    placement_policy: PlacementPolicy = PlacementPolicy.FIRST_FIT,
    horizon=None,
    horizon_factor: int = 20,
    offsets=None,
    release: str = "periodic",
    jitter: float = 0.5,
    rng=None,
    release_times=None,
    max_events: int = 1_000_000,
    eps: float = TIME_EPS,
    array_backend: Optional[str] = None,
    fuse: int = 8,
    sim_workers: Optional[int] = None,
    nf_select: str = "auto",
) -> SimBatchResult:
    """Simulate every row of ``batch`` on one device geometry.

    Vectorized analogue of running the scalar
    ``simulate(batch.taskset(i), fpga, scheduler,
    default_horizon(·, horizon_factor), mode=mode,
    placement_policy=placement_policy)`` for each row — same verdicts,
    one event-synchronized sweep.  ``capacity`` is either a plain column
    count (no static regions) or an :class:`~repro.fpga.device.Fpga`,
    whose static regions pre-fragment the placement-aware free space
    exactly as in the scalar path.  ``horizon`` may be a scalar or a
    ``(B,)`` array; when ``None`` it defaults per row to
    :func:`default_horizon_batch` — which, with ``offsets``, extends
    each row's window by its largest offset (the horizon-extension rule:
    otherwise offset tasks would see fewer simulated jobs than the
    synchronous run).

    ``array_backend`` selects the :mod:`repro.vector.xp` namespace the
    state arrays live on (``None`` follows the process override /
    ``REPRO_ARRAY_BACKEND`` / numpy precedence).  Inputs are validated
    on the host, moved once onto the backend pinned to float64, and the
    verdicts come back as host numpy arrays — one transfer per batch in
    each direction.

    Release patterns:

    * ``release="periodic"`` (default): jobs at ``O_i + k T_i`` where
      ``O_i`` comes from ``offsets`` — a scalar or ``(B, N)``-broadcast
      array of first release times, default 0 (the paper's synchronous
      pattern).  Verdicts are bit-identical to the scalar
      ``simulate(..., offsets=...)``.
    * ``release="sporadic"``: one jittered schedule per row.  Pass a
      seeded ``rng`` to draw gaps ``T_i * (1 + U(0, jitter))`` via
      :func:`sample_release_times_batch` (bit-identical to the scalar
      :func:`repro.sim.sporadic.sample_release_schedule` /
      ``simulate_release_schedule`` pipeline on a shared generator), or
      pass precomputed ``release_times`` (a ``(B, N, K)`` ascending,
      ``+inf``-padded array; successive releases at least each task's
      deadline apart, so one job per task is live at a time) to replay
      explicit schedules.

    Rows whose event loop would exceed ``max_events`` (where the scalar
    simulator raises ``SimulationError``) are recorded as not
    schedulable and flagged in ``budget_exceeded`` instead of aborting
    the batch; the budget counts *event steps*, never fused passes, so
    its semantics are independent of ``fuse``.  An empty batch
    (``B == 0``) yields an empty result.

    Fused stepping and sharding (perf knobs — all bit-neutral):

    * ``fuse`` advances every live row up to that many events per
      kernel pass; decided rows are neutralized in place (infinite
      next-release/deadline/area makes every further step a no-op for
      them) and host synchronization, verdict scatter and row
      compaction happen once per pass instead of once per event.
      ``fuse=1`` degenerates to the classic one-sync-per-event loop.
      Verdicts, ``events`` and ``min_slack`` are bit-identical for
      every ``fuse`` on every backend.
    * ``sim_workers`` shards the batch dimension into contiguous
      sub-batches simulated by a process pool
      (:func:`repro.util.parallel.parallel_map`).  Resolution follows
      kwarg > ``REPRO_SIM_WORKERS`` > 1 (:func:`resolve_sim_workers`);
      the CLI's ``--sim-workers`` arrives as the kwarg.  Rows are
      independent, and all seeded sampling/validation/horizon
      derivation happens on the full batch *before* the split, so
      sharded results are bit-identical to the serial path whatever the
      worker count.  Device backends (``is_device``) force serial with
      a ``RuntimeWarning`` — forked workers must not share a GPU
      context (the same rule the acceptance engine applies to its
      scalar-backend pool).
    * ``nf_select`` picks the EDF-NF FREE-mode selection kernel:
      ``"batched"`` (the :func:`_nf_running_batched` fixpoint — no
      per-task Python loop) or ``"greedy"`` (the per-task reference
      scan).  Both are bit-identical on every backend, so the default
      ``"auto"`` picks by *cost model*: the per-task loop is a
      launch-count problem, which only exists off-host — device
      backends resolve to ``"batched"`` (one fixpoint round replaces
      ``N`` kernel launches), host backends to ``"greedy"`` (at small
      ``N`` a memory-local column scan beats repeated ``(M, N)``
      ``cumsum`` passes, measured ~1.4x on the numpy bench workload).
    """
    ns = xp.get_backend(array_backend)
    skip_blocked = _resolve_skip_blocked(scheduler)
    if not isinstance(fuse, int) or fuse < 1:
        raise ValueError(f"fuse must be an integer >= 1, got {fuse!r}")
    if nf_select not in ("auto", "batched", "greedy"):
        raise ValueError(
            f"nf_select must be 'auto', 'batched' or 'greedy', "
            f"got {nf_select!r}"
        )
    workers = resolve_sim_workers(sim_workers)
    if release not in ("periodic", "sporadic"):
        raise ValueError(f"unknown release pattern {release!r}")
    sporadic = release == "sporadic"
    if sporadic:
        if offsets is not None:
            raise ValueError(
                "offsets apply to periodic release only (sporadic "
                "schedules always start at t=0, like the scalar sampler)"
            )
        if (rng is None) == (release_times is None):
            raise ValueError(
                "sporadic release needs exactly one of rng (to sample "
                "schedules) or release_times (to replay them)"
            )
    elif rng is not None or release_times is not None:
        raise ValueError("rng/release_times apply to sporadic release only")
    if jitter < 0:
        raise ValueError("jitter must be >= 0")
    use_placement = mode is not MigrationMode.FREE
    hb = batch.to_host()
    # Pin the whole host view to float64 up front (exact upcast): the
    # horizon derivation, validation comparisons and sporadic sampler
    # must not run in a float32 input's precision on any backend.
    host_batch = TaskSetBatch(
        hnp.asarray(hb.wcet, dtype=hnp.float64),
        hnp.asarray(hb.period, dtype=hnp.float64),
        hnp.asarray(hb.deadline, dtype=hnp.float64),
        hnp.asarray(hb.area, dtype=hnp.float64),
    )
    B, N = host_batch.count, host_batch.n_tasks
    if N == 0:
        raise ValueError("simulate_batch requires at least one task per row")
    if isinstance(capacity, Fpga):
        device = capacity
        capacity = device.capacity
    elif use_placement:
        if capacity != int(capacity):
            raise ValueError(
                "placement-aware modes need an integral device width "
                f"(or an Fpga), got {capacity!r}"
            )
        device = Fpga(width=int(capacity))
    else:
        device = None
    if hnp.any(host_batch.period <= eps):
        raise ValueError("simulate_batch requires periods > eps")
    if hnp.any(host_batch.deadline > host_batch.period):
        raise ValueError(
            "simulate_batch requires constrained deadlines (D <= T); "
            "use the scalar simulator for unconstrained sets"
        )
    if hnp.any(host_batch.wcet <= eps) or hnp.any(host_batch.area <= 0):
        # wcet <= eps would let a zero-work job linger past its deadline
        # alongside a successor of the same task — a two-jobs-per-task
        # state the one-slot-per-task layout cannot represent.
        raise ValueError("simulate_batch requires wcet > eps and areas > 0")
    if use_placement and hnp.any(host_batch.area != hnp.floor(host_batch.area)):
        # Mirrors the scalar simulator's all_integral_area requirement.
        raise ValueError("placement-aware modes require integral task areas")

    if offsets is None:
        off = None
    else:
        off = hnp.broadcast_to(
            hnp.asarray(xp.asnumpy(offsets), dtype=hnp.float64), (B, N)
        ).copy()
        if not hnp.all(hnp.isfinite(off)) or hnp.any(off < 0):
            raise ValueError("offsets must be finite and >= 0")

    if horizon is None:
        hz = default_horizon_batch(host_batch, factor=horizon_factor, offsets=off)
    else:
        hz = hnp.broadcast_to(
            hnp.asarray(xp.asnumpy(horizon), dtype=hnp.float64), (B,)
        ).copy()
        if hnp.any(hz <= 0):
            raise ValueError("horizon must be > 0")
    if max_events < 1:
        raise ValueError("max_events must be >= 1")

    if sporadic:
        if release_times is None:
            release_times = sample_release_times_batch(host_batch, hz, rng, jitter)
        else:
            release_times = hnp.asarray(
                xp.asnumpy(release_times), dtype=hnp.float64
            )
            if (
                release_times.ndim != 3
                or release_times.shape[:2] != (B, N)
                or release_times.shape[2] < 1
            ):
                raise ValueError(
                    f"release_times must have shape (B, N, K), got "
                    f"{release_times.shape}"
                )
            if hnp.any(release_times < 0) or hnp.any(hnp.isnan(release_times)):
                raise ValueError("release times must be >= 0")
            # Element-wise comparisons (not diff): inf padding minus inf
            # padding would warn, `inf < inf` is just False.
            if hnp.any(release_times[:, :, 1:] < release_times[:, :, :-1]):
                raise ValueError("release times must be ascending per task")
            # One-slot-per-task layout: job k+1 may only release once job
            # k's deadline has passed (gap >= D), else the replay would
            # silently clobber a live job that the scalar
            # simulate_release_schedule still tracks.  The internal
            # sampler satisfies this by construction (gaps >= T >= D).
            if hnp.any(
                release_times[:, :, 1:]
                < release_times[:, :, :-1] + host_batch.deadline[:, :, None]
            ):
                raise ValueError(
                    "release times must be separated by at least each "
                    "task's deadline (one live job per task)"
                )
            # Releases at/after the horizon never fire (the scalar loop's
            # strict `release < horizon` filter); one trailing inf column
            # keeps the advanced pointer a valid index.
            release_times = hnp.concatenate(
                [
                    hnp.where(
                        release_times < hz[:, None, None],
                        release_times,
                        hnp.inf,
                    ),
                    hnp.full((B, N, 1), hnp.inf, dtype=hnp.float64),
                ],
                axis=2,
            )

    result_policy = placement_policy if use_placement else None

    # -- final per-row outcome (host; scattered into as rows decide) ----------
    out_ok = hnp.ones(B, dtype=bool)
    out_exceeded = hnp.zeros(B, dtype=bool)
    out_events = hnp.zeros(B, dtype=hnp.int64)
    out_slack = hnp.full(B, hnp.inf, dtype=hnp.float64)

    if B == 0:
        return SimBatchResult(
            schedulable=out_ok,
            budget_exceeded=out_exceeded,
            events=out_events,
            horizon=hnp.zeros(0, dtype=hnp.float64),
            min_slack=out_slack,
            mode=mode,
            policy=result_policy,
            release=release,
        )

    # -- multi-core sharding over the batch dimension --------------------------
    # Everything seeded or shape-derived (validation, horizon derivation,
    # offset broadcast, sporadic sampling on the shared generator) has
    # already run on the *full* batch above, and rows never interact — so
    # contiguous row slices simulated independently concatenate to the
    # exact serial result, worker count notwithstanding.
    if workers > 1 and ns.is_device:
        warnings.warn(
            f"array backend {ns.name!r} is device-resident; forcing "
            f"sim_workers to serial (workers {workers} -> 1): forked "
            f"workers must not share a GPU context",
            RuntimeWarning,
            stacklevel=2,
        )
        workers = 1
    n_shards = min(workers, B)
    if n_shards > 1:
        bounds = [(B * s) // n_shards for s in range(n_shards + 1)]
        shard_kwargs = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            kw = dict(
                batch=host_batch.rows(slice(lo, hi)),
                capacity=device if device is not None else capacity,
                scheduler="EDF-NF" if skip_blocked else "EDF-FkF",
                mode=mode,
                placement_policy=placement_policy,
                horizon=hz[lo:hi],
                horizon_factor=horizon_factor,
                release=release,
                jitter=jitter,
                max_events=max_events,
                eps=eps,
                array_backend=ns.name,
                fuse=fuse,
                sim_workers=1,
                nf_select=nf_select,
            )
            if off is not None:
                kw["offsets"] = off[lo:hi]
            if sporadic:
                kw["release_times"] = release_times[lo:hi]
            shard_kwargs.append(kw)
        shards = parallel_map(
            _simulate_shard,
            shard_kwargs,
            workers=n_shards,
            item_cost=max(1, B // n_shards),
        )
        return SimBatchResult(
            schedulable=hnp.concatenate([r.schedulable for r in shards]),
            budget_exceeded=hnp.concatenate(
                [r.budget_exceeded for r in shards]
            ),
            events=hnp.concatenate([r.events for r in shards]),
            horizon=hnp.concatenate([r.horizon for r in shards]),
            min_slack=hnp.concatenate([r.min_slack for r in shards]),
            mode=mode,
            policy=result_policy,
            release=release,
            kernel_passes=sum(r.kernel_passes for r in shards),
            event_steps=sum(r.event_steps for r in shards),
        )

    hz_out = hz.copy()  # compaction rebinds hz; keep the full-batch view
    # Host backends afford cheap any() early-outs inside a pass; device
    # backends skip them (each would be a blocking sync) and rely on the
    # masked updates being no-ops instead.
    host = not ns.is_device

    # -- working set: live (undecided) rows only ------------------------------
    # Task columns are permuted into lexicographic-name order once, so a
    # *stable* 2-key lexsort (release, deadline) reproduces the scalar
    # queue's full (deadline, release, name) tie-break for free.  The
    # sporadic rank follows the scalar pseudo-task names instead.
    # Everything below this point lives on the selected array backend
    # (float64-pinned); `idx` and the out_* arrays stay host-side so the
    # per-decision scatters never touch the device.
    perm = hnp.argsort(_name_ranks(N, sporadic=sporadic), kind="stable")
    idx = hnp.arange(B)

    def dev_f64(a: "hnp.ndarray"):
        return ns.asarray(hnp.asarray(a[:, perm], dtype=hnp.float64))

    wcet = dev_f64(host_batch.wcet)
    period = dev_f64(host_batch.period)
    deadline = dev_f64(host_batch.deadline)
    area = dev_f64(host_batch.area)
    hz = ns.asarray(hz)

    INF = float("inf")
    # Inactivity is encoded as +inf: an inactive slot has abs_dl == inf
    # (sorts behind every active job, never a deadline candidate) and
    # area_m == inf (never fits, never accumulates).  All slots start
    # inactive; the pre-loop release pass below (the scalar
    # release_due(0)) activates whatever is due at t=0 — everything
    # under synchronous release, nothing with a positive offset.
    remaining = ns.copy(wcet)
    rel = ns.zeros((B, N), dtype=ns.float64)
    abs_dl = ns.full((B, N), INF, dtype=ns.float64)
    area_m = ns.full((B, N), INF, dtype=ns.float64)
    # next_rel slots are +inf once the next release would land at/after
    # the horizon (the scalar loop just keeps filtering them out).
    if sporadic:
        release_times = ns.asarray(release_times[:, perm, :])
        rel_ptr = ns.zeros((B, N), dtype=ns.int64)
        next_rel = ns.copy(release_times[:, :, 0])
        next_rel[next_rel >= hz[:, None]] = INF
    else:
        rel_ptr = None
        first = (
            ns.zeros((B, N), dtype=ns.float64)
            if off is None
            else ns.asarray(off[:, perm])
        )
        next_rel = ns.where(first < hz[:, None], first, INF)
    now = ns.zeros((B,), dtype=ns.float64)
    # Per-row running minimum of the near-miss metric: deadline minus
    # completion time on completions, -remaining on misses.
    slack_min = ns.full((B,), INF, dtype=ns.float64)
    # Every live row steps one event per loop iteration, so a single
    # scalar counter tracks each row's event count.
    iteration = 0
    # -- fused-stepping state: rows decide *inside* a kernel pass and are
    #    only scattered/compacted at its end, so each row's outcome is
    #    frozen on the backend the moment it dies.  A dead row is
    #    neutralized in place (infinite next release/deadline/area): it
    #    selects nothing, releases nothing, misses nothing, and its
    #    slack_min stops moving — every further step is a no-op for it.
    live = ns.ones((B,), dtype=ns.bool_)
    row_ok = ns.ones((B,), dtype=ns.bool_)
    row_exc = ns.zeros((B,), dtype=ns.bool_)
    row_events = ns.zeros((B,), dtype=ns.int64)
    kernel_passes = 0
    event_steps = 0

    # -- placement-aware state (per task slot; one live job per task) ---------
    if use_placement:
        device_words = ns.bitmap_from_host(
            spans_to_words(device.free_spans(), device.width)
        )
        area_i = ns.astype(area, ns.int64)
        pos = ns.full((B, N), -1, dtype=ns.int64)
        pin = (
            ns.full((B, N), -1, dtype=ns.int64)
            if mode is MigrationMode.PINNED
            else None
        )
    else:
        area_i = pos = pin = None

    rows = ns.arange(B)[:, None]

    def compact(keep, keep_host: "hnp.ndarray") -> None:
        nonlocal idx, wcet, period, deadline, area, hz, rows
        nonlocal remaining, rel, abs_dl, area_m, next_rel, now, area_i, pos, pin
        nonlocal release_times, rel_ptr, slack_min
        nonlocal live, row_ok, row_exc, row_events
        idx = idx[keep_host]
        slack_min = slack_min[keep]
        live, row_ok, row_exc, row_events = (
            live[keep], row_ok[keep], row_exc[keep], row_events[keep],
        )
        wcet, period, deadline, area = (
            wcet[keep], period[keep], deadline[keep], area[keep],
        )
        hz = hz[keep]
        remaining, rel, abs_dl, area_m, next_rel = (
            remaining[keep], rel[keep], abs_dl[keep], area_m[keep],
            next_rel[keep],
        )
        now = now[keep]
        if sporadic:
            release_times, rel_ptr = release_times[keep], rel_ptr[keep]
        if use_placement:
            area_i, pos = area_i[keep], pos[keep]
            if pin is not None:
                pin = pin[keep]
        rows = rows[: idx.shape[0]]

    def release_due() -> None:
        """Activate every job due at the rows' current clocks — the
        scalar ``release_due(now)`` (periods/gaps > eps make its
        while-loop a single pass)."""
        nonlocal rel, remaining, abs_dl, area_m, next_rel, rel_ptr
        due = next_rel <= now[:, None] + eps
        # The no-release early-out is host-only: on a device backend the
        # any() would force a sync per event step — the very round trip
        # fused stepping removes — and the where() updates below are
        # no-ops under an all-False mask anyway.
        if host and not ns.any(due):
            return
        rel = ns.where(due, next_rel, rel)
        remaining = ns.where(due, wcet, remaining)
        abs_dl = ns.where(due, next_rel + deadline, abs_dl)
        area_m = ns.where(due, area, area_m)
        if sporadic:
            rel_ptr = rel_ptr + due
            nxt = ns.take_along_axis(
                release_times, rel_ptr[:, :, None], axis=2
            )[:, :, 0]
            next_rel = ns.where(due, nxt, next_rel)
        else:
            nxt = next_rel + period
            next_rel = ns.where(
                due, ns.where(nxt < hz[:, None], nxt, INF), next_rel
            )

    if nf_select == "auto":
        # Bit-identical either way; pick by cost model (see docstring).
        nf_select = "batched" if ns.is_device else "greedy"
    nf_running = (
        _nf_running_batched if nf_select == "batched" else _nf_running_greedy
    )

    release_due()  # the scalar pre-loop release_due(0)

    # Fused stepping: the outer loop is one *kernel pass* — up to `fuse`
    # event steps computed back to back on the backend, then exactly one
    # host synchronization (liveness readback, verdict scatter, row
    # compaction).  Bit-identity with the classic per-event loop holds
    # because a dead row's neutralized state makes every subsequent
    # in-pass step a no-op for it: it selects no jobs (infinite areas),
    # schedules no candidate events (infinite release/deadline), cannot
    # re-miss, and never touches slack_min again.  The host-only any()
    # early-outs below skip no-op updates cheaply on numpy without ever
    # forcing a device sync inside a pass.
    while idx.shape[0]:
        kernel_passes += 1
        M = idx.shape[0]
        for _ in range(fuse):
            iteration += 1
            if iteration > max_events:
                # The scalar simulator raises SimulationError here;
                # record every still-live row as
                # not-schedulable-within-budget.  The budget counts
                # event steps — `iteration` is shared by all live rows —
                # so fusion never changes which rows exceed it.
                row_ok = row_ok & ~live
                row_exc = row_exc | live
                row_events = ns.where(live, iteration, row_events)
                live = ns.zeros((M,), dtype=ns.bool_)
                break
            event_steps += 1

            # -- EDF selection: per-row (deadline, release) stable argsort,
            #    then either the FREE-mode area accumulation or the
            #    placement-aware contiguous-hole walk — same adds and
            #    comparisons as the scalar path.
            order = ns.lexsort((rel, abs_dl), axis=-1)
            if use_placement:
                running = _select_placement(
                    ns, order, area_m, area_i, pos, pin,
                    device_words, device.width, placement_policy,
                    skip_blocked,
                )
            else:
                area_s = area_m[rows, order]
                if skip_blocked:  # EDF-NF: greedy, blocked jobs skipped
                    run_s = nf_running(ns, area_s, capacity)
                else:  # EDF-FkF: prefix, first blocked job stops the scan.
                    # Areas are positive, so the running sum over the
                    # active prefix is strictly increasing and "cumsum <=
                    # capacity" is exactly the largest-fitting-prefix rule
                    # (cumsum accumulates left-to-right like the scalar
                    # loop).
                    finite = ns.isfinite(area_s)
                    csum = ns.cumsum(ns.where(finite, area_s, 0.0), axis=1)
                    run_s = (csum <= capacity) & finite
                running = ns.zeros((M, N), dtype=ns.bool_)
                running[rows, order] = run_s

            # -- next event per row: release, completion, or deadline expiry
            #    (one fused axis-min over the element-wise minimum of the
            #    three candidate kinds — same value as three separate mins).
            now_col = now[:, None]
            now_eps = now_col + eps
            cand = ns.minimum(
                next_rel, ns.where(running, now_col + remaining, INF)
            )
            cand = ns.minimum(cand, ns.where(abs_dl > now_eps, abs_dl, INF))
            t_next = ns.minimum(ns.min(cand, axis=1), hz)

            # -- advance the running jobs to t_next.
            dt = t_next - now
            adv = (dt > 0)[:, None] & running
            remaining = ns.where(adv, remaining - dt[:, None], remaining)
            now = t_next
            now_col = now[:, None]
            now_eps = now_col + eps

            # -- completions first (finishing exactly at the deadline
            #    succeeds).
            completed = running & (remaining <= eps)
            if not host or ns.any(completed):
                # Slack channel: deadline minus completion time, recorded
                # before the slot is cleared (same subtraction as the
                # scalar simulator's per-completion slack).
                slack_min = ns.minimum(
                    slack_min,
                    ns.min(
                        ns.where(completed, abs_dl - now_col, INF), axis=1
                    ),
                )
                abs_dl = ns.where(completed, INF, abs_dl)
                area_m = ns.where(completed, INF, area_m)
                if use_placement:
                    # The scalar loop pops positions/pins on completion;
                    # the successor job of the task starts unplaced.
                    pos[completed] = -1
                    if pin is not None:
                        pin[completed] = -1

            # -- deadline misses decide the row (inactive slots have inf
            #    deadlines and can never register here).
            miss = (abs_dl <= now_eps) & (remaining > eps)
            row_miss = ns.any(miss, axis=1)
            done = row_miss | (now >= hz - eps)
            newly = done & live
            if not host or ns.any(newly):
                if not host or ns.any(row_miss):
                    # Tardiness-proximity: a missing job contributes
                    # -remaining (the scalar DeadlineMiss.remaining,
                    # negated).  A missing row is necessarily live, so
                    # this nests under the newly-dead branch.
                    slack_min = ns.minimum(
                        slack_min,
                        ns.min(ns.where(miss, -remaining, INF), axis=1),
                    )
                # Freeze outcomes and neutralize the dying rows in place;
                # scatter and compaction wait for the end of the pass.
                row_ok = row_ok & ~row_miss
                row_events = ns.where(newly, iteration, row_events)
                live = live & ~done
                newly_col = newly[:, None]
                next_rel = ns.where(newly_col, INF, next_rel)
                abs_dl = ns.where(newly_col, INF, abs_dl)
                area_m = ns.where(newly_col, INF, area_m)
                if host and not ns.any(live):
                    break

            # -- releases due at the new `now` (one job per task slot).
            release_due()

        # -- end of pass: one host sync — read liveness back, scatter the
        #    frozen verdicts of every row that died this pass, compact.
        live_h = ns.asnumpy(live)
        if not live_h.all():
            gone = ~live_h
            decided = idx[gone]
            out_ok[decided] = ns.asnumpy(row_ok)[gone]
            out_exceeded[decided] = ns.asnumpy(row_exc)[gone]
            out_events[decided] = ns.asnumpy(row_events)[gone]
            out_slack[decided] = ns.asnumpy(slack_min)[gone]
            compact(live, live_h)

    return SimBatchResult(
        schedulable=out_ok,
        budget_exceeded=out_exceeded,
        events=out_events,
        horizon=hz_out,
        min_slack=out_slack,
        mode=mode,
        policy=result_policy,
        release=release,
        kernel_passes=kernel_passes,
        event_steps=event_steps,
    )


def _simulate_shard(kwargs: dict) -> SimBatchResult:
    """Top-level (picklable) worker for the ``sim_workers`` shard pool."""
    return simulate_batch(**kwargs)
