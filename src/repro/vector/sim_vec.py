"""Batched, event-synchronized EDF simulation over :class:`TaskSetBatch`.

The acceptance-ratio experiments need a *simulation* curve as the
ground-truth envelope above the analytical tests (paper §6) — but the
scalar :func:`repro.sim.simulator.simulate` walks one taskset at a time
through a Python event loop, which forced the engine to subsample sim to
a few hundred sets per bucket.  This module simulates the paper's
FREE-migration mode for a *whole batch at once*: a job runs iff total
free area suffices (no placement geometry), so every scheduling decision
is a per-row deadline sort plus a left-to-right area accumulation — both
of which vectorize over the batch dimension.

Scope (exactly the configuration the acceptance engine uses):

* ``MigrationMode.FREE`` only — placement-aware modes need per-row
  free-list geometry and stay on the scalar path;
* zero reconfiguration overhead, synchronous release (all offsets 0);
* ``stop_at_first_miss`` semantics — the verdict is the product;
* constrained deadlines (``D <= T``), so at most one job per task is
  live at any decision point (a predecessor either completed or missed,
  and a miss ends the row).

State is struct-of-arrays over ``(B, N)`` — ``remaining``,
``next_release``, absolute deadlines, a per-row event clock — and each
step advances every live row to its *own* next event (rows are not
synchronized to a global clock).  Decided rows are compacted out, so the
per-step cost tracks the number of still-undecided sets.

Bit-exactness discipline: the float operations (release accumulation,
``now + remaining`` completion times, ``remaining - dt`` advances, area
prefix sums) are performed in the same order and with the same operands
as the scalar reference, so verdicts are bit-identical to
``simulate(batch.taskset(i), ...)`` — the same contract
:func:`repro.vector.batch.sequential_sum` gives the analytical tests.
The EDF tie-break replicates the scalar queue exactly, including the
*lexicographic* task-name ordering of ``batch.taskset`` names
(``tau10`` sorts before ``tau2``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.sched.base import Scheduler
from repro.util.mathutil import TIME_EPS
from repro.vector.batch import TaskSetBatch

#: scheduler name -> skip_blocked (EDF-NF skips a job that does not fit,
#: EDF-FkF stops at the first one — see repro.sched.base.Scheduler).
_SKIP_BLOCKED = {"EDF-NF": True, "EDF-FkF": False}


@dataclass(frozen=True)
class SimBatchResult:
    """Per-row outcome of one :func:`simulate_batch` run.

    ``schedulable`` is ``True`` iff the row saw no deadline miss before
    its horizon *and* stayed within the event budget; rows that ran out
    of budget are additionally flagged in ``budget_exceeded`` (the
    scalar simulator raises ``SimulationError`` there — the batch runner
    records the row as not-schedulable-within-budget and keeps going).
    """

    schedulable: np.ndarray  # (B,) bool
    budget_exceeded: np.ndarray  # (B,) bool
    events: np.ndarray  # (B,) int64 — event-loop iterations per row
    horizon: np.ndarray  # (B,) float64

    @property
    def count(self) -> int:
        return int(self.schedulable.shape[0])

    @property
    def acceptance_ratio(self) -> float:
        """Fraction of rows with no deadline miss."""
        return float(self.schedulable.mean())


def _resolve_skip_blocked(scheduler: Union[str, Scheduler]) -> bool:
    if isinstance(scheduler, str):
        try:
            return _SKIP_BLOCKED[scheduler]
        except KeyError:
            known = ", ".join(sorted(_SKIP_BLOCKED))
            raise ValueError(f"unknown scheduler {scheduler!r}; known: {known}")
    if isinstance(scheduler, Scheduler):
        # Only the plain EDF queue order is replicated here; schedulers
        # with a different priority order must use the scalar simulator.
        name = getattr(scheduler, "name", "")
        if name not in _SKIP_BLOCKED:
            raise ValueError(
                f"simulate_batch replicates EDF-NF/EDF-FkF only, got {name!r}"
            )
        return bool(scheduler.skip_blocked)
    raise TypeError(f"scheduler must be a name or Scheduler, got {scheduler!r}")


def _name_ranks(n_tasks: int) -> np.ndarray:
    """Rank of each task index under the scalar tie-break.

    ``batch.taskset`` names tasks ``tau1 .. tauN`` and the scalar EDF
    queue breaks (deadline, release) ties by *string* comparison of
    those names — so ``tau10`` beats ``tau2``.  Returns ``rank[i]`` =
    position of ``tau{i+1}`` in lexicographic order.
    """
    order = sorted(range(n_tasks), key=lambda i: f"tau{i + 1}")
    ranks = np.empty(n_tasks, dtype=np.int64)
    for pos, i in enumerate(order):
        ranks[i] = pos
    return ranks


def default_horizon_batch(batch: TaskSetBatch, factor: int = 20) -> np.ndarray:
    """Per-row ``max D + factor * max T`` — the scalar
    :func:`repro.sim.simulator.default_horizon`, vectorized (identical
    float operations, so the horizons match the scalar path bit-exactly).
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    return batch.deadline.max(axis=1) + factor * batch.period.max(axis=1)


def simulate_batch(
    batch: TaskSetBatch,
    capacity: float,
    scheduler: Union[str, Scheduler] = "EDF-NF",
    *,
    horizon: Union[None, float, np.ndarray] = None,
    horizon_factor: int = 20,
    max_events: int = 1_000_000,
    eps: float = TIME_EPS,
) -> SimBatchResult:
    """Simulate every row of ``batch`` on a ``capacity``-column device.

    Vectorized analogue of running the scalar
    ``simulate(batch.taskset(i), Fpga(width=capacity), scheduler,
    default_horizon(·, horizon_factor))`` for each row — same verdicts,
    one event-synchronized sweep.  ``horizon`` may be a scalar or a
    ``(B,)`` array; when ``None`` it defaults per row to
    :func:`default_horizon_batch`.

    Rows whose event loop would exceed ``max_events`` (where the scalar
    simulator raises ``SimulationError``) are recorded as not
    schedulable and flagged in ``budget_exceeded`` instead of aborting
    the batch.
    """
    skip_blocked = _resolve_skip_blocked(scheduler)
    B, N = batch.count, batch.n_tasks
    if np.any(batch.period <= eps):
        raise ValueError("simulate_batch requires periods > eps")
    if np.any(batch.deadline > batch.period):
        raise ValueError(
            "simulate_batch requires constrained deadlines (D <= T); "
            "use the scalar simulator for unconstrained sets"
        )
    if np.any(batch.wcet <= eps) or np.any(batch.area <= 0):
        # wcet <= eps would let a zero-work job linger past its deadline
        # alongside a successor of the same task — a two-jobs-per-task
        # state the one-slot-per-task layout cannot represent.
        raise ValueError("simulate_batch requires wcet > eps and areas > 0")

    if horizon is None:
        hz = default_horizon_batch(batch, factor=horizon_factor)
    else:
        hz = np.broadcast_to(np.asarray(horizon, dtype=float), (B,)).copy()
        if np.any(hz <= 0):
            raise ValueError("horizon must be > 0")
    if max_events < 1:
        raise ValueError("max_events must be >= 1")

    # -- final per-row outcome (scattered into as rows decide) ----------------
    out_ok = np.ones(B, dtype=bool)
    out_exceeded = np.zeros(B, dtype=bool)
    out_events = np.zeros(B, dtype=np.int64)

    # -- working set: live (undecided) rows only ------------------------------
    # Task columns are permuted into lexicographic-name order once, so a
    # *stable* 2-key lexsort (release, deadline) reproduces the scalar
    # queue's full (deadline, release, name) tie-break for free.
    perm = np.argsort(_name_ranks(N), kind="stable")
    idx = np.arange(B)
    wcet = np.array(batch.wcet[:, perm], dtype=float)
    period = np.array(batch.period[:, perm], dtype=float)
    deadline = np.array(batch.deadline[:, perm], dtype=float)
    area = np.array(batch.area[:, perm], dtype=float)

    INF = np.inf
    # Inactivity is encoded as +inf: an inactive slot has abs_dl == inf
    # (sorts behind every active job, never a deadline candidate) and
    # area_m == inf (never fits, never accumulates).  Synchronous release
    # at t=0 (the scalar pre-loop release_due(0)) activates everything.
    remaining = wcet.copy()
    rel = np.zeros((B, N))
    abs_dl = rel + deadline
    area_m = area.copy()
    # next_rel slots are +inf once the next release would land at/after
    # the horizon (the scalar loop just keeps filtering them out).
    next_rel = rel + period
    next_rel[next_rel >= hz[:, None]] = INF
    now = np.zeros(B)
    # Every live row steps one event per loop iteration, so a single
    # scalar counter tracks each row's event count.
    iteration = 0

    rows = np.arange(B)[:, None]

    def compact(keep: np.ndarray) -> None:
        nonlocal idx, wcet, period, deadline, area, hz, rows
        nonlocal remaining, rel, abs_dl, area_m, next_rel, now
        idx = idx[keep]
        wcet, period, deadline, area = (
            wcet[keep], period[keep], deadline[keep], area[keep],
        )
        hz = hz[keep]
        remaining, rel, abs_dl, area_m, next_rel = (
            remaining[keep], rel[keep], abs_dl[keep], area_m[keep],
            next_rel[keep],
        )
        now = now[keep]
        rows = rows[: idx.size]

    while idx.size:
        iteration += 1
        if iteration > max_events:
            # The scalar simulator raises SimulationError here; record the
            # still-undecided rows as not-schedulable-within-budget.
            out_ok[idx] = False
            out_exceeded[idx] = True
            out_events[idx] = iteration
            break
        M = idx.size

        # -- EDF selection: per-row (deadline, release) stable argsort, then
        #    a left-to-right area accumulation with the same adds and the
        #    same int-exact comparisons as the scalar queue.
        order = np.lexsort((rel, abs_dl), axis=-1)
        area_s = area_m[rows, order]
        run_s = np.empty((M, N), dtype=bool)
        if skip_blocked:  # EDF-NF: greedy, a blocked job is skipped
            used = np.zeros(M)
            for j in range(N):
                a_j = area_s[:, j]
                take = used + a_j <= capacity
                used += np.where(take, a_j, 0.0)
                run_s[:, j] = take
        else:  # EDF-FkF: prefix, first blocked job stops the scan.
            # Areas are positive, so the running sum over the active
            # prefix is strictly increasing and "cumsum <= capacity" is
            # exactly the largest-fitting-prefix rule (np.cumsum
            # accumulates left-to-right like the scalar loop).
            finite = np.isfinite(area_s)
            csum = np.cumsum(np.where(finite, area_s, 0.0), axis=1)
            np.less_equal(csum, capacity, out=run_s)
            run_s &= finite
        running = np.zeros((M, N), dtype=bool)
        running[rows, order] = run_s

        # -- next event per row: release, completion, or deadline expiry
        #    (one fused axis-min over the element-wise minimum of the three
        #    candidate kinds — same value as three separate mins).
        now_col = now[:, None]
        now_eps = now_col + eps
        cand = np.minimum(
            next_rel, np.where(running, now_col + remaining, INF)
        )
        np.minimum(cand, np.where(abs_dl > now_eps, abs_dl, INF), out=cand)
        t_next = np.minimum(cand.min(axis=1), hz)

        # -- advance the running jobs to t_next.
        dt = t_next - now
        adv = (dt > 0)[:, None] & running
        remaining = np.where(adv, remaining - dt[:, None], remaining)
        now = t_next
        now_col = now[:, None]
        now_eps = now_col + eps

        # -- completions first (finishing exactly at the deadline succeeds).
        completed = running & (remaining <= eps)
        if completed.any():
            abs_dl = np.where(completed, INF, abs_dl)
            area_m = np.where(completed, INF, area_m)

        # -- deadline misses decide the row (inactive slots have inf
        #    deadlines and can never register here).
        miss = (abs_dl <= now_eps) & (remaining > eps)
        row_miss = miss.any(axis=1)
        done = row_miss | (now >= hz - eps)
        if done.any():
            decided = idx[done]
            out_ok[decided] = ~row_miss[done]
            out_events[decided] = iteration
            compact(~done)
            if not idx.size:
                break
            now_eps = now[:, None] + eps

        # -- releases due at the new `now` (one job per task; periods > eps
        #    make the scalar while-loop a single pass).
        due = next_rel <= now_eps
        if due.any():
            rel = np.where(due, next_rel, rel)
            remaining = np.where(due, wcet, remaining)
            abs_dl = np.where(due, next_rel + deadline, abs_dl)
            area_m = np.where(due, area, area_m)
            nxt = next_rel + period
            next_rel = np.where(
                due, np.where(nxt < hz[:, None], nxt, INF), next_rel
            )

    return SimBatchResult(
        schedulable=out_ok,
        budget_exceeded=out_exceeded,
        events=out_events,
        horizon=np.asarray(
            default_horizon_batch(batch, factor=horizon_factor)
            if horizon is None
            else np.broadcast_to(np.asarray(horizon, dtype=float), (B,))
        ),
    )
