"""Vectorized GN2 (Theorem 3) over a :class:`TaskSetBatch`.

The λ search is materialized as a 4-D tensor ``(B, N_k, L, N_i)`` with
``L = 2N`` candidates (all task utilizations + all densities, masked to
the valid ones).  That is ``2 N^3`` floats per taskset, so batches are
processed in chunks to bound peak memory (``chunk`` parameter).

Backend-neutral: arithmetic runs on the namespace resolved through
:mod:`repro.vector.xp` (inputs pinned to float64 at the boundary),
verdicts return as host numpy bools.
"""

from __future__ import annotations

from typing import Optional

from repro.vector import xp
from repro.vector.batch import TaskSetBatch, sequential_sum
from repro.vector.dp_vec import _pinned, necessary_mask
from repro.vector.xp import host as hnp


def _gn2_chunk(
    batch: TaskSetBatch,
    capacity: int,
    strict_condition2: bool,
    ns,
) -> "hnp.ndarray":
    c, t, d, a = _pinned(batch, ns)
    util = c / t  # (B, N)
    dens = c / d  # (B, N)

    # Candidate λ values: all utilizations, plus densities where D > T.
    lam = ns.concatenate([util, dens], axis=1)  # (B, L)
    dens_valid = (d > t)  # (B, N)
    lam_valid = ns.concatenate(
        [ns.ones_like(util, dtype=ns.bool_), dens_valid], axis=1
    )

    lam4 = lam[:, None, :, None]  # (B, 1, L, 1)
    u_i = util[:, None, None, :]  # (B, 1, 1, N)
    dens_i = dens[:, None, None, :]
    c_i = c[:, None, None, :]
    d_i = d[:, None, None, :]
    a_i = a[:, None, None, :]
    d_k = d[:, :, None, None]  # (B, N, 1, 1)

    # Lemma 7 β cases (corrected case 2 = u_i; see DESIGN.md §4.3).
    case1 = ns.maximum(u_i, u_i * (1.0 - d_i / d_k) + c_i / d_k)
    case3 = u_i + (c_i - lam4 * d_i) / d_k
    beta = ns.where(
        u_i <= lam4, case1, ns.where(lam4 >= dens_i, u_i, case3)
    )  # (B, N, L, N)

    t_over_d = t / d  # (B, N)
    lam_scale = ns.maximum(t_over_d, 1.0)[:, :, None]  # (B, N, 1)
    lam_k = lam[:, None, :] * lam_scale  # (B, N, L)
    one_minus = 1.0 - lam_k

    lhs1 = sequential_sum(
        a_i * ns.minimum(beta, one_minus[:, :, :, None]), axis=3
    )  # (B, N, L)
    lhs2 = sequential_sum(a_i * ns.minimum(beta, 1.0), axis=3)

    abnd = (capacity - ns.max(a, axis=1) + 1.0)[:, None, None]  # (B, 1, 1)
    amin = ns.min(a, axis=1)[:, None, None]
    cond1 = lhs1 < abnd * one_minus
    rhs2 = (abnd - amin) * one_minus + amin
    cond2 = (lhs2 < rhs2) if strict_condition2 else (lhs2 <= rhs2)

    # λ must be a declared candidate and >= C_k/T_k.
    valid = lam_valid[:, None, :] & (lam[:, None, :] >= util[:, :, None])  # (B, N, L)
    witnessed = ns.any((cond1 | cond2) & valid, axis=2)  # (B, N)
    return ns.asnumpy(ns.all(witnessed, axis=1))


def gn2_accepts(
    batch: TaskSetBatch,
    capacity: int,
    *,
    strict_condition2: bool = True,
    chunk: int = 512,
    backend: Optional[str] = None,
) -> "hnp.ndarray":
    """Per-set GN2 verdicts, shape ``(B,)`` bool (chunked evaluation)."""
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    ns = xp.get_backend(backend)
    parts = []
    for start in range(0, batch.count, chunk):
        sl = slice(start, min(start + chunk, batch.count))
        sub = TaskSetBatch(
            batch.wcet[sl], batch.period[sl], batch.deadline[sl], batch.area[sl]
        )
        parts.append(_gn2_chunk(sub, capacity, strict_condition2, ns))
    return hnp.concatenate(parts) & necessary_mask(batch, capacity, backend=backend)
