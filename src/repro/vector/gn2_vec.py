"""Vectorized GN2 (Theorem 3) over a :class:`TaskSetBatch`.

The λ search is materialized as a 4-D tensor ``(B, N_k, L, N_i)`` with
``L = 2N`` candidates (all task utilizations + all densities, masked to
the valid ones).  That is ``2 N^3`` floats per taskset, so batches are
processed in chunks to bound peak memory (``chunk`` parameter).
"""

from __future__ import annotations

import numpy as np

from repro.vector.batch import TaskSetBatch, sequential_sum
from repro.vector.dp_vec import necessary_mask


def _gn2_chunk(
    batch: TaskSetBatch,
    capacity: int,
    strict_condition2: bool,
) -> np.ndarray:
    c = batch.wcet
    t = batch.period
    d = batch.deadline
    a = batch.area
    util = c / t  # (B, N)
    dens = c / d  # (B, N)

    # Candidate λ values: all utilizations, plus densities where D > T.
    lam = np.concatenate([util, dens], axis=1)  # (B, L)
    dens_valid = (d > t)  # (B, N)
    lam_valid = np.concatenate([np.ones_like(util, dtype=bool), dens_valid], axis=1)

    lam4 = lam[:, None, :, None]  # (B, 1, L, 1)
    u_i = util[:, None, None, :]  # (B, 1, 1, N)
    dens_i = dens[:, None, None, :]
    c_i = c[:, None, None, :]
    d_i = d[:, None, None, :]
    a_i = a[:, None, None, :]
    d_k = d[:, :, None, None]  # (B, N, 1, 1)

    # Lemma 7 β cases (corrected case 2 = u_i; see DESIGN.md §4.3).
    case1 = np.maximum(u_i, u_i * (1.0 - d_i / d_k) + c_i / d_k)
    case3 = u_i + (c_i - lam4 * d_i) / d_k
    beta = np.where(
        u_i <= lam4, case1, np.where(lam4 >= dens_i, u_i, case3)
    )  # (B, N, L, N)

    t_over_d = t / d  # (B, N)
    lam_scale = np.maximum(t_over_d, 1.0)[:, :, None]  # (B, N, 1)
    lam_k = lam[:, None, :] * lam_scale  # (B, N, L)
    one_minus = 1.0 - lam_k

    lhs1 = sequential_sum(
        a_i * np.minimum(beta, one_minus[:, :, :, None]), axis=3
    )  # (B, N, L)
    lhs2 = sequential_sum(a_i * np.minimum(beta, 1.0), axis=3)

    abnd = (capacity - batch.max_area + 1.0)[:, None, None]  # (B, 1, 1)
    amin = batch.min_area[:, None, None]
    cond1 = lhs1 < abnd * one_minus
    rhs2 = (abnd - amin) * one_minus + amin
    cond2 = (lhs2 < rhs2) if strict_condition2 else (lhs2 <= rhs2)

    # λ must be a declared candidate and >= C_k/T_k.
    valid = lam_valid[:, None, :] & (lam[:, None, :] >= util[:, :, None])  # (B, N, L)
    witnessed = ((cond1 | cond2) & valid).any(axis=2)  # (B, N)
    return witnessed.all(axis=1)


def gn2_accepts(
    batch: TaskSetBatch,
    capacity: int,
    *,
    strict_condition2: bool = True,
    chunk: int = 512,
) -> np.ndarray:
    """Per-set GN2 verdicts, shape ``(B,)`` bool (chunked evaluation)."""
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    parts = []
    for start in range(0, batch.count, chunk):
        sl = slice(start, min(start + chunk, batch.count))
        sub = TaskSetBatch(
            batch.wcet[sl], batch.period[sl], batch.deadline[sl], batch.area[sl]
        )
        parts.append(_gn2_chunk(sub, capacity, strict_condition2))
    return np.concatenate(parts) & necessary_mask(batch, capacity)
