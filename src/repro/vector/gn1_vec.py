"""Vectorized GN1 (Theorem 2) over a :class:`TaskSetBatch`.

Pairwise quantities are materialized as ``(B, N, N)`` arrays with axis 1
indexing the analyzed task ``k`` and axis 2 the interfering task ``i`` —
about 800 kB per array at B=1000, N=10, well inside cache-friendly
territory; larger batches should be chunked by the caller (the acceptance
engine does).
"""

from __future__ import annotations

import numpy as np

from repro.util.mathutil import TIME_EPS
from repro.vector.batch import TaskSetBatch, sequential_sum
from repro.vector.dp_vec import necessary_mask


def _robust_floor(q: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.util.mathutil.float_floor_div` semantics:
    values within TIME_EPS *below* an integer floor to that integer."""
    fq = np.floor(q)
    bump = (fq + 1.0 - q) <= TIME_EPS
    return np.where(bump, fq + 1.0, fq)


def gn1_accepts(
    batch: TaskSetBatch,
    capacity: int,
    *,
    plus_one_bound: bool = True,
    window_denominator: bool = False,
) -> np.ndarray:
    """Per-set GN1 verdicts, shape ``(B,)`` bool.

    Flags mirror :class:`repro.core.gn1.Gn1Variant`: the default
    (``plus_one_bound=True, window_denominator=False``) is the PAPER
    variant; ``plus_one_bound=False`` is THEOREM_LITERAL;
    ``window_denominator=True`` is BCL_WINDOW.
    """
    c = batch.wcet  # (B, N)
    t = batch.period
    d = batch.deadline
    a = batch.area

    d_k = d[:, :, None]  # window of task k     (B, N, 1)
    c_i = c[:, None, :]  # interferer params    (B, 1, N)
    t_i = t[:, None, :]
    d_i = d[:, None, :]
    a_i = a[:, None, :]

    n_i = np.maximum(_robust_floor((d_k - d_i) / t_i) + 1.0, 0.0)  # (B, N, N)
    carry = np.minimum(c_i, np.maximum(d_k - n_i * t_i, 0.0))
    workload = n_i * c_i + carry
    beta = workload / (d_k if window_denominator else d_i)

    slack_rate = 1.0 - c / d  # (B, N) — 1 - C_k/D_k
    contrib = a_i * np.minimum(beta, slack_rate[:, :, None])  # (B, N, N)
    # Exclude i == k by zeroing the diagonal BEFORE summing: subtracting
    # it afterwards would break bit-exactness with the scalar reference at
    # boundary cases ((a+b)-a != b in floats).
    idx = np.arange(contrib.shape[1])
    contrib[:, idx, idx] = 0.0
    lhs = sequential_sum(contrib, axis=2)

    bound = capacity - a + (1.0 if plus_one_bound else 0.0)  # (B, N)
    rhs = bound * slack_rate
    ok = (lhs < rhs).all(axis=1)
    return ok & necessary_mask(batch, capacity)
