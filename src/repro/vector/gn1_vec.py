"""Vectorized GN1 (Theorem 2) over a :class:`TaskSetBatch`.

Pairwise quantities are materialized as ``(B, N, N)`` arrays with axis 1
indexing the analyzed task ``k`` and axis 2 the interfering task ``i`` —
about 800 kB per array at B=1000, N=10, well inside cache-friendly
territory; larger batches should be chunked by the caller (the acceptance
engine does).

Backend-neutral: arithmetic runs on the namespace resolved through
:mod:`repro.vector.xp` (inputs pinned to float64 at the boundary),
verdicts return as host numpy bools.
"""

from __future__ import annotations

from typing import Optional

from repro.util.mathutil import TIME_EPS
from repro.vector import xp
from repro.vector.batch import TaskSetBatch, sequential_sum
from repro.vector.dp_vec import _pinned, necessary_mask
from repro.vector.xp import host as hnp


def _robust_floor(q, ns):
    """Vectorized :func:`repro.util.mathutil.float_floor_div` semantics:
    values within TIME_EPS *below* an integer floor to that integer."""
    fq = ns.floor(q)
    bump = (fq + 1.0 - q) <= TIME_EPS
    return ns.where(bump, fq + 1.0, fq)


def gn1_accepts(
    batch: TaskSetBatch,
    capacity: int,
    *,
    plus_one_bound: bool = True,
    window_denominator: bool = False,
    backend: Optional[str] = None,
) -> "hnp.ndarray":
    """Per-set GN1 verdicts, shape ``(B,)`` bool (host numpy).

    Flags mirror :class:`repro.core.gn1.Gn1Variant`: the default
    (``plus_one_bound=True, window_denominator=False``) is the PAPER
    variant; ``plus_one_bound=False`` is THEOREM_LITERAL;
    ``window_denominator=True`` is BCL_WINDOW.
    """
    ns = xp.get_backend(backend)
    c, t, d, a = _pinned(batch, ns)

    d_k = d[:, :, None]  # window of task k     (B, N, 1)
    c_i = c[:, None, :]  # interferer params    (B, 1, N)
    t_i = t[:, None, :]
    d_i = d[:, None, :]
    a_i = a[:, None, :]

    n_i = ns.maximum(_robust_floor((d_k - d_i) / t_i, ns) + 1.0, 0.0)  # (B, N, N)
    carry = ns.minimum(c_i, ns.maximum(d_k - n_i * t_i, 0.0))
    workload = n_i * c_i + carry
    beta = workload / (d_k if window_denominator else d_i)

    slack_rate = 1.0 - c / d  # (B, N) — 1 - C_k/D_k
    contrib = a_i * ns.minimum(beta, slack_rate[:, :, None])  # (B, N, N)
    # Exclude i == k by zeroing the diagonal BEFORE summing: subtracting
    # it afterwards would break bit-exactness with the scalar reference at
    # boundary cases ((a+b)-a != b in floats).
    idx = ns.arange(contrib.shape[1])
    contrib[:, idx, idx] = 0.0
    lhs = sequential_sum(contrib, axis=2)

    bound = capacity - a + (1.0 if plus_one_bound else 0.0)  # (B, N)
    rhs = bound * slack_rate
    ok = ns.all(lhs < rhs, axis=1)
    return ns.asnumpy(ok) & necessary_mask(batch, capacity, backend=backend)
