"""Vectorized DP (Theorem 1) over a :class:`TaskSetBatch`.

Backend-neutral: the kernel resolves an array namespace through
:mod:`repro.vector.xp` (explicit ``backend`` kwarg > process override >
``REPRO_ARRAY_BACKEND`` > numpy), pins every input to float64 at the
batch boundary (float32 inputs would silently change knife-edge
verdicts), and returns *host* numpy verdict masks regardless of where
the arithmetic ran.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.vector import xp
from repro.vector.batch import TaskSetBatch, sequential_sum
from repro.vector.xp import host as hnp


def _pinned(batch: TaskSetBatch, ns) -> Tuple:
    """The batch's arrays on ``ns``, pinned to float64 (exact upcast)."""
    return (
        ns.asarray(batch.wcet, dtype=ns.float64),
        ns.asarray(batch.period, dtype=ns.float64),
        ns.asarray(batch.deadline, dtype=ns.float64),
        ns.asarray(batch.area, dtype=ns.float64),
    )


def necessary_mask(
    batch: TaskSetBatch, capacity: int, *, backend: Optional[str] = None
) -> "hnp.ndarray":
    """Vectorized :func:`repro.core.interfaces.necessary_conditions`."""
    ns = xp.get_backend(backend)
    wcet, period, deadline, area = _pinned(batch, ns)
    per_task = (area <= capacity) & (wcet <= deadline) & (wcet <= period)
    us_total = sequential_sum(wcet * area / period, axis=1)
    ok = ns.all(per_task, axis=1) & (us_total <= capacity)
    return ns.asnumpy(ok)


def dp_accepts(
    batch: TaskSetBatch,
    capacity: int,
    *,
    integer_areas: bool = True,
    backend: Optional[str] = None,
) -> "hnp.ndarray":
    """Per-set DP verdicts, shape ``(B,)`` bool (host numpy).

    ``integer_areas=False`` evaluates Danne & Platzner's original
    real-area bound (``Abnd = A(H) - Amax``) for the α ablation.
    """
    ns = xp.get_backend(backend)
    wcet, period, _, area = _pinned(batch, ns)
    us_total = sequential_sum(wcet * area / period, axis=1)  # (B,)
    ut = wcet / period  # (B, N)
    us_i = ut * area  # (B, N)
    abnd = capacity - ns.max(area, axis=1) + (1 if integer_areas else 0)  # (B,)
    rhs = abnd[:, None] * (1.0 - ut) + us_i  # (B, N)
    ok = ns.all(us_total[:, None] <= rhs, axis=1)
    return ns.asnumpy(ok) & necessary_mask(batch, capacity, backend=backend)
