"""Vectorized DP (Theorem 1) over a :class:`TaskSetBatch`."""

from __future__ import annotations

import numpy as np

from repro.vector.batch import TaskSetBatch


def necessary_mask(batch: TaskSetBatch, capacity: int) -> np.ndarray:
    """Vectorized :func:`repro.core.interfaces.necessary_conditions`."""
    per_task = (
        (batch.area <= capacity)
        & (batch.wcet <= batch.deadline)
        & (batch.wcet <= batch.period)
    )
    return per_task.all(axis=1) & (batch.system_utilization <= capacity)


def dp_accepts(
    batch: TaskSetBatch, capacity: int, *, integer_areas: bool = True
) -> np.ndarray:
    """Per-set DP verdicts, shape ``(B,)`` bool.

    ``integer_areas=False`` evaluates Danne & Platzner's original
    real-area bound (``Abnd = A(H) - Amax``) for the α ablation.
    """
    us_total = batch.system_utilization  # (B,)
    ut = batch.wcet / batch.period  # (B, N)
    us_i = ut * batch.area  # (B, N)
    abnd = capacity - batch.max_area + (1 if integer_areas else 0)  # (B,)
    rhs = abnd[:, None] * (1.0 - ut) + us_i  # (B, N)
    ok = (us_total[:, None] <= rhs).all(axis=1)
    return ok & necessary_mask(batch, capacity)
