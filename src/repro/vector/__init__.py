"""Vectorized batch evaluation of the schedulability tests and simulator.

The paper's figures need >= 10,000 tasksets per curve; evaluating the
scalar tests one taskset at a time is needlessly slow in Python.  This
package holds struct-of-arrays batches (:class:`TaskSetBatch`),
vectorized implementations of DP, GN1 and GN2 that process whole
batches at once (GN2 in bounded-memory chunks), and a batched
event-synchronized EDF simulator (:func:`simulate_batch`) covering every
migration mode of the scalar simulator: the paper's FREE mode (pure
capacity check) *and* the §7 placement-aware RELOCATABLE/PINNED modes,
which run on an array-encoded free-list — per-row 64-bit column bitmaps
(:class:`BatchFreeList`) with vectorized first/best/worst-fit hole
kernels sharing one interval representation with the scalar path
(:mod:`repro.fpga.intervals`).  Non-synchronous release patterns run
batched too: per-row release ``offsets`` and sporadic (jittered
inter-arrival) schedules, bit-identical to the scalar
``simulate(offsets=...)`` / ``simulate_release_schedule`` — so the
acceptance engine's ``sim:`` curves, the placement ablation *and* the
offset/sporadic pattern searches all run over full buckets instead of a
subsample (patterns fanned into the batch axis).

Array backends
--------------

No kernel in this package imports numpy directly: every one computes
through the pluggable namespace of :mod:`repro.vector.xp`, which
resolves to **numpy** (the eager default, always installed), **cupy**,
or **torch** — the latter two lazily, behind optional imports that are
never required at import time (requesting an uninstalled backend raises
:class:`repro.vector.xp.BackendUnavailable`).  Selection precedence:

1. explicit kwarg (``simulate_batch(..., array_backend="torch")``,
   ``dp_accepts(..., backend=...)``, the engine's ``sim_array_backend``);
2. process-wide override (:func:`repro.vector.xp.set_backend` — the CLI
   ``--array-backend`` flag installs this);
3. the ``REPRO_ARRAY_BACKEND`` environment variable;
4. ``numpy``.

Parity guarantee: with the numpy backend the kernels perform exactly
the operations they performed before the backends existed, so verdicts
stay **bit-identical** to the scalar references; torch-CPU runs the
same float64 operand order and holds the same contract (exercised in CI
when torch is installed).  The device backends (``cupy``,
``torch:cuda``) keep per-element operand order but may re-associate
parallel reductions, so their contract is verdict-level.  Deliberately
host-side regardless of backend: the seeded samplers
(:func:`sample_offsets_batch`, :func:`sample_release_times_batch` —
their draw order is pinned to the scalar reference), batch generation
(:func:`generate_batch`), validation, and every returned verdict array;
data crosses the host/device boundary once per batch in each direction.

The scalar implementations in :mod:`repro.core` and
:mod:`repro.sim.simulator` remain the reference — the test-suite
cross-validates every vectorized verdict against them, bit-for-bit.
"""

from repro.vector import xp
from repro.vector.batch import TaskSetBatch, generate_batch
from repro.vector.dp_vec import dp_accepts
from repro.vector.gn1_vec import gn1_accepts
from repro.vector.gn2_vec import gn2_accepts
from repro.vector.placement_vec import BatchFreeList, choose_batch
from repro.vector.sim_vec import (
    SimBatchResult,
    default_horizon_batch,
    sample_offsets_batch,
    sample_release_times_batch,
    simulate_batch,
)

__all__ = [
    "xp",
    "TaskSetBatch",
    "generate_batch",
    "dp_accepts",
    "gn1_accepts",
    "gn2_accepts",
    "BatchFreeList",
    "choose_batch",
    "SimBatchResult",
    "default_horizon_batch",
    "sample_offsets_batch",
    "sample_release_times_batch",
    "simulate_batch",
]
