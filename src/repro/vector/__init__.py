"""Vectorized batch evaluation of the schedulability tests and simulator.

The paper's figures need >= 10,000 tasksets per curve; evaluating the
scalar tests one taskset at a time is needlessly slow in Python.  This
package holds struct-of-arrays batches (:class:`TaskSetBatch`),
numpy-vectorized implementations of DP, GN1 and GN2 that process whole
batches at once (GN2 in bounded-memory chunks), and a batched
event-synchronized EDF simulator (:func:`simulate_batch`) for the
paper's FREE-migration mode, so the acceptance engine's ``sim:`` curves
run over full buckets instead of a subsample.

The scalar implementations in :mod:`repro.core` and
:mod:`repro.sim.simulator` remain the reference — the test-suite
cross-validates every vectorized verdict against them, bit-for-bit.
"""

from repro.vector.batch import TaskSetBatch, generate_batch
from repro.vector.dp_vec import dp_accepts
from repro.vector.gn1_vec import gn1_accepts
from repro.vector.gn2_vec import gn2_accepts
from repro.vector.sim_vec import SimBatchResult, default_horizon_batch, simulate_batch

__all__ = [
    "TaskSetBatch",
    "generate_batch",
    "dp_accepts",
    "gn1_accepts",
    "gn2_accepts",
    "SimBatchResult",
    "default_horizon_batch",
    "simulate_batch",
]
