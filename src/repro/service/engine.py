"""The micro-batched admission decision core.

One :class:`BatchEngine` owns every named device's
:class:`~repro.incremental.state.AdmissionState` (the churn-speed
substrate) and decides coalesced request batches in three tiers:

1. **Certifier fast path** — each device's head-of-queue requests are
   offered to its :class:`~repro.core.sensitivity.DeltaCertifier`; the
   provably-easy ones (arrivals inside the cached DP slack, departures
   under a DP/GN1 acceptance) resolve in O(1) with no rerun at all.
2. **Speculative grouped kernel rerun** — the residual requests are
   chained per device under the optimistic assumption that earlier
   uncertified adds in the same batch are admitted, and every candidate
   resident set across *all* devices is fanned into one vectorized
   DP/GN1/GN2 kernel call per ``(set size, capacity)`` group
   (:func:`repro.incremental.reverdict.accept_masks`) instead of one
   scalar rerun per request.
3. **Ordered confirmation** — verdicts are applied walking each
   device's queue in arrival order; the first rejected-but-assumed-
   admitted task invalidates the speculation suffix for that device,
   which simply stays queued for the next round.  Each round resolves
   at least the head request of every backlogged device (the head's
   base is always the real resident set), so the loop terminates.

**Parity contract.**  For float64-parameter tasks (the protocol
boundary coerces — JSON numbers are doubles) off exact knife edges,
:meth:`BatchEngine.process_batch` over *any* partition of a request
stream into batches yields decisions identical to
:meth:`BatchEngine.process_serial` — the per-request reference that
trial-admits through ``AdmissionState`` exactly like
``state.admit(task)`` — including rollback-on-reject.  Certificates are
sound by construction; kernel verdicts equal the scalar portfolio
because DP, GN1 and GN2 all apply to EDF-NF and the kernels replicate
the scalar float64 operations (see
:mod:`repro.incremental.reverdict`).  The randomized concurrency suite
in ``tests/test_service_parity.py`` asserts this bit-for-bit.

Per-device ordering is the serialization guarantee: requests for one
device are decided in arrival order no matter how batches coalesce;
requests for different devices carry no ordering promise (they commute
— states are disjoint).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.sensitivity import DeltaCertifier
from repro.fpga.device import Fpga
from repro.incremental.reverdict import accept_masks
from repro.incremental.state import AdmissionState
from repro.model.task import Task, TaskSet
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    VIA_CERTIFIER,
    VIA_KERNEL,
    VIA_STATE,
    Decision,
    Request,
)

#: Portfolio member priority — must match ``CompositeTest`` order, which
#: is what :meth:`DeltaCertifier.seed` expects ``via`` to encode.
MEMBER_ORDER = ("DP", "GN1", "GN2")

# Speculation-entry kinds (phase 2 chains).
_ERROR, _REMOVE, _VERDICT = "error", "remove", "verdict"


class DeviceEngine:
    """One device's confirmed admission state plus its certifier."""

    def __init__(self, name: str, fpga: Fpga, *, rel_eps: float = 1e-9) -> None:
        self.name = name
        self.fpga = fpga
        self.state = AdmissionState(fpga)
        self.certifier = DeltaCertifier(rel_eps)
        self.cert_valid = False
        self._cert_seen = (0, 0)  # (certified, unknown) already drained

    def drain_certifier_stats(self) -> Tuple[int, int]:
        """The certifier's (certified, unknown) delta since last drain."""
        certified = self.certifier.stats["certified"]
        unknown = self.certifier.stats["unknown"]
        seen_c, seen_u = self._cert_seen
        self._cert_seen = (certified, unknown)
        return certified - seen_c, unknown - seen_u


class BatchEngine:
    """Micro-batched (and per-request serial baseline) decision engine."""

    def __init__(
        self,
        *,
        backend: Optional[str] = None,
        use_certifier: bool = True,
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        self.backend = backend
        self.use_certifier = use_certifier
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.devices: Dict[str, DeviceEngine] = {}

    # -- device registry -------------------------------------------------------

    def add_device(self, name: str, fpga: Fpga) -> DeviceEngine:
        if name in self.devices:
            raise KeyError(f"device already registered: {name!r}")
        dev = DeviceEngine(name, fpga)
        self.devices[name] = dev
        return dev

    def device(self, name: str) -> DeviceEngine:
        return self.devices[name]

    # -- batched pipeline ------------------------------------------------------

    def process_batch(self, requests: Sequence[Request]) -> List[Decision]:
        """Decide one coalesced batch; per-device arrival order is the
        serialization order (see the module docstring's parity contract)."""
        decisions: List[Optional[Decision]] = [None] * len(requests)
        pending: Dict[str, Deque[Tuple[int, Request]]] = {}
        for i, req in enumerate(requests):
            if req.device not in self.devices:
                decisions[i] = self._error(req, "unknown device")
            else:
                pending.setdefault(req.device, deque()).append((i, req))

        rounds = kernel_calls = kernel_rows = 0
        while any(queue for queue in pending.values()):
            rounds += 1
            # Tier 1: certifier fast path / unconditional ops, in order,
            # up to each device's first request that needs a rerun.
            for devname, queue in pending.items():
                dev = self.devices[devname]
                while queue:
                    i, req = queue[0]
                    decision = self._fast_path(dev, req)
                    if decision is None:
                        break
                    decisions[i] = decision
                    queue.popleft()

            # Tier 2: speculative per-device chains; candidate resident
            # sets grouped by (size, capacity) for one kernel sweep each.
            chains: Dict[str, List[Tuple]] = {}
            groups: Dict[Tuple[int, int], List[TaskSet]] = {}
            for devname, queue in pending.items():
                if not queue:
                    continue
                dev = self.devices[devname]
                spec = list(dev.state.tasks)
                spec_names = {t.name for t in spec}
                entries: List[Tuple] = []
                for i, req in queue:
                    if req.op == "remove":
                        if req.name in spec_names:
                            entries.append((_REMOVE, i, req))
                            spec = [t for t in spec if t.name != req.name]
                            spec_names.discard(req.name)
                        else:
                            entries.append((_ERROR, i, req, "task not resident"))
                    else:  # add / trial
                        task = req.task
                        assert task is not None
                        if task.name in spec_names:
                            entries.append(
                                (_ERROR, i, req, "task name already resident")
                            )
                            continue
                        candidate = spec + [task]
                        key = (len(candidate), dev.fpga.capacity)
                        rows = groups.setdefault(key, [])
                        entries.append((_VERDICT, i, req, key, len(rows)))
                        rows.append(TaskSet(candidate))
                        if req.op == "add":  # optimistic: assume admitted
                            spec = candidate
                            spec_names.add(task.name)
                chains[devname] = entries

            # Tier 2b: grouped kernel sweeps per (size, capacity), with the
            # portfolio's short-circuit lifted to batch granularity: DP over
            # every row, GN1 only over the DP-rejected rows, GN2 only over
            # the remainder — exactly the members the scalar portfolio
            # would have evaluated, so per-row cost matches the serial
            # reference while the vectorization amortizes across rows.
            verdicts: Dict[Tuple[int, int], List[Tuple[bool, str]]] = {}
            for key, rows in groups.items():
                group: List[Tuple[bool, str]] = [(False, "")] * len(rows)
                undecided = list(range(len(rows)))
                for member in MEMBER_ORDER:
                    subset = [rows[i] for i in undecided]
                    mask = accept_masks(
                        subset, key[1], tests=(member,), backend=self.backend
                    )[member]
                    kernel_calls += 1
                    kernel_rows += len(subset)
                    still: List[int] = []
                    for pos, i in enumerate(undecided):
                        if bool(mask[pos]):
                            group[i] = (True, member)
                        else:
                            still.append(i)
                    undecided = still
                    if not undecided:
                        break
                verdicts[key] = group

            # Tier 3: ordered confirmation per device.
            for devname, entries in chains.items():
                dev = self.devices[devname]
                queue = pending[devname]
                known: Optional[Tuple[bool, str]] = None
                for entry in entries:
                    kind, i, req = entry[0], entry[1], entry[2]
                    if kind == _ERROR:
                        decisions[i] = self._error(req, entry[3])
                        queue.popleft()
                        continue  # state unchanged: speculation holds
                    if kind == _REMOVE:
                        if dev.cert_valid:
                            if dev.certifier.certify_remove(req.name) is None:
                                dev.cert_valid = False
                        dev.state.remove(req.name)
                        known = None  # resident set changed, verdict unknown
                        decisions[i] = Decision(
                            op=req.op, device=req.device, name=req.name, ok=True,
                            via=VIA_STATE,
                        )
                        queue.popleft()
                        continue
                    # _VERDICT
                    key, pos = entry[3], entry[4]
                    accepted, member = verdicts[key][pos]
                    task = req.task
                    assert task is not None
                    decisions[i] = Decision(
                        op=req.op, device=req.device, name=task.name,
                        ok=accepted, via=VIA_KERNEL, member=member,
                    )
                    queue.popleft()
                    if req.op == "trial":
                        continue  # no state change, speculation holds
                    if accepted:
                        dev.state.add(task)
                        dev.cert_valid = False  # stale cache; reseeded below
                        known = (True, member)
                    else:
                        # Rejection leaves the state unchanged, but every
                        # later entry assumed this add went through:
                        # abandon the speculation suffix for this device.
                        break

                # Re-seed the certifier when the walk ends on a resident
                # set whose portfolio verdict the kernel sweep just told
                # us — the cache rebuild is O(N) arithmetic, no rerun.
                if self.use_certifier and not dev.cert_valid and known is not None:
                    dev.certifier.seed(dev.state, known[0], known[1])
                    dev.cert_valid = True

        self._finish_batch(len(requests), rounds, kernel_calls, kernel_rows, decisions)
        return [d for d in decisions if d is not None]

    def _fast_path(self, dev: DeviceEngine, req: Request) -> Optional[Decision]:
        """Resolve ``req`` without a kernel rerun, or ``None`` = blocked."""
        state = dev.state
        if req.op == "remove":
            if req.name not in state:
                return self._error(req, "task not resident")
            if dev.cert_valid:
                if dev.certifier.certify_remove(req.name) is None:
                    dev.cert_valid = False
            state.remove(req.name)
            return Decision(
                op=req.op, device=req.device, name=req.name, ok=True, via=VIA_STATE
            )
        task = req.task
        assert task is not None
        if task.name in state:
            return self._error(req, "task name already resident")
        if not (self.use_certifier and dev.cert_valid):
            return None  # straight to the grouped kernel rerun
        if req.op == "add":
            if dev.certifier.certify_add(task) is not None:
                state.add(task)
                return Decision(
                    op=req.op, device=req.device, name=task.name, ok=True,
                    via=VIA_CERTIFIER, member="DP",
                )
        else:  # trial
            if dev.certifier.certify_trial(task) is not None:
                return Decision(
                    op=req.op, device=req.device, name=task.name, ok=True,
                    via=VIA_CERTIFIER, member="DP",
                )
        return None

    # -- per-request serial baseline (and parity reference) --------------------

    def process_serial(self, requests: Sequence[Request]) -> List[Decision]:
        """The reference path: each request individually, straight through
        ``AdmissionState`` (trial-admit + rollback), no coalescing, no
        certifier, no kernels.  This is both the load harness's serial
        baseline and the decision sequence :meth:`process_batch` is
        bit-identical to."""
        out = []
        for req in requests:
            dev = self.devices.get(req.device)
            if dev is None:
                decision = self._error(req, "unknown device")
            elif req.op == "remove":
                if req.name not in dev.state:
                    decision = self._error(req, "task not resident")
                else:
                    dev.state.remove(req.name)
                    dev.cert_valid = False
                    decision = Decision(
                        op=req.op, device=req.device, name=req.name, ok=True,
                        via=VIA_STATE,
                    )
            else:
                task = req.task
                assert task is not None
                if task.name in dev.state:
                    decision = self._error(req, "task name already resident")
                else:
                    dev.cert_valid = False
                    ok = dev.state.admit(task)  # trial-admit with rollback
                    if ok and req.op == "trial":
                        dev.state.remove(task.name)  # verdict only
                    decision = Decision(
                        op=req.op, device=req.device, name=task.name, ok=ok,
                        via=VIA_STATE,
                    )
            self.metrics.observe_decision(decision)
            out.append(decision)
        return out

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _error(req: Request, message: str) -> Decision:
        return Decision(
            op=req.op, device=req.device, name=req.target, ok=False,
            via=VIA_STATE, error=message,
        )

    def _finish_batch(
        self,
        size: int,
        rounds: int,
        kernel_calls: int,
        kernel_rows: int,
        decisions: Sequence[Optional[Decision]],
    ) -> None:
        self.metrics.observe_batch(size, rounds, kernel_calls, kernel_rows)
        for decision in decisions:
            if decision is not None:
                self.metrics.observe_decision(decision)
        for dev in self.devices.values():
            certified, unknown = dev.drain_certifier_stats()
            if certified or unknown:
                self.metrics.observe_certifier(certified, unknown)
