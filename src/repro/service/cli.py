"""``repro-service``: run the admission service from the command line.

Example::

    repro-service --port 8080 --device fpga0=96 --device fpga1=64 \\
        --max-batch 256 --max-wait-ms 2 --shards 1

The process serves until interrupted.  ``--no-batching`` runs the
per-request serial baseline (for comparison), ``--no-certifier``
disables the delta-certificate fast path (every decision goes through
the grouped exact kernels).
"""

from __future__ import annotations

import argparse
import asyncio
from typing import List, Optional, Tuple

from repro.service.app import AdmissionService
from repro.service.batcher import BatchConfig
from repro.service.http import HttpServer


def _parse_device(spec: str) -> Tuple[str, int]:
    name, sep, width_text = spec.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"device spec must be NAME=WIDTH, got {spec!r}"
        )
    try:
        width = int(width_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"device width must be an integer, got {width_text!r}"
        ) from None
    return name, width


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-service",
        description="Online admission-control service (EDF on reconfigurable devices).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8080, help="bind port (0 = ephemeral)")
    parser.add_argument(
        "--device",
        metavar="NAME=WIDTH",
        type=_parse_device,
        action="append",
        default=[],
        help="pre-register a device (repeatable); more can be added via POST /v1/devices",
    )
    parser.add_argument(
        "--max-batch", type=int, default=256, help="batching window size bound"
    )
    parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="batching window latency bound, in milliseconds",
    )
    parser.add_argument(
        "--shards", type=int, default=1, help="independent pipelines in this process"
    )
    parser.add_argument(
        "--array-backend",
        default=None,
        help="array backend for the grouped kernels (default: auto)",
    )
    parser.add_argument(
        "--no-batching",
        action="store_true",
        help="decide every request individually (serial baseline)",
    )
    parser.add_argument(
        "--no-certifier",
        action="store_true",
        help="disable the O(1) delta-certificate fast path",
    )
    return parser


async def _serve(args: argparse.Namespace) -> None:
    service = AdmissionService(
        config=BatchConfig(max_batch=args.max_batch, max_wait=args.max_wait_ms / 1000.0),
        shards=args.shards,
        backend=args.array_backend,
        use_certifier=not args.no_certifier,
        batching=not args.no_batching,
    )
    for name, width in args.device:
        service.create_device(name, width)
    server = HttpServer(service, args.host, args.port)
    await service.start()
    try:
        host, port = await server.start()
        print(f"repro-service listening on http://{host}:{port}", flush=True)
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.close()
        await service.close()


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
