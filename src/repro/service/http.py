"""Minimal stdlib asyncio HTTP/1.1 front for the admission service.

No web framework — ``asyncio.start_server`` plus a small, strict
HTTP/1.1 request reader (Content-Length bodies only, keep-alive by
default, bounded header/body sizes).  JSON in, JSON out.

Endpoints::

    GET  /healthz                 liveness probe
    GET  /v1/metrics              ServiceMetrics snapshot
    GET  /v1/devices              registered devices (summary list)
    POST /v1/devices              {"name": ..., "width": ...}
    GET  /v1/devices/<name>       resident tasks + metadata
    POST /v1/admit                {"device": ..., "task": {...}}
    POST /v1/trial                {"device": ..., "task": {...}}
    POST /v1/remove               {"device": ..., "name": ...}

Decision endpoints always answer 200 with the decision object —
``ok=false`` plus ``error`` covers inapplicable requests (unknown
device, duplicate name, absent removal target), keeping the admission
verdict and the transport status orthogonal.  400 is reserved for
malformed payloads, 404 for unknown routes, 413/431 for oversized
bodies/headers.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.service.app import AdmissionService
from repro.service.protocol import ProtocolError, decision_to_json, parse_request

#: Bounds a public-facing parser must have.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 1024 * 1024

_DECISION_OPS = {"/v1/admit": "add", "/v1/trial": "trial", "/v1/remove": "remove"}


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


_STATUS_TEXT = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Content Too Large",
    431: "Request Header Fields Too Large", 500: "Internal Server Error",
}


class HttpServer:
    """Serve one :class:`AdmissionService` over HTTP/1.1."""

    def __init__(
        self, service: AdmissionService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``
        (``port=0`` picks an ephemeral port)."""
        if self._server is not None:
            raise RuntimeError("server already started")
        server = await asyncio.start_server(self._handle, self.host, self.port)
        if self._server is not None:
            # A concurrent start() won the race while we were suspended.
            server.close()
            raise RuntimeError("server already started")
        self._server = server
        sock = server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]  # repro-lint: disable=RL013 -- ephemeral-port readback; the re-validation above serialized concurrent starts
        return self.host, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is None:
            return
        server, self._server = self._server, None
        server.close()
        await server.wait_closed()

    # -- connection handling ---------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    parsed = await self._read_request(reader)
                except _HttpError as exc:
                    await self._respond(writer, exc.status, {"error": exc.message})
                    break
                if parsed is None:
                    break  # clean EOF between requests
                method, path, headers, body = parsed
                try:
                    status, payload = await self._route(method, path, body)
                except _HttpError as exc:
                    status, payload = exc.status, {"error": exc.message}
                except Exception as exc:  # pragma: no cover - defensive
                    status, payload = 500, {"error": f"internal error: {exc}"}
                keep_alive = headers.get("connection", "keep-alive") != "close"
                await self._respond(writer, status, payload, keep_alive=keep_alive)
                if not keep_alive:
                    break
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # connection closed between requests
            raise _HttpError(400, "truncated request head") from exc
        except asyncio.LimitOverrunError as exc:
            raise _HttpError(431, "request head too large") from exc
        if len(head) > MAX_HEADER_BYTES:
            raise _HttpError(431, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line: {lines[0]!r}")
        method, path, _version = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            key, sep, value = line.partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header line: {line!r}")
            headers[key.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise _HttpError(400, f"bad content-length: {length_text!r}") from None
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    # -- routing ---------------------------------------------------------------

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        if path == "/healthz":
            self._require(method, "GET")
            return 200, {"ok": True}
        if path == "/v1/metrics":
            self._require(method, "GET")
            return 200, self.service.snapshot()
        if path == "/v1/devices":
            if method == "GET":
                return 200, {"devices": self.service.list_devices()}
            self._require(method, "POST")
            obj = self._json(body)
            name, width = obj.get("name"), obj.get("width")
            if not isinstance(name, str) or not name:
                raise _HttpError(400, "device needs a non-empty string 'name'")
            if isinstance(width, bool) or not isinstance(width, int):
                raise _HttpError(400, "device needs an integer 'width'")
            if self.service.has_device(name):
                raise _HttpError(409, f"device already registered: {name}")
            try:
                return 201, self.service.create_device(name, width)
            except (ValueError, TypeError) as exc:
                raise _HttpError(400, str(exc)) from exc
        if path.startswith("/v1/devices/"):
            self._require(method, "GET")
            name = path[len("/v1/devices/"):]
            if not self.service.has_device(name):
                raise _HttpError(404, f"unknown device: {name}")
            return 200, self.service.device_info(name)
        if path in _DECISION_OPS:
            self._require(method, "POST")
            try:
                request = parse_request(_DECISION_OPS[path], self._json(body))
            except ProtocolError as exc:
                raise _HttpError(400, str(exc)) from exc
            decision = await self.service.submit(request)
            return 200, decision_to_json(decision)
        raise _HttpError(404, f"no route for {path}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"method {method} not allowed")

    @staticmethod
    def _json(body: bytes) -> Dict[str, Any]:
        try:
            obj = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(obj, dict):
            raise _HttpError(400, "JSON body must be an object")
        return obj

    # -- responses -------------------------------------------------------------

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        *,
        keep_alive: bool = False,
    ) -> None:
        body = json.dumps(payload).encode()
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
