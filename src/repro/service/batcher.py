"""Size- and latency-bounded coalescing of concurrent requests.

The :class:`MicroBatcher` is the asyncio front of the decision core:
``submit()`` parks a request on the pending list and wakes the flush
loop, which waits for the **batching window** — close as soon as
``max_batch`` requests are pending, or once ``max_wait`` seconds have
passed since the batch's first arrival, whichever comes first — then
hands the whole batch to :meth:`BatchEngine.process_batch
<repro.service.engine.BatchEngine.process_batch>` and resolves every
waiter with its decision.

The trade the window makes is the standard inference-serving one:
a bounded per-request latency cost (at most ``max_wait``) buys
amortization of everything per-batch — the event-loop hop, the
certifier sweep, and above all the grouped vector-kernel reruns, whose
cost grows far slower than linearly in the number of coalesced
requests.  ``max_wait=0`` still coalesces whatever accumulated while
the previous batch was being decided (natural batching under load).

Decisions never depend on the window: per-device order is preserved and
the engine's parity contract holds over any batch partition, so timing
only moves *when* a decision happens, never *what* it is.

The engine runs synchronously on the event loop — decisions are pure
CPU (numpy kernels release the GIL but there is no I/O to overlap), so
a worker thread would only add handoff latency.  One process serves one
batcher pipeline per shard; scaling beyond a core is the sharding
story's job (:mod:`repro.service.sharding`).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.service import clock
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import Decision, Request


@dataclass(frozen=True)
class BatchConfig:
    """Batching-window knobs (both bounds are configurable per service).

    ``max_batch``
        Size bound: flush as soon as this many requests are pending.
    ``max_wait``
        Latency bound, in seconds: flush once the oldest pending
        request has waited this long.  ``0`` flushes on the next loop
        tick (requests arriving in the same tick still coalesce).
    """

    max_batch: int = 256
    max_wait: float = 0.002

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {self.max_wait}")


class MicroBatcher:
    """Coalesce concurrent ``submit()`` calls into engine batches."""

    def __init__(
        self,
        process: Callable[[Sequence[Request]], List[Decision]],
        config: Optional[BatchConfig] = None,
        metrics: Optional[ServiceMetrics] = None,
    ) -> None:
        self._process = process
        self.config = config if config is not None else BatchConfig()
        self.metrics = metrics
        self._pending: List[Tuple[Request, "asyncio.Future[Decision]", float]] = []
        self._arrival: Optional[asyncio.Event] = None  # first pending request
        self._full: Optional[asyncio.Event] = None     # max_batch reached
        self._loop_task: Optional["asyncio.Task[None]"] = None
        self._closed = False

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Start the flush loop on the running event loop."""
        if self._loop_task is not None:
            raise RuntimeError("batcher already started")
        self._arrival = asyncio.Event()
        self._full = asyncio.Event()
        self._closed = False
        self._loop_task = asyncio.create_task(self._run(), name="repro-service-batcher")

    async def close(self) -> None:
        """Flush what's pending, then stop the loop."""
        if self._loop_task is None:
            return
        self._closed = True
        assert self._arrival is not None
        self._arrival.set()  # wake the loop so it can exit
        task, self._loop_task = self._loop_task, None
        await task
        while self._pending:  # anything submitted during shutdown
            self._flush()

    # -- submission ------------------------------------------------------------

    async def submit(self, request: Request) -> Decision:
        """Enqueue ``request``; resolves with its decision after the
        batch it lands in is flushed."""
        if self._loop_task is None or self._closed:
            raise RuntimeError("batcher is not running")
        assert self._arrival is not None and self._full is not None
        future: "asyncio.Future[Decision]" = asyncio.get_running_loop().create_future()
        self._pending.append((request, future, clock.now()))
        if self.metrics is not None:
            self.metrics.requests_in_flight += 1
        self._arrival.set()
        if len(self._pending) >= self.config.max_batch:
            self._full.set()
        return await future

    # -- flush loop ------------------------------------------------------------

    async def _run(self) -> None:
        assert self._arrival is not None and self._full is not None
        while True:
            await self._arrival.wait()
            if self._closed:
                return
            # Window: wait for max_batch or the oldest request's deadline.
            deadline = self._pending[0][2] + self.config.max_wait if self._pending else 0.0
            while 0 < len(self._pending) < self.config.max_batch and not self._closed:
                remaining = deadline - clock.now()
                if remaining <= 0:
                    break
                try:
                    await asyncio.wait_for(self._full.wait(), timeout=remaining)
                except asyncio.TimeoutError:
                    break
            if self.config.max_wait == 0:
                # Let same-tick submitters coalesce before flushing.
                await asyncio.sleep(0)
            self._flush()
            if self._closed:
                return

    def _flush(self) -> None:
        # The size bound holds even for bursts that all arrived while a
        # previous batch was being decided: flush max_batch, requeue the rest.
        limit = self.config.max_batch
        batch, self._pending = self._pending[:limit], self._pending[limit:]
        assert self._arrival is not None and self._full is not None
        self._arrival.clear()
        self._full.clear()
        if self._pending:
            self._arrival.set()
            if len(self._pending) >= limit:
                self._full.set()
        if not batch:
            return
        if self.metrics is not None:
            self.metrics.requests_in_flight -= len(batch)
        requests = [request for request, _, _ in batch]
        try:
            decisions = self._process(requests)
        except Exception as exc:  # defensive: never strand waiters
            for _, future, _ in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        done = clock.now()
        for (request, future, enqueued), decision in zip(batch, decisions):
            if self.metrics is not None:
                self.metrics.observe_latency(done - enqueued)
            if not future.done():
                future.set_result(decision)
