"""Wire protocol of the admission service: requests, decisions, JSON.

The service speaks a small JSON vocabulary over HTTP (see
:mod:`repro.service.http`), but the same dataclasses are also the
in-process API of the decision pipeline (:mod:`repro.service.engine`),
so a thin client — ``examples/admission_control.py`` — can drive the
exact production decision core without any HTTP in the way.

Task parameters are coerced to ``float`` at the protocol boundary: JSON
numbers are IEEE doubles, and the grouped vector-kernel reruns compute
in float64, so the service's parity contract (decisions bit-identical
to a serial :class:`~repro.incremental.state.AdmissionState` replay) is
stated — and tested — over float64-parameter tasks.  Exact-rational
knife edges are a library-level concern (:mod:`repro.core`), not a wire
one: they cannot arrive through JSON.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.model.task import Task
from repro.model.validation import ModelError

#: Operations the service understands.
OPS = ("add", "remove", "trial")

#: How a decision was reached (`Decision.via`).
VIA_CERTIFIER = "certifier"  #: O(1) DeltaCertifier certificate
VIA_KERNEL = "kernel"        #: grouped vectorized test rerun
VIA_STATE = "state"          #: unconditional state op / serial exact path


class ProtocolError(ValueError):
    """Malformed request payload (maps to HTTP 400)."""


@dataclass(frozen=True)
class Request:
    """One admission-control operation against a named device.

    * ``add`` — trial-admit ``task``: admitted iff the §6 portfolio
      still accepts the resident set plus the newcomer, rolled back
      otherwise;
    * ``remove`` — unconditionally retire the resident task ``name``;
    * ``trial`` — the ``add`` verdict without the admission.
    """

    op: str
    device: str
    task: Optional[Task] = None  # add / trial
    name: str = ""               # remove target (defaults to task.name)

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ProtocolError(f"unknown op {self.op!r} (choose from {OPS})")
        if self.op in ("add", "trial") and self.task is None:
            raise ProtocolError(f"op {self.op!r} needs a task")
        if self.op == "remove" and not self.name:
            raise ProtocolError("op 'remove' needs a task name")

    @property
    def target(self) -> str:
        """The task name the operation is about."""
        return self.task.name if self.task is not None else self.name


@dataclass(frozen=True)
class Decision:
    """The service's answer to one :class:`Request`.

    ``ok`` is the admission verdict (``add``/``trial``) or operation
    success (``remove``); ``via`` records which path produced it and
    ``member`` the first accepting portfolio member (kernel-path accepts
    only).  ``error`` is set — and ``ok`` False — for requests that are
    well-formed but inapplicable (unknown device, duplicate task name,
    removing an absent task).
    """

    op: str
    device: str
    name: str
    ok: bool
    via: str = VIA_STATE
    member: str = ""
    error: Optional[str] = None


def parse_task(obj: Mapping[str, Any]) -> Task:
    """Build a (float64-parameter) :class:`Task` from a JSON object."""
    if not isinstance(obj, Mapping):
        raise ProtocolError(f"task must be an object, got {type(obj).__name__}")
    unknown = set(obj) - {"name", "wcet", "period", "deadline", "area"}
    if unknown:
        raise ProtocolError(f"unknown task fields: {sorted(unknown)}")
    name = obj.get("name")
    if not isinstance(name, str) or not name:
        raise ProtocolError("task needs a non-empty string 'name'")
    numbers: Dict[str, float] = {}
    for field in ("wcet", "period", "deadline", "area"):
        value = obj.get(field)
        if value is None:
            if field in ("deadline", "area"):
                continue  # deadline defaults to period, area to 1
            raise ProtocolError(f"task {name!r} needs a numeric {field!r}")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ProtocolError(f"task {name!r}: {field} must be a number")
        numbers[field] = float(value)
    try:
        return Task(
            wcet=numbers["wcet"],
            period=numbers["period"],
            deadline=numbers.get("deadline"),  # type: ignore[arg-type]
            area=numbers.get("area", 1.0),
            name=name,
        )
    except ModelError as exc:
        raise ProtocolError(str(exc)) from exc


def task_to_json(task: Task) -> Dict[str, Any]:
    return {
        "name": task.name,
        "wcet": float(task.wcet),
        "period": float(task.period),
        "deadline": float(task.deadline),
        "area": float(task.area),
    }


def parse_request(op: str, obj: Mapping[str, Any]) -> Request:
    """Build a :class:`Request` from one endpoint's JSON body."""
    if not isinstance(obj, Mapping):
        raise ProtocolError(f"body must be an object, got {type(obj).__name__}")
    device = obj.get("device")
    if not isinstance(device, str) or not device:
        raise ProtocolError("request needs a non-empty string 'device'")
    if op == "remove":
        name = obj.get("name")
        if not isinstance(name, str) or not name:
            raise ProtocolError("remove needs a non-empty string 'name'")
        return Request(op=op, device=device, name=name)
    task_obj = obj.get("task")
    if task_obj is None:
        raise ProtocolError(f"{op} needs a 'task' object")
    return Request(op=op, device=device, task=parse_task(task_obj))


def decision_to_json(decision: Decision) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "op": decision.op,
        "device": decision.device,
        "name": decision.name,
        "ok": decision.ok,
        "via": decision.via,
    }
    if decision.member:
        out["member"] = decision.member
    if decision.error is not None:
        out["error"] = decision.error
    return out
